// Shared setup for the paper-reproduction benches: the full-size corpus
// and the paper's experimental protocol, with environment overrides for
// quick runs:
//   PG_BENCH_INSTANCES  corpus size        (default 4601, the paper's)
//   PG_BENCH_EPOCHS     SVM epochs         (default 300; the paper trains
//                       5000 epochs of unscaled SGD -- our standardized
//                       Pegasos reaches its accuracy plateau much earlier,
//                       verified by SvmTest.MoreEpochsDoNotHurtObjective)
//   PG_BENCH_SEED       experiment seed    (default 42)
//   PG_BENCH_REPS       sweep replications (default 2)
//   PG_BENCH_THREADS    runtime executor threads (default 0 = all cores;
//                       1 = serial). Results are bit-identical at every
//                       setting -- the runtime's determinism contract.
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "game/matrix_game.h"
#include "la/matrix.h"
#include "runtime/executor.h"
#include "sim/experiment.h"
#include "util/env.h"
#include "util/rng.h"

namespace pg::bench {

// The env parsing itself lives in util/env.h, shared with the scenario
// engine; the alias keeps the historical pg::bench::env_size spelling.
using util::env_size;

inline sim::ExperimentConfig paper_config() {
  sim::ExperimentConfig cfg;
  cfg.seed = env_size("PG_BENCH_SEED", 42);
  cfg.corpus.n_instances = env_size("PG_BENCH_INSTANCES", 4601);
  cfg.svm.epochs = env_size("PG_BENCH_EPOCHS", 300);
  return cfg;
}

inline std::size_t sweep_reps() { return env_size("PG_BENCH_REPS", 2); }

/// The bench-wide executor: every sweep/grid entry point takes its .get().
inline std::unique_ptr<runtime::Executor> bench_executor() {
  auto exec = sim::make_executor(env_size("PG_BENCH_THREADS", 0));
  std::cout << "executor threads: " << exec->concurrency()
            << " (override with PG_BENCH_THREADS)\n";
  return exec;
}

/// Seeded random zero-sum game shared by the solver benches, so they all
/// measure the same matrices (seed scheme: offset + size).
inline game::MatrixGame random_game(std::size_t m, std::size_t n,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  la::Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-5.0, 5.0);
    }
  }
  return game::MatrixGame(std::move(a));
}

inline void print_context(const sim::ExperimentContext& ctx) {
  std::cout << "corpus: " << ctx.corpus_source
            << " | instances: " << (ctx.train.size() + ctx.test.size())
            << " | train/test: " << ctx.train.size() << "/" << ctx.test.size()
            << " | poison budget N: " << ctx.poison_budget
            << " | clean accuracy: " << ctx.clean_accuracy << "\n\n";
}

}  // namespace pg::bench
