// Design-choice ablations behind the paper's defense: centroid-estimator
// drift under attack, and the distance filter vs kNN / PCA / RONI
// sanitizer families across attack families.
//
// Thin wrapper over the registered "defense_ablation" scenario;
// equivalent to `pg_run --scenario defense_ablation`.
#include "scenario/engine.h"

int main() { return pg::scenario::run_legacy_bench("defense_ablation"); }
