// Design-choice ablations behind the paper's defense:
//
//  (1) Centroid estimator (section 3.1's "good method to find the
//      centroid"): how far does each estimator drift under a 20% boundary
//      attack, and what does the resulting filter achieve?
//  (2) Defense family comparison: the distance filter (the paper's) vs the
//      kNN, PCA and RONI sanitizers from related work, against the
//      boundary attack and a label-flip attack.
//
// Shape targets: median/trimmed centroids drift far less than the mean;
// no single pure sanitizer dominates across attacks.
#include <iostream>
#include <memory>
#include <vector>

#include "attack/boundary_attack.h"
#include "attack/label_flip.h"
#include "attack/noise_attack.h"
#include "bench_common.h"
#include "defense/centroid.h"
#include "defense/distance_filter.h"
#include "defense/knn_filter.h"
#include "defense/pca_filter.h"
#include "defense/pipeline.h"
#include "defense/roni.h"
#include "la/vector_ops.h"
#include "util/stopwatch.h"
#include "util/table.h"

int main() {
  using namespace pg;
  std::cout << "=== Defense ablations ===\n";
  util::Stopwatch watch;

  sim::ExperimentConfig cfg = bench::paper_config();
  cfg.corpus.n_instances = std::min<std::size_t>(cfg.corpus.n_instances, 2000);
  cfg.svm.epochs = std::min<std::size_t>(cfg.svm.epochs, 150);
  const sim::ExperimentContext ctx = sim::prepare_experiment(cfg);
  bench::print_context(ctx);

  // ---- (1) centroid drift under attack -------------------------------
  std::cout << "--- centroid estimator drift under 20% boundary attack ---\n";
  attack::BoundaryAttackConfig acfg;
  acfg.placement_fraction = 0.05;
  const attack::BoundaryAttack attack(acfg);
  util::Rng arng(cfg.seed);
  const auto poison = attack.generate(ctx.train, ctx.poison_budget, arng);
  const auto poisoned = data::concatenate(ctx.train, poison);

  util::TextTable drift({"estimator", "drift (class +1)", "drift (class -1)"});
  for (auto method : {defense::CentroidMethod::kMean,
                      defense::CentroidMethod::kCoordinateMedian,
                      defense::CentroidMethod::kTrimmedMean}) {
    defense::CentroidConfig cc;
    cc.method = method;
    std::vector<std::string> row{defense::centroid_method_name(method)};
    for (int label : {1, -1}) {
      const auto clean_c = defense::compute_centroid(ctx.train, label, cc);
      const auto pois_c = defense::compute_centroid(poisoned, label, cc);
      row.push_back(util::format_double(la::distance(clean_c, pois_c), 3));
    }
    drift.add_row(row);
  }
  std::cout << drift.str() << "\n";

  // ---- (2) defense family comparison ---------------------------------
  std::vector<std::unique_ptr<attack::PoisoningAttack>> attacks;
  attacks.push_back(std::make_unique<attack::BoundaryAttack>(
      attack::BoundaryAttackConfig{.placement_fraction = 0.10}));
  attacks.push_back(std::make_unique<attack::LabelFlipAttack>(
      attack::LabelFlipConfig{attack::FlipSelection::kNearCentroid}));
  attacks.push_back(std::make_unique<attack::NoiseAttack>());

  std::vector<std::unique_ptr<defense::Filter>> filters;
  filters.push_back(std::make_unique<defense::DistanceFilter>(
      defense::DistanceFilterConfig{.removal_fraction = 0.15}));
  filters.push_back(std::make_unique<defense::KnnFilter>(
      defense::KnnFilterConfig{.k = 10, .agreement_threshold = 0.5}));
  filters.push_back(std::make_unique<defense::PcaFilter>(
      defense::PcaFilterConfig{.components = 5, .removal_fraction = 0.15}));
  filters.push_back(
      std::make_unique<defense::RoniFilter>(defense::RoniConfig{}));

  const defense::Pipeline pipeline({cfg.svm});
  util::Rng rng(cfg.seed + 1);
  for (const auto& atk : attacks) {
    std::cout << "--- attack: " << atk->name() << " ---\n";
    util::TextTable t(
        {"defense", "accuracy", "det. precision", "det. recall"});
    {
      util::Rng r = rng.fork(1);
      const auto res = pipeline.run(ctx.train, ctx.test, atk.get(),
                                    ctx.poison_budget, nullptr, r);
      t.add_row({"(none)", util::format_percent(res.test_accuracy, 2), "-",
                 "-"});
    }
    std::size_t salt = 2;
    for (const auto& f : filters) {
      util::Rng r = rng.fork(salt++);
      const auto res = pipeline.run(ctx.train, ctx.test, atk.get(),
                                    ctx.poison_budget, f.get(), r);
      t.add_row({f->name(), util::format_percent(res.test_accuracy, 2),
                 util::format_percent(res.detection.precision, 1),
                 util::format_percent(res.detection.recall, 1)});
    }
    std::cout << t.str() << "\n";
  }

  std::cout << "elapsed: " << util::format_double(watch.elapsed_seconds(), 1)
            << "s\n";
  return 0;
}
