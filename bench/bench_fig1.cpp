// Reproduces Figure 1: "Pure strategy defense under optimal attack".
//
// Paper series: ML model accuracy (y) against the percentage of data
// points removed by the distance filter (x), with and without the optimal
// poisoning attack (20% budget, points placed just inside the filter
// boundary at the most damaging surviving depth).
//
// Shape targets (paper, UCI Spambase): the no-attack curve declines gently
// from ~0.89 (Gamma rising); the attacked curve starts near the majority
// floor (~0.62), rises to an interior optimum in the 10-40% band, and the
// defender loses incentive to filter harder beyond it.
#include <iostream>

#include "bench_common.h"
#include "sim/curve_fit.h"
#include "sim/mixed_eval.h"
#include "sim/pure_sweep.h"
#include "util/stopwatch.h"
#include "util/table.h"

int main() {
  using namespace pg;
  std::cout << "=== Figure 1: pure strategy defense under optimal attack ===\n";
  const sim::ExperimentConfig cfg = bench::paper_config();
  util::Stopwatch watch;
  const sim::ExperimentContext ctx = sim::prepare_experiment(cfg);
  bench::print_context(ctx);
  const auto exec = bench::bench_executor();

  const auto grid = sim::sweep_grid(0.40, 9);
  const auto sweep =
      sim::run_pure_sweep(ctx, grid, bench::sweep_reps(), exec.get());

  util::TextTable table({"% removed by filter", "accuracy (no attack)",
                         "accuracy (optimal attack)", "poison survived"});
  for (const auto& pt : sweep.points) {
    table.add_row({util::format_percent(pt.removal_fraction),
                   util::format_percent(pt.accuracy_no_attack, 2),
                   util::format_percent(pt.accuracy_attacked, 2),
                   util::format_percent(pt.poison_survived_fraction, 1)});
  }
  std::cout << table.str() << "\n";

  const auto best = sim::best_pure_defense(sweep);
  const double majority =
      std::max(ctx.test.positive_fraction(),
               1.0 - ctx.test.positive_fraction());
  std::cout << "majority-vote floor:          "
            << util::format_percent(majority, 2) << "\n";
  std::cout << "attacked accuracy, no filter: "
            << util::format_percent(sweep.points.front().accuracy_attacked, 2)
            << "\n";
  std::cout << "best pure defense:            remove "
            << util::format_percent(best.best_fraction) << " -> "
            << util::format_percent(best.best_accuracy, 2) << "\n";

  const auto curves = sim::fit_payoff_curves(sweep);
  std::cout << "\nfitted payoff curves (inputs to Algorithm 1):\n";
  util::TextTable ct({"p", "E(p) per point", "Gamma(p)"});
  for (const auto& pt : sweep.points) {
    ct.add_row({util::format_percent(pt.removal_fraction),
                util::format_double(curves.damage(pt.removal_fraction), 6),
                util::format_double(curves.cost(pt.removal_fraction), 6)});
  }
  std::cout << ct.str();
  std::cout << "\nelapsed: " << util::format_double(watch.elapsed_seconds(), 1)
            << "s\n";
  return 0;
}
