// Reproduces Figure 1: "Pure strategy defense under optimal attack".
//
// Thin wrapper: the protocol lives in the scenario engine as the
// registered "fig1" spec (src/scenario/registry.cpp); this binary exists
// for muscle memory and is exactly `pg_run --scenario fig1`. Sizes honor
// the PG_BENCH_* env knobs as always.
#include "scenario/engine.h"

int main() { return pg::scenario::run_legacy_bench("fig1"); }
