// google-benchmark microbenchmarks for the library's hot paths: SVM
// training, attack generation, sanitization filters, the simplex solver,
// Algorithm 1, and the core kernels they sit on.
#include <benchmark/benchmark.h>

#include "attack/boundary_attack.h"
#include "core/equilibrium.h"
#include "core/game_model.h"
#include "data/synthetic.h"
#include "defense/distance_filter.h"
#include "defense/knn_filter.h"
#include "defense/pca_filter.h"
#include "game/solvers.h"
#include "la/matrix.h"
#include "ml/svm.h"
#include "util/rng.h"

namespace {

using namespace pg;

data::Dataset corpus(std::size_t n) {
  data::SpambaseLikeConfig cfg;
  cfg.n_instances = n;
  util::Rng rng(42);
  return data::make_spambase_like(cfg, rng);
}

void BM_RngUniform(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Vector a(n, 1.5);
  la::Vector b(n, -0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::dot(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Dot)->Arg(57)->Arg(1024);

void BM_Matvec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix m(n, 57, 0.5);
  la::Vector x(57, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.matvec(x));
  }
}
BENCHMARK(BM_Matvec)->Arg(1000);

void BM_SynthesizeCorpus(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(42);
    data::SpambaseLikeConfig cfg;
    cfg.n_instances = n;
    benchmark::DoNotOptimize(data::make_spambase_like(cfg, rng));
  }
}
BENCHMARK(BM_SynthesizeCorpus)->Arg(1000)->Arg(4601);

void BM_SvmTrainEpochs(benchmark::State& state) {
  const auto d = corpus(1000);
  ml::SvmConfig cfg;
  cfg.epochs = static_cast<std::size_t>(state.range(0));
  const ml::SvmTrainer trainer(cfg);
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(trainer.train(d, rng));
  }
}
BENCHMARK(BM_SvmTrainEpochs)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_BoundaryAttack(benchmark::State& state) {
  const auto d = corpus(1000);
  attack::BoundaryAttackConfig cfg;
  cfg.placement_fraction = 0.1;
  cfg.depth_offsets.clear();  // isolate placement cost from probe cost
  const attack::BoundaryAttack atk(cfg);
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(atk.generate(d, 200, rng));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_BoundaryAttack)->Unit(benchmark::kMillisecond);

void BM_DistanceFilter(benchmark::State& state) {
  const auto d = corpus(static_cast<std::size_t>(state.range(0)));
  defense::DistanceFilterConfig cfg;
  cfg.removal_fraction = 0.2;
  const defense::DistanceFilter f(cfg);
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(f.apply(d, rng));
  }
}
BENCHMARK(BM_DistanceFilter)->Arg(1000)->Arg(4601)
    ->Unit(benchmark::kMillisecond);

void BM_KnnFilter(benchmark::State& state) {
  const auto d = corpus(static_cast<std::size_t>(state.range(0)));
  defense::KnnFilterConfig cfg;
  cfg.k = 10;
  const defense::KnnFilter f(cfg);
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(f.apply(d, rng));
  }
}
BENCHMARK(BM_KnnFilter)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_PcaFilter(benchmark::State& state) {
  const auto d = corpus(1000);
  defense::PcaFilterConfig cfg;
  cfg.components = 5;
  cfg.removal_fraction = 0.15;
  const defense::PcaFilter f(cfg);
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(f.apply(d, rng));
  }
}
BENCHMARK(BM_PcaFilter)->Unit(benchmark::kMillisecond);

void BM_LpEquilibrium(benchmark::State& state) {
  const auto curves = core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4);
  const core::PoisoningGame game(curves, 100);
  const auto grid = static_cast<std::size_t>(state.range(0));
  const auto mg = game.discretize(grid, grid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(game::solve_lp_equilibrium(mg));
  }
}
BENCHMARK(BM_LpEquilibrium)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_FictitiousPlay(benchmark::State& state) {
  const auto curves = core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4);
  const core::PoisoningGame game(curves, 100);
  const auto mg = game.discretize(64, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        game::solve_fictitious_play(mg, {.iterations = 10000}));
  }
}
BENCHMARK(BM_FictitiousPlay)->Unit(benchmark::kMillisecond);

void BM_Algorithm1(benchmark::State& state) {
  const auto curves = core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4);
  const core::PoisoningGame game(curves, 100);
  core::Algorithm1Config cfg;
  cfg.support_size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_optimal_defense(game, cfg));
  }
}
BENCHMARK(BM_Algorithm1)->Arg(2)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond);

}  // namespace
