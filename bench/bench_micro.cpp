// google-benchmark microbenchmarks for the library's hot paths: SVM
// training, attack generation, sanitization filters, the simplex solver,
// Algorithm 1, and the core kernels they sit on.
//
// This is the one bench that keeps its own harness (google-benchmark owns
// main and the timing loop); the registered "micro" scenario
// (`pg_run --scenario micro`) covers the engine-native subset -- grid
// fill and solver speedup_vs_serial with the bit-identity assertion --
// for environments without libbenchmark.
#include <benchmark/benchmark.h>

#include <atomic>

#include "attack/boundary_attack.h"
#include "bench_common.h"
#include "core/equilibrium.h"
#include "core/game_model.h"
#include "data/synthetic.h"
#include "defense/distance_filter.h"
#include "defense/knn_filter.h"
#include "defense/pca_filter.h"
#include "defense/pipeline.h"
#include "game/solvers.h"
#include "la/matrix.h"
#include "la/simd.h"
#include "ml/batch_trainer.h"
#include "ml/svm.h"
#include "runtime/executor.h"
#include "runtime/payoff_evaluator.h"
#include "runtime/rng_stream.h"
#include "sim/experiment.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace pg;

data::Dataset corpus(std::size_t n) {
  data::SpambaseLikeConfig cfg;
  cfg.n_instances = n;
  util::Rng rng(42);
  return data::make_spambase_like(cfg, rng);
}

void BM_RngUniform(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Vector a(n, 1.5);
  la::Vector b(n, -0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::dot(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Dot)->Arg(57)->Arg(1024);

void BM_Matvec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix m(n, 57, 0.5);
  la::Vector x(57, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.matvec(x));
  }
}
BENCHMARK(BM_Matvec)->Arg(1000);

void BM_SynthesizeCorpus(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(42);
    data::SpambaseLikeConfig cfg;
    cfg.n_instances = n;
    benchmark::DoNotOptimize(data::make_spambase_like(cfg, rng));
  }
}
BENCHMARK(BM_SynthesizeCorpus)->Arg(1000)->Arg(4601);

void BM_SvmTrainEpochs(benchmark::State& state) {
  const auto d = corpus(1000);
  ml::SvmConfig cfg;
  cfg.epochs = static_cast<std::size_t>(state.range(0));
  const ml::SvmTrainer trainer(cfg);
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(trainer.train(d, rng));
  }
}
BENCHMARK(BM_SvmTrainEpochs)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_BoundaryAttack(benchmark::State& state) {
  const auto d = corpus(1000);
  attack::BoundaryAttackConfig cfg;
  cfg.placement_fraction = 0.1;
  cfg.depth_offsets.clear();  // isolate placement cost from probe cost
  const attack::BoundaryAttack atk(cfg);
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(atk.generate(d, 200, rng));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_BoundaryAttack)->Unit(benchmark::kMillisecond);

void BM_DistanceFilter(benchmark::State& state) {
  const auto d = corpus(static_cast<std::size_t>(state.range(0)));
  defense::DistanceFilterConfig cfg;
  cfg.removal_fraction = 0.2;
  const defense::DistanceFilter f(cfg);
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(f.apply(d, rng));
  }
}
BENCHMARK(BM_DistanceFilter)->Arg(1000)->Arg(4601)
    ->Unit(benchmark::kMillisecond);

void BM_KnnFilter(benchmark::State& state) {
  const auto d = corpus(static_cast<std::size_t>(state.range(0)));
  defense::KnnFilterConfig cfg;
  cfg.k = 10;
  const defense::KnnFilter f(cfg);
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(f.apply(d, rng));
  }
}
BENCHMARK(BM_KnnFilter)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_PcaFilter(benchmark::State& state) {
  const auto d = corpus(1000);
  defense::PcaFilterConfig cfg;
  cfg.components = 5;
  cfg.removal_fraction = 0.15;
  const defense::PcaFilter f(cfg);
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(f.apply(d, rng));
  }
}
BENCHMARK(BM_PcaFilter)->Unit(benchmark::kMillisecond);

void BM_LpEquilibrium(benchmark::State& state) {
  const auto curves = core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4);
  const core::PoisoningGame game(curves, 100);
  const auto grid = static_cast<std::size_t>(state.range(0));
  const auto mg = game.discretize(grid, grid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(game::solve_lp_equilibrium(mg));
  }
}
BENCHMARK(BM_LpEquilibrium)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_FictitiousPlay(benchmark::State& state) {
  const auto curves = core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4);
  const core::PoisoningGame game(curves, 100);
  const auto mg = game.discretize(64, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        game::solve_fictitious_play(mg, {.iterations = 10000}));
  }
}
BENCHMARK(BM_FictitiousPlay)->Unit(benchmark::kMillisecond);

void BM_Algorithm1(benchmark::State& state) {
  const auto curves = core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4);
  const core::PoisoningGame game(curves, 100);
  core::Algorithm1Config cfg;
  cfg.support_size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_optimal_defense(game, cfg));
  }
}
BENCHMARK(BM_Algorithm1)->Arg(2)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------ runtime: parallel grids

void BM_ParallelForOverhead(benchmark::State& state) {
  // Dispatch cost of the runtime: 16k empty tasks, grain 64.
  runtime::ThreadPoolExecutor exec(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::atomic<std::size_t> sink{0};
    exec.parallel_for(0, 16384, 64,
                      [&](std::size_t i) { sink.fetch_add(i, std::memory_order_relaxed); });
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_DiscretizeGrid(benchmark::State& state) {
  // Analytic 256x256 payoff grid through the PayoffEvaluator (cheap
  // closed-form cells: measures the grid plumbing, not retraining).
  const core::PoisoningGame game(
      core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4), 100);
  runtime::ThreadPoolExecutor exec(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(game.discretize(256, 256, &exec));
  }
  state.SetItemsProcessed(state.iterations() * 256 * 256);
}
BENCHMARK(BM_DiscretizeGrid)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// --------------------------------------------- runtime: parallel solvers

double& lp_serial_secs() {
  static double secs = 0.0;
  return secs;
}

void BM_SolveLpParallel(benchmark::State& state) {
  // 192x192 random game: enough pivots (and a wide enough tableau) for
  // the per-pivot elimination chunks to carry real work. Seed scheme
  // matches bench_solver_parallel's LP games (1000 + size), so the two
  // benches measure the identical matrix.
  static const game::MatrixGame mg = pg::bench::random_game(192, 192, 1192);
  const auto exec = sim::make_executor(static_cast<std::size_t>(state.range(0)));
  double total = 0.0;
  std::size_t iters = 0;
  for (auto _ : state) {
    util::Stopwatch watch;
    benchmark::DoNotOptimize(game::solve_lp_equilibrium(mg, exec.get()));
    total += watch.elapsed_seconds();
    ++iters;
  }
  const double per_iter = total / static_cast<double>(iters);
  if (state.range(0) == 1) lp_serial_secs() = per_iter;
  if (lp_serial_secs() > 0.0) {
    state.counters["speedup_vs_serial"] = lp_serial_secs() / per_iter;
  }
  state.counters["threads"] = static_cast<double>(exec->concurrency());
}
// Arg order matters: the 1-thread run records the serial baseline.
BENCHMARK(BM_SolveLpParallel)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

double& fp_serial_secs() {
  static double secs = 0.0;
  return secs;
}

void BM_FictitiousPlayParallel(benchmark::State& state) {
  // 1024x1024: the strided column gather in the row scan is the
  // per-iteration cost the chunked best-response pass splits. Seed scheme
  // matches bench_solver_parallel's FP games (2000 + size).
  static const game::MatrixGame mg = pg::bench::random_game(1024, 1024, 3024);
  const auto exec = sim::make_executor(static_cast<std::size_t>(state.range(0)));
  double total = 0.0;
  std::size_t iters = 0;
  for (auto _ : state) {
    util::Stopwatch watch;
    benchmark::DoNotOptimize(
        game::solve_fictitious_play(mg, {.iterations = 2000}, exec.get()));
    total += watch.elapsed_seconds();
    ++iters;
  }
  const double per_iter = total / static_cast<double>(iters);
  if (state.range(0) == 1) fp_serial_secs() = per_iter;
  if (fp_serial_secs() > 0.0) {
    state.counters["speedup_vs_serial"] = fp_serial_secs() / per_iter;
  }
  state.counters["threads"] = static_cast<double>(exec->concurrency());
}
BENCHMARK(BM_FictitiousPlayParallel)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_FictitiousPlayNarrowBackend(benchmark::State& state) {
  // The dispatch-overhead case PersistentTeam exists for: a NARROW game
  // (64x64, O(m+n) per iteration) where the fork-join's per-iteration
  // queue round-trips used to outweigh the step. Arg encodes the
  // backend: 0 = serial, 1 = forced dispatch, 2 = forced team (both
  // parallel variants on 4 workers). Results are bit-identical across
  // all three; only the wall-clock moves.
  static const game::MatrixGame mg = pg::bench::random_game(64, 64, 4064);
  const int mode = static_cast<int>(state.range(0));
  const auto exec = sim::make_executor(mode == 0 ? 1 : 4);
  game::IterativeConfig cfg{.iterations = 4000};
  cfg.backend = mode == 2 ? game::IterativeBackend::kTeam
                          : game::IterativeBackend::kDispatch;
  runtime::Executor* e = mode == 0 ? nullptr : exec.get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(game::solve_fictitious_play(mg, cfg, e));
  }
  state.counters["backend"] = static_cast<double>(mode);
}
BENCHMARK(BM_FictitiousPlayNarrowBackend)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// The headline workload of the runtime: the paper's attacker x defender
// EMPIRICAL payoff grid, one sanitize-and-retrain pipeline run per cell
// (the object every sweep, Table-1 evaluation, and ablation is built
// from). Cells are independent and RNG streams are content-keyed, so the
// grid is bit-identical at every thread count; the benchmark reports
// speedup_vs_serial = serial seconds / threaded seconds for the same grid
// (>= 2x expected on a 12x12 grid with 4+ threads on 4+ cores).
const sim::ExperimentContext& grid_ctx() {
  static const sim::ExperimentContext ctx = [] {
    sim::ExperimentConfig cfg = sim::fast_config(42);
    cfg.corpus.n_instances = 600;
    cfg.svm.epochs = 40;
    return sim::prepare_experiment(cfg);
  }();
  return ctx;
}

double& empirical_grid_serial_secs() {
  static double secs = 0.0;
  return secs;
}

void BM_EmpiricalPayoffGrid(benchmark::State& state) {
  const auto& ctx = grid_ctx();
  const std::size_t grid = 12;
  const defense::Pipeline pipeline({ctx.config.svm});
  const runtime::RngStreamFactory streams(ctx.config.seed);
  const auto exec = sim::make_executor(static_cast<std::size_t>(state.range(0)));
  const runtime::PayoffEvaluator evaluator(*exec);  // uncached: measure compute

  const auto cell = [&](std::size_t flat) {
    const std::size_t i = flat / grid;  // attacker placement index
    const std::size_t j = flat % grid;  // defender filter index
    const double placement = 0.40 * static_cast<double>(i) / (grid - 1);
    const double fraction = 0.40 * static_cast<double>(j) / (grid - 1);
    defense::DistanceFilterConfig fcfg;
    fcfg.removal_fraction = fraction;
    fcfg.centroid = ctx.config.centroid;
    const defense::DistanceFilter filter(fcfg);
    attack::BoundaryAttackConfig acfg;
    acfg.placement_fraction = placement;
    acfg.depth_offsets.clear();
    const attack::BoundaryAttack attack(acfg);
    util::Rng rng = streams.stream(flat);
    return pipeline
        .run(ctx.train, ctx.test, &attack, ctx.poison_budget,
             fraction > 0.0 ? &filter : nullptr, rng)
        .test_accuracy;
  };

  double total_secs = 0.0;
  std::size_t iters = 0;
  for (auto _ : state) {
    util::Stopwatch watch;
    benchmark::DoNotOptimize(evaluator.evaluate_matrix(grid, grid, cell));
    total_secs += watch.elapsed_seconds();
    ++iters;
  }
  const double per_iter = total_secs / static_cast<double>(iters);
  if (state.range(0) == 1) empirical_grid_serial_secs() = per_iter;
  if (empirical_grid_serial_secs() > 0.0) {
    state.counters["speedup_vs_serial"] =
        empirical_grid_serial_secs() / per_iter;
  }
  state.counters["threads"] = static_cast<double>(exec->concurrency());
  state.SetItemsProcessed(state.iterations() * grid * grid);
}
// Arg order matters: the 1-thread run records the serial baseline the
// later runs report their speedup against.
BENCHMARK(BM_EmpiricalPayoffGrid)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// ------------------------------------------------ SoA batched retraining

double& batched_retrain_ref_secs() {
  static double secs = 0.0;
  return secs;
}

double& batched_retrain_scalar_secs() {
  static double secs = 0.0;
  return secs;
}

void BM_BatchedRetrain(benchmark::State& state) {
  // K=8 independent SVM solves -- the shape of one lockstep batch in a
  // kernel=simd sweep. Arg encodes the path: 0 = sequential reference
  // trainer (the baseline), 1 = BatchedLinearTrainer on the host's best
  // tier, 2 = batched forced to the scalar tier (isolates the SoA layout
  // gain from the vector-ISA gain). All paths produce bit-identical
  // models (tests/simd_test.cpp asserts it); only the wall-clock moves.
  constexpr std::size_t kLanes = 8;
  static const std::vector<data::Dataset> cells_data = [] {
    std::vector<data::Dataset> out;
    for (std::size_t k = 0; k < kLanes; ++k) {
      data::SpambaseLikeConfig cfg;
      // Slightly ragged, like a real batch: plan_batches sorts cells by
      // size descending precisely so that lockstep groups hold near-equal
      // sizes, so a wild spread here would charge the batched path for
      // padding work no planned batch actually does.
      cfg.n_instances = 904 + 8 * k;
      util::Rng rng(100 + k);
      out.push_back(data::make_spambase_like(cfg, rng));
    }
    return out;
  }();
  ml::SvmConfig cfg;
  cfg.epochs = 30;
  const int mode = static_cast<int>(state.range(0));

  double total = 0.0;
  std::size_t iters = 0;
  for (auto _ : state) {
    util::Stopwatch watch;
    if (mode == 0) {
      const ml::SvmTrainer trainer(cfg);
      for (std::size_t k = 0; k < kLanes; ++k) {
        util::Rng rng(1000 + 17 * k);
        benchmark::DoNotOptimize(trainer.train(cells_data[k], rng));
      }
    } else {
      const ml::BatchedLinearTrainer trainer(
          mode == 1 ? la::simd::detect_tier() : la::simd::Tier::kScalar);
      std::vector<ml::BatchCell> cells;
      for (std::size_t k = 0; k < kLanes; ++k) {
        cells.push_back({&cells_data[k], util::Rng(1000 + 17 * k)});
      }
      benchmark::DoNotOptimize(trainer.train_svm(cfg, cells));
    }
    total += watch.elapsed_seconds();
    ++iters;
  }
  const double per_iter = total / static_cast<double>(iters);
  if (mode == 0) batched_retrain_ref_secs() = per_iter;
  if (mode == 2) batched_retrain_scalar_secs() = per_iter;
  if (batched_retrain_ref_secs() > 0.0) {
    state.counters["speedup_vs_reference"] =
        batched_retrain_ref_secs() / per_iter;
  }
  // How much the vector ISA buys over the same SoA code path at width 1
  // (only meaningful once the Arg(2) scalar-tier run has recorded itself).
  if (mode == 1 && batched_retrain_scalar_secs() > 0.0) {
    state.counters["speedup_vs_scalar_tier"] =
        batched_retrain_scalar_secs() / per_iter;
  }
  state.counters["tier"] = static_cast<double>(
      mode == 1 ? static_cast<int>(la::simd::detect_tier()) : 0);
  state.SetItemsProcessed(state.iterations() * kLanes);
}
// Arg order matters: the reference and scalar-tier runs record the
// baselines the best-tier run reports its speedups against.
BENCHMARK(BM_BatchedRetrain)->Arg(0)->Arg(2)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
