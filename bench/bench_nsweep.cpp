// Reproduces the section-5 text claim: "We experimented filters with
// n <= 5, the accuracy of the resulting model stays roughly the same after
// n = 3 ... the computation time increases significantly when computing
// high value of n."
//
// Shape targets: defender loss (and hence accuracy) plateaus for n >= 3;
// Algorithm 1's solve time grows with n.
#include <iostream>

#include "bench_common.h"
#include "core/equilibrium.h"
#include "core/game_model.h"
#include "sim/curve_fit.h"
#include "sim/pure_sweep.h"
#include "sim/support_sweep.h"
#include "util/stopwatch.h"
#include "util/table.h"

int main() {
  using namespace pg;
  std::cout << "=== Support-size sweep: accuracy plateau after n = 3 ===\n";
  const sim::ExperimentConfig cfg = bench::paper_config();
  util::Stopwatch watch;
  const sim::ExperimentContext ctx = sim::prepare_experiment(cfg);
  bench::print_context(ctx);
  const auto exec = bench::bench_executor();

  const auto sweep = sim::run_pure_sweep(ctx, sim::sweep_grid(0.40, 9),
                                         bench::sweep_reps(), exec.get());
  const auto curves = sim::fit_payoff_curves(sweep);
  const core::PoisoningGame game(curves, ctx.poison_budget);

  sim::MixedEvalConfig ecfg;
  ecfg.draws = 2;
  const auto rows = sim::run_support_sweep(ctx, game, 5, {}, ecfg, exec.get());

  util::TextTable t({"n", "mixed strategy", "predicted loss",
                     "adversarial accuracy", "solve time (ms)",
                     "solver iters"});
  for (const auto& row : rows) {
    t.add_row({std::to_string(row.support_size), row.strategy.describe(),
               util::format_double(row.predicted_loss, 4),
               util::format_percent(row.adversarial_accuracy, 2),
               util::format_double(row.solve_seconds * 1e3, 1),
               std::to_string(row.solve_iterations)});
  }
  std::cout << t.str();

  const double drop_2_to_3 = rows[1].predicted_loss - rows[2].predicted_loss;
  const double drop_3_to_5 = rows[2].predicted_loss - rows[4].predicted_loss;
  std::cout << "\nloss improvement n=2 -> n=3: "
            << util::format_double(drop_2_to_3, 5)
            << "; n=3 -> n=5: " << util::format_double(drop_3_to_5, 5)
            << (drop_3_to_5 <= drop_2_to_3 + 1e-9
                    ? "  (plateau after n=3, as in the paper)"
                    : "  (no plateau -- unexpected)")
            << "\n";
  std::cout << "\nelapsed: " << util::format_double(watch.elapsed_seconds(), 1)
            << "s\n";
  return 0;
}
