// Reproduces the section-5 text claim: accuracy plateaus for support
// sizes n >= 3 while Algorithm 1's solve time keeps growing.
//
// Thin wrapper over the registered "nsweep" scenario; equivalent to
// `pg_run --scenario nsweep`.
#include "scenario/engine.h"

int main() { return pg::scenario::run_legacy_bench("nsweep"); }
