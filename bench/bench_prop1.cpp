// Verifies Proposition 1 numerically: the poisoning game has no pure
// strategy Nash equilibrium -- on the measured payoff curves AND on a
// family of analytic curves.
//
// Shape targets: zero saddle points, strictly positive duality gap
// (minimax - maximin), and cycling (never-settling) best-response
// dynamics; the control game with a dominant strategy must show the
// opposite on all three.
#include <iostream>

#include "bench_common.h"
#include "core/game_model.h"
#include "core/ne_properties.h"
#include "game/pure_ne.h"
#include "sim/curve_fit.h"
#include "sim/pure_sweep.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

void report(const std::string& name, const pg::core::PoisoningGame& game,
            pg::util::TextTable& table) {
  using namespace pg;
  const auto rep = core::analyze_pure_equilibria(game, 96);
  const auto dynamics = core::best_response_dynamics(game, 0.05, 24);
  // Count distinct defender responses in the trace: cycling means the
  // dynamics keep visiting new or repeated non-fixed states.
  std::size_t moves = 0;
  for (std::size_t i = 1; i < dynamics.size(); ++i) {
    if (std::abs(dynamics[i].defender_theta -
                 dynamics[i - 1].defender_theta) > 1e-9) {
      ++moves;
    }
  }
  table.add_row({name, util::format_double(rep.maximin, 5),
                 util::format_double(rep.minimax, 5),
                 util::format_double(rep.gap, 5),
                 std::to_string(rep.saddle_points),
                 std::to_string(moves) + "/" +
                     std::to_string(dynamics.size() - 1)});
}

}  // namespace

int main() {
  using namespace pg;
  std::cout << "=== Proposition 1: non-existence of pure strategy NE ===\n";
  util::Stopwatch watch;

  util::TextTable table({"game", "maximin", "minimax", "gap (>0 => no pure NE)",
                         "saddle points", "BR moves"});

  // Measured curves from a reduced sweep (the proposition is about the
  // game structure, not the corpus size).
  sim::ExperimentConfig cfg = bench::paper_config();
  cfg.corpus.n_instances = std::min<std::size_t>(cfg.corpus.n_instances, 1500);
  cfg.svm.epochs = std::min<std::size_t>(cfg.svm.epochs, 120);
  const sim::ExperimentContext ctx = sim::prepare_experiment(cfg);
  const auto exec = bench::bench_executor();
  const auto sweep = sim::run_pure_sweep(ctx, sim::sweep_grid(0.40, 9),
                                         bench::sweep_reps(), exec.get());
  const auto measured = sim::fit_payoff_curves(sweep);
  report("measured (Spambase-like sweep)",
         core::PoisoningGame(measured, ctx.poison_budget), table);

  // Analytic curve families.
  report("analytic E=(1-p)^5, G=p^1.4",
         core::PoisoningGame(core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4),
                             100),
         table);
  report("analytic E=(1-p)^3, G=p^1.0",
         core::PoisoningGame(core::PayoffCurves::analytic(0.001, 3.0, 0.02, 1.0),
                             100),
         table);
  report("analytic E=(1-p)^8, G=p^2.0",
         core::PoisoningGame(core::PayoffCurves::analytic(0.005, 8.0, 0.10, 2.0),
                             100),
         table);
  std::cout << table.str();

  std::cout << "\ncontrol: a game WITH a pure equilibrium (constant damage,\n"
               "zero cost) must report gap ~ 0 and saddle points > 0:\n";
  // E constant => the attacker is indifferent to theta; any (psi, theta)
  // with theta maximal is a saddle of the discretized game.
  const core::PayoffCurves flat(
      util::PiecewiseLinear({0.0, 1.0}, {0.001, 0.001}),
      util::PiecewiseLinear({0.0, 1.0}, {0.0, 0.0}));
  const auto rep = core::analyze_pure_equilibria(
      core::PoisoningGame(flat, 100), 96);
  std::cout << "  gap=" << util::format_double(rep.gap, 9)
            << "  saddle points=" << rep.saddle_points << "\n";

  std::cout << "\nelapsed: " << util::format_double(watch.elapsed_seconds(), 1)
            << "s\n";
  return 0;
}
