// Verifies Proposition 1 numerically: no pure strategy NE -- positive
// duality gap, zero saddle points, cycling best-response dynamics -- on
// measured and analytic payoff curves, with a saddle-point control game.
//
// Thin wrapper over the registered "prop1" scenario; equivalent to
// `pg_run --scenario prop1`.
#include "scenario/engine.h"

int main() { return pg::scenario::run_legacy_bench("prop1"); }
