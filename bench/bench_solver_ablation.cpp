// Solver ablation (Proposition 2 cross-check): Algorithm 1, exact
// simplex LP, fictitious play, and multiplicative weights must agree on
// the mixed equilibrium of the poisoning game.
//
// Thin wrapper over the registered "solver_ablation" scenario;
// equivalent to `pg_run --scenario solver_ablation`. Try
// `pg_run --scenario solver_ablation --set lp_pricing=dantzig` for the
// Dantzig-priced simplex.
#include "scenario/engine.h"

int main() { return pg::scenario::run_legacy_bench("solver_ablation"); }
