// Solver ablation (Proposition 2 cross-check): four independent routes to
// the mixed equilibrium of the poisoning game must agree.
//
//   * Algorithm 1 (the paper's solver, continuous strategies)
//   * exact simplex LP on the discretized game
//   * fictitious play on the discretized game
//   * multiplicative weights on the discretized game
//
// Shape targets: all four report (near-)equal game values; the LP strategy
// is unexploitable; Algorithm 1's loss tracks the LP value within
// discretization error at a fraction of the cost.
#include <iostream>

#include "bench_common.h"
#include "core/equilibrium.h"
#include "core/game_model.h"
#include "core/ne_properties.h"
#include "game/best_response.h"
#include "game/solvers.h"
#include "sim/curve_fit.h"
#include "sim/pure_sweep.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

void ablate(const std::string& name, const pg::core::PoisoningGame& game,
            pg::runtime::Executor* exec) {
  using namespace pg;
  std::cout << "--- " << name << " ---\n";
  util::TextTable t({"solver", "defender loss / game value", "exploitability",
                     "time (ms)"});

  {
    util::Stopwatch w;
    core::Algorithm1Config cfg;
    cfg.support_size = 5;
    const auto sol = core::compute_optimal_defense(game, cfg, exec);
    const auto ex = core::attacker_exploitability(game, sol.strategy, 4096);
    t.add_row({"Algorithm 1 (paper, n=5)",
               util::format_double(sol.defender_loss, 6),
               util::format_double(ex.gain, 6),
               util::format_double(w.elapsed_ms(), 2)});
  }

  const std::size_t grid = 128;
  const auto mg = game.discretize(grid, grid, exec);
  {
    util::Stopwatch w;
    const auto eq = game::solve_lp_equilibrium(mg, exec);
    t.add_row({"simplex LP (128x128 grid)", util::format_double(eq.value, 6),
               util::format_double(
                   game::exploitability(mg, eq.row_strategy, eq.col_strategy),
                   6),
               util::format_double(w.elapsed_ms(), 2)});
  }
  {
    util::Stopwatch w;
    const auto eq =
        game::solve_fictitious_play(mg, {.iterations = 20000}, exec);
    t.add_row({"fictitious play (20k iters)",
               util::format_double(eq.value, 6),
               util::format_double(
                   game::exploitability(mg, eq.row_strategy, eq.col_strategy),
                   6),
               util::format_double(w.elapsed_ms(), 2)});
  }
  {
    util::Stopwatch w;
    const auto eq =
        game::solve_multiplicative_weights(mg, {.iterations = 20000}, exec);
    t.add_row({"multiplicative weights (20k)",
               util::format_double(eq.value, 6),
               util::format_double(
                   game::exploitability(mg, eq.row_strategy, eq.col_strategy),
                   6),
               util::format_double(w.elapsed_ms(), 2)});
  }
  std::cout << t.str() << "\n";
}

}  // namespace

int main() {
  using namespace pg;
  std::cout << "=== Solver ablation: four routes to the mixed NE ===\n\n";
  util::Stopwatch watch;
  const auto exec = bench::bench_executor();

  ablate("analytic curves E=0.002(1-p)^5, Gamma=0.06 p^1.4, N=100",
         core::PoisoningGame(
             core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4), 100),
         exec.get());

  sim::ExperimentConfig cfg = bench::paper_config();
  cfg.corpus.n_instances = std::min<std::size_t>(cfg.corpus.n_instances, 1500);
  cfg.svm.epochs = std::min<std::size_t>(cfg.svm.epochs, 120);
  const sim::ExperimentContext ctx = sim::prepare_experiment(cfg);
  const auto sweep = sim::run_pure_sweep(ctx, sim::sweep_grid(0.40, 9),
                                         bench::sweep_reps(), exec.get());
  ablate("measured curves (Spambase-like sweep), N=" +
             std::to_string(ctx.poison_budget),
         core::PoisoningGame(sim::fit_payoff_curves(sweep),
                             ctx.poison_budget),
         exec.get());

  std::cout << "elapsed: " << util::format_double(watch.elapsed_seconds(), 1)
            << "s\n";
  return 0;
}
