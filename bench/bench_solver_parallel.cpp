// Parallel solver engine bench: serial vs executor-parallel equilibrium
// solves across matrix sizes, reporting speedup_vs_serial and ASSERTING
// the bit-identity determinism contract.
//
// Thin wrapper over the registered "solver_parallel" scenario;
// equivalent to `pg_run --scenario solver_parallel`. The optional
// argument keeps the historical CI usage: bench_solver_parallel [out.json]
// also writes the structured result as JSON.
#include "scenario/engine.h"

int main(int argc, char** argv) {
  return pg::scenario::run_legacy_bench("solver_parallel",
                                        argc > 1 ? argv[1] : "");
}
