// Parallel solver engine bench: serial vs executor-parallel equilibrium
// solves on random zero-sum games across matrix sizes, reporting
// speedup_vs_serial for the simplex LP and fictitious play (the two
// solvers on every experiment's hot path). The bench also ASSERTS the
// determinism contract -- the parallel equilibrium must be bit-identical
// to the serial one -- so a scheduling regression fails loudly here, not
// silently in a sweep.
//
// Knobs: PG_BENCH_THREADS (0 = all cores, 1 = serial executor),
// PG_BENCH_SOLVER_REPS (timing repetitions, best-of; default 3).
// Usage: bench_solver_parallel [out.json]  -- optionally writes the rows
// as JSON for the CI artifact trail.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "game/matrix_game.h"
#include "game/solvers.h"
#include "la/matrix.h"
#include "runtime/executor.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using namespace pg;
using pg::bench::random_game;

void check_identical(const game::Equilibrium& serial,
                     const game::Equilibrium& parallel) {
  PG_ASSERT(serial.value == parallel.value,
            "parallel solver broke bit-identity (value)");
  PG_ASSERT(serial.row_strategy == parallel.row_strategy,
            "parallel solver broke bit-identity (row strategy)");
  PG_ASSERT(serial.col_strategy == parallel.col_strategy,
            "parallel solver broke bit-identity (col strategy)");
}

struct Row {
  std::string solver;
  std::size_t size = 0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  double speedup = 0.0;
};

template <typename SolveFn>
Row time_solver(const std::string& name, std::size_t size,
                const game::MatrixGame& g, runtime::Executor* exec,
                std::size_t reps, const SolveFn& solve) {
  game::Equilibrium serial_eq;
  double serial_best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    util::Stopwatch w;
    serial_eq = solve(g, nullptr);
    serial_best = std::min(serial_best, w.elapsed_ms());
  }
  game::Equilibrium parallel_eq;
  double parallel_best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    util::Stopwatch w;
    parallel_eq = solve(g, exec);
    parallel_best = std::min(parallel_best, w.elapsed_ms());
  }
  check_identical(serial_eq, parallel_eq);
  return {name, size, serial_best, parallel_best,
          serial_best / parallel_best};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pg;
  std::cout << "=== Parallel solver engine: speedup_vs_serial ===\n";
  const auto exec = bench::bench_executor();
  const std::size_t reps = bench::env_size("PG_BENCH_SOLVER_REPS", 3);
  std::cout << "\n";

  std::vector<Row> rows;

  // Simplex: per-pivot cost is O(m * cols), so the elimination chunks
  // carry real work from ~128x128 up.
  for (std::size_t size : {std::size_t{96}, std::size_t{192}, std::size_t{256},
                           std::size_t{384}}) {
    const auto g = random_game(size, size, 1000 + size);
    rows.push_back(time_solver(
        "simplex LP", size, g, exec.get(), reps,
        [](const game::MatrixGame& mg, runtime::Executor* e) {
          return game::solve_lp_equilibrium(mg, e);
        }));
  }

  // Fictitious play: per-iteration cost is O(m + n) (a strided column
  // gather dominates), so the fork-join only wins once the scans are
  // wide; the row set reaches into that regime.
  const game::IterativeConfig fp_cfg{.iterations = 3000};
  for (std::size_t size : {std::size_t{256}, std::size_t{512},
                           std::size_t{1024}, std::size_t{2048}}) {
    const auto g = random_game(size, size, 2000 + size);
    rows.push_back(time_solver(
        "fictitious play", size, g, exec.get(), reps,
        [&fp_cfg](const game::MatrixGame& mg, runtime::Executor* e) {
          return game::solve_fictitious_play(mg, fp_cfg, e);
        }));
  }

  util::TextTable t(
      {"solver", "matrix", "serial (ms)", "parallel (ms)", "speedup_vs_serial"});
  for (const Row& r : rows) {
    t.add_row({r.solver, std::to_string(r.size) + "x" + std::to_string(r.size),
               util::format_double(r.serial_ms, 2),
               util::format_double(r.parallel_ms, 2),
               util::format_double(r.speedup, 2)});
  }
  std::cout << t.str()
            << "\nall parallel equilibria bit-identical to serial\n";

  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "  {\"solver\": \"" << r.solver << "\", \"rows\": " << r.size
          << ", \"cols\": " << r.size << ", \"serial_ms\": " << r.serial_ms
          << ", \"parallel_ms\": " << r.parallel_ms
          << ", \"speedup_vs_serial\": " << r.speedup
          << ", \"threads\": " << exec->concurrency() << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "]\n";
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}
