// Reproduces Table 1: "Mixed strategy defense under optimal attack".
//
// Thin wrapper over the registered "table1" scenario (Algorithm 1 at
// n = 2 and 3, attacker-indifferent mixed strategies, empirical
// adversarial accuracy, and the mixed-beats-pure comparison claim).
// Equivalent to `pg_run --scenario table1`.
#include "scenario/engine.h"

int main() { return pg::scenario::run_legacy_bench("table1"); }
