// Reproduces Table 1: "Mixed strategy defense under optimal attack".
//
// Paper rows (UCI Spambase, n = number of radii in the mixed strategy):
//   n=2: radii {5.8%, 15.7%}           probs {51.2%, 48.8%}        acc 85.6%
//   n=3: radii {5.8%, 9.4%, 16.3%}     probs {33.3%, 33.3%, 33.4%} acc 86.1%
// plus the claim that the mixed accuracy strictly exceeds every pure
// defense's accuracy under the corresponding optimal attack.
//
// Shape targets on the synthetic substitute: Algorithm 1 produces a
// properly-mixed, attacker-indifferent strategy whose predicted loss beats
// every pure strategy; empirically its adversarial accuracy is at least
// competitive with the best pure defense and far above the undefended
// attack.
#include <iostream>

#include "bench_common.h"
#include "core/equilibrium.h"
#include "core/game_model.h"
#include "core/ne_properties.h"
#include "sim/curve_fit.h"
#include "sim/mixed_eval.h"
#include "sim/pure_sweep.h"
#include "util/stopwatch.h"
#include "util/table.h"

int main() {
  using namespace pg;
  std::cout << "=== Table 1: mixed strategy defense under optimal attack ===\n";
  const sim::ExperimentConfig cfg = bench::paper_config();
  util::Stopwatch watch;
  const sim::ExperimentContext ctx = sim::prepare_experiment(cfg);
  bench::print_context(ctx);
  const auto exec = bench::bench_executor();
  // The n=2 and n=3 evaluations share a payoff cache: support points
  // common to both strategies retrain once.
  runtime::PayoffCache cache;
  const runtime::PayoffEvaluator evaluator(*exec, &cache);

  // Inputs to Algorithm 1: E(p) and Gamma(p) approximated from the Fig-1
  // sweep, exactly as in the paper's section 5.
  const auto grid = sim::sweep_grid(0.40, 9);
  const auto sweep =
      sim::run_pure_sweep(ctx, grid, bench::sweep_reps(), exec.get());
  const auto curves = sim::fit_payoff_curves(sweep);
  const core::PoisoningGame game(curves, ctx.poison_budget);
  const auto pure = sim::best_pure_defense(sweep);

  for (std::size_t n : {2, 3}) {
    core::Algorithm1Config acfg;
    acfg.support_size = n;
    const auto sol = core::compute_optimal_defense(game, acfg, exec.get());
    const auto indiff = core::check_indifference(game, sol.strategy, 1e-3);

    sim::MixedEvalConfig ecfg;
    ecfg.draws = 3;
    const auto eval =
        sim::evaluate_mixed_defense(ctx, sol.strategy, ecfg, evaluator);

    std::cout << "--- n = " << n << " radii ---\n";
    util::TextTable t({"radius (removal %)", "probability"});
    for (std::size_t i = 0; i < sol.strategy.support_size(); ++i) {
      t.add_row({util::format_percent(sol.strategy.removal_fractions()[i]),
                 util::format_percent(sol.strategy.probabilities()[i])});
    }
    std::cout << t.str();
    std::cout << "predicted defender loss f(S):   "
              << util::format_double(sol.defender_loss, 4)
              << "  (converged=" << (sol.converged ? "yes" : "no")
              << ", iters=" << sol.iterations << ")\n";
    std::cout << "NE conditions: properly mixed="
              << (indiff.properly_mixed ? "yes" : "no")
              << ", indifference spread="
              << util::format_double(indiff.relative_spread, 6) << "\n";
    std::cout << "accuracy under optimal attack:  "
              << util::format_percent(eval.adversarial_accuracy, 2) << "\n";
    std::cout << "accuracy with no attack:        "
              << util::format_percent(eval.no_attack_accuracy, 2) << "\n\n";
  }
  std::cout << "payoff cache: " << cache.size() << " cells trained, "
            << evaluator.cache_hits() << " served from cache\n\n";

  // The paper's comparison claim.
  double best_pure_predicted = 1e300;
  double best_theta = 0.0;
  for (double theta = 0.0; theta <= 0.40; theta += 0.0025) {
    const double loss =
        static_cast<double>(ctx.poison_budget) * curves.damage(theta) +
        curves.cost(theta);
    if (loss < best_pure_predicted) {
      best_pure_predicted = loss;
      best_theta = theta;
    }
  }
  core::Algorithm1Config acfg3;
  acfg3.support_size = 3;
  const auto sol3 = core::compute_optimal_defense(game, acfg3, exec.get());
  std::cout << "--- mixed vs pure (the Table-1 claim) ---\n";
  std::cout << "best pure strategy:   theta=" << util::format_percent(best_theta)
            << "  predicted loss=" << util::format_double(best_pure_predicted, 4)
            << "  measured accuracy=" << util::format_percent(pure.best_accuracy, 2)
            << "\n";
  std::cout << "mixed strategy (n=3): " << sol3.strategy.describe()
            << "  predicted loss=" << util::format_double(sol3.defender_loss, 4)
            << "\n";
  std::cout << "predicted-loss ordering: mixed "
            << (sol3.defender_loss < best_pure_predicted ? "<" : ">=")
            << " best pure  "
            << (sol3.defender_loss < best_pure_predicted
                    ? "(mixed wins, as in the paper)"
                    : "(unexpected)")
            << "\n";
  std::cout << "\nelapsed: " << util::format_double(watch.elapsed_seconds(), 1)
            << "s\n";
  return 0;
}
