// Extension bench (the paper's future work, section 6): do the payoff
// curves E(p)/Gamma(p) -- and the mixed defense solved from them --
// generalize across datasets?
//
// Thin wrapper over the registered "transfer" scenario; equivalent to
// `pg_run --scenario transfer`.
#include "scenario/engine.h"

int main() { return pg::scenario::run_legacy_bench("transfer"); }
