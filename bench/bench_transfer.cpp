// Extension bench (the paper's future work, section 6): do the payoff
// curves E(p)/Gamma(p) -- and hence the mixed defense solved from them --
// generalize across datasets?
//
// Protocol: solve Algorithm 1 on a source corpus, transplant the strategy
// to target corpora with (a) a different seed and (b) weaker class
// separability, and compare with the natively-solved strategy on each
// target. A near-zero gap supports the paper's conjecture of a
// generalized E/Gamma.
#include <iostream>

#include "bench_common.h"
#include "sim/transfer.h"
#include "util/stopwatch.h"
#include "util/table.h"

int main() {
  using namespace pg;
  std::cout << "=== Curve-transfer extension: does E/Gamma generalize? ===\n";
  util::Stopwatch watch;

  sim::ExperimentConfig base = bench::paper_config();
  base.corpus.n_instances =
      std::min<std::size_t>(base.corpus.n_instances, 2000);
  base.svm.epochs = std::min<std::size_t>(base.svm.epochs, 150);
  const auto source = sim::prepare_experiment(base);
  std::cout << "source corpus: clean accuracy "
            << util::format_percent(source.clean_accuracy, 2) << ", N = "
            << source.poison_budget << "\n\n";

  struct Target {
    std::string name;
    sim::ExperimentConfig cfg;
  };
  std::vector<Target> targets;
  {
    Target t{"same generator, different seed", base};
    t.cfg.seed = base.seed + 1000;
    targets.push_back(t);
  }
  {
    Target t{"weaker class separation (0.8x)", base};
    t.cfg.seed = base.seed + 2000;
    t.cfg.corpus.class_separation = 0.8;
    targets.push_back(t);
  }
  {
    Target t{"smaller corpus (60%)", base};
    t.cfg.seed = base.seed + 3000;
    t.cfg.corpus.n_instances = base.corpus.n_instances * 3 / 5;
    targets.push_back(t);
  }

  sim::TransferConfig tcfg;
  tcfg.eval.draws = 2;
  tcfg.sweep_replications = bench::sweep_reps();
  const auto exec = bench::bench_executor();

  util::TextTable table({"target", "source strategy on target",
                         "native strategy on target", "transfer gap"});
  for (const auto& target : targets) {
    const auto ctx = sim::prepare_experiment(target.cfg);
    const auto result =
        sim::run_transfer_experiment(source, ctx, tcfg, exec.get());
    table.add_row({target.name,
                   util::format_percent(result.transferred_accuracy, 2),
                   util::format_percent(result.native_accuracy, 2),
                   util::format_percent(result.transfer_gap, 2)});
  }
  std::cout << table.str();
  std::cout << "\n(gap ~ 0 supports the paper's conjecture that a\n"
               "generalized E(p)/Gamma(p) exists across datasets)\n";
  std::cout << "\nelapsed: " << util::format_double(watch.elapsed_seconds(), 1)
            << "s\n";
  return 0;
}
