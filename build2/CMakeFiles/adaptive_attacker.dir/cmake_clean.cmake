file(REMOVE_RECURSE
  "CMakeFiles/adaptive_attacker.dir/examples/adaptive_attacker.cpp.o"
  "CMakeFiles/adaptive_attacker.dir/examples/adaptive_attacker.cpp.o.d"
  "adaptive_attacker"
  "adaptive_attacker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_attacker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
