# Empty dependencies file for adaptive_attacker.
# This may be replaced when dependencies are built.
