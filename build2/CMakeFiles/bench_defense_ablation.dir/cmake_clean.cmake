file(REMOVE_RECURSE
  "CMakeFiles/bench_defense_ablation.dir/bench/bench_defense_ablation.cpp.o"
  "CMakeFiles/bench_defense_ablation.dir/bench/bench_defense_ablation.cpp.o.d"
  "bench_defense_ablation"
  "bench_defense_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_defense_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
