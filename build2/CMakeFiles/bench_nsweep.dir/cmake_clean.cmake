file(REMOVE_RECURSE
  "CMakeFiles/bench_nsweep.dir/bench/bench_nsweep.cpp.o"
  "CMakeFiles/bench_nsweep.dir/bench/bench_nsweep.cpp.o.d"
  "bench_nsweep"
  "bench_nsweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
