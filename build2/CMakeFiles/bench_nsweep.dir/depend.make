# Empty dependencies file for bench_nsweep.
# This may be replaced when dependencies are built.
