file(REMOVE_RECURSE
  "CMakeFiles/bench_prop1.dir/bench/bench_prop1.cpp.o"
  "CMakeFiles/bench_prop1.dir/bench/bench_prop1.cpp.o.d"
  "bench_prop1"
  "bench_prop1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
