# Empty dependencies file for bench_prop1.
# This may be replaced when dependencies are built.
