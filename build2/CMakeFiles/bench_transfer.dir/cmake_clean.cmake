file(REMOVE_RECURSE
  "CMakeFiles/bench_transfer.dir/bench/bench_transfer.cpp.o"
  "CMakeFiles/bench_transfer.dir/bench/bench_transfer.cpp.o.d"
  "bench_transfer"
  "bench_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
