# Empty dependencies file for bench_transfer.
# This may be replaced when dependencies are built.
