file(REMOVE_RECURSE
  "CMakeFiles/ne_solver_demo.dir/examples/ne_solver_demo.cpp.o"
  "CMakeFiles/ne_solver_demo.dir/examples/ne_solver_demo.cpp.o.d"
  "ne_solver_demo"
  "ne_solver_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ne_solver_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
