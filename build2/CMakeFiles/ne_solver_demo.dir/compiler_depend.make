# Empty compiler generated dependencies file for ne_solver_demo.
# This may be replaced when dependencies are built.
