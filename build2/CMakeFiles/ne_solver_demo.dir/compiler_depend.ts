# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ne_solver_demo.
