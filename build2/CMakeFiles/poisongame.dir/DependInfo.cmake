
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attack.cpp" "CMakeFiles/poisongame.dir/src/attack/attack.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/attack/attack.cpp.o.d"
  "/root/repo/src/attack/boundary_attack.cpp" "CMakeFiles/poisongame.dir/src/attack/boundary_attack.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/attack/boundary_attack.cpp.o.d"
  "/root/repo/src/attack/gradient_attack.cpp" "CMakeFiles/poisongame.dir/src/attack/gradient_attack.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/attack/gradient_attack.cpp.o.d"
  "/root/repo/src/attack/label_flip.cpp" "CMakeFiles/poisongame.dir/src/attack/label_flip.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/attack/label_flip.cpp.o.d"
  "/root/repo/src/attack/mixed_attack.cpp" "CMakeFiles/poisongame.dir/src/attack/mixed_attack.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/attack/mixed_attack.cpp.o.d"
  "/root/repo/src/attack/noise_attack.cpp" "CMakeFiles/poisongame.dir/src/attack/noise_attack.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/attack/noise_attack.cpp.o.d"
  "/root/repo/src/attack/radius_map.cpp" "CMakeFiles/poisongame.dir/src/attack/radius_map.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/attack/radius_map.cpp.o.d"
  "/root/repo/src/core/attacker_equilibrium.cpp" "CMakeFiles/poisongame.dir/src/core/attacker_equilibrium.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/core/attacker_equilibrium.cpp.o.d"
  "/root/repo/src/core/equilibrium.cpp" "CMakeFiles/poisongame.dir/src/core/equilibrium.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/core/equilibrium.cpp.o.d"
  "/root/repo/src/core/game_model.cpp" "CMakeFiles/poisongame.dir/src/core/game_model.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/core/game_model.cpp.o.d"
  "/root/repo/src/core/ne_properties.cpp" "CMakeFiles/poisongame.dir/src/core/ne_properties.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/core/ne_properties.cpp.o.d"
  "/root/repo/src/core/payoff.cpp" "CMakeFiles/poisongame.dir/src/core/payoff.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/core/payoff.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "CMakeFiles/poisongame.dir/src/data/dataset.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/data/dataset.cpp.o.d"
  "/root/repo/src/data/loader.cpp" "CMakeFiles/poisongame.dir/src/data/loader.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/data/loader.cpp.o.d"
  "/root/repo/src/data/scaler.cpp" "CMakeFiles/poisongame.dir/src/data/scaler.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/data/scaler.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "CMakeFiles/poisongame.dir/src/data/synthetic.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/data/synthetic.cpp.o.d"
  "/root/repo/src/defense/centroid.cpp" "CMakeFiles/poisongame.dir/src/defense/centroid.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/defense/centroid.cpp.o.d"
  "/root/repo/src/defense/distance_filter.cpp" "CMakeFiles/poisongame.dir/src/defense/distance_filter.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/defense/distance_filter.cpp.o.d"
  "/root/repo/src/defense/filter.cpp" "CMakeFiles/poisongame.dir/src/defense/filter.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/defense/filter.cpp.o.d"
  "/root/repo/src/defense/knn_filter.cpp" "CMakeFiles/poisongame.dir/src/defense/knn_filter.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/defense/knn_filter.cpp.o.d"
  "/root/repo/src/defense/mixed_defense.cpp" "CMakeFiles/poisongame.dir/src/defense/mixed_defense.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/defense/mixed_defense.cpp.o.d"
  "/root/repo/src/defense/pca_filter.cpp" "CMakeFiles/poisongame.dir/src/defense/pca_filter.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/defense/pca_filter.cpp.o.d"
  "/root/repo/src/defense/pipeline.cpp" "CMakeFiles/poisongame.dir/src/defense/pipeline.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/defense/pipeline.cpp.o.d"
  "/root/repo/src/defense/roni.cpp" "CMakeFiles/poisongame.dir/src/defense/roni.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/defense/roni.cpp.o.d"
  "/root/repo/src/game/best_response.cpp" "CMakeFiles/poisongame.dir/src/game/best_response.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/game/best_response.cpp.o.d"
  "/root/repo/src/game/lp.cpp" "CMakeFiles/poisongame.dir/src/game/lp.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/game/lp.cpp.o.d"
  "/root/repo/src/game/matrix_game.cpp" "CMakeFiles/poisongame.dir/src/game/matrix_game.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/game/matrix_game.cpp.o.d"
  "/root/repo/src/game/pure_ne.cpp" "CMakeFiles/poisongame.dir/src/game/pure_ne.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/game/pure_ne.cpp.o.d"
  "/root/repo/src/game/solvers.cpp" "CMakeFiles/poisongame.dir/src/game/solvers.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/game/solvers.cpp.o.d"
  "/root/repo/src/la/eigen.cpp" "CMakeFiles/poisongame.dir/src/la/eigen.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/la/eigen.cpp.o.d"
  "/root/repo/src/la/matrix.cpp" "CMakeFiles/poisongame.dir/src/la/matrix.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/la/matrix.cpp.o.d"
  "/root/repo/src/la/vector_ops.cpp" "CMakeFiles/poisongame.dir/src/la/vector_ops.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/la/vector_ops.cpp.o.d"
  "/root/repo/src/ml/linear_model.cpp" "CMakeFiles/poisongame.dir/src/ml/linear_model.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/ml/linear_model.cpp.o.d"
  "/root/repo/src/ml/logreg.cpp" "CMakeFiles/poisongame.dir/src/ml/logreg.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/ml/logreg.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "CMakeFiles/poisongame.dir/src/ml/metrics.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/ml/metrics.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "CMakeFiles/poisongame.dir/src/ml/svm.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/ml/svm.cpp.o.d"
  "/root/repo/src/ml/validation.cpp" "CMakeFiles/poisongame.dir/src/ml/validation.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/ml/validation.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "CMakeFiles/poisongame.dir/src/runtime/executor.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/runtime/executor.cpp.o.d"
  "/root/repo/src/runtime/payoff_evaluator.cpp" "CMakeFiles/poisongame.dir/src/runtime/payoff_evaluator.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/runtime/payoff_evaluator.cpp.o.d"
  "/root/repo/src/runtime/rng_stream.cpp" "CMakeFiles/poisongame.dir/src/runtime/rng_stream.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/runtime/rng_stream.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "CMakeFiles/poisongame.dir/src/runtime/thread_pool.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/sim/curve_fit.cpp" "CMakeFiles/poisongame.dir/src/sim/curve_fit.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/sim/curve_fit.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "CMakeFiles/poisongame.dir/src/sim/experiment.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/mixed_eval.cpp" "CMakeFiles/poisongame.dir/src/sim/mixed_eval.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/sim/mixed_eval.cpp.o.d"
  "/root/repo/src/sim/pure_sweep.cpp" "CMakeFiles/poisongame.dir/src/sim/pure_sweep.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/sim/pure_sweep.cpp.o.d"
  "/root/repo/src/sim/support_sweep.cpp" "CMakeFiles/poisongame.dir/src/sim/support_sweep.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/sim/support_sweep.cpp.o.d"
  "/root/repo/src/sim/transfer.cpp" "CMakeFiles/poisongame.dir/src/sim/transfer.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/sim/transfer.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/poisongame.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/interp.cpp" "CMakeFiles/poisongame.dir/src/util/interp.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/util/interp.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/poisongame.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/poisongame.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/poisongame.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/poisongame.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/poisongame.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
