file(REMOVE_RECURSE
  "libpoisongame.a"
)
