# Empty dependencies file for poisongame.
# This may be replaced when dependencies are built.
