file(REMOVE_RECURSE
  "CMakeFiles/spam_filter_defense.dir/examples/spam_filter_defense.cpp.o"
  "CMakeFiles/spam_filter_defense.dir/examples/spam_filter_defense.cpp.o.d"
  "spam_filter_defense"
  "spam_filter_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_filter_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
