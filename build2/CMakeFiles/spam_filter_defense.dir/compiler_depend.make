# Empty compiler generated dependencies file for spam_filter_defense.
# This may be replaced when dependencies are built.
