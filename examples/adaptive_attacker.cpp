// Why pure strategies fail: alternating best responses never settle.
//
//   $ ./adaptive_attacker
//
// Proposition 1 proves the poisoning game has no pure equilibrium; the
// operational consequence is that any fixed filter invites a best-response
// attack, whose own best-response defense invites a new attack, forever.
// This demo traces that cycle on analytic payoff curves, then shows that
// Algorithm 1's mixed strategy ends the arms race: the attacker's best
// deviation gains (almost) nothing.
#include <iostream>

#include "core/equilibrium.h"
#include "core/game_model.h"
#include "core/ne_properties.h"
#include "util/table.h"

int main() {
  using namespace pg;

  const auto curves = core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4);
  const core::PoisoningGame game(curves, 100);

  std::cout << "=== alternating best responses (pure strategies) ===\n";
  const auto trace = core::best_response_dynamics(game, 0.05, 12);
  util::TextTable t({"round", "defender filter", "attacker placement",
                     "attacker payoff"});
  for (std::size_t i = 0; i < trace.size(); ++i) {
    t.add_row({std::to_string(i + 1),
               util::format_percent(trace[i].defender_theta),
               util::format_percent(trace[i].attacker_placement),
               util::format_double(trace[i].attacker_payoff, 4)});
  }
  std::cout << t.str();
  std::cout << "note: the defender chases the attacker inward, the attacker\n"
               "hops back out -- no fixed point (Proposition 1).\n\n";

  std::cout << "=== Algorithm 1: mixed equilibrium defense ===\n";
  for (std::size_t n : {2, 3, 4}) {
    core::Algorithm1Config cfg;
    cfg.support_size = n;
    const auto sol = core::compute_optimal_defense(game, cfg);
    const auto exploit = core::attacker_exploitability(game, sol.strategy);
    std::cout << "n=" << n << "  " << sol.strategy.describe()
              << "  loss=" << util::format_double(sol.defender_loss, 5)
              << "  attacker deviation gain="
              << util::format_double(exploit.gain, 6) << "\n";
  }
  std::cout << "\nthe attacker's best deviation gains ~0 against the mixed\n"
               "strategy: the arms race is over (Proposition 2 / sec. 4.2).\n";
  return 0;
}
