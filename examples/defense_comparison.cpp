// Compare the sanitization defense families under different attacks.
//
//   $ ./defense_comparison [seed]
//
// Runs the distance filter (the paper's defense), the kNN label-
// consistency filter, the PCA residual filter and RONI against the
// boundary attack (the paper's optimal attack), a label-flip attack and a
// noise attack, reporting defended accuracy and poison detection
// precision/recall for each pair.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "attack/boundary_attack.h"
#include "attack/label_flip.h"
#include "attack/noise_attack.h"
#include "defense/distance_filter.h"
#include "defense/knn_filter.h"
#include "defense/pca_filter.h"
#include "defense/pipeline.h"
#include "defense/roni.h"
#include "sim/experiment.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pg;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  sim::ExperimentConfig cfg = sim::fast_config(seed);
  cfg.corpus.n_instances = 1200;
  cfg.svm.epochs = 100;
  const sim::ExperimentContext ctx = sim::prepare_experiment(cfg);
  std::cout << "clean accuracy: " << util::format_percent(ctx.clean_accuracy)
            << ", poison budget N=" << ctx.poison_budget << "\n\n";

  std::vector<std::unique_ptr<attack::PoisoningAttack>> attacks;
  attacks.push_back(std::make_unique<attack::BoundaryAttack>(
      attack::BoundaryAttackConfig{.placement_fraction = 0.10}));
  attacks.push_back(std::make_unique<attack::LabelFlipAttack>(
      attack::LabelFlipConfig{attack::FlipSelection::kNearCentroid}));
  attacks.push_back(std::make_unique<attack::NoiseAttack>());

  std::vector<std::unique_ptr<defense::Filter>> filters;
  filters.push_back(std::make_unique<defense::DistanceFilter>(
      defense::DistanceFilterConfig{.removal_fraction = 0.15}));
  filters.push_back(std::make_unique<defense::KnnFilter>(
      defense::KnnFilterConfig{.k = 10, .agreement_threshold = 0.5}));
  filters.push_back(std::make_unique<defense::PcaFilter>(
      defense::PcaFilterConfig{.components = 5, .removal_fraction = 0.15}));
  filters.push_back(
      std::make_unique<defense::RoniFilter>(defense::RoniConfig{}));

  const defense::Pipeline pipeline({cfg.svm});
  util::Rng rng(seed);

  for (const auto& atk : attacks) {
    std::cout << "--- attack: " << atk->name() << " ---\n";
    util::TextTable t({"defense", "accuracy", "det. precision", "det. recall"});
    {
      util::Rng r = rng.fork(1);
      const auto res = pipeline.run(ctx.train, ctx.test, atk.get(),
                                    ctx.poison_budget, nullptr, r);
      t.add_row({"(none)", util::format_percent(res.test_accuracy), "-", "-"});
    }
    for (const auto& f : filters) {
      util::Rng r = rng.fork(2 + std::hash<std::string>{}(f->name()) % 1000);
      const auto res = pipeline.run(ctx.train, ctx.test, atk.get(),
                                    ctx.poison_budget, f.get(), r);
      t.add_row({f->name(), util::format_percent(res.test_accuracy),
                 util::format_percent(res.detection.precision),
                 util::format_percent(res.detection.recall)});
    }
    std::cout << t.str() << "\n";
  }
  std::cout << "takeaway: no single pure filter dominates across attacks --\n"
               "the game-theoretic view (mixing filter strengths) is the\n"
               "principled response to an adaptive adversary.\n";
  return 0;
}
