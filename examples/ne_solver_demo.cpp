// Tour of the zero-sum game solver stack on classic games and on the
// discretized poisoning game.
//
//   $ ./ne_solver_demo
//
// Demonstrates: exact LP equilibria, fictitious play and multiplicative
// weights convergence, saddle-point detection, and the non-existence of a
// pure equilibrium in the poisoning game (Proposition 1).
#include <iostream>

#include "core/game_model.h"
#include "core/payoff.h"
#include "game/best_response.h"
#include "game/pure_ne.h"
#include "game/solvers.h"
#include "util/table.h"

namespace {

void report(const std::string& name, const pg::game::MatrixGame& g) {
  using namespace pg;
  const auto lp = game::solve_lp_equilibrium(g);
  const auto fp = game::solve_fictitious_play(g, {.iterations = 20000});
  const auto mw = game::solve_multiplicative_weights(g, {.iterations = 20000});
  const auto saddles = game::find_pure_equilibria(g);

  std::cout << "== " << name << " ==\n";
  std::cout << "value (LP exact) = " << util::format_double(lp.value, 6)
            << ", pure saddle points: " << saddles.size() << "\n";
  util::TextTable t({"solver", "value", "exploitability"});
  t.add_row({"simplex LP", util::format_double(lp.value, 6),
             util::format_double(
                 game::exploitability(g, lp.row_strategy, lp.col_strategy), 6)});
  t.add_row({"fictitious play", util::format_double(fp.value, 6),
             util::format_double(
                 game::exploitability(g, fp.row_strategy, fp.col_strategy), 6)});
  t.add_row({"mult. weights", util::format_double(mw.value, 6),
             util::format_double(
                 game::exploitability(g, mw.row_strategy, mw.col_strategy), 6)});
  std::cout << t.str();
  std::cout << "LP row strategy: ";
  for (double p : lp.row_strategy) std::cout << util::format_double(p, 3) << " ";
  std::cout << "\n\n";
}

}  // namespace

int main() {
  using namespace pg;

  // Rock-paper-scissors: the canonical fully-mixed equilibrium (1/3 each).
  la::Matrix rps(3, 3);
  const double r[3][3] = {{0, -1, 1}, {1, 0, -1}, {-1, 1, 0}};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) rps(i, j) = r[i][j];
  report("rock-paper-scissors", game::MatrixGame(rps));

  // Matching pennies: value 0, (1/2, 1/2) for both.
  la::Matrix pennies(2, 2);
  pennies(0, 0) = 1;
  pennies(0, 1) = -1;
  pennies(1, 0) = -1;
  pennies(1, 1) = 1;
  report("matching pennies", game::MatrixGame(pennies));

  // A game WITH a saddle point, to show detection works both ways.
  la::Matrix saddle(2, 2);
  saddle(0, 0) = 2;
  saddle(0, 1) = 3;
  saddle(1, 0) = 1;
  saddle(1, 1) = 4;
  report("dominant-strategy game (has pure NE)", game::MatrixGame(saddle));

  // The poisoning game, discretized from analytic payoff curves:
  // E(p) = 0.15 (1-p)^6 per point, Gamma(p) = 0.08 p^1.5, N = 100.
  const auto curves = core::PayoffCurves::analytic(0.0015, 6.0, 0.08, 1.5);
  const core::PoisoningGame pgame(curves, 100);
  const auto mg = pgame.discretize(41, 41);
  report("discretized poisoning game (Proposition 1: no pure NE)",
         game::MatrixGame(mg.payoff()));
  std::cout << "poisoning game duality gap (minimax - maximin) = "
            << util::format_double(game::pure_strategy_gap(mg), 6)
            << "  (> 0 confirms no pure equilibrium)\n";
  return 0;
}
