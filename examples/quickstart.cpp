// Quickstart: the full poison -> filter -> train -> evaluate loop in ~60
// lines, on a reduced corpus so it runs in seconds.
//
//   $ ./quickstart [seed]
//
// Shows (1) the clean baseline, (2) the damage of an optimal boundary
// attack with no defense, (3) a pure distance filter recovering part of
// the loss, and (4) a hand-written mixed defense doing better against an
// attacker who knows the strategy.
#include <cstdlib>
#include <iostream>

#include "attack/boundary_attack.h"
#include "defense/distance_filter.h"
#include "defense/mixed_defense.h"
#include "defense/pipeline.h"
#include "sim/experiment.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  using namespace pg;

  // 1. A Spambase-like corpus, 70/30 split, standardized, 20% poison budget.
  sim::ExperimentConfig cfg = sim::fast_config(seed);
  cfg.corpus.n_instances = 1500;
  cfg.svm.epochs = 120;
  const sim::ExperimentContext ctx = sim::prepare_experiment(cfg);
  std::cout << "corpus: " << ctx.corpus_source << ", train "
            << ctx.train.size() << " / test " << ctx.test.size()
            << ", poison budget N = " << ctx.poison_budget << "\n\n";

  const defense::Pipeline pipeline({cfg.svm});
  util::Rng rng(seed);

  // 2. Clean baseline (no attack, no filter).
  util::Rng r0 = rng.fork(0);
  const double clean =
      pipeline.run(ctx.train, ctx.test, nullptr, 0, nullptr, r0).test_accuracy;

  // 3. Optimal boundary attack, undefended.
  attack::BoundaryAttackConfig acfg;
  acfg.placement_fraction = 0.0;  // at the outer boundary: maximal damage
  const attack::BoundaryAttack attack(acfg);
  util::Rng r1 = rng.fork(1);
  const double attacked =
      pipeline.run(ctx.train, ctx.test, &attack, ctx.poison_budget, nullptr, r1)
          .test_accuracy;

  // 4. Pure distance filter at 10% removal; the attacker knows it and
  //    places the poison just inside (placement = 0.10).
  defense::DistanceFilterConfig fcfg;
  fcfg.removal_fraction = 0.10;
  const defense::DistanceFilter pure_filter(fcfg);
  attack::BoundaryAttackConfig inside_cfg;
  inside_cfg.placement_fraction = 0.10;
  const attack::BoundaryAttack inside_attack(inside_cfg);
  util::Rng r2 = rng.fork(2);
  const double pure_defended =
      pipeline
          .run(ctx.train, ctx.test, &inside_attack, ctx.poison_budget,
               &pure_filter, r2)
          .test_accuracy;

  // 5. A mixed defense over {8%, 16%}: the attacker can only target one
  //    boundary; the other draw filters him out.
  const defense::MixedDefenseStrategy mix({0.08, 0.16}, {0.5, 0.5});
  const defense::MixedDefenseFilter mixed_filter(mix, {});
  attack::BoundaryAttackConfig mix_attack_cfg;
  mix_attack_cfg.placement_fraction = 0.08;  // best response: weakest support
  const attack::BoundaryAttack mix_attack(mix_attack_cfg);
  double mixed_defended = 0.0;
  constexpr int kDraws = 10;
  for (int d = 0; d < kDraws; ++d) {
    util::Rng rd = rng.fork(100 + d);
    mixed_defended += pipeline
                          .run(ctx.train, ctx.test, &mix_attack,
                               ctx.poison_budget, &mixed_filter, rd)
                          .test_accuracy;
  }
  mixed_defended /= kDraws;

  util::TextTable table({"scenario", "test accuracy"});
  table.add_row({"clean (no attack, no filter)", util::format_percent(clean)});
  table.add_row({"optimal attack, no defense", util::format_percent(attacked)});
  table.add_row({"optimal attack vs pure filter (10%)",
                 util::format_percent(pure_defended)});
  table.add_row({"optimal attack vs mixed filter {8%,16%}",
                 util::format_percent(mixed_defended)});
  std::cout << table.str();
  return 0;
}
