// End-to-end reproduction of the paper's experimental pipeline on one
// (reduced) corpus: sweep pure strategies, fit E/Gamma, run Algorithm 1,
// and evaluate the resulting mixed defense against the optimal attack.
//
//   $ ./spam_filter_defense [seed] [n_instances]
//
// This is the "spam filter operator" scenario the paper's introduction
// motivates: an inbox provider whose training pipeline ingests user-
// reported mail that an adversary can partially control.
#include <cstdlib>
#include <iostream>

#include "core/equilibrium.h"
#include "core/game_model.h"
#include "core/ne_properties.h"
#include "sim/curve_fit.h"
#include "sim/mixed_eval.h"
#include "sim/pure_sweep.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pg;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const std::size_t n_instances =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1500;

  sim::ExperimentConfig cfg = sim::fast_config(seed);
  cfg.corpus.n_instances = n_instances;
  cfg.svm.epochs = 120;
  const sim::ExperimentContext ctx = sim::prepare_experiment(cfg);
  std::cout << "corpus=" << ctx.corpus_source << " train=" << ctx.train.size()
            << " test=" << ctx.test.size() << " N=" << ctx.poison_budget
            << " clean accuracy=" << util::format_percent(ctx.clean_accuracy)
            << "\n\n";

  // 1. Pure-strategy sweep (Fig. 1 of the paper).
  std::cout << "[1/3] sweeping pure filter strengths...\n";
  const auto grid = sim::sweep_grid(0.40, 9);
  const auto sweep = sim::run_pure_sweep(ctx, grid, 2);
  util::TextTable fig1({"removed", "acc (no attack)", "acc (attacked)"});
  for (const auto& pt : sweep.points) {
    fig1.add_row({util::format_percent(pt.removal_fraction),
                  util::format_percent(pt.accuracy_no_attack),
                  util::format_percent(pt.accuracy_attacked)});
  }
  std::cout << fig1.str() << "\n";

  const auto pure_best = sim::best_pure_defense(sweep);
  std::cout << "best pure defense: remove "
            << util::format_percent(pure_best.best_fraction) << " -> "
            << util::format_percent(pure_best.best_accuracy)
            << " under optimal attack\n\n";

  // 2. Fit E(p)/Gamma(p) and solve for the mixed equilibrium defense.
  std::cout << "[2/3] fitting payoff curves, running Algorithm 1 (n=3)...\n";
  const core::PayoffCurves curves = sim::fit_payoff_curves(sweep);
  const core::PoisoningGame game(curves, ctx.poison_budget);
  core::Algorithm1Config acfg;
  acfg.support_size = 3;
  const core::DefenseSolution sol = core::compute_optimal_defense(game, acfg);
  std::cout << "mixed strategy: " << sol.strategy.describe()
            << "  (predicted defender loss "
            << util::format_percent(sol.defender_loss) << ")\n";

  const auto indiff = core::check_indifference(game, sol.strategy, 1e-3);
  std::cout << "NE conditions: properly mixed="
            << (indiff.properly_mixed ? "yes" : "no")
            << ", attacker-indifferent spread="
            << util::format_double(indiff.relative_spread, 6) << "\n\n";

  // 3. Evaluate the mixed defense against the optimal attacker.
  std::cout << "[3/3] evaluating mixed defense on the testbed...\n";
  sim::MixedEvalConfig ecfg;
  ecfg.draws = 3;
  const auto eval = sim::evaluate_mixed_defense(ctx, sol.strategy, ecfg);
  util::TextTable t1({"attacker placement", "expected accuracy"});
  for (std::size_t i = 0; i < eval.attacker_placements.size(); ++i) {
    t1.add_row({util::format_percent(eval.attacker_placements[i]),
                util::format_percent(eval.accuracy_by_placement[i])});
  }
  std::cout << t1.str() << "\n";
  std::cout << "mixed defense adversarial accuracy: "
            << util::format_percent(eval.adversarial_accuracy) << "\n";
  std::cout << "best pure defense accuracy:         "
            << util::format_percent(pure_best.best_accuracy) << "\n";
  std::cout << (eval.adversarial_accuracy > pure_best.best_accuracy
                    ? "=> mixed strategy wins (paper's Table 1 claim)\n"
                    : "=> mixed strategy did not win on this run/seed\n");
  return 0;
}
