#include "attack/attack.h"

#include <cmath>

#include "util/error.h"

namespace pg::attack {

std::size_t poison_budget(std::size_t clean_size, double fraction) {
  PG_CHECK(fraction >= 0.0 && fraction <= 1.0,
           "poison fraction must be in [0, 1]");
  return static_cast<std::size_t>(
      std::floor(fraction * static_cast<double>(clean_size)));
}

}  // namespace pg::attack
