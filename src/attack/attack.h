// Poisoning attack interface.
//
// An attack observes the clean training set (the paper's threat model lets
// the attacker hold an auxiliary dataset with the same distribution, which
// for reproduction purposes is the training set itself) and produces a
// dataset of malicious points to be concatenated into the training data.
#pragma once

#include <cstddef>
#include <string>

#include "data/dataset.h"
#include "util/rng.h"

namespace pg::attack {

class PoisoningAttack {
 public:
  virtual ~PoisoningAttack() = default;

  /// Produce `n_points` poison instances. Implementations must not mutate
  /// the clean data and must be deterministic in (clean, n_points, rng).
  [[nodiscard]] virtual data::Dataset generate(const data::Dataset& clean,
                                               std::size_t n_points,
                                               util::Rng& rng) const = 0;

  /// Human-readable name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Poison budget as a fraction of the clean training set size, e.g. the
/// paper's 20%. Returns floor(fraction * n); fraction in [0, 1].
[[nodiscard]] std::size_t poison_budget(std::size_t clean_size,
                                        double fraction);

}  // namespace pg::attack
