#include "attack/boundary_attack.h"

#include <algorithm>
#include <cmath>

#include "data/scaler.h"
#include "util/error.h"

namespace pg::attack {

BoundaryAttack::BoundaryAttack(BoundaryAttackConfig config) : config_(config) {
  PG_CHECK(config_.placement_fraction >= 0.0 &&
               config_.placement_fraction <= 1.0,
           "placement_fraction must be in [0, 1]");
  PG_CHECK(config_.safety_margin >= 0.0 && config_.safety_margin < 1.0,
           "safety_margin must be in [0, 1)");
  PG_CHECK(config_.direction_noise >= 0.0, "direction_noise must be >= 0");
  for (double d : config_.depth_offsets) {
    PG_CHECK(d >= 0.0, "depth offsets must be >= 0");
  }
}

std::string BoundaryAttack::name() const {
  return "boundary(p=" + std::to_string(config_.placement_fraction) + ")";
}

namespace {

/// Place `n_points` flipped-direction points at the given effective clean
/// removal fraction, alternating classes.
data::Dataset place_points(const ClassRadiusMap& map, std::size_t n_points,
                           double effective_fraction, double safety_margin,
                           double direction_noise, util::Rng& rng) {
  const la::Vector c_pos = map.geometry(1).centroid;
  const la::Vector c_neg = map.geometry(-1).centroid;
  const la::Vector axis_pos_to_neg = la::subtract(c_neg, c_pos);
  PG_CHECK(la::norm(axis_pos_to_neg) > 0.0,
           "BoundaryAttack: class centroids coincide");

  data::Dataset poison;
  for (std::size_t k = 0; k < n_points; ++k) {
    // Alternate the poisoned class so both decision-boundary sides are
    // attacked symmetrically, as in the paper's experiment.
    const int label = (k % 2 == 0) ? 1 : -1;
    const la::Vector& own = (label == 1) ? c_pos : c_neg;
    la::Vector dir = (label == 1) ? axis_pos_to_neg
                                  : la::scaled(axis_pos_to_neg, -1.0);
    dir = la::normalized(dir);
    if (direction_noise > 0.0) {
      la::Vector noise(dir.size());
      for (double& v : noise) v = rng.normal();
      const double nn = la::norm(noise);
      if (nn > 0.0) {
        la::axpy(direction_noise / nn, noise, dir);
        dir = la::normalized(dir);
      }
    }
    const double radius = map.radius_for_removal(label, effective_fraction) *
                          (1.0 - safety_margin);
    la::Vector x = own;
    la::axpy(radius, dir, x);
    poison.append(x, label);
  }
  return poison;
}

/// Victim accuracy on the attacker's validation proxy (the clean data
/// itself) after training on the poisoned set -- the attacker's objective
/// O_a, lower is better for him.
double probe_damage(const data::Dataset& clean, const data::Dataset& poison,
                    const ml::SvmConfig& svm, util::Rng& rng) {
  const data::Dataset train = data::concatenate(clean, poison);
  data::StandardScaler scaler;
  scaler.fit(train);
  const ml::SvmTrainer trainer(svm);
  const ml::LinearModel model = trainer.train(scaler.transform(train), rng);
  return model.accuracy(scaler.transform(clean));
}

}  // namespace

data::Dataset BoundaryAttack::generate(const data::Dataset& clean,
                                       std::size_t n_points,
                                       util::Rng& rng) const {
  PG_CHECK(!clean.empty(), "BoundaryAttack: empty clean dataset");
  if (n_points == 0) return data::Dataset{};
  const ClassRadiusMap map(clean);

  // Displacement correction: poison raises each class size by phi, pulling
  // the defender's removal quantile inward by the same factor. The result
  // is capped at max_effective_fraction (see the config comment).
  auto effective = [&](double fraction) {
    double f = fraction;
    if (config_.account_for_displacement) {
      const double phi = 0.5 * static_cast<double>(n_points) /
                         static_cast<double>(std::min(clean.count_label(1),
                                                      clean.count_label(-1)));
      f = fraction * (1.0 + phi);
    }
    return std::min(f, config_.max_effective_fraction);
  };

  if (config_.depth_offsets.empty()) {
    return place_points(map, n_points, effective(config_.placement_fraction),
                        config_.safety_margin, config_.direction_noise, rng);
  }

  // Depth search: all candidates survive (deeper than the filter); keep
  // the one whose probe training hurts the victim most.
  double best_accuracy = 2.0;
  data::Dataset best_poison;
  std::size_t salt = 0;
  for (double offset : config_.depth_offsets) {
    const double fraction =
        std::min(1.0, config_.placement_fraction + offset);
    util::Rng place_rng = rng.fork(1000 + salt);
    data::Dataset candidate =
        place_points(map, n_points, effective(fraction),
                     config_.safety_margin, config_.direction_noise,
                     place_rng);
    util::Rng probe_rng = rng.fork(2000 + salt);
    const double acc =
        probe_damage(clean, candidate, config_.probe_svm, probe_rng);
    if (acc < best_accuracy) {
      best_accuracy = acc;
      best_poison = std::move(candidate);
    }
    ++salt;
    if (fraction >= 1.0) break;
  }
  return best_poison;
}

}  // namespace pg::attack
