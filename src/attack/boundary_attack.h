// The paper's "optimal attack": flipped-label points placed at a chosen
// distance percentile from their (labeled) class centroid.
//
// A poison point labeled y is positioned inside class y's filter sphere --
// at the radius corresponding to `placement_fraction` -- but *directed*
// toward the opposite class centroid, so it drags the decision boundary as
// far as a point at that radius can. Placing the points at the boundary of
// the defender's filter sphere (placement_fraction == the filter's removal
// fraction, minus a safety margin) is exactly the optimal pure strategy the
// paper analyzes in section 3.1.
#pragma once

#include <string>
#include <vector>

#include "attack/attack.h"
#include "attack/radius_map.h"
#include "ml/svm.h"

namespace pg::attack {

struct BoundaryAttackConfig {
  /// Place points at the radius whose clean removal-fraction equals this
  /// value, i.e. a filter strictly weaker than `placement_fraction` keeps
  /// them. 0 = at the farthest clean point ("B"), 0.2 = at the radius that
  /// a 20%-removal filter would use. In [0, 1].
  double placement_fraction = 0.0;
  /// Shrink the placement radius by this relative margin so the points sit
  /// strictly inside the sphere (survive ties). In [0, 1).
  double safety_margin = 1e-3;
  /// Angular jitter: the placement direction is the inter-centroid axis
  /// plus Gaussian noise of this relative magnitude (0 = exactly on-axis).
  double direction_noise = 0.25;
  /// The defender's filter quantile is computed on the POISONED data, so
  /// injecting a phi-fraction of extra points shifts the cutoff inward: a
  /// filter removing fraction p of the poisoned class reaches down to the
  /// clean quantile 1 - p*(1+phi). The paper's full-knowledge attacker
  /// accounts for this and places at that deeper radius; disable only for
  /// geometric unit tests that check raw clean-quantile placement.
  bool account_for_displacement = true;
  /// The paper's E(p) is "the MAXIMUM effect of a poisoning point placed
  /// in that percentile": the optimal attacker facing filter p may place
  /// anywhere at or deeper than p. Raw damage is not monotone in radius
  /// on realistic data (extreme-tail points are partially self-defeating
  /// for a margin learner), so the attacker probes placement_fraction +
  /// each depth offset with a cheap victim training and keeps the most
  /// damaging depth. Empty = no search (place exactly at the boundary).
  std::vector<double> depth_offsets{0.0, 0.05, 0.10, 0.15};
  /// Victim-probe trainer for the depth search (cheap on purpose).
  ml::SvmConfig probe_svm{.epochs = 25, .lambda = 1e-4, .average = true};
  /// Hard cap on the effective (displacement-corrected) placement depth.
  /// Placements deeper than this sit inside the class bulk and act as
  /// label-flip attacks -- a different threat model that the distance-
  /// filter game does not cover (see DESIGN.md section 4); the paper's
  /// radius-constrained attacker stays outside that regime.
  double max_effective_fraction = 0.5;
};

class BoundaryAttack final : public PoisoningAttack {
 public:
  explicit BoundaryAttack(BoundaryAttackConfig config);

  [[nodiscard]] data::Dataset generate(const data::Dataset& clean,
                                       std::size_t n_points,
                                       util::Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const BoundaryAttackConfig& config() const noexcept {
    return config_;
  }

 private:
  BoundaryAttackConfig config_;
};

}  // namespace pg::attack
