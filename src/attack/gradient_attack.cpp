#include "attack/gradient_attack.h"

#include <cmath>

#include "attack/boundary_attack.h"
#include "attack/radius_map.h"
#include "la/vector_ops.h"
#include "util/error.h"

namespace pg::attack {

GradientAttack::GradientAttack(GradientAttackConfig config)
    : config_(config) {
  PG_CHECK(config_.placement_fraction >= 0.0 &&
               config_.placement_fraction <= 1.0,
           "placement_fraction must be in [0, 1]");
  PG_CHECK(config_.outer_iters >= 1, "outer_iters must be >= 1");
  PG_CHECK(config_.step_scale > 0.0, "step_scale must be > 0");
}

std::string GradientAttack::name() const {
  return "gradient(p=" + std::to_string(config_.placement_fraction) + ")";
}

data::Dataset GradientAttack::generate(const data::Dataset& clean,
                                       std::size_t n_points,
                                       util::Rng& rng) const {
  PG_CHECK(!clean.empty(), "GradientAttack: empty clean dataset");

  // Warm start from the analytic boundary placement (no depth search --
  // this class does its own refinement).
  BoundaryAttackConfig seed_cfg;
  seed_cfg.placement_fraction = config_.placement_fraction;
  seed_cfg.safety_margin = config_.safety_margin;
  seed_cfg.depth_offsets.clear();
  data::Dataset poison =
      BoundaryAttack(seed_cfg).generate(clean, n_points, rng);
  if (poison.empty()) return poison;

  const ClassRadiusMap map(clean);
  const ml::SvmTrainer trainer(config_.svm);

  for (std::size_t it = 0; it < config_.outer_iters; ++it) {
    const data::Dataset poisoned = data::concatenate(clean, poison);
    util::Rng train_rng = rng.fork(1000 + it);
    const ml::LinearModel model = trainer.train(poisoned, train_rng);
    const double wn = la::norm(model.weights());
    if (wn == 0.0) break;

    data::Dataset next;
    for (std::size_t k = 0; k < poison.size(); ++k) {
      const int label = poison.label(k);
      la::Vector x = poison.instance(k);
      const la::Vector& centroid = map.geometry(label).centroid;
      const double radius =
          map.radius_for_removal(label, config_.placement_fraction) *
          (1.0 - config_.safety_margin);
      // Ascend the victim's hinge loss: a point with label y pulls the
      // boundary hardest when pushed along -y * w.
      la::Vector grad = la::scaled(model.weights(),
                                   -static_cast<double>(label) / wn);
      la::axpy(config_.step_scale * radius, grad, x);
      // Project back onto the feasibility sphere around the class centroid.
      la::Vector offset = la::subtract(x, centroid);
      const double off_norm = la::norm(offset);
      if (off_norm > radius && off_norm > 0.0) {
        x = centroid;
        la::axpy(radius / off_norm, offset, x);
      }
      next.append(x, label);
    }
    poison = std::move(next);
  }
  return poison;
}

}  // namespace pg::attack
