// Gradient-refined poisoning attack (bilevel-lite).
//
// The optimal attacks of Munoz-Gonzalez et al. solve a bilevel program with
// back-gradient optimization. Section 3.1 of the reproduced paper shows the
// solution concentrates near the boundary of the filter hypersphere, which
// is what BoundaryAttack exploits analytically. This class implements a
// light alternating scheme that *verifies* that reduction empirically:
// starting from boundary placements, it alternates
//   (1) train the victim SVM on the poisoned set, and
//   (2) push each poison point along the direction that maximally
//       increases validation hinge loss (for a linear model, -y_p * w),
//       then project back onto the radius-r sphere around its class
//       centroid (the filter-feasibility constraint).
// The ablation test asserts the refined attack is at least roughly as
// damaging as the analytic boundary placement.
#pragma once

#include <string>

#include "attack/attack.h"
#include "ml/svm.h"

namespace pg::attack {

struct GradientAttackConfig {
  /// Radius constraint, as a clean removal fraction (see BoundaryAttack).
  double placement_fraction = 0.0;
  double safety_margin = 1e-3;
  /// Alternations of (retrain, point update).
  std::size_t outer_iters = 5;
  /// Gradient step size relative to the placement radius.
  double step_scale = 0.3;
  /// Victim trainer used inside the loop (cheap settings by default).
  ml::SvmConfig svm{.epochs = 50, .lambda = 1e-4, .average = true};
};

class GradientAttack final : public PoisoningAttack {
 public:
  explicit GradientAttack(GradientAttackConfig config);

  [[nodiscard]] data::Dataset generate(const data::Dataset& clean,
                                       std::size_t n_points,
                                       util::Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

 private:
  GradientAttackConfig config_;
};

}  // namespace pg::attack
