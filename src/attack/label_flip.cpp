#include "attack/label_flip.h"

#include <algorithm>
#include <numeric>

#include "la/vector_ops.h"
#include "util/error.h"

namespace pg::attack {

LabelFlipAttack::LabelFlipAttack(LabelFlipConfig config) : config_(config) {}

std::string LabelFlipAttack::name() const {
  switch (config_.selection) {
    case FlipSelection::kRandom:
      return "label-flip(random)";
    case FlipSelection::kNearCentroid:
      return "label-flip(near-centroid)";
    case FlipSelection::kFarthest:
      return "label-flip(farthest)";
  }
  return "label-flip(?)";
}

data::Dataset LabelFlipAttack::generate(const data::Dataset& clean,
                                        std::size_t n_points,
                                        util::Rng& rng) const {
  PG_CHECK(!clean.empty(), "LabelFlipAttack: empty clean dataset");

  std::vector<std::size_t> order(clean.size());
  std::iota(order.begin(), order.end(), 0);

  switch (config_.selection) {
    case FlipSelection::kRandom: {
      rng.shuffle(order);
      break;
    }
    case FlipSelection::kNearCentroid: {
      // Points nearest to the opposite class centroid flip most credibly.
      const la::Vector c_pos = clean.class_mean(1);
      const la::Vector c_neg = clean.class_mean(-1);
      std::vector<double> key(clean.size());
      for (std::size_t i = 0; i < clean.size(); ++i) {
        const la::Vector& target = clean.label(i) == 1 ? c_neg : c_pos;
        key[i] = la::distance(clean.instance(i), target);
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return key[a] < key[b];
                       });
      break;
    }
    case FlipSelection::kFarthest: {
      const la::Vector c_pos = clean.class_mean(1);
      const la::Vector c_neg = clean.class_mean(-1);
      std::vector<double> key(clean.size());
      for (std::size_t i = 0; i < clean.size(); ++i) {
        const la::Vector& own = clean.label(i) == 1 ? c_pos : c_neg;
        key[i] = -la::distance(clean.instance(i), own);
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return key[a] < key[b];
                       });
      break;
    }
  }

  data::Dataset poison;
  for (std::size_t k = 0; k < n_points; ++k) {
    const std::size_t i = order[k % order.size()];
    poison.append(clean.instance(i), -clean.label(i));
  }
  return poison;
}

}  // namespace pg::attack
