// Label-flip poisoning baselines.
//
// Weaker attacks than the boundary attack; the defense-ablation bench uses
// them to show that the game-optimal filter strength depends on the threat,
// which is precisely why a fixed (pure) defense is exploitable.
#pragma once

#include <string>

#include "attack/attack.h"

namespace pg::attack {

enum class FlipSelection {
  kRandom,        // flip labels of uniformly chosen clean points
  kNearCentroid,  // duplicate points closest to the *opposite* centroid
  kFarthest       // duplicate points farthest from their own centroid
};

struct LabelFlipConfig {
  FlipSelection selection = FlipSelection::kRandom;
};

/// Emits copies of existing clean points with inverted labels.
class LabelFlipAttack final : public PoisoningAttack {
 public:
  explicit LabelFlipAttack(LabelFlipConfig config = {});

  [[nodiscard]] data::Dataset generate(const data::Dataset& clean,
                                       std::size_t n_points,
                                       util::Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

 private:
  LabelFlipConfig config_;
};

}  // namespace pg::attack
