#include "attack/mixed_attack.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pg::attack {

data::Dataset generate_allocation(const data::Dataset& clean,
                                  const AttackAllocation& allocation,
                                  util::Rng& rng, double safety_margin,
                                  double direction_noise) {
  data::Dataset poison;
  for (const auto& [fraction, count] : allocation) {
    if (count == 0) continue;
    BoundaryAttackConfig cfg;
    cfg.placement_fraction = fraction;
    cfg.safety_margin = safety_margin;
    cfg.direction_noise = direction_noise;
    // Allocations realize an equilibrium S_a: points go exactly on the
    // support boundaries (section 4.2 -- the attacker is indifferent, and
    // off-support depths are weakly worse), so no depth search here.
    cfg.depth_offsets.clear();
    const data::Dataset part =
        BoundaryAttack(cfg).generate(clean, count, rng);
    poison = data::concatenate(poison, part);
  }
  return poison;
}

MixedAttackStrategy::MixedAttackStrategy(std::vector<double> placements,
                                         std::vector<double> probabilities)
    : placements_(std::move(placements)),
      probabilities_(std::move(probabilities)) {
  PG_CHECK(placements_.size() == probabilities_.size(),
           "MixedAttackStrategy: size mismatch");
  PG_CHECK(!placements_.empty(), "MixedAttackStrategy: empty support");
  double total = 0.0;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    PG_CHECK(placements_[i] >= 0.0 && placements_[i] <= 1.0,
             "placement must be in [0, 1]");
    PG_CHECK(probabilities_[i] >= 0.0, "probabilities must be non-negative");
    total += probabilities_[i];
  }
  PG_CHECK(std::abs(total - 1.0) <= 1e-9, "probabilities must sum to 1");
}

AttackAllocation MixedAttackStrategy::sample_allocation(
    std::size_t n_points, util::Rng& rng) const {
  std::vector<std::size_t> counts(placements_.size(), 0);
  for (std::size_t k = 0; k < n_points; ++k) {
    ++counts[rng.categorical(probabilities_)];
  }
  AttackAllocation out;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (counts[i] > 0) out.push_back({placements_[i], counts[i]});
  }
  return out;
}

AttackAllocation MixedAttackStrategy::expected_allocation(
    std::size_t n_points) const {
  AttackAllocation out;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    const auto n = static_cast<std::size_t>(
        std::round(probabilities_[i] * static_cast<double>(n_points)));
    out.push_back({placements_[i], n});
    assigned += n;
  }
  // Put any rounding remainder on the most probable placement.
  const std::size_t arg_max = static_cast<std::size_t>(
      std::max_element(probabilities_.begin(), probabilities_.end()) -
      probabilities_.begin());
  if (assigned < n_points) {
    out[arg_max].count += n_points - assigned;
  } else if (assigned > n_points) {
    const std::size_t excess = assigned - n_points;
    out[arg_max].count -= std::min(out[arg_max].count, excess);
  }
  return out;
}

MixedAttack::MixedAttack(MixedAttackStrategy strategy)
    : strategy_(std::move(strategy)) {}

std::string MixedAttack::name() const {
  return "mixed(" + std::to_string(strategy_.placements().size()) +
         " radii)";
}

data::Dataset MixedAttack::generate(const data::Dataset& clean,
                                    std::size_t n_points,
                                    util::Rng& rng) const {
  return generate_allocation(clean, strategy_.sample_allocation(n_points, rng),
                             rng);
}

}  // namespace pg::attack
