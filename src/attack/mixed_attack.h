// Mixed attacker strategies: S_a = {[r_1, n_1], ..., [r_m, n_m]}.
//
// The paper's attacker chooses a *set* of radii with point counts. In the
// mixed extension the attacker samples that allocation from a distribution;
// at equilibrium (section 4.2) he is indifferent among all support points
// of the defender's strategy, so any allocation over the defender's support
// is a best response. RadiusAllocation captures one realized S_a, and
// MixedAttackStrategy a distribution over placements.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "attack/attack.h"
#include "attack/boundary_attack.h"

namespace pg::attack {

/// One [r_i, n_i] element of S_a, with the radius expressed as a clean
/// removal fraction (see ClassRadiusMap).
struct RadiusAllocation {
  double placement_fraction = 0.0;
  std::size_t count = 0;
};

/// A realized attacker pure strategy S_a.
using AttackAllocation = std::vector<RadiusAllocation>;

/// Generate the poison set for a given S_a: each [r_i, n_i] contributes
/// n_i boundary-placed points at radius r_i.
[[nodiscard]] data::Dataset generate_allocation(
    const data::Dataset& clean, const AttackAllocation& allocation,
    util::Rng& rng, double safety_margin = 1e-3, double direction_noise = 0.25);

/// Distribution over placement fractions; sampling yields an S_a.
class MixedAttackStrategy {
 public:
  /// Requires equal sizes, probabilities summing to 1 (within 1e-9), and
  /// placements in [0, 1].
  MixedAttackStrategy(std::vector<double> placements,
                      std::vector<double> probabilities);

  [[nodiscard]] const std::vector<double>& placements() const noexcept {
    return placements_;
  }
  [[nodiscard]] const std::vector<double>& probabilities() const noexcept {
    return probabilities_;
  }

  /// Multinomially allocate a budget of N points across the placements.
  [[nodiscard]] AttackAllocation sample_allocation(std::size_t n_points,
                                                   util::Rng& rng) const;

  /// Deterministic expected allocation (n_i = round(N * prob_i), with the
  /// remainder assigned to the largest-probability placement).
  [[nodiscard]] AttackAllocation expected_allocation(
      std::size_t n_points) const;

 private:
  std::vector<double> placements_;
  std::vector<double> probabilities_;
};

/// PoisoningAttack adapter: samples an S_a from a mixed strategy and
/// generates the corresponding boundary placements.
class MixedAttack final : public PoisoningAttack {
 public:
  explicit MixedAttack(MixedAttackStrategy strategy);

  [[nodiscard]] data::Dataset generate(const data::Dataset& clean,
                                       std::size_t n_points,
                                       util::Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

 private:
  MixedAttackStrategy strategy_;
};

}  // namespace pg::attack
