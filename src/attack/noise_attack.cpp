#include "attack/noise_attack.h"

#include <cmath>

#include "la/vector_ops.h"
#include "util/error.h"
#include "util/stats.h"

namespace pg::attack {

NoiseAttack::NoiseAttack(NoiseAttackConfig config) : config_(config) {
  PG_CHECK(config_.scale > 0.0, "NoiseAttack: scale must be > 0");
}

std::string NoiseAttack::name() const { return "noise"; }

data::Dataset NoiseAttack::generate(const data::Dataset& clean,
                                    std::size_t n_points,
                                    util::Rng& rng) const {
  PG_CHECK(!clean.empty(), "NoiseAttack: empty clean dataset");
  data::Dataset poison;
  for (std::size_t k = 0; k < n_points; ++k) {
    const int label = (k % 2 == 0) ? 1 : -1;
    const la::Vector centroid = clean.class_mean(label);
    const double spread =
        util::mean(clean.distances_to(centroid, label)) * config_.scale /
        std::sqrt(static_cast<double>(clean.dim()));
    la::Vector x = centroid;
    for (double& v : x) v += rng.normal(0.0, spread);
    poison.append(x, label);
  }
  return poison;
}

}  // namespace pg::attack
