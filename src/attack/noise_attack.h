// Random-noise poisoning: uniformly mislabeled Gaussian noise around the
// data centroid. The weakest baseline -- it mostly measures the victim
// model's intrinsic robustness and calibrates the low end of E(p).
#pragma once

#include <string>

#include "attack/attack.h"

namespace pg::attack {

struct NoiseAttackConfig {
  /// Noise scale as a multiple of the per-class mean distance-to-centroid.
  double scale = 1.0;
};

class NoiseAttack final : public PoisoningAttack {
 public:
  explicit NoiseAttack(NoiseAttackConfig config = {});

  [[nodiscard]] data::Dataset generate(const data::Dataset& clean,
                                       std::size_t n_points,
                                       util::Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

 private:
  NoiseAttackConfig config_;
};

}  // namespace pg::attack
