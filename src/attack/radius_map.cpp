#include "attack/radius_map.h"

#include "util/error.h"

namespace pg::attack {

ClassRadiusMap::ClassRadiusMap(const data::Dataset& clean, bool use_median) {
  PG_CHECK(!clean.empty(), "ClassRadiusMap: empty dataset");
  for (int label : {1, -1}) {
    PG_CHECK(clean.count_label(label) > 0,
             "ClassRadiusMap: dataset must contain both classes");
    ClassGeometry g;
    g.label = label;
    g.centroid = use_median ? clean.class_coordinate_median(label)
                            : clean.class_mean(label);
    g.distances = util::EmpiricalCdf(clean.distances_to(g.centroid, label));
    classes_.push_back(std::move(g));
  }
}

const ClassGeometry& ClassRadiusMap::geometry(int label) const {
  for (const auto& g : classes_) {
    if (g.label == label) return g;
  }
  PG_CHECK(false, "ClassRadiusMap: unknown label");
  throw std::logic_error("unreachable");
}

double ClassRadiusMap::radius_for_removal(int label,
                                          double removal_fraction) const {
  PG_CHECK(removal_fraction >= 0.0 && removal_fraction <= 1.0,
           "removal_fraction must be in [0, 1]");
  const auto& g = geometry(label);
  // Removing fraction p keeps the (1-p) closest points.
  return g.distances.inverse(1.0 - removal_fraction);
}

double ClassRadiusMap::removal_for_radius(int label, double radius) const {
  const auto& g = geometry(label);
  return g.distances.survival(radius);
}

double ClassRadiusMap::boundary_radius(int label) const {
  return geometry(label).distances.max();
}

}  // namespace pg::attack
