// Radius <-> percentile transforms.
//
// The paper's game is stated in raw radii, but both Fig. 1's x-axis and
// Algorithm 1's inputs are *fractions of data removed by the filter*.
// ClassRadiusMap anchors the transform: for each class it holds the
// empirical distribution of distances from clean training points to their
// class centroid, so
//   radius_for_removal(p)  = the (1-p)-quantile of distances
//                            (a filter of strength p removes everything
//                             beyond this radius), and
//   removal_for_radius(r)  = the fraction of clean points beyond r.
// The attacker uses the same map to place points "just inside" a filter of
// strength p, which is the paper's optimal pure attack.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "la/vector_ops.h"
#include "util/stats.h"

namespace pg::attack {

/// Distance geometry of one class.
struct ClassGeometry {
  int label = 0;
  la::Vector centroid;
  util::EmpiricalCdf distances;  // clean distance-to-centroid sample
};

class ClassRadiusMap {
 public:
  ClassRadiusMap() = default;

  /// Build from a clean dataset; both classes must be present.
  /// The centroid defaults to the coordinate median, matching the robust
  /// centroid of the defender's DistanceFilter: attacker and defender must
  /// agree on the geometry or the "just inside the boundary" placement is
  /// meaningless. Pass use_median = false for the mean-centroid geometry.
  explicit ClassRadiusMap(const data::Dataset& clean, bool use_median = true);

  [[nodiscard]] bool empty() const noexcept { return classes_.empty(); }

  /// Geometry for the given label. Requires the label to be present.
  [[nodiscard]] const ClassGeometry& geometry(int label) const;

  /// Filter radius that removes a `removal_fraction` share of the class's
  /// clean points. removal_fraction in [0, 1].
  [[nodiscard]] double radius_for_removal(int label,
                                          double removal_fraction) const;

  /// Fraction of the class's clean points farther than `radius`.
  [[nodiscard]] double removal_for_radius(int label, double radius) const;

  /// Largest clean distance in the class ("B", the boundary of the game).
  [[nodiscard]] double boundary_radius(int label) const;

 private:
  std::vector<ClassGeometry> classes_;
};

}  // namespace pg::attack
