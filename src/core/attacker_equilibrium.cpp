#include "core/attacker_equilibrium.h"

#include <algorithm>
#include <cmath>

#include "game/solvers.h"
#include "util/error.h"

namespace pg::core {

AttackerEquilibrium attacker_equilibrium_lp(const PoisoningGame& game,
                                            std::size_t grid,
                                            double mass_floor,
                                            runtime::Executor* executor) {
  PG_CHECK(grid >= 2, "grid must be >= 2");
  PG_CHECK(mass_floor >= 0.0, "mass_floor must be >= 0");
  const auto placements = game.placement_grid(grid);
  const auto mg = game.discretize(grid, grid, executor);
  // The same executor that filled the payoff grid drives the simplex
  // solve: end-to-end parallel from payoff build through equilibrium.
  const auto eq = game::solve_lp_equilibrium(mg, executor);

  std::vector<double> support;
  std::vector<double> probs;
  for (std::size_t i = 0; i < placements.size(); ++i) {
    if (eq.row_strategy[i] > mass_floor) {
      support.push_back(placements[i]);
      probs.push_back(eq.row_strategy[i]);
    }
  }
  PG_ASSERT(!support.empty(), "LP returned an empty attacker support");
  double total = 0.0;
  for (double p : probs) total += p;
  for (double& p : probs) p /= total;
  return {attack::MixedAttackStrategy(std::move(support), std::move(probs)),
          eq.value};
}

AttackerEquilibrium attacker_equilibrium_structural(
    const PoisoningGame& game,
    const defense::MixedDefenseStrategy& defender, double damage_floor) {
  PG_CHECK(defender.is_properly_mixed(),
           "structural extraction requires a properly mixed defender");
  const auto& fractions = defender.removal_fractions();
  const std::size_t n = fractions.size();
  const double budget = static_cast<double>(game.poison_budget());

  std::vector<double> mass(n, 0.0);
  double remaining = 1.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double e_i =
        std::max(game.curves().damage(fractions[i]), damage_floor);
    const double gamma_step = game.curves().cost(fractions[i + 1]) -
                              game.curves().cost(fractions[i]);
    const double a = std::clamp(gamma_step / (budget * e_i), 0.0, remaining);
    mass[i] = a;
    remaining -= a;
  }
  mass[n - 1] = remaining;

  // Renormalize defensively (clamping can distort the total).
  double total = 0.0;
  for (double m : mass) total += m;
  PG_ASSERT(total > 0.0, "structural attacker mass vanished");
  for (double& m : mass) m /= total;

  attack::MixedAttackStrategy strategy(fractions, mass);
  // Equilibrium value: the defender's loss under this pair.
  double value = budget * std::max(game.curves().damage(fractions.back()),
                                   damage_floor);
  for (std::size_t i = 0; i < n; ++i) {
    value += defender.probabilities()[i] * game.curves().cost(fractions[i]);
  }
  return {std::move(strategy), value};
}

}  // namespace pg::core
