// Attacker-side equilibrium extraction.
//
// The paper's Algorithm 1 computes only the defender's mixed strategy; the
// attacker's equilibrium mixture is implicit. This module recovers it two
// ways:
//  (1) exactly, as the row strategy of the discretized game's LP solution;
//  (2) structurally, from the defender's strategy: at equilibrium the
//      attacker randomizes over the defender's support so that the
//      defender is indifferent among her support filters, mirroring
//      condition 2 of section 4.2 with the roles swapped.
// Both are exposed so tests can confirm they agree (up to discretization).
#pragma once

#include "attack/mixed_attack.h"
#include "core/game_model.h"
#include "defense/mixed_defense.h"

namespace pg::runtime {
class Executor;
}

namespace pg::core {

struct AttackerEquilibrium {
  attack::MixedAttackStrategy strategy;
  double game_value = 0.0;  // attacker payoff at the equilibrium
};

/// (1) Exact route: solve the discretized game by LP and compress the row
/// strategy's support (probability mass below `mass_floor` is dropped and
/// the remainder renormalized). The grid x grid payoff matrix is built
/// through runtime::PayoffEvaluator; `executor` (null -> serial)
/// parallelizes the fill.
[[nodiscard]] AttackerEquilibrium attacker_equilibrium_lp(
    const PoisoningGame& game, std::size_t grid = 128,
    double mass_floor = 1e-6, runtime::Executor* executor = nullptr);

/// (2) Structural route: given the defender's equilibrium support
/// p_1 < ... < p_n with probabilities q, the defender is indifferent
/// between adjacent filters iff the attacker's mass a_i at placement p_i
/// satisfies, for i = 1..n-1,
///     a_i * N * E(p_i) = Gamma(p_{i+1}) - Gamma(p_i)
/// (moving the filter from p_i to p_{i+1} kills the mass at p_i but costs
/// the Gamma increment), with the remaining mass at p_n. Requires a
/// properly mixed defender strategy over a region where E > floor.
/// Masses are clamped to [0, remaining] and renormalized.
[[nodiscard]] AttackerEquilibrium attacker_equilibrium_structural(
    const PoisoningGame& game,
    const defense::MixedDefenseStrategy& defender, double damage_floor = 1e-6);

}  // namespace pg::core
