#include "core/equilibrium.h"

#include <algorithm>
#include <cmath>

#include "runtime/executor.h"
#include "util/error.h"

namespace pg::core {

namespace {

/// Clamp-and-sort projection onto the feasible support set:
/// damage-profitable region, strictly increasing with a minimum gap.
void project_support(std::vector<double>& s, double lo, double hi,
                     double min_gap) {
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double floor_i = lo + static_cast<double>(i) * min_gap;
    const double ceil_i =
        hi - static_cast<double>(s.size() - 1 - i) * min_gap;
    s[i] = std::clamp(s[i], floor_i, ceil_i);
    if (i > 0 && s[i] < s[i - 1] + min_gap) s[i] = s[i - 1] + min_gap;
  }
}

}  // namespace

std::vector<double> find_percentages(const PayoffCurves& curves,
                                     const std::vector<double>& support,
                                     double damage_floor) {
  PG_CHECK(!support.empty(), "find_percentages: empty support");
  for (std::size_t i = 0; i < support.size(); ++i) {
    PG_CHECK(support[i] >= 0.0 && support[i] <= 1.0,
             "support fractions must be in [0, 1]");
    if (i > 0) {
      PG_CHECK(support[i] > support[i - 1],
               "support must be strictly increasing");
    }
  }

  const std::size_t n = support.size();
  // E evaluated on the support, floored so ratios stay finite.
  std::vector<double> e(n);
  for (std::size_t i = 0; i < n; ++i) {
    e[i] = std::max(curves.damage(support[i]), damage_floor);
  }
  const double e_last = e[n - 1];

  // Q_i = E(p_n)/E(p_i) must be non-decreasing; enforce monotonicity to
  // absorb small non-monotonicity in measured curves.
  std::vector<double> q_cum(n);
  for (std::size_t i = 0; i < n; ++i) {
    q_cum[i] = std::min(1.0, e_last / e[i]);
    if (i > 0) q_cum[i] = std::max(q_cum[i], q_cum[i - 1]);
  }
  q_cum[n - 1] = 1.0;

  std::vector<double> prob(n);
  prob[0] = q_cum[0];
  for (std::size_t i = 1; i < n; ++i) prob[i] = q_cum[i] - q_cum[i - 1];
  return prob;
}

double defender_objective(const PoisoningGame& game,
                          const std::vector<double>& support,
                          double damage_floor) {
  const auto prob = find_percentages(game.curves(), support, damage_floor);
  // Attacker term: all N points at the strongest-support placement survive
  // every draw; by indifference every support placement yields the same.
  const double e_min_radius = std::max(
      game.curves().damage(support.back()), damage_floor);
  double f = static_cast<double>(game.poison_budget()) * e_min_radius;
  // Defender term: expected genuine-removal cost (the paper's integral of
  // pdf * Gamma collapses to a sum over the finite support).
  for (std::size_t i = 0; i < support.size(); ++i) {
    f += prob[i] * game.curves().cost(support[i]);
  }
  return f;
}

std::vector<double> choose_initial_support(const PoisoningGame& game,
                                           std::size_t n,
                                           double damage_floor) {
  PG_CHECK(n >= 1, "support size must be >= 1");
  const double hi = game.curves().damage_support_limit(damage_floor);
  PG_CHECK(hi > 0.0, "no profitable placement region (E <= floor everywhere)");
  std::vector<double> s(n);
  // Spread over (0, hi]: avoid 0 itself (a zero-strength filter never
  // removes anything and only weakens the mixture).
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = hi * static_cast<double>(i + 1) / static_cast<double>(n);
  }
  return s;
}

DefenseSolution compute_optimal_defense(const PoisoningGame& game,
                                        const Algorithm1Config& config,
                                        runtime::Executor* executor) {
  PG_CHECK(config.support_size >= 1, "support_size must be >= 1");
  PG_CHECK(config.epsilon > 0.0, "epsilon must be > 0");
  PG_CHECK(config.learning_rate > 0.0, "learning_rate must be > 0");
  PG_CHECK(config.fd_step > 0.0, "fd_step must be > 0");

  const double hi =
      game.curves().damage_support_limit(config.damage_floor);
  const double lo = std::max(config.support_floor, config.min_gap);
  PG_CHECK(hi > lo + config.min_gap * static_cast<double>(config.support_size),
           "profitable region too small for the requested support size");

  std::vector<double> support =
      choose_initial_support(game, config.support_size, config.damage_floor);
  project_support(support, lo, hi, config.min_gap);

  auto objective = [&](const std::vector<double>& s) {
    return defender_objective(game, s, config.damage_floor);
  };

  DefenseSolution sol{defense::MixedDefenseStrategy::pure(0.0), 0.0, {}, 0,
                      false};
  double f_prev = objective(support);
  sol.trace.push_back(f_prev);

  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    // Finite-difference gradient d f / d S_r. Each support point's two
    // probes depend only on the (shared, read-only) support, so the
    // per-point loop runs on the executor with a bit-identical result.
    // Supports are tiny (2-5 points) and a probe costs only a couple of
    // curve evaluations, so cap the split at two chunks: one dispatch per
    // iteration at most, instead of one per support point.
    std::vector<double> grad(support.size(), 0.0);
    const std::size_t fd_grain = (support.size() + 1) / 2;
    runtime::parallel_for(executor, 0, support.size(), fd_grain,
                          [&](std::size_t i) {
      std::vector<double> plus = support;
      std::vector<double> minus = support;
      plus[i] = std::min(plus[i] + config.fd_step, hi);
      minus[i] = std::max(minus[i] - config.fd_step, config.min_gap * 0.5);
      const double denom = plus[i] - minus[i];
      if (denom <= 0.0) return;
      grad[i] = (objective(plus) - objective(minus)) / denom;
                          });

    // Descent step with projection (the paper's S_r <- S_r - grad(f)).
    for (std::size_t i = 0; i < support.size(); ++i) {
      support[i] -= config.learning_rate * grad[i];
    }
    project_support(support, lo, hi, config.min_gap);

    const double f = objective(support);
    sol.trace.push_back(f);
    sol.iterations = it + 1;
    if (std::abs(f_prev - f) < config.epsilon) {
      sol.converged = true;
      f_prev = f;
      break;
    }
    f_prev = f;
  }

  const auto prob =
      find_percentages(game.curves(), support, config.damage_floor);
  sol.strategy = defense::MixedDefenseStrategy(support, prob);
  sol.defender_loss = f_prev;
  return sol;
}

}  // namespace pg::core
