// Algorithm 1 of the paper: approximate the defender's mixed-strategy NE.
//
// Section 4.2 proves two properties of any defender NE strategy m:
//  (1) m is properly mixed (>= 2 support points with positive probability);
//  (2) for every support point theta with pdf_m(theta) > 0, the product
//      E(theta) * cdf_m(theta) is the same constant, where the cdf counts
//      survival probability from the boundary B toward the centroid.
// In removal-fraction coordinates with support p_1 < ... < p_n, (2) has the
// closed form
//      Q_i := P(filter <= p_i) = E(p_n) / E(p_i),
//      q_1 = Q_1,  q_i = Q_i - Q_{i-1},
// (valid because E is positive and non-increasing, so 0 < Q_1 <= ... <= 1).
// That closed form is findPercentage() below. The defender's loss under an
// indifferent attacker is
//      f(S) = N * E(p_n) + sum_i q_i * Gamma(p_i)
// (the paper's N*E(r_min) + integral of pdf*Gamma), which Algorithm 1
// minimizes over the support S by projected finite-difference gradient
// descent with the epsilon stopping rule.
#pragma once

#include <cstddef>
#include <vector>

#include "core/game_model.h"
#include "core/payoff.h"
#include "defense/mixed_defense.h"

namespace pg::runtime {
class Executor;
}

namespace pg::core {

struct Algorithm1Config {
  /// Number of radii (support size) n in the mixed strategy.
  std::size_t support_size = 3;
  /// Convergence threshold epsilon on |f_t - f_{t-1}|.
  double epsilon = 1e-9;
  /// Safety cap on gradient-descent iterations.
  std::size_t max_iterations = 5000;
  /// Gradient-descent step size on the support fractions.
  double learning_rate = 0.01;
  /// Finite-difference step.
  double fd_step = 1e-4;
  /// Minimum spacing between adjacent support fractions.
  double min_gap = 1e-3;
  /// Lower bound on the weakest support filter. Measured E(p) curves are
  /// often flat near p = 0 (a sub-percent filter removes nothing), which
  /// would let gradient descent park a support point at a meaningless
  /// near-zero strength; the floor keeps every mixture component
  /// operational.
  double support_floor = 0.02;
  /// Damage floor: the support is confined to placements with
  /// E(p) > damage_floor so the indifference ratios stay finite.
  double damage_floor = 1e-6;
};

struct DefenseSolution {
  defense::MixedDefenseStrategy strategy;
  /// f(S): the defender's expected loss (accuracy impact) at the solution;
  /// the paper's "resulting impact to the ML model" U_d(M_d, *).
  double defender_loss = 0.0;
  /// Objective value per iteration (for convergence diagnostics).
  std::vector<double> trace;
  std::size_t iterations = 0;
  bool converged = false;
};

/// The closed-form indifference probabilities for a fixed support.
/// Requires a sorted, strictly increasing support with E(p) > floor on all
/// points. Returns probabilities aligned with the support.
[[nodiscard]] std::vector<double> find_percentages(
    const PayoffCurves& curves, const std::vector<double>& support,
    double damage_floor = 1e-6);

/// The defender objective f(S) for a fixed support.
[[nodiscard]] double defender_objective(const PoisoningGame& game,
                                        const std::vector<double>& support,
                                        double damage_floor = 1e-6);

/// The paper's chooseInitialRadius: n fractions evenly spaced over the
/// profitable placement region (damage > floor).
[[nodiscard]] std::vector<double> choose_initial_support(
    const PoisoningGame& game, std::size_t n, double damage_floor = 1e-6);

/// Algorithm 1. Requires support_size >= 1 (1 degenerates to the best pure
/// strategy, used as the benchmark). `executor` (null -> serial)
/// parallelizes the per-iteration finite-difference gradient: each support
/// point's two objective probes are a pure function of the support, so the
/// parallel descent trajectory is bit-identical to the serial one.
[[nodiscard]] DefenseSolution compute_optimal_defense(
    const PoisoningGame& game, const Algorithm1Config& config = {},
    runtime::Executor* executor = nullptr);

}  // namespace pg::core
