#include "core/game_model.h"

#include <algorithm>
#include <cmath>

#include "runtime/payoff_evaluator.h"
#include "util/error.h"

namespace pg::core {

PoisoningGame::PoisoningGame(PayoffCurves curves, std::size_t poison_budget)
    : curves_(std::move(curves)), n_(poison_budget) {
  PG_CHECK(n_ > 0, "PoisoningGame: poison budget must be positive");
}

double PoisoningGame::attacker_payoff(const Allocation& sa,
                                      double theta) const {
  PG_CHECK(theta >= 0.0 && theta <= 1.0, "theta must be in [0, 1]");
  double total = curves_.cost(theta);
  for (const auto& [fraction, count] : sa) {
    PG_CHECK(fraction >= 0.0 && fraction <= 1.0,
             "placement must be in [0, 1]");
    // Survival: the filter is weaker than or equal to the placement.
    if (theta <= fraction + 1e-12) {
      total += static_cast<double>(count) * curves_.damage(fraction);
    }
  }
  return total;
}

PoisoningGame::AttackerResponse PoisoningGame::best_attack_against(
    double theta, std::size_t grid) const {
  PG_CHECK(grid >= 2, "grid must be >= 2");
  const double hi = curves_.max_fraction();
  AttackerResponse best{theta, -1e300};
  for (std::size_t i = 0; i < grid; ++i) {
    const double psi =
        hi * static_cast<double>(i) / static_cast<double>(grid - 1);
    if (theta > psi + 1e-12) continue;  // filtered out
    const double pay = static_cast<double>(n_) * curves_.damage(psi);
    if (pay > best.payoff) best = {psi, pay};
  }
  if (best.payoff < 0.0) {
    // Nothing survives or nothing profits: attack at the boundary B
    // (placement 0 survives only a zero filter; payoff may be 0).
    best = {hi, 0.0};
  }
  best.payoff += curves_.cost(theta);
  return best;
}

PoisoningGame::DefenderResponse PoisoningGame::best_defense_against(
    const Allocation& sa, std::size_t grid) const {
  PG_CHECK(grid >= 2, "grid must be >= 2");
  const double hi = curves_.max_fraction();
  DefenderResponse best{0.0, 1e300};
  for (std::size_t i = 0; i < grid; ++i) {
    const double theta =
        hi * static_cast<double>(i) / static_cast<double>(grid - 1);
    const double pay = attacker_payoff(sa, theta);
    if (pay < best.attacker_payoff) best = {theta, pay};
  }
  return best;
}

double PoisoningGame::attacker_threshold() const {
  return curves_.damage_support_limit();
}

std::vector<double> PoisoningGame::placement_grid(std::size_t size) const {
  PG_CHECK(size >= 2, "grid must be >= 2");
  const double hi = curves_.max_fraction();
  std::vector<double> grid(size);
  for (std::size_t i = 0; i < size; ++i) {
    grid[i] = hi * static_cast<double>(i) / static_cast<double>(size - 1);
  }
  return grid;
}

game::MatrixGame PoisoningGame::discretize(std::size_t attacker_grid,
                                           std::size_t defender_grid,
                                           runtime::Executor* executor) const {
  const auto psis = placement_grid(attacker_grid);
  const auto thetas = placement_grid(defender_grid);
  // Single construction path for payoff matrices: the runtime evaluator.
  // Closed-form cells, so no cache (a lookup costs as much as the cell)
  // and whole-row grain so chunk dispatch amortizes.
  const runtime::PayoffEvaluator evaluator(
      runtime::executor_or_serial(executor), nullptr, defender_grid);
  la::Matrix payoff = evaluator.evaluate_matrix(
      attacker_grid, defender_grid, [&](std::size_t flat) {
        const Allocation sa{{psis[flat / defender_grid], n_}};
        return attacker_payoff(sa, thetas[flat % defender_grid]);
      });
  return game::MatrixGame(std::move(payoff));
}

std::vector<BestResponseState> best_response_dynamics(
    const PoisoningGame& game, double initial_theta, std::size_t steps,
    std::size_t grid) {
  PG_CHECK(initial_theta >= 0.0 && initial_theta <= 1.0,
           "initial_theta must be in [0, 1]");
  std::vector<BestResponseState> trace;
  trace.reserve(steps);
  double theta = initial_theta;
  for (std::size_t t = 0; t < steps; ++t) {
    const auto atk = game.best_attack_against(theta, grid);
    const Allocation sa{{atk.placement, game.poison_budget()}};
    const auto def = game.best_defense_against(sa, grid);
    trace.push_back({atk.placement, theta, atk.payoff});
    theta = def.theta;
  }
  return trace;
}

}  // namespace pg::core
