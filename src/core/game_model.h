// The poisoning game of section 3, in removal-fraction coordinates.
//
// Attacker pure strategy: an allocation S_a = {[psi_i, n_i]} of N poison
// points over placements psi_i in [0, 1] (see attack/mixed_attack.h for the
// dataset-level realization). Defender pure strategy: a filter strength
// theta in [0, 1]. A point placed at psi survives the filter iff
// theta <= psi, and the zero-sum payoff to the attacker is
//     U_a(S_a, theta) = sum_{psi_i >= theta} n_i * E(psi_i) + Gamma(theta).
//
// The class also implements the best-response analysis behind
// Proposition 1: thresholds T_a / T_d and both best-response functions
// (equations 1a/1b and 2a/2b of the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "core/payoff.h"
#include "game/matrix_game.h"

namespace pg::runtime {
class Executor;
}

namespace pg::core {

/// One [placement, count] element of the attacker's allocation, in
/// removal-fraction coordinates.
struct Placement {
  double fraction = 0.0;
  std::size_t count = 0;
};

using Allocation = std::vector<Placement>;

class PoisoningGame {
 public:
  /// Requires a positive poison budget.
  PoisoningGame(PayoffCurves curves, std::size_t poison_budget);

  [[nodiscard]] const PayoffCurves& curves() const noexcept { return curves_; }
  [[nodiscard]] std::size_t poison_budget() const noexcept { return n_; }

  /// Zero-sum payoff to the attacker (defender's loss).
  [[nodiscard]] double attacker_payoff(const Allocation& sa,
                                       double theta) const;

  /// Attacker best response to a pure defender theta: all N points at the
  /// best surviving placement (or anywhere beyond T_a if nothing profits).
  /// Returns the best placement and its total payoff.
  struct AttackerResponse {
    double placement = 0.0;
    double payoff = 0.0;
  };
  [[nodiscard]] AttackerResponse best_attack_against(double theta,
                                                     std::size_t grid = 512) const;

  /// Defender best response to a pure attacker allocation: the theta
  /// minimizing the attacker payoff over a grid.
  struct DefenderResponse {
    double theta = 0.0;
    double attacker_payoff = 0.0;
  };
  [[nodiscard]] DefenderResponse best_defense_against(const Allocation& sa,
                                                      std::size_t grid = 512) const;

  /// T_a: the placement beyond which poison stops being profitable --
  /// in removal-fraction coordinates, the largest fraction with
  /// E(p) > 0 (the paper's "minimum radius that yields benefit").
  [[nodiscard]] double attacker_threshold() const;

  /// Discretize onto uniform grids: rows = attacker all-in placements,
  /// cols = defender filter strengths. Row payoff = attacker payoff.
  /// The grid is filled through runtime::PayoffEvaluator; `executor`
  /// (null -> serial) parallelizes the fill with bit-identical results.
  [[nodiscard]] game::MatrixGame discretize(
      std::size_t attacker_grid, std::size_t defender_grid,
      runtime::Executor* executor = nullptr) const;

  /// The placement grid used by discretize() for the given size.
  [[nodiscard]] std::vector<double> placement_grid(std::size_t size) const;

 private:
  PayoffCurves curves_;
  std::size_t n_;
};

/// One step of alternating best responses; used by the adaptive_attacker
/// example to visualize the cycling that Proposition 1 implies.
struct BestResponseState {
  double attacker_placement = 0.0;
  double defender_theta = 0.0;
  double attacker_payoff = 0.0;
};

[[nodiscard]] std::vector<BestResponseState> best_response_dynamics(
    const PoisoningGame& game, double initial_theta, std::size_t steps,
    std::size_t grid = 512);

}  // namespace pg::core
