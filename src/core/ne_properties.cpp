#include "core/ne_properties.h"

#include <algorithm>
#include <cmath>

#include "game/pure_ne.h"
#include "util/error.h"

namespace pg::core {

PureNeReport analyze_pure_equilibria(const PoisoningGame& game,
                                     std::size_t grid,
                                     runtime::Executor* executor) {
  const game::MatrixGame mg = game.discretize(grid, grid, executor);
  PureNeReport report;
  report.maximin = mg.maximin_value();
  report.minimax = mg.minimax_value();
  report.gap = report.minimax - report.maximin;
  report.saddle_points = game::find_pure_equilibria(mg, 1e-12).size();
  return report;
}

IndifferenceReport check_indifference(
    const PoisoningGame& game, const defense::MixedDefenseStrategy& strategy,
    double tolerance) {
  IndifferenceReport report;
  report.properly_mixed = strategy.is_properly_mixed();

  const auto& fractions = strategy.removal_fractions();
  const auto& probs = strategy.probabilities();
  double mean = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    if (probs[i] <= 1e-12) continue;  // not in the effective support
    const double q = strategy.survival_probability(fractions[i]);
    const double product = game.curves().damage(fractions[i]) * q;
    report.products.push_back(product);
    mean += product;
    ++counted;
  }
  if (counted == 0) return report;
  mean /= static_cast<double>(counted);
  double spread = 0.0;
  for (double p : report.products) {
    spread = std::max(spread, std::abs(p - mean));
  }
  report.relative_spread = (mean > 0.0) ? spread / mean : spread;
  report.indifferent = report.relative_spread <= tolerance;
  return report;
}

ExploitabilityReport attacker_exploitability(
    const PoisoningGame& game, const defense::MixedDefenseStrategy& strategy,
    std::size_t grid) {
  PG_CHECK(grid >= 2, "grid must be >= 2");
  ExploitabilityReport report;

  const double n = static_cast<double>(game.poison_budget());
  // Indifference value: any support placement; use the strongest filter
  // point, whose survival probability is 1.
  const double p_last = strategy.removal_fractions().back();
  report.equilibrium_damage = n * game.curves().damage(p_last);

  const double hi = game.curves().max_fraction();
  for (std::size_t i = 0; i < grid; ++i) {
    const double psi =
        hi * static_cast<double>(i) / static_cast<double>(grid - 1);
    const double damage = n * game.curves().damage(psi) *
                          strategy.survival_probability(psi);
    report.best_deviation_damage =
        std::max(report.best_deviation_damage, damage);
  }
  report.gain =
      std::max(0.0, report.best_deviation_damage - report.equilibrium_damage);
  return report;
}

}  // namespace pg::core
