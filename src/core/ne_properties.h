// Numerical verification of the paper's equilibrium claims.
//
//  * Proposition 1 (no pure NE): the discretized game's duality gap
//    (minimax - maximin) is strictly positive and the best-response maps
//    never intersect on the grid.
//  * Section 4.2 conditions: a candidate defender strategy is (1) properly
//    mixed and (2) attacker-indifferent across its support
//    (E(p_i) * Q_i constant).
//  * Equilibrium quality: the attacker's best placement against the
//    mixture gains at most `exploitability` over the indifference value.
#pragma once

#include <cstddef>
#include <vector>

#include "core/game_model.h"
#include "defense/mixed_defense.h"

namespace pg::runtime {
class Executor;
}

namespace pg::core {

struct PureNeReport {
  double maximin = 0.0;
  double minimax = 0.0;
  double gap = 0.0;             // minimax - maximin, > 0 -> no pure NE
  std::size_t saddle_points = 0;
};

/// Discretize (through runtime::PayoffEvaluator; `executor` null -> serial)
/// and scan for saddle points.
[[nodiscard]] PureNeReport analyze_pure_equilibria(
    const PoisoningGame& game, std::size_t grid = 64,
    runtime::Executor* executor = nullptr);

struct IndifferenceReport {
  bool properly_mixed = false;
  /// E(p_i) * Q_i for each support point.
  std::vector<double> products;
  /// max |product_i - mean| / mean; 0 at exact indifference.
  double relative_spread = 0.0;
  bool indifferent = false;  // relative_spread <= tolerance
};

/// Check conditions (1) and (2) of section 4.2 for a candidate strategy.
[[nodiscard]] IndifferenceReport check_indifference(
    const PoisoningGame& game, const defense::MixedDefenseStrategy& strategy,
    double tolerance = 1e-6);

struct ExploitabilityReport {
  /// Expected attacker payoff when he plays any support placement
  /// (the indifference value), excluding the Gamma term.
  double equilibrium_damage = 0.0;
  /// max over a placement grid of N * E(psi) * Q(psi).
  double best_deviation_damage = 0.0;
  /// best_deviation_damage - equilibrium_damage (>= 0 up to grid error).
  double gain = 0.0;
};

/// How much an unconstrained attacker can gain over the support value.
[[nodiscard]] ExploitabilityReport attacker_exploitability(
    const PoisoningGame& game, const defense::MixedDefenseStrategy& strategy,
    std::size_t grid = 2048);

}  // namespace pg::core
