#include "core/payoff.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pg::core {

PayoffCurves::PayoffCurves(util::PiecewiseLinear damage,
                           util::PiecewiseLinear cost)
    : damage_(std::move(damage)), cost_(std::move(cost)) {
  PG_CHECK(!damage_.empty() && !cost_.empty(),
           "PayoffCurves: curves must be non-empty");
}

PayoffCurves PayoffCurves::analytic(double e0, double damage_power, double g0,
                                    double cost_power, std::size_t knots) {
  PG_CHECK(e0 > 0.0 && g0 > 0.0, "analytic: e0 and g0 must be > 0");
  PG_CHECK(damage_power > 0.0 && cost_power > 0.0,
           "analytic: powers must be > 0");
  PG_CHECK(knots >= 2, "analytic: need >= 2 knots");
  std::vector<double> xs(knots);
  std::vector<double> es(knots);
  std::vector<double> gs(knots);
  for (std::size_t i = 0; i < knots; ++i) {
    const double p =
        static_cast<double>(i) / static_cast<double>(knots - 1);
    xs[i] = p;
    es[i] = e0 * std::pow(1.0 - p, damage_power);
    gs[i] = g0 * std::pow(p, cost_power);
  }
  return PayoffCurves(util::PiecewiseLinear(xs, es),
                      util::PiecewiseLinear(xs, gs));
}

double PayoffCurves::damage(double p) const {
  PG_CHECK(!damage_.empty(), "PayoffCurves not initialized");
  return damage_(p);
}

double PayoffCurves::cost(double p) const {
  PG_CHECK(!cost_.empty(), "PayoffCurves not initialized");
  return cost_(p);
}

double PayoffCurves::max_fraction() const {
  PG_CHECK(!damage_.empty(), "PayoffCurves not initialized");
  return std::min(damage_.x_max(), cost_.x_max());
}

double PayoffCurves::damage_support_limit(double floor) const {
  PG_CHECK(!damage_.empty(), "PayoffCurves not initialized");
  const double hi = max_fraction();
  double limit = 0.0;
  constexpr double kStep = 1e-3;
  for (double p = 0.0; p <= hi + 1e-12; p += kStep) {
    if (damage_(p) > floor) limit = p;
  }
  return limit;
}

}  // namespace pg::core
