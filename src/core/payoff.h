// The game's payoff primitives: E(p) and Gamma(p).
//
// Everything in the paper's analysis reduces to two one-dimensional curves
// over the removal fraction p in [0, 1]:
//   E(p)     -- the maximum accuracy damage ONE surviving poison point can
//               cause when placed at the radius whose clean removal
//               fraction is p. Decreasing: points forced closer to the
//               centroid are less harmful. (Paper: E(r_i, n_i) with
//               E assumed additive in n_i.)
//   Gamma(p) -- the defender's accuracy cost of removing a p-fraction of
//               genuine points. Increasing from Gamma(0) = 0.
// The experiment harness measures both from the Fig.-1 sweep
// (sim/curve_fit.h); analytic factories below support closed-form tests.
#pragma once

#include <vector>

#include "util/interp.h"

namespace pg::core {

class PayoffCurves {
 public:
  PayoffCurves() = default;

  /// Build from measured knots. Both curves share the domain [0, max p].
  /// Requires >= 2 knots each and strictly increasing xs.
  PayoffCurves(util::PiecewiseLinear damage, util::PiecewiseLinear cost);

  /// Analytic family used by unit/property tests and the solver ablation:
  ///   E(p)     = e0 * (1 - p)^damage_power      (decreasing, E(1) = 0)
  ///   Gamma(p) = g0 * p^cost_power              (increasing, Gamma(0) = 0)
  /// sampled on `knots` points. Requires e0 > 0, g0 > 0, knots >= 2.
  [[nodiscard]] static PayoffCurves analytic(double e0, double damage_power,
                                             double g0, double cost_power,
                                             std::size_t knots = 101);

  /// Per-point damage at placement p (clamped to the knot domain).
  [[nodiscard]] double damage(double p) const;

  /// Genuine-removal cost at filter strength p.
  [[nodiscard]] double cost(double p) const;

  [[nodiscard]] const util::PiecewiseLinear& damage_curve() const noexcept {
    return damage_;
  }
  [[nodiscard]] const util::PiecewiseLinear& cost_curve() const noexcept {
    return cost_;
  }

  /// Largest p in the curves' common domain.
  [[nodiscard]] double max_fraction() const;

  /// Largest p such that damage(p) > floor (scan resolution 1e-3); the
  /// attacker never places beyond it, so Algorithm 1 restricts its support
  /// search to [0, this]. Returns 0 if damage never exceeds the floor.
  [[nodiscard]] double damage_support_limit(double floor = 1e-6) const;

 private:
  util::PiecewiseLinear damage_;
  util::PiecewiseLinear cost_;
};

}  // namespace pg::core
