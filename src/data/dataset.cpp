#include "data/dataset.h"

#include <algorithm>

#include "util/error.h"

namespace pg::data {

Dataset::Dataset(la::Matrix features, std::vector<int> labels)
    : features_(std::move(features)), labels_(std::move(labels)) {
  PG_CHECK(features_.rows() == labels_.size(),
           "Dataset: feature/label count mismatch");
  for (int y : labels_) {
    PG_CHECK(y == 1 || y == -1, "Dataset: labels must be -1 or +1");
  }
}

la::Vector Dataset::instance(std::size_t i) const {
  PG_CHECK(i < size(), "Dataset::instance out of range");
  return features_.row_copy(i);
}

int Dataset::label(std::size_t i) const {
  PG_CHECK(i < size(), "Dataset::label out of range");
  return labels_[i];
}

void Dataset::append(const la::Vector& x, int label) {
  PG_CHECK(label == 1 || label == -1, "Dataset: labels must be -1 or +1");
  if (!empty()) {
    PG_CHECK(x.size() == dim(), "Dataset::append dimension mismatch");
  }
  features_.append_row(x);
  labels_.push_back(label);
}

void Dataset::append_all(const Dataset& other) {
  for (std::size_t i = 0; i < other.size(); ++i) {
    append(other.instance(i), other.label(i));
  }
}

std::vector<std::size_t> Dataset::indices_of_label(int label) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) idx.push_back(i);
  }
  return idx;
}

std::size_t Dataset::count_label(int label) const {
  std::size_t n = 0;
  for (int y : labels_) {
    if (y == label) ++n;
  }
  return n;
}

double Dataset::positive_fraction() const {
  if (empty()) return 0.0;
  return static_cast<double>(count_label(1)) / static_cast<double>(size());
}

Dataset Dataset::select(const std::vector<std::size_t>& idx) const {
  la::Matrix f = features_.select_rows(idx);
  std::vector<int> y;
  y.reserve(idx.size());
  for (std::size_t i : idx) {
    PG_CHECK(i < size(), "Dataset::select index out of range");
    y.push_back(labels_[i]);
  }
  return Dataset(std::move(f), std::move(y));
}

la::Vector Dataset::class_mean(int label) const {
  const auto idx = indices_of_label(label);
  PG_CHECK(!idx.empty(), "class_mean: no instances with the given label");
  la::Vector mu(dim(), 0.0);
  for (std::size_t i : idx) {
    const auto row = features_.row(i);
    for (std::size_t c = 0; c < dim(); ++c) mu[c] += row[c];
  }
  la::scale(mu, 1.0 / static_cast<double>(idx.size()));
  return mu;
}

la::Vector Dataset::class_coordinate_median(int label) const {
  const auto idx = indices_of_label(label);
  PG_CHECK(!idx.empty(),
           "class_coordinate_median: no instances with the given label");
  la::Vector out(dim(), 0.0);
  std::vector<double> column(idx.size());
  for (std::size_t c = 0; c < dim(); ++c) {
    for (std::size_t k = 0; k < idx.size(); ++k) {
      column[k] = features_(idx[k], c);
    }
    std::sort(column.begin(), column.end());
    const std::size_t n = column.size();
    out[c] = (n % 2 == 1) ? column[n / 2]
                          : 0.5 * (column[n / 2 - 1] + column[n / 2]);
  }
  return out;
}

std::vector<double> Dataset::distances_to(const la::Vector& center,
                                          int label) const {
  PG_CHECK(center.size() == dim(), "distances_to: dimension mismatch");
  std::vector<double> out;
  for (std::size_t i = 0; i < size(); ++i) {
    if (labels_[i] != label) continue;
    out.push_back(la::distance(instance(i), center));
  }
  return out;
}

std::vector<double> Dataset::distances_to(const la::Vector& center) const {
  PG_CHECK(center.size() == dim(), "distances_to: dimension mismatch");
  std::vector<double> out(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out[i] = la::distance(instance(i), center);
  }
  return out;
}

TrainTestSplit split_train_test(const Dataset& all, double train_fraction,
                                util::Rng& rng) {
  PG_CHECK(train_fraction > 0.0 && train_fraction < 1.0,
           "train_fraction must be in (0, 1)");
  PG_CHECK(all.size() >= 2, "split requires at least two instances");
  std::vector<std::size_t> idx(all.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  auto n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(all.size()));
  n_train = std::max<std::size_t>(1, std::min(n_train, all.size() - 1));
  const std::vector<std::size_t> train_idx(idx.begin(),
                                           idx.begin() + static_cast<std::ptrdiff_t>(n_train));
  const std::vector<std::size_t> test_idx(idx.begin() + static_cast<std::ptrdiff_t>(n_train),
                                          idx.end());
  return {all.select(train_idx), all.select(test_idx)};
}

Dataset concatenate(const Dataset& a, const Dataset& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  PG_CHECK(a.dim() == b.dim(), "concatenate: dimension mismatch");
  Dataset out = a;
  out.append_all(b);
  return out;
}

}  // namespace pg::data
