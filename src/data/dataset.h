// Labeled dataset container for binary classification.
//
// Labels are +1 (spam / positive class) and -1 (ham / negative class),
// matching the hinge-loss convention of the SVM substrate. The container is
// a value type: attacks return new datasets of poison points, defenses
// return filtered copies, and the original is never mutated in place.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "la/matrix.h"
#include "la/vector_ops.h"
#include "util/rng.h"

namespace pg::data {

class Dataset {
 public:
  Dataset() = default;

  /// Requires features.rows() == labels.size() and labels in {-1, +1}.
  Dataset(la::Matrix features, std::vector<int> labels);

  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return features_.cols(); }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }

  [[nodiscard]] const la::Matrix& features() const noexcept {
    return features_;
  }
  [[nodiscard]] const std::vector<int>& labels() const noexcept {
    return labels_;
  }

  /// Feature vector of instance i (bounds-checked).
  [[nodiscard]] la::Vector instance(std::size_t i) const;

  /// Label of instance i (bounds-checked); -1 or +1.
  [[nodiscard]] int label(std::size_t i) const;

  /// Append one labeled instance. Requires x.size() == dim() (or empty set)
  /// and label in {-1, +1}.
  void append(const la::Vector& x, int label);

  /// Append all instances of another dataset. Requires matching dim().
  void append_all(const Dataset& other);

  /// Indices of all instances with the given label.
  [[nodiscard]] std::vector<std::size_t> indices_of_label(int label) const;

  /// Number of instances with the given label.
  [[nodiscard]] std::size_t count_label(int label) const;

  /// Fraction of +1 instances.
  [[nodiscard]] double positive_fraction() const;

  /// Subset by instance indices.
  [[nodiscard]] Dataset select(const std::vector<std::size_t>& idx) const;

  /// Mean feature vector of instances with the given label.
  /// Requires at least one such instance.
  [[nodiscard]] la::Vector class_mean(int label) const;

  /// Coordinate-wise median of instances with the given label -- the
  /// robust centroid the distance-based defense uses. Requires at least
  /// one such instance.
  [[nodiscard]] la::Vector class_coordinate_median(int label) const;

  /// Euclidean distance of each instance with the given label to the given
  /// center.
  [[nodiscard]] std::vector<double> distances_to(const la::Vector& center,
                                                 int label) const;

  /// Euclidean distance of every instance to the given center.
  [[nodiscard]] std::vector<double> distances_to(const la::Vector& center) const;

 private:
  la::Matrix features_;
  std::vector<int> labels_;
};

/// Random train/test split. train_fraction in (0, 1); both parts non-empty
/// for any non-trivial input. The split is a permutation split: every
/// instance lands in exactly one side.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

[[nodiscard]] TrainTestSplit split_train_test(const Dataset& all,
                                              double train_fraction,
                                              util::Rng& rng);

/// Concatenate two datasets (e.g. clean training data + poison points).
[[nodiscard]] Dataset concatenate(const Dataset& a, const Dataset& b);

}  // namespace pg::data
