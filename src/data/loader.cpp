#include "data/loader.h"

#include "util/csv.h"
#include "util/error.h"
#include "util/logging.h"

namespace pg::data {

Dataset load_spambase(const std::string& path) {
  const auto rows = util::load_numeric_csv(path);
  PG_CHECK(!rows.empty(), "spambase file is empty: " + path);
  PG_CHECK(rows.front().size() == 58,
           "spambase rows must have 58 columns (57 features + label)");
  Dataset out;
  for (const auto& row : rows) {
    la::Vector x(row.begin(), row.end() - 1);
    const double raw_label = row.back();
    PG_CHECK(raw_label == 0.0 || raw_label == 1.0,
             "spambase label must be 0 or 1");
    out.append(x, raw_label == 1.0 ? 1 : -1);
  }
  return out;
}

CorpusInfo load_or_generate_spambase(
    const std::vector<std::string>& candidate_paths,
    const SpambaseLikeConfig& config, util::Rng& rng) {
  for (const auto& path : candidate_paths) {
    if (!util::file_exists(path)) continue;
    try {
      CorpusInfo info{load_spambase(path), false, path};
      util::log_info() << "loaded real Spambase corpus from " << path;
      return info;
    } catch (const std::exception& e) {
      util::log_warn() << "failed to load " << path << ": " << e.what()
                       << "; trying next candidate";
    }
  }
  util::log_info() << "no spambase.data found; using synthetic substitute";
  return {make_spambase_like(config, rng), true, "synthetic"};
}

std::vector<std::string> default_spambase_paths() {
  return {"data/spambase.data", "../data/spambase.data",
          "../../data/spambase.data"};
}

}  // namespace pg::data
