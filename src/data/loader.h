// Spambase corpus acquisition: load the real UCI file when present,
// otherwise fall back to the synthetic substitute (see synthetic.h and
// DESIGN.md section 4).
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace pg::data {

/// Parse a UCI spambase.data file: 58 comma-separated numeric columns, the
/// last being the 0/1 spam label (mapped here to -1/+1). Throws on I/O or
/// format errors.
[[nodiscard]] Dataset load_spambase(const std::string& path);

/// Result of acquiring the experiment corpus.
struct CorpusInfo {
  Dataset data;
  bool synthetic = false;   // true when the generator was used
  std::string source;       // file path or "synthetic"
};

/// Try the given candidate paths for a real spambase.data; on failure,
/// generate the Spambase-like substitute with the given config.
[[nodiscard]] CorpusInfo load_or_generate_spambase(
    const std::vector<std::string>& candidate_paths,
    const SpambaseLikeConfig& config, util::Rng& rng);

/// Default candidate locations relative to the working directory.
[[nodiscard]] std::vector<std::string> default_spambase_paths();

}  // namespace pg::data
