#include "data/scaler.h"

#include <cmath>

#include "util/error.h"

namespace pg::data {

namespace {
constexpr double kMinScale = 1e-12;
}

void StandardScaler::fit(const Dataset& train) {
  PG_CHECK(train.size() >= 2, "StandardScaler::fit needs at least 2 samples");
  const auto& X = train.features();
  mean_ = X.column_means();
  scale_.assign(train.dim(), 0.0);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto row = X.row(r);
    for (std::size_t c = 0; c < X.cols(); ++c) {
      const double d = row[c] - mean_[c];
      scale_[c] += d * d;
    }
  }
  for (double& s : scale_) {
    s = std::sqrt(s / static_cast<double>(X.rows() - 1));
    if (s < kMinScale) s = 1.0;  // constant feature: leave centered at 0
  }
}

la::Vector StandardScaler::transform(const la::Vector& x) const {
  PG_CHECK(fitted(), "StandardScaler not fitted");
  PG_CHECK(x.size() == mean_.size(), "StandardScaler: dimension mismatch");
  la::Vector z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    z[i] = (x[i] - mean_[i]) / scale_[i];
  }
  return z;
}

Dataset StandardScaler::transform(const Dataset& d) const {
  Dataset out;
  for (std::size_t i = 0; i < d.size(); ++i) {
    out.append(transform(d.instance(i)), d.label(i));
  }
  return out;
}

la::Vector StandardScaler::inverse_transform(const la::Vector& z) const {
  PG_CHECK(fitted(), "StandardScaler not fitted");
  PG_CHECK(z.size() == mean_.size(), "StandardScaler: dimension mismatch");
  la::Vector x(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    x[i] = z[i] * scale_[i] + mean_[i];
  }
  return x;
}

}  // namespace pg::data
