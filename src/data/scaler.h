// Feature standardization.
//
// Spambase features are heavy-tailed word frequencies; the SVM substrate
// standardizes them (zero mean, unit variance, fitted on training data
// only) so the distance-based filter geometry is meaningful in every
// direction.
#pragma once

#include "data/dataset.h"
#include "la/vector_ops.h"

namespace pg::data {

/// z = (x - mean) / std, with constant features mapped to 0.
class StandardScaler {
 public:
  StandardScaler() = default;

  /// Fit on a dataset (typically the training split). Requires size >= 2.
  void fit(const Dataset& train);

  [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }

  /// Transform one feature vector. Requires fitted() and matching dim.
  [[nodiscard]] la::Vector transform(const la::Vector& x) const;

  /// Transform every instance of a dataset (labels preserved).
  [[nodiscard]] Dataset transform(const Dataset& d) const;

  /// Inverse transform of one standardized vector back to raw space.
  [[nodiscard]] la::Vector inverse_transform(const la::Vector& z) const;

  [[nodiscard]] const la::Vector& mean() const noexcept { return mean_; }
  [[nodiscard]] const la::Vector& scale() const noexcept { return scale_; }

 private:
  la::Vector mean_;
  la::Vector scale_;  // per-feature std, floored at epsilon
};

}  // namespace pg::data
