#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pg::data {

Dataset make_spambase_like(const SpambaseLikeConfig& config, util::Rng& rng) {
  PG_CHECK(config.n_instances >= 10, "need at least 10 instances");
  PG_CHECK(config.n_features >= config.n_spam_words + config.n_ham_words + 3,
           "n_features too small for the configured signal words");
  PG_CHECK(config.positive_fraction > 0.0 && config.positive_fraction < 1.0,
           "positive_fraction must be in (0, 1)");
  PG_CHECK(config.class_separation >= 0.0, "class_separation must be >= 0");
  PG_CHECK(config.active_in_class >= 0.0 && config.active_in_class <= 1.0 &&
               config.active_out_class >= 0.0 &&
               config.active_out_class <= 1.0,
           "activation probabilities must be in [0, 1]");

  const std::size_t d = config.n_features;
  const std::size_t n_pos = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::round(config.positive_fraction *
                        static_cast<double>(config.n_instances))));
  const std::size_t n_neg = config.n_instances - n_pos;
  PG_CHECK(n_neg >= 1, "degenerate class split");

  // Interpolate activation probabilities toward their midpoint when
  // class_separation < 1 (and widen when > 1, clamped to [0, 1]).
  const double mid = 0.5 * (config.active_in_class + config.active_out_class);
  auto sep = [&](double p) {
    return std::clamp(mid + (p - mid) * config.class_separation, 0.0, 1.0);
  };
  const double p_in = sep(config.active_in_class);
  const double p_out = sep(config.active_out_class);

  const std::size_t spam_end = config.n_spam_words;
  const std::size_t ham_end = spam_end + config.n_ham_words;
  const std::size_t capital_begin = d - 3;  // last three features

  auto sample_instance = [&](int label) {
    // Message intensity: scales word values and activation counts, so it
    // simultaneously determines distance-to-centroid and signal strength
    // (see SpambaseLikeConfig::intensity_sigma).
    const double t = rng.lognormal(0.0, config.intensity_sigma);
    const bool expresses =
        rng.bernoulli(1.0 - std::exp(-t / config.express_scale));
    const double activity_boost = std::min(1.6, 0.4 + 0.8 * t);

    la::Vector x(d, 0.0);
    for (std::size_t j = 0; j < d; ++j) {
      if (j >= capital_begin) {
        // "Capital run length" style: always-positive, very heavy-tailed,
        // and an order of magnitude larger than the word columns, exactly
        // like the real Spambase capital_run_length_* features. They
        // dominate the distance-to-centroid geometry while carrying only a
        // modest share of the class signal -- the structural property that
        // makes the paper's radius-constrained attacker weak at small
        // radii (see DESIGN.md section 4).
        const double mu = (expresses && label == 1)
                              ? 3.0 + 1.2 * config.class_separation
                              : 3.0;
        x[j] = t * rng.lognormal(mu, 1.0);
        continue;
      }
      double p_active = config.generic_active;
      if (j < spam_end) {
        p_active = (label == 1) ? p_in : p_out;
      } else if (j < ham_end) {
        p_active = (label == -1) ? p_in : p_out;
      }
      if (!expresses) p_active = config.generic_active;
      p_active = std::min(1.0, p_active * activity_boost);
      if (rng.bernoulli(p_active)) {
        x[j] = t * rng.lognormal(config.word_log_mu, config.word_log_sigma);
      }
    }
    return x;
  };

  // Interleave classes, then shuffle indices so splits are class-balanced
  // in expectation.
  Dataset out;
  for (std::size_t i = 0; i < n_pos; ++i) out.append(sample_instance(1), 1);
  for (std::size_t i = 0; i < n_neg; ++i) out.append(sample_instance(-1), -1);
  std::vector<std::size_t> idx(out.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  return out.select(idx);
}

Dataset make_gaussian_blobs(std::size_t n, std::size_t dim, double separation,
                            util::Rng& rng) {
  PG_CHECK(n >= 2, "make_gaussian_blobs requires n >= 2");
  PG_CHECK(dim >= 1, "make_gaussian_blobs requires dim >= 1");
  PG_CHECK(separation >= 0.0, "separation must be >= 0");
  const std::size_t half = n / 2;
  Dataset out;
  for (std::size_t i = 0; i < 2 * half; ++i) {
    const int label = (i < half) ? 1 : -1;
    la::Vector x(dim);
    for (double& v : x) v = rng.normal();
    x[0] += (label == 1 ? 0.5 : -0.5) * separation;
    out.append(x, label);
  }
  return out;
}

}  // namespace pg::data
