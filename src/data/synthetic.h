// Synthetic dataset generators.
//
// SpambaseLikeGenerator is the documented substitution (DESIGN.md section 4)
// for the UCI Spambase corpus used by the paper: this environment has no
// network access, so we synthesize a corpus with the same shape --
// 4601 instances, 57 non-negative heavy-tailed "word/character frequency"
// features, 39.4% positive (spam) class -- calibrated so a linear
// hinge-loss SVM reaches roughly 90% clean test accuracy, matching the
// starting point of the paper's Fig. 1. The game model only touches the
// data through (a) the distance-to-centroid distribution and (b) the linear
// margin, both of which this generator reproduces qualitatively.
//
// make_gaussian_blobs is a smaller, fully controllable generator used by
// unit and property tests where the exact geometry must be known.
#pragma once

#include <cstddef>

#include "data/dataset.h"
#include "util/rng.h"

namespace pg::data {

struct SpambaseLikeConfig {
  std::size_t n_instances = 4601;
  std::size_t n_features = 57;
  double positive_fraction = 0.394;  // spam prevalence in UCI Spambase
  /// Number of features whose *activation probability* carries the class
  /// signal ("spam words" / "ham words"); the remainder are noise words
  /// plus three heavy-tailed "capital run length"-style features.
  std::size_t n_spam_words = 12;
  std::size_t n_ham_words = 12;
  /// Activation probability of a signal word in its own class vs. the
  /// other class; the gap drives linear separability.
  double active_in_class = 0.65;
  double active_out_class = 0.15;
  /// Log-normal shape of word frequencies when a word is active.
  double word_log_mu = 0.0;
  double word_log_sigma = 0.8;
  /// Activation probability of non-signal ("generic") words.
  double generic_active = 0.30;
  /// Multiplier (>= 0) on the activation gap: 1 = default separability,
  /// 0 = classes indistinguishable. Exposed for ablations.
  double class_separation = 1.0;
  /// Per-instance "message intensity" t ~ LogNormal(0, intensity_sigma):
  /// long, feature-rich messages have high t. Word values scale with t and
  /// activation counts grow with t, so t controls BOTH the distance from
  /// the class centroid AND how much class evidence the instance carries.
  /// This is the property the game needs (and that real Spambase has):
  /// far-from-centroid points are the informative ones, so aggressive
  /// filtering costs accuracy (Gamma rises) while poison forced close to
  /// the centroid looks like an ambiguous near-empty message (E falls).
  double intensity_sigma = 0.9;
  /// An instance expresses its class signal with probability
  /// 1 - exp(-t / express_scale); non-expressing instances draw all words
  /// from the neutral model (ambiguous content).
  double express_scale = 0.35;
};

/// Generate one Spambase-like corpus. Deterministic in (config, rng state).
/// Requires n_features >= n_spam_words + n_ham_words + 3 and a
/// non-degenerate class split.
[[nodiscard]] Dataset make_spambase_like(const SpambaseLikeConfig& config,
                                         util::Rng& rng);

/// Two isotropic Gaussian blobs at +/- (separation/2) along the first axis;
/// labels +1 / -1; class balance 50/50 (n rounded down to even).
/// Requires n >= 2, dim >= 1, separation >= 0.
[[nodiscard]] Dataset make_gaussian_blobs(std::size_t n, std::size_t dim,
                                          double separation, util::Rng& rng);

}  // namespace pg::data
