#include "defense/centroid.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pg::defense {

const char* centroid_method_name(CentroidMethod m) noexcept {
  switch (m) {
    case CentroidMethod::kMean:
      return "mean";
    case CentroidMethod::kCoordinateMedian:
      return "median";
    case CentroidMethod::kTrimmedMean:
      return "trimmed-mean";
  }
  return "?";
}

la::Vector compute_centroid(const data::Dataset& d, int label,
                            const CentroidConfig& config) {
  const auto idx = d.indices_of_label(label);
  PG_CHECK(!idx.empty(), "compute_centroid: no instances with given label");

  if (config.method == CentroidMethod::kMean) {
    return d.class_mean(label);
  }

  PG_CHECK(config.trim_fraction >= 0.0 && config.trim_fraction < 0.5,
           "trim_fraction must be in [0, 0.5)");

  const std::size_t dim = d.dim();
  la::Vector out(dim, 0.0);
  std::vector<double> column(idx.size());
  for (std::size_t c = 0; c < dim; ++c) {
    for (std::size_t k = 0; k < idx.size(); ++k) {
      column[k] = d.features()(idx[k], c);
    }
    std::sort(column.begin(), column.end());
    if (config.method == CentroidMethod::kCoordinateMedian) {
      const std::size_t n = column.size();
      out[c] = (n % 2 == 1)
                   ? column[n / 2]
                   : 0.5 * (column[n / 2 - 1] + column[n / 2]);
    } else {  // trimmed mean
      const auto trim = static_cast<std::size_t>(
          std::floor(config.trim_fraction *
                     static_cast<double>(column.size())));
      const std::size_t lo = trim;
      const std::size_t hi = column.size() - trim;
      PG_ASSERT(hi > lo, "trimmed mean removed all mass");
      double s = 0.0;
      for (std::size_t k = lo; k < hi; ++k) s += column[k];
      out[c] = s / static_cast<double>(hi - lo);
    }
  }
  return out;
}

}  // namespace pg::defense
