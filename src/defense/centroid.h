// Robust centroid estimation.
//
// The paper's filter is centered on the class centroid of the *poisoned*
// training set; section 3.1 argues the defense remains valid "as long as
// the defender uses a good method to find the centroid (i.e. a method less
// affected by the outliers)". The centroid-ablation bench quantifies that
// claim: under a 20% boundary attack the coordinate-median and trimmed
// mean drift far less than the mean.
#pragma once

#include "data/dataset.h"
#include "la/vector_ops.h"

namespace pg::defense {

enum class CentroidMethod {
  kMean,
  kCoordinateMedian,
  kTrimmedMean  // per-coordinate mean of the central (1 - 2*trim) mass
};

struct CentroidConfig {
  CentroidMethod method = CentroidMethod::kCoordinateMedian;
  /// Per-tail trim fraction for kTrimmedMean; in [0, 0.5).
  double trim_fraction = 0.1;
};

/// Centroid of the instances with the given label. Requires at least one
/// such instance (and for kTrimmedMean a valid trim fraction).
[[nodiscard]] la::Vector compute_centroid(const data::Dataset& d, int label,
                                          const CentroidConfig& config);

/// Human-readable name for reports.
[[nodiscard]] const char* centroid_method_name(CentroidMethod m) noexcept;

}  // namespace pg::defense
