#include "defense/distance_filter.h"

#include <algorithm>

#include "la/vector_ops.h"
#include "util/error.h"
#include "util/stats.h"

namespace pg::defense {

DistanceFilter::DistanceFilter(DistanceFilterConfig config) : config_(config) {
  PG_CHECK(config_.removal_fraction >= 0.0 && config_.removal_fraction < 1.0,
           "removal_fraction must be in [0, 1)");
}

std::string DistanceFilter::name() const {
  return "distance(p=" + std::to_string(config_.removal_fraction) + "," +
         centroid_method_name(config_.centroid.method) + ")";
}

double DistanceFilter::radius_for(const data::Dataset& train,
                                  int label) const {
  const la::Vector centroid = compute_centroid(train, label, config_.centroid);
  const auto distances = train.distances_to(centroid, label);
  PG_CHECK(!distances.empty(), "radius_for: class not present");
  return util::quantile(distances, 1.0 - config_.removal_fraction);
}

FilterResult DistanceFilter::apply(const data::Dataset& train,
                                   util::Rng& /*rng*/) const {
  PG_CHECK(!train.empty(), "DistanceFilter: empty dataset");
  FilterResult result;
  if (config_.removal_fraction == 0.0) {
    result.kept = train;
    return result;
  }

  std::vector<bool> keep(train.size(), true);
  for (int label : {1, -1}) {
    const auto idx = train.indices_of_label(label);
    if (idx.empty()) continue;
    const la::Vector centroid =
        compute_centroid(train, label, config_.centroid);
    std::vector<double> dist(idx.size());
    for (std::size_t k = 0; k < idx.size(); ++k) {
      dist[k] = la::distance(train.instance(idx[k]), centroid);
    }
    const double radius =
        util::quantile(dist, 1.0 - config_.removal_fraction);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      if (dist[k] > radius) keep[idx[k]] = false;
    }
  }

  std::vector<std::size_t> kept_idx;
  for (std::size_t i = 0; i < train.size(); ++i) {
    if (keep[i]) {
      kept_idx.push_back(i);
    } else {
      result.removed_indices.push_back(i);
    }
  }
  // Never remove everything: a filter that empties a dataset is useless
  // and would crash the trainer downstream.
  if (kept_idx.empty()) {
    result.kept = train;
    result.removed_indices.clear();
    return result;
  }
  result.kept = train.select(kept_idx);
  return result;
}

}  // namespace pg::defense
