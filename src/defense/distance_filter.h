// The paper's defense: per-class hypersphere (distance-to-centroid) filter.
//
// For each class the defender estimates a robust centroid from the
// *observed* (possibly poisoned) data, then removes the `removal_fraction`
// share of that class's points that lie farthest from it. Parameterizing by
// removal fraction rather than raw radius matches Fig. 1's x-axis and makes
// strategies comparable across classes and datasets.
#pragma once

#include <string>

#include "defense/centroid.h"
#include "defense/filter.h"

namespace pg::defense {

struct DistanceFilterConfig {
  /// Fraction of each class removed, in [0, 1). 0 disables filtering.
  double removal_fraction = 0.1;
  CentroidConfig centroid{};
};

class DistanceFilter final : public Filter {
 public:
  explicit DistanceFilter(DistanceFilterConfig config);

  [[nodiscard]] FilterResult apply(const data::Dataset& train,
                                   util::Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const DistanceFilterConfig& config() const noexcept {
    return config_;
  }

  /// The filter radius used for a given class on a given dataset (exposed
  /// for tests and for the best-response analysis).
  [[nodiscard]] double radius_for(const data::Dataset& train, int label) const;

 private:
  DistanceFilterConfig config_;
};

}  // namespace pg::defense
