#include "defense/filter.h"

#include "util/error.h"

namespace pg::defense {

DetectionScore score_detection(const FilterResult& result,
                               std::size_t input_size,
                               std::size_t first_poison_index) {
  PG_CHECK(first_poison_index <= input_size,
           "first_poison_index out of range");
  DetectionScore s;
  s.removed = result.removed_indices.size();
  s.poison_total = input_size - first_poison_index;
  std::size_t poison_removed = 0;
  for (std::size_t i : result.removed_indices) {
    PG_CHECK(i < input_size, "removed index out of range");
    if (i >= first_poison_index) ++poison_removed;
  }
  s.precision = s.removed == 0 ? 0.0
                               : static_cast<double>(poison_removed) /
                                     static_cast<double>(s.removed);
  s.recall = s.poison_total == 0 ? 0.0
                                 : static_cast<double>(poison_removed) /
                                       static_cast<double>(s.poison_total);
  return s;
}

}  // namespace pg::defense
