// Sanitization filter interface.
//
// A filter maps a (possibly poisoned) training set to the subset it keeps.
// FilterResult also reports which indices were removed so experiments can
// score precision/recall of poison detection.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace pg::defense {

struct FilterResult {
  data::Dataset kept;
  std::vector<std::size_t> removed_indices;  // into the input dataset

  [[nodiscard]] double removed_fraction(std::size_t input_size) const {
    return input_size == 0
               ? 0.0
               : static_cast<double>(removed_indices.size()) /
                     static_cast<double>(input_size);
  }
};

class Filter {
 public:
  virtual ~Filter() = default;

  /// Apply the filter. Must not mutate the input. Implementations that are
  /// stochastic (e.g. RONI's fold assignment) draw from `rng`.
  [[nodiscard]] virtual FilterResult apply(const data::Dataset& train,
                                           util::Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Score of a filter run against known poison indices: how many of the
/// removed points were actually poison (precision) and how much of the
/// poison was removed (recall).
struct DetectionScore {
  double precision = 0.0;
  double recall = 0.0;
  std::size_t removed = 0;
  std::size_t poison_total = 0;
};

/// Computes the detection score given that instances with index >=
/// first_poison_index are poison (the experiment harness always appends
/// poison after the clean data).
[[nodiscard]] DetectionScore score_detection(const FilterResult& result,
                                             std::size_t input_size,
                                             std::size_t first_poison_index);

}  // namespace pg::defense
