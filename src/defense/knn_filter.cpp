#include "defense/knn_filter.h"

#include <algorithm>
#include <vector>

#include "la/vector_ops.h"
#include "util/error.h"

namespace pg::defense {

KnnFilter::KnnFilter(KnnFilterConfig config) : config_(config) {
  PG_CHECK(config_.k >= 1, "KnnFilter: k must be >= 1");
  PG_CHECK(config_.agreement_threshold >= 0.0 &&
               config_.agreement_threshold <= 1.0,
           "agreement_threshold must be in [0, 1]");
}

std::string KnnFilter::name() const {
  return "knn(k=" + std::to_string(config_.k) + ")";
}

FilterResult KnnFilter::apply(const data::Dataset& train,
                              util::Rng& /*rng*/) const {
  PG_CHECK(!train.empty(), "KnnFilter: empty dataset");
  const std::size_t n = train.size();
  const std::size_t k = std::min(config_.k, n - 1);

  FilterResult result;
  if (k == 0) {
    result.kept = train;
    return result;
  }

  std::vector<std::size_t> kept_idx;
  std::vector<std::pair<double, std::size_t>> heap;  // (distance, index)
  for (std::size_t i = 0; i < n; ++i) {
    const la::Vector xi = train.instance(i);
    heap.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d = la::distance(xi, train.instance(j));
      if (heap.size() < k) {
        heap.emplace_back(d, j);
        std::push_heap(heap.begin(), heap.end());
      } else if (d < heap.front().first) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = {d, j};
        std::push_heap(heap.begin(), heap.end());
      }
    }
    std::size_t agree = 0;
    for (const auto& [d, j] : heap) {
      if (train.label(j) == train.label(i)) ++agree;
    }
    const double agreement =
        static_cast<double>(agree) / static_cast<double>(heap.size());
    if (agreement >= config_.agreement_threshold) {
      kept_idx.push_back(i);
    } else {
      result.removed_indices.push_back(i);
    }
  }

  if (kept_idx.empty()) {
    result.kept = train;
    result.removed_indices.clear();
    return result;
  }
  result.kept = train.select(kept_idx);
  return result;
}

}  // namespace pg::defense
