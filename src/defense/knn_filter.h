// k-NN label-consistency sanitizer (Paudice et al. style baseline).
//
// A point is suspicious when too few of its k nearest neighbours share its
// label. This catches flipped-label poison that sits deep inside the
// opposite class but is blind to attacks that cluster poison together --
// a weakness the defense-ablation bench demonstrates.
#pragma once

#include <string>

#include "defense/filter.h"

namespace pg::defense {

struct KnnFilterConfig {
  std::size_t k = 10;
  /// Minimum fraction of same-label neighbours required to keep a point,
  /// in [0, 1].
  double agreement_threshold = 0.5;
};

class KnnFilter final : public Filter {
 public:
  explicit KnnFilter(KnnFilterConfig config);

  [[nodiscard]] FilterResult apply(const data::Dataset& train,
                                   util::Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

 private:
  KnnFilterConfig config_;
};

}  // namespace pg::defense
