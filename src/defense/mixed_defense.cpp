#include "defense/mixed_defense.h"

#include <cmath>
#include <sstream>

#include "util/error.h"
#include "util/table.h"

namespace pg::defense {

MixedDefenseStrategy::MixedDefenseStrategy(
    std::vector<double> removal_fractions, std::vector<double> probabilities)
    : fractions_(std::move(removal_fractions)),
      probabilities_(std::move(probabilities)) {
  PG_CHECK(fractions_.size() == probabilities_.size(),
           "MixedDefenseStrategy: size mismatch");
  PG_CHECK(!fractions_.empty(), "MixedDefenseStrategy: empty support");
  double total = 0.0;
  for (std::size_t i = 0; i < fractions_.size(); ++i) {
    PG_CHECK(fractions_[i] >= 0.0 && fractions_[i] < 1.0,
             "removal fractions must be in [0, 1)");
    if (i > 0) {
      PG_CHECK(fractions_[i] > fractions_[i - 1],
               "removal fractions must be strictly increasing");
    }
    PG_CHECK(probabilities_[i] >= 0.0, "probabilities must be >= 0");
    total += probabilities_[i];
  }
  PG_CHECK(std::abs(total - 1.0) <= 1e-9, "probabilities must sum to 1");
}

MixedDefenseStrategy MixedDefenseStrategy::pure(double removal_fraction) {
  return MixedDefenseStrategy({removal_fraction}, {1.0});
}

double MixedDefenseStrategy::sample(util::Rng& rng) const {
  return fractions_[rng.categorical(probabilities_)];
}

double MixedDefenseStrategy::expected_removal() const {
  double s = 0.0;
  for (std::size_t i = 0; i < fractions_.size(); ++i) {
    s += fractions_[i] * probabilities_[i];
  }
  return s;
}

double MixedDefenseStrategy::survival_probability(double placement) const {
  // A poison point placed at removal-fraction `placement` survives every
  // sampled filter weaker than or equal to it (see attack/radius_map.h).
  double p = 0.0;
  for (std::size_t i = 0; i < fractions_.size(); ++i) {
    if (fractions_[i] <= placement + 1e-12) p += probabilities_[i];
  }
  return p;
}

bool MixedDefenseStrategy::is_properly_mixed(double tol) const {
  std::size_t positive = 0;
  for (double p : probabilities_) {
    if (p > tol) ++positive;
  }
  return positive >= 2;
}

std::string MixedDefenseStrategy::describe(int precision) const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < fractions_.size(); ++i) {
    if (i) os << ", ";
    os << util::format_percent(fractions_[i], precision) << "@"
       << util::format_percent(probabilities_[i], precision);
  }
  os << "}";
  return os.str();
}

MixedDefenseFilter::MixedDefenseFilter(MixedDefenseStrategy strategy,
                                       CentroidConfig centroid)
    : strategy_(std::move(strategy)), centroid_(centroid) {}

std::string MixedDefenseFilter::name() const {
  return "mixed-distance" + strategy_.describe();
}

FilterResult MixedDefenseFilter::apply(const data::Dataset& train,
                                       util::Rng& rng) const {
  DistanceFilterConfig cfg;
  cfg.removal_fraction = strategy_.sample(rng);
  cfg.centroid = centroid_;
  return DistanceFilter(cfg).apply(train, rng);
}

}  // namespace pg::defense
