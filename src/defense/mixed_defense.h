// Mixed-strategy defense: a probability distribution over filter strengths.
//
// This is the paper's central object -- the defender's equilibrium strategy
// M_d. Each game the defender samples a removal fraction from the
// distribution and applies the corresponding DistanceFilter, so an attacker
// who knows the distribution (but not the draw) can no longer park poison
// just inside a fixed radius. Algorithm 1 (core/equilibrium.h) produces
// instances of this type.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "defense/centroid.h"
#include "defense/distance_filter.h"
#include "defense/filter.h"
#include "util/rng.h"

namespace pg::defense {

class MixedDefenseStrategy {
 public:
  /// Requires equal sizes, non-empty support, removal fractions in [0, 1)
  /// sorted strictly increasing, and probabilities >= 0 summing to 1
  /// (within 1e-9).
  MixedDefenseStrategy(std::vector<double> removal_fractions,
                       std::vector<double> probabilities);

  /// Degenerate (pure) strategy at a single filter strength.
  [[nodiscard]] static MixedDefenseStrategy pure(double removal_fraction);

  [[nodiscard]] std::size_t support_size() const noexcept {
    return fractions_.size();
  }
  [[nodiscard]] const std::vector<double>& removal_fractions() const noexcept {
    return fractions_;
  }
  [[nodiscard]] const std::vector<double>& probabilities() const noexcept {
    return probabilities_;
  }

  /// Sample one filter strength.
  [[nodiscard]] double sample(util::Rng& rng) const;

  /// Expected removal fraction under the distribution.
  [[nodiscard]] double expected_removal() const;

  /// Survival probability of a poison point placed at `placement`:
  /// P(sampled fraction <= placement). This is the paper's "cdf counting
  /// from B towards the centroid" evaluated on the support.
  [[nodiscard]] double survival_probability(double placement) const;

  /// True iff the strategy is mixed in the paper's sense (condition 1 of
  /// section 4.2): at least two support points with positive probability.
  [[nodiscard]] bool is_properly_mixed(double tol = 1e-12) const;

  [[nodiscard]] std::string describe(int precision = 1) const;

 private:
  std::vector<double> fractions_;     // strictly increasing
  std::vector<double> probabilities_; // aligned with fractions_
};

/// Filter adapter: samples a strength from the mixed strategy, then applies
/// a DistanceFilter of that strength.
class MixedDefenseFilter final : public Filter {
 public:
  MixedDefenseFilter(MixedDefenseStrategy strategy, CentroidConfig centroid);

  [[nodiscard]] FilterResult apply(const data::Dataset& train,
                                   util::Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const MixedDefenseStrategy& strategy() const noexcept {
    return strategy_;
  }

 private:
  MixedDefenseStrategy strategy_;
  CentroidConfig centroid_;
};

}  // namespace pg::defense
