#include "defense/pca_filter.h"

#include <algorithm>

#include "la/eigen.h"
#include "la/vector_ops.h"
#include "util/error.h"
#include "util/stats.h"

namespace pg::defense {

PcaFilter::PcaFilter(PcaFilterConfig config) : config_(config) {
  PG_CHECK(config_.components >= 1, "PcaFilter: components must be >= 1");
  PG_CHECK(config_.removal_fraction >= 0.0 && config_.removal_fraction < 1.0,
           "removal_fraction must be in [0, 1)");
}

std::string PcaFilter::name() const {
  return "pca(k=" + std::to_string(config_.components) +
         ",p=" + std::to_string(config_.removal_fraction) + ")";
}

FilterResult PcaFilter::apply(const data::Dataset& train,
                              util::Rng& rng) const {
  PG_CHECK(!train.empty(), "PcaFilter: empty dataset");
  FilterResult result;
  if (config_.removal_fraction == 0.0 || train.size() < 3) {
    result.kept = train;
    return result;
  }

  const std::size_t k = std::min(config_.components, train.dim());
  const la::Matrix cov = train.features().covariance();
  la::PowerIterationConfig pic;
  pic.max_iters = config_.max_power_iters;
  const auto basis = la::top_eigenpairs(cov, k, rng, pic);
  const la::Vector mu = train.features().column_means();

  std::vector<double> residual(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    const la::Vector centered = la::subtract(train.instance(i), mu);
    const la::Vector proj = la::project_onto_basis(centered, basis);
    residual[i] = la::distance(centered, proj);
  }

  const double threshold =
      util::quantile(residual, 1.0 - config_.removal_fraction);
  std::vector<std::size_t> kept_idx;
  for (std::size_t i = 0; i < train.size(); ++i) {
    if (residual[i] > threshold) {
      result.removed_indices.push_back(i);
    } else {
      kept_idx.push_back(i);
    }
  }
  if (kept_idx.empty()) {
    result.kept = train;
    result.removed_indices.clear();
    return result;
  }
  result.kept = train.select(kept_idx);
  return result;
}

}  // namespace pg::defense
