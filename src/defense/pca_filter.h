// PCA reconstruction-error sanitizer (Rubinstein et al. "ANTIDOTE" style
// baseline).
//
// Fits the top-k principal subspace of the (poisoned) training features
// and removes the points whose residual distance to the subspace is in the
// top `removal_fraction` quantile. Poison placed off the data manifold has
// large residuals even when it is close to the class centroid.
#pragma once

#include <string>

#include "defense/filter.h"

namespace pg::defense {

struct PcaFilterConfig {
  std::size_t components = 5;
  /// Fraction of points removed (largest residuals), in [0, 1).
  double removal_fraction = 0.1;
  /// Seed salt for the power-iteration start vectors (results are
  /// deterministic given the filter's rng).
  std::size_t max_power_iters = 500;
};

class PcaFilter final : public Filter {
 public:
  explicit PcaFilter(PcaFilterConfig config);

  [[nodiscard]] FilterResult apply(const data::Dataset& train,
                                   util::Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

 private:
  PcaFilterConfig config_;
};

}  // namespace pg::defense
