#include "defense/pipeline.h"

#include "data/scaler.h"
#include "ml/metrics.h"
#include "util/error.h"

namespace pg::defense {

Pipeline::Pipeline(PipelineConfig config) : config_(config) {}

PipelineResult Pipeline::run(const data::Dataset& clean_train,
                             const data::Dataset& test,
                             const attack::PoisoningAttack* attack,
                             std::size_t poison_points, const Filter* filter,
                             util::Rng& rng) const {
  PG_CHECK(!clean_train.empty(), "Pipeline: empty training data");
  PG_CHECK(!test.empty(), "Pipeline: empty test data");

  data::Dataset train = clean_train;
  if (attack != nullptr && poison_points > 0) {
    util::Rng attack_rng = rng.fork(1);
    const data::Dataset poison =
        attack->generate(clean_train, poison_points, attack_rng);
    train = data::concatenate(clean_train, poison);
  }

  PipelineResult result;
  FilterResult filtered;
  if (filter != nullptr) {
    util::Rng filter_rng = rng.fork(2);
    filtered = filter->apply(train, filter_rng);
    result.detection =
        score_detection(filtered, train.size(), clean_train.size());
  } else {
    filtered.kept = train;
  }
  result.train_size = filtered.kept.size();

  util::Rng train_rng = rng.fork(3);
  const ml::SvmTrainer trainer(config_.svm);
  if (config_.standardize && filtered.kept.size() >= 2) {
    data::StandardScaler scaler;
    scaler.fit(filtered.kept);
    result.model = trainer.train(scaler.transform(filtered.kept), train_rng);
    result.test_accuracy = ml::accuracy(result.model, scaler.transform(test));
  } else {
    result.model = trainer.train(filtered.kept, train_rng);
    result.test_accuracy = ml::accuracy(result.model, test);
  }
  return result;
}

}  // namespace pg::defense
