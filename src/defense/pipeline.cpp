#include "defense/pipeline.h"

#include <utility>

#include "data/scaler.h"
#include "ml/metrics.h"
#include "util/error.h"

namespace pg::defense {

Pipeline::Pipeline(PipelineConfig config) : config_(config) {}

Pipeline::Prepared Pipeline::prepare(const data::Dataset& clean_train,
                                     const data::Dataset& test,
                                     const attack::PoisoningAttack* attack,
                                     std::size_t poison_points,
                                     const Filter* filter,
                                     util::Rng& rng) const {
  PG_CHECK(!clean_train.empty(), "Pipeline: empty training data");
  PG_CHECK(!test.empty(), "Pipeline: empty test data");

  data::Dataset train = clean_train;
  if (attack != nullptr && poison_points > 0) {
    util::Rng attack_rng = rng.fork(1);
    const data::Dataset poison =
        attack->generate(clean_train, poison_points, attack_rng);
    train = data::concatenate(clean_train, poison);
  }

  Prepared prep;
  FilterResult filtered;
  if (filter != nullptr) {
    util::Rng filter_rng = rng.fork(2);
    filtered = filter->apply(train, filter_rng);
    prep.detection =
        score_detection(filtered, train.size(), clean_train.size());
  } else {
    filtered.kept = train;
  }
  prep.train_size = filtered.kept.size();

  prep.train_rng = rng.fork(3);
  if (config_.standardize && filtered.kept.size() >= 2) {
    data::StandardScaler scaler;
    scaler.fit(filtered.kept);
    prep.train = scaler.transform(filtered.kept);
    prep.test = scaler.transform(test);
  } else {
    prep.train = std::move(filtered.kept);
    prep.test = test;
  }
  return prep;
}

PipelineResult Pipeline::finish(Prepared&& prep, ml::LinearModel model) {
  PipelineResult result;
  result.detection = prep.detection;
  result.train_size = prep.train_size;
  result.test_accuracy = ml::accuracy(model, prep.test);
  result.model = std::move(model);
  return result;
}

PipelineResult Pipeline::run(const data::Dataset& clean_train,
                             const data::Dataset& test,
                             const attack::PoisoningAttack* attack,
                             std::size_t poison_points, const Filter* filter,
                             util::Rng& rng) const {
  Prepared prep =
      prepare(clean_train, test, attack, poison_points, filter, rng);
  const ml::SvmTrainer trainer(config_.svm);
  ml::LinearModel model = trainer.train(prep.train, prep.train_rng);
  return finish(std::move(prep), std::move(model));
}

}  // namespace pg::defense
