// Sanitize-then-train pipeline.
//
// Bundles the full defended-learning flow the paper evaluates: poison the
// training data, apply a filter, train the victim, and measure test
// accuracy. Every experiment (Fig. 1 sweep, Table 1 evaluation, ablations)
// is a loop over this pipeline with different attacks/filters.
#pragma once

#include <functional>
#include <memory>

#include "attack/attack.h"
#include "data/dataset.h"
#include "defense/filter.h"
#include "ml/linear_model.h"
#include "ml/svm.h"

namespace pg::defense {

struct PipelineResult {
  double test_accuracy = 0.0;
  DetectionScore detection;     // meaningful only when an attack ran
  std::size_t train_size = 0;   // after filtering
  ml::LinearModel model;
};

struct PipelineConfig {
  ml::SvmConfig svm{};
  /// Standardize features AFTER filtering (fit on the kept training data,
  /// applied to train and test) before the SVM sees them. The attack and
  /// the filter always operate in raw feature space -- matching the
  /// paper's setup, where the distance geometry is dominated by the
  /// large-scale heavy-tailed columns while the standardized learner
  /// weighs all features equally.
  bool standardize = true;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config = {});

  /// Run: train' = filter(clean + poison), model = train(scale(train')),
  /// accuracy = model on scale(test). `attack` and `filter` may be null
  /// (no attack / no defense).
  [[nodiscard]] PipelineResult run(const data::Dataset& clean_train,
                                   const data::Dataset& test,
                                   const attack::PoisoningAttack* attack,
                                   std::size_t poison_points,
                                   const Filter* filter,
                                   util::Rng& rng) const;

  /// Everything `run` does before the SGD solve, packaged so a batch
  /// scheduler can train many pipelines' models in lockstep: `train` and
  /// `test` are already filtered AND standardized (when configured), and
  /// `train_rng` is the exact stream the sequential `run` would have
  /// handed the trainer. `run(args...)` is bit-identical to
  /// `finish(prepare(args...), trainer.train(prep.train, prep.train_rng))`.
  struct Prepared {
    data::Dataset train;          // filtered (+ scaled) training data
    data::Dataset test;           // test data in the same feature space
    DetectionScore detection;
    std::size_t train_size = 0;   // after filtering
    util::Rng train_rng{0};
  };

  [[nodiscard]] Prepared prepare(const data::Dataset& clean_train,
                                 const data::Dataset& test,
                                 const attack::PoisoningAttack* attack,
                                 std::size_t poison_points,
                                 const Filter* filter, util::Rng& rng) const;

  /// Assemble the result from a prepared context and its trained model
  /// (accuracy is evaluated on prep.test here).
  [[nodiscard]] static PipelineResult finish(Prepared&& prep,
                                             ml::LinearModel model);

  [[nodiscard]] const PipelineConfig& config() const noexcept {
    return config_;
  }

 private:
  PipelineConfig config_;
};

}  // namespace pg::defense
