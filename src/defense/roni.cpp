#include "defense/roni.h"

#include <algorithm>

#include "ml/metrics.h"
#include "util/error.h"

namespace pg::defense {

RoniFilter::RoniFilter(RoniConfig config) : config_(config) {
  PG_CHECK(config_.trusted_fraction > 0.0 && config_.trusted_fraction < 1.0,
           "trusted_fraction must be in (0, 1)");
  PG_CHECK(config_.batch_size >= 1, "batch_size must be >= 1");
  PG_CHECK(config_.tolerance >= 0.0, "tolerance must be >= 0");
}

std::string RoniFilter::name() const {
  return "roni(batch=" + std::to_string(config_.batch_size) + ")";
}

FilterResult RoniFilter::apply(const data::Dataset& train,
                               util::Rng& rng) const {
  PG_CHECK(!train.empty(), "RoniFilter: empty dataset");
  const std::size_t n = train.size();

  FilterResult result;
  const auto n_trusted = static_cast<std::size_t>(
      config_.trusted_fraction * static_cast<double>(n));
  if (n_trusted < 4 || n - n_trusted < config_.batch_size) {
    result.kept = train;  // too small to run RONI meaningfully
    return result;
  }

  // Sample the trusted pool; half becomes the training base, half the
  // calibration (holdout) set.
  std::vector<std::size_t> trusted = rng.sample_without_replacement(n, n_trusted);
  std::sort(trusted.begin(), trusted.end());
  std::vector<bool> is_trusted(n, false);
  for (std::size_t i : trusted) is_trusted[i] = true;

  std::vector<std::size_t> base_idx;
  std::vector<std::size_t> calib_idx;
  for (std::size_t k = 0; k < trusted.size(); ++k) {
    (k % 2 == 0 ? base_idx : calib_idx).push_back(trusted[k]);
  }
  data::Dataset base = train.select(base_idx);
  const data::Dataset calib = train.select(calib_idx);
  // The calibration set must contain both classes to measure accuracy
  // drops; otherwise accept everything (RONI is undefined).
  if (calib.count_label(1) == 0 || calib.count_label(-1) == 0 ||
      base.count_label(1) == 0 || base.count_label(-1) == 0) {
    result.kept = train;
    return result;
  }

  const ml::SvmTrainer trainer(config_.svm);
  util::Rng base_rng = rng.fork(17);
  ml::LinearModel base_model = trainer.train(base, base_rng);
  double base_acc = ml::accuracy(base_model, calib);

  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_trusted[i]) candidates.push_back(i);
  }
  rng.shuffle(candidates);

  std::vector<std::size_t> kept_idx(trusted.begin(), trusted.end());
  for (std::size_t start = 0; start < candidates.size();
       start += config_.batch_size) {
    const std::size_t end =
        std::min(candidates.size(), start + config_.batch_size);
    data::Dataset with_batch = base;
    for (std::size_t k = start; k < end; ++k) {
      with_batch.append(train.instance(candidates[k]),
                        train.label(candidates[k]));
    }
    util::Rng batch_rng = rng.fork(100 + start);
    const ml::LinearModel m = trainer.train(with_batch, batch_rng);
    const double acc = ml::accuracy(m, calib);
    if (acc + config_.tolerance >= base_acc) {
      // Accept: batch joins the base (incremental RONI).
      for (std::size_t k = start; k < end; ++k) {
        kept_idx.push_back(candidates[k]);
      }
      base = std::move(with_batch);
      base_acc = std::max(base_acc, acc);
    } else {
      for (std::size_t k = start; k < end; ++k) {
        result.removed_indices.push_back(candidates[k]);
      }
    }
  }

  std::sort(kept_idx.begin(), kept_idx.end());
  std::sort(result.removed_indices.begin(), result.removed_indices.end());
  result.kept = train.select(kept_idx);
  return result;
}

}  // namespace pg::defense
