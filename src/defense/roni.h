// Reject On Negative Impact (Nelson et al.) baseline sanitizer.
//
// Candidate batches are accepted only if adding them to a trusted base set
// does not reduce accuracy on a held-out calibration set by more than a
// tolerance. Expensive (one model retraining per batch) but attack-
// agnostic; the defense-ablation bench includes it as the classic
// sanitization comparator.
#pragma once

#include <string>

#include "defense/filter.h"
#include "ml/svm.h"

namespace pg::defense {

struct RoniConfig {
  /// Fraction of the input treated as the trusted base + calibration sets
  /// (sampled uniformly; the paper's RONI assumes some trusted data).
  double trusted_fraction = 0.2;
  /// Candidates are evaluated in batches of this size (1 = pure RONI;
  /// larger batches trade fidelity for speed).
  std::size_t batch_size = 32;
  /// Maximum tolerated accuracy drop when accepting a batch. Must absorb
  /// the SGD noise of two cheap trainings, or genuine batches get
  /// rejected wholesale.
  double tolerance = 0.01;
  /// Trainer used for the impact measurements (cheap settings: RONI
  /// retrains O(n / batch_size) times).
  ml::SvmConfig svm{.epochs = 30, .lambda = 1e-4, .average = true};
};

class RoniFilter final : public Filter {
 public:
  explicit RoniFilter(RoniConfig config);

  [[nodiscard]] FilterResult apply(const data::Dataset& train,
                                   util::Rng& rng) const override;

  [[nodiscard]] std::string name() const override;

 private:
  RoniConfig config_;
};

}  // namespace pg::defense
