#include "game/best_response.h"

#include <algorithm>

#include "util/error.h"

namespace pg::game {

BestResponse best_row_response(const MatrixGame& game,
                               const MixedStrategy& col_strategy) {
  const auto payoffs = game.row_payoffs(col_strategy);
  const auto it = std::max_element(payoffs.begin(), payoffs.end());
  return {static_cast<std::size_t>(it - payoffs.begin()), *it};
}

BestResponse best_col_response(const MatrixGame& game,
                               const MixedStrategy& row_strategy) {
  const auto payoffs = game.col_payoffs(row_strategy);
  const auto it = std::min_element(payoffs.begin(), payoffs.end());
  return {static_cast<std::size_t>(it - payoffs.begin()), *it};
}

double exploitability(const MatrixGame& game,
                      const MixedStrategy& row_strategy,
                      const MixedStrategy& col_strategy) {
  const double u = game.expected_payoff(row_strategy, col_strategy);
  const double row_gain = best_row_response(game, col_strategy).payoff - u;
  const double col_gain = u - best_col_response(game, row_strategy).payoff;
  // Each term is >= 0 up to fp rounding.
  return std::max(0.0, row_gain) + std::max(0.0, col_gain);
}

}  // namespace pg::game
