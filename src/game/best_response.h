// Best responses and exploitability.
//
// Exploitability (the "Nash gap") is the library's universal equilibrium
// quality metric: it is zero exactly at an equilibrium and upper-bounds how
// much either player gains by deviating. The mixed-defense evaluation uses
// it to confirm Algorithm 1's output is near-optimal against a rational
// attacker.
#pragma once

#include <cstddef>

#include "game/matrix_game.h"

namespace pg::game {

struct BestResponse {
  std::size_t action = 0;
  double payoff = 0.0;  // payoff to the responding player's objective
};

/// Row player's best pure response to a column mixture (max payoff).
[[nodiscard]] BestResponse best_row_response(const MatrixGame& game,
                                             const MixedStrategy& col_strategy);

/// Column player's best pure response to a row mixture (min payoff,
/// reported as the row-player payoff it induces).
[[nodiscard]] BestResponse best_col_response(const MatrixGame& game,
                                             const MixedStrategy& row_strategy);

/// exploitability(p, q) = [max_i u(i, q) - u(p, q)] + [u(p, q) - min_j u(p, j)]
/// Non-negative; zero iff (p, q) is an equilibrium.
[[nodiscard]] double exploitability(const MatrixGame& game,
                                    const MixedStrategy& row_strategy,
                                    const MixedStrategy& col_strategy);

}  // namespace pg::game
