#include "game/lp.h"

#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel_reduce.h"
#include "util/error.h"

namespace pg::game {

namespace {
constexpr double kEps = 1e-11;
constexpr std::size_t kPricingGrain = 192;
}  // namespace

LpPricing parse_lp_pricing(const std::string& name) {
  if (name == "bland") return LpPricing::kBland;
  if (name == "dantzig") return LpPricing::kDantzig;
  PG_CHECK(false, "unknown LP pricing rule: " + name);
  return LpPricing::kBland;  // unreachable
}

const char* lp_pricing_name(LpPricing pricing) {
  return pricing == LpPricing::kDantzig ? "dantzig" : "bland";
}

LpSolution solve_lp(const LpProblem& problem, runtime::Executor* executor,
                    const LpConfig& config) {
  obs::Span span("simplex", "solver");
  const std::size_t m = problem.a.rows();
  const std::size_t n = problem.a.cols();
  PG_CHECK(m > 0 && n > 0, "solve_lp: empty problem");
  PG_CHECK(problem.b.size() == m, "solve_lp: b size mismatch");
  PG_CHECK(problem.c.size() == n, "solve_lp: c size mismatch");
  for (double bi : problem.b) {
    PG_CHECK(bi >= 0.0, "solve_lp: requires b >= 0 (all-slack basis)");
  }

  // Tableau layout: columns [0, n) structural, [n, n+m) slack, column n+m
  // is the RHS. Row m is the objective row storing reduced costs
  // (z_j - c_j form: we keep -c and add rows, so entry > -kEps means done).
  const std::size_t cols = n + m + 1;
  std::vector<std::vector<double>> t(m + 1, std::vector<double>(cols, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t[i][j] = problem.a(i, j);
    t[i][n + i] = 1.0;
    t[i][cols - 1] = problem.b[i];
  }
  for (std::size_t j = 0; j < n; ++j) t[m][j] = -problem.c[j];

  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) basis[i] = n + i;

  const std::size_t row_grain = runtime::grain_for_cells(cols);
  const double* objective_row = t[m].data();

  LpSolution sol;
  const std::size_t max_iters = 50 * (m + n) * (m + n) + 1000;
  // Dantzig pricing has no anti-cycling guarantee; past this (generous,
  // deterministic) pivot budget the solver falls back to Bland, whose
  // guarantee then finishes the solve. Well-behaved problems optimize in
  // O(m + n) pivots and never get near it.
  const std::size_t dantzig_budget = 16 * (m + n) + 256;
  for (;;) {
    // Entering column. Bland: smallest index with negative reduced cost
    // (the blocked parallel scan returns exactly the serial first hit).
    // Dantzig: most negative reduced cost, smallest index on exact ties
    // (parallel_argmin reproduces the serial scan bit for bit).
    const bool dantzig = config.pricing == LpPricing::kDantzig &&
                         sol.iterations < dantzig_budget;
    std::size_t enter;
    if (dantzig) {
      const std::size_t best = runtime::parallel_argmin(
          executor, 0, cols - 1, kPricingGrain,
          [objective_row](std::size_t j) { return objective_row[j]; });
      enter = objective_row[best] < -kEps ? best : cols - 1;
    } else {
      enter = runtime::parallel_find_first(
          executor, 0, cols - 1, kPricingGrain,
          [objective_row](std::size_t j) { return objective_row[j] < -kEps; });
    }
    if (enter == cols - 1) break;  // optimal

    // Leaving row: minimum ratio; ties broken by smallest basis index
    // (Bland). The running best_ratio is order-dependent through the
    // epsilon band, so this O(m) fold stays serial -- the pivot cost
    // lives in the O(m * cols) elimination below.
    std::size_t leave = m;  // sentinel
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (t[i][enter] > kEps) {
        const double ratio = t[i][cols - 1] / t[i][enter];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leave == m || basis[i] < basis[leave]))) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == m) {
      sol.status = LpStatus::kUnbounded;
      return sol;
    }

    // Pivot on (leave, enter): normalize the pivot row, then eliminate the
    // entering column from every other row. Rows are independent -- each
    // is updated by the same per-row arithmetic whether it runs inline or
    // on a worker, so the parallel tableau is bit-identical.
    const double pivot = t[leave][enter];
    for (double& v : t[leave]) v /= pivot;
    const double* pivot_row = t[leave].data();
    runtime::parallel_for(
        executor, 0, m + 1, row_grain, [&](std::size_t i) {
          if (i == leave) return;
          const double factor = t[i][enter];
          if (factor == 0.0) return;
          double* row = t[i].data();
          for (std::size_t j = 0; j < cols; ++j) {
            row[j] -= factor * pivot_row[j];
          }
        });
    basis[leave] = enter;

    ++sol.iterations;
    PG_ASSERT(sol.iterations <= max_iters,
              "simplex failed to terminate (cycling despite Bland's rule?)");
  }

  {
    static obs::Counter& pivots = obs::counter("obs.lp.pivots");
    pivots.add(sol.iterations);
    if (config.pricing == LpPricing::kDantzig &&
        sol.iterations > dantzig_budget) {
      static obs::Counter& fallbacks =
          obs::counter("obs.lp.dantzig_fallbacks");
      fallbacks.add(1);
    }
  }

  sol.status = LpStatus::kOptimal;
  sol.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n) sol.x[basis[i]] = t[i][cols - 1];
  }
  sol.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    sol.objective += problem.c[j] * sol.x[j];
  }
  // Dual prices are the reduced costs of the slack columns at optimum.
  sol.dual.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) sol.dual[i] = t[m][n + i];
  return sol;
}

}  // namespace pg::game
