#include "game/lp.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace pg::game {

namespace {
constexpr double kEps = 1e-11;
}

LpSolution solve_lp(const LpProblem& problem) {
  const std::size_t m = problem.a.rows();
  const std::size_t n = problem.a.cols();
  PG_CHECK(m > 0 && n > 0, "solve_lp: empty problem");
  PG_CHECK(problem.b.size() == m, "solve_lp: b size mismatch");
  PG_CHECK(problem.c.size() == n, "solve_lp: c size mismatch");
  for (double bi : problem.b) {
    PG_CHECK(bi >= 0.0, "solve_lp: requires b >= 0 (all-slack basis)");
  }

  // Tableau layout: columns [0, n) structural, [n, n+m) slack, column n+m
  // is the RHS. Row m is the objective row storing reduced costs
  // (z_j - c_j form: we keep -c and add rows, so entry > -kEps means done).
  const std::size_t cols = n + m + 1;
  std::vector<std::vector<double>> t(m + 1, std::vector<double>(cols, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t[i][j] = problem.a(i, j);
    t[i][n + i] = 1.0;
    t[i][cols - 1] = problem.b[i];
  }
  for (std::size_t j = 0; j < n; ++j) t[m][j] = -problem.c[j];

  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) basis[i] = n + i;

  LpSolution sol;
  const std::size_t max_iters = 50 * (m + n) * (m + n) + 1000;
  for (;;) {
    // Entering column: Bland's rule -- smallest index with negative
    // reduced cost.
    std::size_t enter = cols;  // sentinel
    for (std::size_t j = 0; j + 1 < cols; ++j) {
      if (t[m][j] < -kEps) {
        enter = j;
        break;
      }
    }
    if (enter == cols) break;  // optimal

    // Leaving row: minimum ratio; ties broken by smallest basis index
    // (Bland).
    std::size_t leave = m;  // sentinel
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (t[i][enter] > kEps) {
        const double ratio = t[i][cols - 1] / t[i][enter];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leave == m || basis[i] < basis[leave]))) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == m) {
      sol.status = LpStatus::kUnbounded;
      return sol;
    }

    // Pivot on (leave, enter).
    const double pivot = t[leave][enter];
    for (double& v : t[leave]) v /= pivot;
    for (std::size_t i = 0; i <= m; ++i) {
      if (i == leave) continue;
      const double factor = t[i][enter];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < cols; ++j) {
        t[i][j] -= factor * t[leave][j];
      }
    }
    basis[leave] = enter;

    ++sol.iterations;
    PG_ASSERT(sol.iterations <= max_iters,
              "simplex failed to terminate (cycling despite Bland's rule?)");
  }

  sol.status = LpStatus::kOptimal;
  sol.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n) sol.x[basis[i]] = t[i][cols - 1];
  }
  sol.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    sol.objective += problem.c[j] * sol.x[j];
  }
  // Dual prices are the reduced costs of the slack columns at optimum.
  sol.dual.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) sol.dual[i] = t[m][n + i];
  return sol;
}

}  // namespace pg::game
