// Dense primal simplex solver for linear programs in the canonical form
//
//   maximize    c^T x
//   subject to  A x <= b,   x >= 0,   with b >= 0
//
// b >= 0 makes the all-slack basis feasible, which is all the library
// needs: the zero-sum matrix-game reduction produces exactly this form
// (constraints B z <= 1 after shifting the payoff matrix positive).
// Bland's anti-cycling rule guarantees termination. The dual solution is
// recovered from the reduced costs of the slack columns, which is how one
// simplex solve yields BOTH players' equilibrium strategies.
//
// Passing an Executor parallelizes each pivot's inner loops -- the
// Bland pricing scan over columns and the row elimination -- with results
// bit-identical to the serial solve at any thread count: the pricing
// reduction is an exact smallest-index fold and every eliminated row is
// updated by the same per-row arithmetic regardless of scheduling.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "la/matrix.h"

namespace pg::runtime {
class Executor;
}

namespace pg::game {

enum class LpStatus { kOptimal, kUnbounded };

/// Entering-column pricing rule.
enum class LpPricing {
  /// Bland's rule: smallest index with a negative reduced cost. Slower on
  /// big tableaus but carries the anti-cycling termination guarantee, so
  /// it is the default (and the determinism reference).
  kBland,
  /// Dantzig's rule: most negative reduced cost (smallest index on exact
  /// ties), which usually takes far fewer pivots. Dantzig alone can cycle
  /// on degenerate problems, so the solver deterministically switches to
  /// Bland once the pivot count passes a problem-sized threshold -- the
  /// classic hybrid that keeps both speed and termination. Both rules are
  /// bit-deterministic at any thread count (exact chunked reductions).
  kDantzig,
};

struct LpConfig {
  LpPricing pricing = LpPricing::kBland;
};

/// Parse "bland" / "dantzig" (exact spelling). Throws
/// std::invalid_argument on anything else.
[[nodiscard]] LpPricing parse_lp_pricing(const std::string& name);
[[nodiscard]] const char* lp_pricing_name(LpPricing pricing);

struct LpSolution {
  LpStatus status = LpStatus::kOptimal;
  double objective = 0.0;
  std::vector<double> x;     // primal solution (size = #variables)
  std::vector<double> dual;  // dual prices, one per constraint
  /// Number of simplex pivots performed. 0 when the all-slack basis is
  /// already optimal; identical for serial and parallel solves (both walk
  /// the same pivot sequence).
  std::size_t iterations = 0;
};

struct LpProblem {
  la::Matrix a;            // m x n constraint matrix
  std::vector<double> b;   // m right-hand sides, all >= 0
  std::vector<double> c;   // n objective coefficients (maximize)
};

/// Solve the LP. Throws std::invalid_argument on malformed input
/// (dimension mismatch or negative b). `executor` (null -> serial)
/// parallelizes the per-pivot pricing scan and row elimination.
[[nodiscard]] LpSolution solve_lp(const LpProblem& problem,
                                  runtime::Executor* executor = nullptr,
                                  const LpConfig& config = {});

}  // namespace pg::game
