#include "game/matrix_game.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "runtime/parallel_reduce.h"
#include "util/error.h"

namespace pg::game {

bool is_distribution(const MixedStrategy& p, double tol) {
  if (p.empty()) return false;
  double total = 0.0;
  for (double v : p) {
    if (v < -tol) return false;
    total += v;
  }
  return std::abs(total - 1.0) <= tol;
}

MixedStrategy normalize(MixedStrategy weights) {
  double total = 0.0;
  for (double w : weights) {
    PG_CHECK(w >= 0.0, "normalize: negative weight");
    total += w;
  }
  PG_CHECK(total > 0.0, "normalize: zero total weight");
  for (double& w : weights) w /= total;
  return weights;
}

MatrixGame::MatrixGame(la::Matrix payoff_to_row)
    : payoff_(std::move(payoff_to_row)) {
  PG_CHECK(!payoff_.empty(), "MatrixGame requires a non-empty payoff matrix");
}

double MatrixGame::payoff_at(std::size_t row, std::size_t col) const {
  return payoff_.at(row, col);
}

double MatrixGame::expected_payoff(const MixedStrategy& row_strategy,
                                   const MixedStrategy& col_strategy) const {
  PG_CHECK(row_strategy.size() == num_rows(),
           "expected_payoff: row strategy size mismatch");
  PG_CHECK(col_strategy.size() == num_cols(),
           "expected_payoff: col strategy size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < num_rows(); ++i) {
    if (row_strategy[i] == 0.0) continue;
    double inner = 0.0;
    for (std::size_t j = 0; j < num_cols(); ++j) {
      inner += payoff_(i, j) * col_strategy[j];
    }
    total += row_strategy[i] * inner;
  }
  return total;
}

std::vector<double> MatrixGame::row_payoffs(const MixedStrategy& col_strategy,
                                            runtime::Executor* executor) const {
  PG_CHECK(col_strategy.size() == num_cols(),
           "row_payoffs: strategy size mismatch");
  std::vector<double> out(num_rows(), 0.0);
  runtime::parallel_for(
      executor, 0, num_rows(), runtime::grain_for_cells(num_cols()), [&](std::size_t i) {
        for (std::size_t j = 0; j < num_cols(); ++j) {
          out[i] += payoff_(i, j) * col_strategy[j];
        }
      });
  return out;
}

std::vector<double> MatrixGame::col_payoffs(const MixedStrategy& row_strategy,
                                            runtime::Executor* executor) const {
  PG_CHECK(row_strategy.size() == num_rows(),
           "col_payoffs: strategy size mismatch");
  const std::size_t m = num_rows();
  const std::size_t n = num_cols();
  std::vector<double> out(n, 0.0);
  // Column-blocked A^T p: each task owns a contiguous column slice and
  // walks the payoff matrix row-major (the cache-friendly direction),
  // instead of one stride-n column walk per task. Block count balances
  // two pressures: slices no wider than 512 doubles (the output stays
  // L1-resident across all rows) and enough slices to occupy every
  // worker, with a 64-column floor so tiny slices do not shred
  // locality. Every out[j] still accumulates in ascending row order, so
  // the result is bit-identical to the per-column loop at any block
  // size or thread count.
  constexpr std::size_t kMaxBlockCols = 512;
  constexpr std::size_t kMinBlockCols = 64;
  const std::size_t workers =
      executor != nullptr ? executor->concurrency() : 1;
  const std::size_t for_cache = (n + kMaxBlockCols - 1) / kMaxBlockCols;
  const std::size_t for_workers =
      std::clamp<std::size_t>(n / kMinBlockCols, 1, workers);
  const std::size_t blocks = std::max(for_cache, for_workers);
  const std::size_t block = (n + blocks - 1) / blocks;
  runtime::parallel_for(executor, 0, blocks, 1, [&](std::size_t b) {
    const std::size_t j_lo = b * block;
    const std::size_t j_hi = j_lo + block < n ? j_lo + block : n;
    for (std::size_t i = 0; i < m; ++i) {
      const double pi = row_strategy[i];
      for (std::size_t j = j_lo; j < j_hi; ++j) {
        out[j] += payoff_(i, j) * pi;
      }
    }
  });
  return out;
}

double MatrixGame::maximin_value() const {
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < num_rows(); ++i) {
    double worst = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < num_cols(); ++j) {
      worst = std::min(worst, payoff_(i, j));
    }
    best = std::max(best, worst);
  }
  return best;
}

double MatrixGame::minimax_value() const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < num_cols(); ++j) {
    double worst = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < num_rows(); ++i) {
      worst = std::max(worst, payoff_(i, j));
    }
    best = std::min(best, worst);
  }
  return best;
}

}  // namespace pg::game
