// Finite two-player zero-sum matrix games.
//
// The continuous poisoning game of the paper is discretized onto a grid of
// attacker radii x defender filter strengths; the resulting MatrixGame is
// used to (a) verify Proposition 1 (no saddle point) and (b) cross-check
// Algorithm 1's output against an exact LP equilibrium (Proposition 2).
//
// Convention: entry (i, j) is the payoff to the ROW player (maximizer)
// when row i and column j are played; the column player minimizes.
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.h"

namespace pg::runtime {
class Executor;
}

namespace pg::game {

/// A mixed strategy: a probability vector over pure actions.
using MixedStrategy = std::vector<double>;

/// True if p is a valid distribution (non-negative, sums to 1 within tol).
[[nodiscard]] bool is_distribution(const MixedStrategy& p, double tol = 1e-9);

/// Project an arbitrary non-negative weight vector to a distribution.
/// Requires a positive total.
[[nodiscard]] MixedStrategy normalize(MixedStrategy weights);

class MatrixGame {
 public:
  /// Requires a non-empty payoff matrix.
  explicit MatrixGame(la::Matrix payoff_to_row);

  [[nodiscard]] std::size_t num_rows() const noexcept {
    return payoff_.rows();
  }
  [[nodiscard]] std::size_t num_cols() const noexcept {
    return payoff_.cols();
  }
  [[nodiscard]] const la::Matrix& payoff() const noexcept { return payoff_; }

  /// Payoff to the row player for a pure action pair.
  [[nodiscard]] double payoff_at(std::size_t row, std::size_t col) const;

  /// Expected payoff to the row player under mixed strategies (p, q).
  [[nodiscard]] double expected_payoff(const MixedStrategy& row_strategy,
                                       const MixedStrategy& col_strategy) const;

  /// Expected payoff of each pure row against the column mixture q.
  /// `executor` (null -> serial) parallelizes the per-row dot products;
  /// each entry accumulates in the same index order either way, so the
  /// result is bit-identical at any thread count.
  [[nodiscard]] std::vector<double> row_payoffs(
      const MixedStrategy& col_strategy,
      runtime::Executor* executor = nullptr) const;

  /// Expected payoff of each pure column against the row mixture p.
  [[nodiscard]] std::vector<double> col_payoffs(
      const MixedStrategy& row_strategy,
      runtime::Executor* executor = nullptr) const;

  /// max_i min_j and min_j max_i of the payoff matrix (pure security
  /// levels). A pure saddle point exists iff they are equal.
  [[nodiscard]] double maximin_value() const;
  [[nodiscard]] double minimax_value() const;

 private:
  la::Matrix payoff_;
};

/// Solution of a zero-sum game.
struct Equilibrium {
  MixedStrategy row_strategy;
  MixedStrategy col_strategy;
  double value = 0.0;  // game value (payoff to the row player)
  /// Work the solver actually did: simplex pivots for the LP solver, the
  /// configured iteration count for the iterative solvers. Telemetry
  /// only -- never part of the equilibrium comparison.
  std::size_t iterations = 0;
};

}  // namespace pg::game
