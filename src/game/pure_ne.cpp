#include "game/pure_ne.h"

#include <algorithm>
#include <limits>

namespace pg::game {

std::vector<PureEquilibrium> find_pure_equilibria(const MatrixGame& game,
                                                  double tol) {
  const std::size_t m = game.num_rows();
  const std::size_t n = game.num_cols();

  std::vector<double> col_max(n, -std::numeric_limits<double>::infinity());
  std::vector<double> row_min(m, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double v = game.payoff_at(i, j);
      col_max[j] = std::max(col_max[j], v);
      row_min[i] = std::min(row_min[i], v);
    }
  }

  std::vector<PureEquilibrium> out;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double v = game.payoff_at(i, j);
      if (v >= col_max[j] - tol && v <= row_min[i] + tol) {
        out.push_back({i, j, v});
      }
    }
  }
  return out;
}

bool has_pure_equilibrium(const MatrixGame& game, double tol) {
  return game.minimax_value() - game.maximin_value() <= tol;
}

double pure_strategy_gap(const MatrixGame& game) {
  return std::max(0.0, game.minimax_value() - game.maximin_value());
}

}  // namespace pg::game
