// Pure-strategy equilibrium (saddle point) detection.
//
// Proposition 1 of the paper claims the poisoning game has no pure NE; the
// bench_prop1 harness discretizes the continuous game and uses
// find_pure_equilibria to confirm the claim numerically on the measured
// payoff curves.
#pragma once

#include <cstddef>
#include <vector>

#include "game/matrix_game.h"

namespace pg::game {

struct PureEquilibrium {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// All (row, col) cells that are simultaneously a column-wise maximum and a
/// row-wise minimum (within tol), i.e. saddle points of the payoff matrix.
[[nodiscard]] std::vector<PureEquilibrium> find_pure_equilibria(
    const MatrixGame& game, double tol = 1e-12);

/// Convenience: true iff the game has at least one saddle point, which for
/// zero-sum games is equivalent to maximin == minimax (within tol).
[[nodiscard]] bool has_pure_equilibrium(const MatrixGame& game,
                                        double tol = 1e-12);

/// The duality gap minimax - maximin (>= 0); strictly positive exactly when
/// no pure equilibrium exists.
[[nodiscard]] double pure_strategy_gap(const MatrixGame& game);

}  // namespace pg::game
