#include "game/solvers.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "game/lp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel_reduce.h"
#include "runtime/persistent_team.h"
#include "util/error.h"

namespace pg::game {

void ConvergenceTrace::push(std::size_t iteration, double gap) {
  if (!wants(iteration)) return;
  samples.push_back({iteration, gap});
  if (samples.size() >= max_samples) {
    // Keep every other sample (iterations at multiples of the doubled
    // stride, since recording started at 0) and coarsen future pushes.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < samples.size(); i += 2) {
      samples[kept++] = samples[i];
    }
    samples.resize(kept);
    stride *= 2;
  }
}

namespace {

/// How many chunks to cut one player's best-response scan into. The scan
/// costs O(dim) per iteration, so the per-iteration fork-join only pays
/// for itself on wide games; below the threshold everything collapses to
/// one chunk per player (still overlapping the two players on two
/// threads). Chunking affects scheduling only -- the deterministic fold
/// makes the result identical at any value.
std::size_t scan_chunks(std::size_t dim, runtime::Executor* executor) {
  if (executor == nullptr) return 1;
  const std::size_t workers = executor->concurrency();
  if (workers <= 1) return 1;
  constexpr std::size_t kMinChunk = 512;
  const std::size_t by_size = dim / kMinChunk;
  return std::clamp<std::size_t>(by_size, 1, workers);
}

// -------------------------------------------------- persistent-team path
// An iterative solve issues the SAME O(m + n) or O(m * n) step thousands
// of times. Routing each step through parallel_for pays a dispatch
// (allocation + queue + wake-up) per chunk per iteration, which on narrow
// games outweighs the step itself -- the fork-join "loses to dispatch
// overhead" case called out in ROADMAP.md. When the solve is big enough
// to amortize thread spawn and NOT already running inside a pool task
// (where extra resident threads would oversubscribe), the solvers below
// lease a resident team (runtime::TeamLease -- a parked PersistentTeam
// is reused across solves instead of spawned per solve) and drive every
// iteration over its spin barrier instead. Chunking can be much finer than the dispatch
// path's -- a barrier crossing is ~two atomics -- and determinism is
// untouched: chunk partials still fold in ascending order with exact
// comparisons, so serial, dispatched, and team solves are bit-identical.

/// Minimum iterations before a resident team amortizes its spawn cost.
constexpr std::size_t kTeamMinIterations = 64;
/// Minimum m + n: below this even a barrier outweighs the step.
constexpr std::size_t kTeamMinDim = 8;
/// Team-path chunk floor (cells per chunk) -- far finer than the
/// dispatch path's 512 because the per-chunk overhead is a strided loop
/// bound, not a queue round-trip.
constexpr std::size_t kTeamMinChunk = 64;

bool team_pays(std::size_t rows, std::size_t cols, std::size_t iterations,
               std::size_t cells_per_iteration, runtime::Executor* executor,
               IterativeBackend backend) {
  // A team is only possible with spare workers and outside the pool
  // (resident threads under a pool task would oversubscribe); within
  // that, kAuto applies the amortization floors and kTeam/kDispatch
  // force the choice (the solver_parallel bench measures them head to
  // head).
  if (executor == nullptr || executor->concurrency() <= 1 ||
      runtime::on_pool_worker() || backend == IterativeBackend::kDispatch) {
    return false;
  }
  if (backend == IterativeBackend::kTeam) return true;
  return iterations >= kTeamMinIterations && rows + cols >= kTeamMinDim &&
         iterations * cells_per_iteration >= team_dispatch_min_work();
}

std::size_t team_chunks(std::size_t dim, std::size_t workers) {
  return std::clamp<std::size_t>(dim / kTeamMinChunk, 1, workers);
}

// ------------------------------------------------- kAuto work calibration

/// Bounds on the calibrated cutoff. The floor keeps a freakishly fast
/// probe (or a truncated timer) from standing up teams for trivial
/// solves; the ceiling keeps a noisy first-call measurement (cold caches,
/// a descheduled probe thread) from locking the team path out entirely.
constexpr std::size_t kTeamMinWorkFloor = 64 * 1024;
constexpr std::size_t kTeamMinWorkCeil = 4 * 1024 * 1024;
/// Arithmetic a solve must carry before the resident team's spawn + join
/// (~100us of thread management) is clearly amortized: ~5x that cost.
constexpr double kTeamSpawnBudgetNs = 500'000.0;

/// Time the representative per-cell step -- a fused score-update +
/// best-response scan, the same shape both iterative solvers issue every
/// iteration -- and return the best-of-passes per-cell nanoseconds.
double probe_per_cell_ns() {
  constexpr std::size_t kCells = 16 * 1024;
  constexpr int kPasses = 5;
  std::vector<double> scores(kCells, 0.0);
  std::vector<double> column(kCells);
  for (std::size_t i = 0; i < kCells; ++i) {
    column[i] = static_cast<double>(i % 97) * 1e-3;
  }
  double best_ns = std::numeric_limits<double>::infinity();
  double sink = 0.0;
  for (int pass = 0; pass < kPasses; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    double best = -std::numeric_limits<double>::infinity();
    std::size_t arg = 0;
    for (std::size_t i = 0; i < kCells; ++i) {
      scores[i] += column[i];
      if (scores[i] > best) {
        best = scores[i];
        arg = i;
      }
    }
    const auto stop = std::chrono::steady_clock::now();
    sink += best + static_cast<double>(arg);
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count());
    best_ns = std::min(best_ns, ns);
  }
  // Keep `sink` live so the scan cannot be optimized away.
  if (sink == std::numeric_limits<double>::quiet_NaN()) std::abort();
  return std::max(best_ns, 1.0) / static_cast<double>(kCells);
}

}  // namespace

std::size_t team_dispatch_min_work() {
  static const std::size_t cutoff = [] {
    std::size_t value = 0;
    if (const char* env = std::getenv("PG_TEAM_MIN_WORK");
        env != nullptr && *env != '\0') {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      PG_CHECK(end != nullptr && *end == '\0',
               "PG_TEAM_MIN_WORK: expected a cell count, got '" +
                   std::string(env) + "'");
      value = static_cast<std::size_t>(parsed);
    } else {
      value = static_cast<std::size_t>(kTeamSpawnBudgetNs /
                                       probe_per_cell_ns());
    }
    return std::clamp(value, kTeamMinWorkFloor, kTeamMinWorkCeil);
  }();
  // Re-recorded (cheap CAS-max) on every call so the gauge survives the
  // per-run metric resets the scenario engine performs.
  obs::gauge("obs.solver.team_min_work").record(cutoff);
  return cutoff;
}

Equilibrium solve_lp_equilibrium(const MatrixGame& game,
                                 runtime::Executor* executor,
                                 const LpConfig& lp) {
  obs::Span span("lp_equilibrium", "solver");
  const std::size_t m = game.num_rows();
  const std::size_t n = game.num_cols();

  // Shift the payoff matrix strictly positive so the game value is > 0 and
  // the classic normalization applies. Exact min is associative, so the
  // chunked reduction is deterministic at any thread count.
  const la::Matrix& payoff = game.payoff();
  const std::size_t row_grain = runtime::grain_for_cells(n);
  const double lo = runtime::chunked_reduce<double>(
      executor, 0, m, row_grain,
      [&](std::size_t row_lo, std::size_t row_hi) {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = row_lo; i < row_hi; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            best = std::min(best, payoff(i, j));
          }
        }
        return best;
      },
      [](double a, double b) { return std::min(a, b); });
  const double shift = (lo <= 0.0) ? (1.0 - lo) : 0.0;

  // Column player's LP: maximize sum(z) s.t. B z <= 1, z >= 0 where
  // B = payoff + shift. Optimum: sum(z) = 1 / v', q = z * v'; the duals u
  // give the row strategy p = u * v'; game value = v' - shift.
  LpProblem problem;
  problem.a = la::Matrix(m, n);
  runtime::parallel_for(executor, 0, m, row_grain, [&](std::size_t i) {
    for (std::size_t j = 0; j < n; ++j) {
      problem.a(i, j) = payoff(i, j) + shift;
    }
  });
  problem.b.assign(m, 1.0);
  problem.c.assign(n, 1.0);

  const LpSolution sol = solve_lp(problem, executor, lp);
  PG_ASSERT(sol.status == LpStatus::kOptimal,
            "shifted matrix game LP must be bounded");
  PG_ASSERT(sol.objective > 0.0, "shifted game value must be positive");

  const double v_shifted = 1.0 / sol.objective;
  Equilibrium eq;
  eq.value = v_shifted - shift;
  eq.col_strategy.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    eq.col_strategy[j] = std::max(0.0, sol.x[j] * v_shifted);
  }
  eq.row_strategy.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    eq.row_strategy[i] = std::max(0.0, sol.dual[i] * v_shifted);
  }
  eq.row_strategy = normalize(std::move(eq.row_strategy));
  eq.col_strategy = normalize(std::move(eq.col_strategy));
  eq.iterations = sol.iterations;
  return eq;
}

Equilibrium solve_fictitious_play(const MatrixGame& game,
                                  const IterativeConfig& config,
                                  runtime::Executor* executor) {
  obs::Span span("fictitious_play", "solver");
  PG_CHECK(config.iterations >= 1, "iterations must be >= 1");
  const std::size_t m = game.num_rows();
  const std::size_t n = game.num_cols();
  const la::Matrix& payoff = game.payoff();

  std::vector<double> row_counts(m, 0.0);
  std::vector<double> col_counts(n, 0.0);
  // Cumulative payoffs of each pure action against the opponent's play
  // history; best response = argmax / argmin without renormalizing.
  std::vector<double> row_scores(m, 0.0);
  std::vector<double> col_scores(n, 0.0);

  // Pick the execution backend for the whole solve: a resident
  // PersistentTeam when the per-iteration fork-join would lose to
  // dispatch (narrow games, many iterations), the executor's fork-join
  // otherwise, inline when serial. Chunking is fixed up front and the
  // partials are preallocated so the per-iteration loop never touches
  // the heap. Each chunk fuses the score update with its local
  // best-response scan; the ascending-order fold below reproduces
  // std::max_element / std::min_element exactly (strict comparisons at
  // both levels keep the smallest-index tie-break), so the trajectory --
  // and therefore the equilibrium -- is bit-identical to the serial
  // solve on every backend at any thread count.
  const bool use_team =
      team_pays(m, n, config.iterations, m + n, executor, config.backend);
  std::optional<runtime::TeamLease> team;
  std::size_t row_chunks;
  std::size_t col_chunks;
  if (use_team) {
    const std::size_t workers = executor->concurrency();
    row_chunks = team_chunks(m, workers);
    col_chunks = team_chunks(n, workers);
    team.emplace(std::min(workers, row_chunks + col_chunks));
  } else {
    row_chunks = scan_chunks(m, executor);
    col_chunks = scan_chunks(n, executor);
  }
  const std::size_t row_grain = (m + row_chunks - 1) / row_chunks;
  const std::size_t col_grain = (n + col_chunks - 1) / col_chunks;
  // Recompute the counts from the grain so every chunk is non-empty.
  row_chunks = (m + row_grain - 1) / row_grain;
  col_chunks = (n + col_grain - 1) / col_grain;
  std::vector<runtime::ArgExtremum> row_partials(row_chunks);
  std::vector<runtime::ArgExtremum> col_partials(col_chunks);

  std::size_t row_action = 0;
  std::size_t col_action = 0;

  // One scan covers both players: chunks [0, row_chunks) update + scan
  // the row player (maximizer), the rest the column player (minimizer).
  const auto scan_chunk = [&](std::size_t c) {
    if (c < row_chunks) {
      const std::size_t lo = c * row_grain;
      const std::size_t hi = std::min(m, lo + row_grain);
      row_scores[lo] += payoff(lo, col_action);
      runtime::ArgExtremum best{row_scores[lo], lo};
      for (std::size_t i = lo + 1; i < hi; ++i) {
        row_scores[i] += payoff(i, col_action);
        if (row_scores[i] > best.value) best = {row_scores[i], i};
      }
      row_partials[c] = best;
    } else {
      const std::size_t lo = (c - row_chunks) * col_grain;
      const std::size_t hi = std::min(n, lo + col_grain);
      col_scores[lo] += payoff(row_action, lo);
      runtime::ArgExtremum best{col_scores[lo], lo};
      for (std::size_t j = lo + 1; j < hi; ++j) {
        col_scores[j] += payoff(row_action, j);
        if (col_scores[j] < best.value) best = {col_scores[j], j};
      }
      col_partials[c - row_chunks] = best;
    }
  };
  const std::size_t total_chunks = row_chunks + col_chunks;
  // Hoisted std::function shells so the per-iteration loop converts no
  // lambdas (each conversion is a potential allocation).
  const std::function<void(std::size_t)> team_job = [&](std::size_t rank) {
    for (std::size_t c = rank; c < total_chunks; c += team->size()) {
      scan_chunk(c);
    }
  };
  const std::function<void(std::size_t)> dispatch_body = scan_chunk;

  for (std::size_t t = 0; t < config.iterations; ++t) {
    row_counts[row_action] += 1.0;
    col_counts[col_action] += 1.0;

    if (use_team) {
      team->run(team_job);
    } else {
      runtime::parallel_for(executor, 0, total_chunks, 1, dispatch_body);
    }

    runtime::ArgExtremum row_best = row_partials[0];
    for (std::size_t c = 1; c < row_chunks; ++c) {
      if (row_partials[c].value > row_best.value) row_best = row_partials[c];
    }
    runtime::ArgExtremum col_best = col_partials[0];
    for (std::size_t c = 1; c < col_chunks; ++c) {
      if (col_partials[c].value < col_best.value) col_best = col_partials[c];
    }
    row_action = row_best.index;
    col_action = col_best.index;

    // Duality-gap estimate, free: the extrema just folded ARE the
    // best-response cumulative payoffs against t+1 plays of history, so
    // their normalized difference brackets the game value from both
    // sides. Read-only on the trajectory.
    if (config.trace != nullptr && config.trace->wants(t)) {
      const double plays = static_cast<double>(t + 1);
      config.trace->push(t, (row_best.value - col_best.value) / plays);
    }
  }

  Equilibrium eq;
  eq.row_strategy = normalize(std::move(row_counts));
  eq.col_strategy = normalize(std::move(col_counts));
  eq.value = game.expected_payoff(eq.row_strategy, eq.col_strategy);
  eq.iterations = config.iterations;
  return eq;
}

Equilibrium solve_multiplicative_weights(const MatrixGame& game,
                                         const IterativeConfig& config,
                                         runtime::Executor* executor) {
  obs::Span span("multiplicative_weights", "solver");
  PG_CHECK(config.iterations >= 1, "iterations must be >= 1");
  const std::size_t m = game.num_rows();
  const std::size_t n = game.num_cols();
  const la::Matrix& payoff = game.payoff();

  // Scale payoffs to [0, 1] for the standard Hedge guarantee.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      lo = std::min(lo, game.payoff_at(i, j));
      hi = std::max(hi, game.payoff_at(i, j));
    }
  }
  const double range = (hi > lo) ? (hi - lo) : 1.0;

  const auto t_total = static_cast<double>(config.iterations);
  const double eta_row =
      config.learning_rate > 0.0
          ? config.learning_rate
          : std::sqrt(8.0 * std::log(static_cast<double>(std::max<std::size_t>(m, 2))) / t_total);
  const double eta_col =
      config.learning_rate > 0.0
          ? config.learning_rate
          : std::sqrt(8.0 * std::log(static_cast<double>(std::max<std::size_t>(n, 2))) / t_total);

  std::vector<double> row_logw(m, 0.0);
  std::vector<double> col_logw(n, 0.0);
  std::vector<double> row_avg(m, 0.0);
  std::vector<double> col_avg(n, 0.0);

  auto softmax = [](const std::vector<double>& logw) {
    const double mx = *std::max_element(logw.begin(), logw.end());
    std::vector<double> p(logw.size());
    double total = 0.0;
    for (std::size_t i = 0; i < logw.size(); ++i) {
      p[i] = std::exp(logw[i] - mx);
      total += p[i];
    }
    for (double& v : p) v /= total;
    return p;
  };

  // The O(m*n) cost of every Hedge step is the pair of payoff matvecs.
  // Per-entry accumulation order is index-fixed on every backend -- each
  // row payoff sums j-ascending, each column payoff sums i-ascending --
  // so dispatched, team, and serial iterations are all bit-identical.
  // The team job computes both matvecs in one barrier: ranks own
  // contiguous row and column slices, and the column slice walks the
  // matrix row-major (the blocked matvec_transposed access pattern).
  const bool use_team =
      team_pays(m, n, config.iterations, m * n, executor, config.backend);
  std::optional<runtime::TeamLease> team;
  if (use_team) {
    team.emplace(std::min(executor->concurrency(),
                          team_chunks(m, executor->concurrency()) +
                              team_chunks(n, executor->concurrency())));
  }

  std::vector<double> p;
  std::vector<double> q;
  std::vector<double> row_pay(m, 0.0);
  std::vector<double> col_pay(n, 0.0);
  const std::function<void(std::size_t)> team_job = [&](std::size_t rank) {
    const std::size_t ranks = team->size();
    const std::size_t row_lo = m * rank / ranks;
    const std::size_t row_hi = m * (rank + 1) / ranks;
    for (std::size_t i = row_lo; i < row_hi; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) s += payoff(i, j) * q[j];
      row_pay[i] = s;
    }
    const std::size_t col_lo = n * rank / ranks;
    const std::size_t col_hi = n * (rank + 1) / ranks;
    if (col_lo < col_hi) {
      for (std::size_t j = col_lo; j < col_hi; ++j) col_pay[j] = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        const double pi = p[i];
        for (std::size_t j = col_lo; j < col_hi; ++j) {
          col_pay[j] += payoff(i, j) * pi;
        }
      }
    }
  };

  for (std::size_t t = 0; t < config.iterations; ++t) {
    p = softmax(row_logw);
    q = softmax(col_logw);
    for (std::size_t i = 0; i < m; ++i) row_avg[i] += p[i];
    for (std::size_t j = 0; j < n; ++j) col_avg[j] += q[j];

    if (use_team) {
      team->run(team_job);  // row wants high, col wants low
    } else {
      row_pay = game.row_payoffs(q, executor);
      col_pay = game.col_payoffs(p, executor);
    }
    for (std::size_t i = 0; i < m; ++i) {
      row_logw[i] += eta_row * (row_pay[i] - lo) / range;
    }
    for (std::size_t j = 0; j < n; ++j) {
      col_logw[j] -= eta_col * (col_pay[j] - lo) / range;
    }

    // Exploitability spread of this round's mixtures: the best pure
    // deviation for each player against the opponent's current play.
    // O(m + n) scan over payoffs already in hand, and only on sampled
    // iterations; read-only on the trajectory.
    if (config.trace != nullptr && config.trace->wants(t)) {
      double row_best = row_pay[0];
      for (std::size_t i = 1; i < m; ++i) {
        row_best = std::max(row_best, row_pay[i]);
      }
      double col_best = col_pay[0];
      for (std::size_t j = 1; j < n; ++j) {
        col_best = std::min(col_best, col_pay[j]);
      }
      config.trace->push(t, row_best - col_best);
    }
  }

  Equilibrium eq;
  eq.row_strategy = normalize(std::move(row_avg));
  eq.col_strategy = normalize(std::move(col_avg));
  eq.value = game.expected_payoff(eq.row_strategy, eq.col_strategy);
  eq.iterations = config.iterations;
  return eq;
}

}  // namespace pg::game
