#include "game/solvers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "game/lp.h"
#include "util/error.h"

namespace pg::game {

Equilibrium solve_lp_equilibrium(const MatrixGame& game) {
  const std::size_t m = game.num_rows();
  const std::size_t n = game.num_cols();

  // Shift the payoff matrix strictly positive so the game value is > 0 and
  // the classic normalization applies.
  double lo = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      lo = std::min(lo, game.payoff_at(i, j));
    }
  }
  const double shift = (lo <= 0.0) ? (1.0 - lo) : 0.0;

  // Column player's LP: maximize sum(z) s.t. B z <= 1, z >= 0 where
  // B = payoff + shift. Optimum: sum(z) = 1 / v', q = z * v'; the duals u
  // give the row strategy p = u * v'; game value = v' - shift.
  LpProblem lp;
  lp.a = la::Matrix(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      lp.a(i, j) = game.payoff_at(i, j) + shift;
    }
  }
  lp.b.assign(m, 1.0);
  lp.c.assign(n, 1.0);

  const LpSolution sol = solve_lp(lp);
  PG_ASSERT(sol.status == LpStatus::kOptimal,
            "shifted matrix game LP must be bounded");
  PG_ASSERT(sol.objective > 0.0, "shifted game value must be positive");

  const double v_shifted = 1.0 / sol.objective;
  Equilibrium eq;
  eq.value = v_shifted - shift;
  eq.col_strategy.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    eq.col_strategy[j] = std::max(0.0, sol.x[j] * v_shifted);
  }
  eq.row_strategy.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    eq.row_strategy[i] = std::max(0.0, sol.dual[i] * v_shifted);
  }
  eq.row_strategy = normalize(std::move(eq.row_strategy));
  eq.col_strategy = normalize(std::move(eq.col_strategy));
  return eq;
}

Equilibrium solve_fictitious_play(const MatrixGame& game,
                                  const IterativeConfig& config) {
  PG_CHECK(config.iterations >= 1, "iterations must be >= 1");
  const std::size_t m = game.num_rows();
  const std::size_t n = game.num_cols();

  std::vector<double> row_counts(m, 0.0);
  std::vector<double> col_counts(n, 0.0);
  // Cumulative payoffs of each pure action against the opponent's play
  // history; best response = argmax / argmin without renormalizing.
  std::vector<double> row_scores(m, 0.0);
  std::vector<double> col_scores(n, 0.0);

  std::size_t row_action = 0;
  std::size_t col_action = 0;
  for (std::size_t t = 0; t < config.iterations; ++t) {
    row_counts[row_action] += 1.0;
    col_counts[col_action] += 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      row_scores[i] += game.payoff_at(i, col_action);
    }
    for (std::size_t j = 0; j < n; ++j) {
      col_scores[j] += game.payoff_at(row_action, j);
    }
    row_action = static_cast<std::size_t>(
        std::max_element(row_scores.begin(), row_scores.end()) -
        row_scores.begin());
    col_action = static_cast<std::size_t>(
        std::min_element(col_scores.begin(), col_scores.end()) -
        col_scores.begin());
  }

  Equilibrium eq;
  eq.row_strategy = normalize(std::move(row_counts));
  eq.col_strategy = normalize(std::move(col_counts));
  eq.value = game.expected_payoff(eq.row_strategy, eq.col_strategy);
  return eq;
}

Equilibrium solve_multiplicative_weights(const MatrixGame& game,
                                         const IterativeConfig& config) {
  PG_CHECK(config.iterations >= 1, "iterations must be >= 1");
  const std::size_t m = game.num_rows();
  const std::size_t n = game.num_cols();

  // Scale payoffs to [0, 1] for the standard Hedge guarantee.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      lo = std::min(lo, game.payoff_at(i, j));
      hi = std::max(hi, game.payoff_at(i, j));
    }
  }
  const double range = (hi > lo) ? (hi - lo) : 1.0;

  const auto t_total = static_cast<double>(config.iterations);
  const double eta_row =
      config.learning_rate > 0.0
          ? config.learning_rate
          : std::sqrt(8.0 * std::log(static_cast<double>(std::max<std::size_t>(m, 2))) / t_total);
  const double eta_col =
      config.learning_rate > 0.0
          ? config.learning_rate
          : std::sqrt(8.0 * std::log(static_cast<double>(std::max<std::size_t>(n, 2))) / t_total);

  std::vector<double> row_logw(m, 0.0);
  std::vector<double> col_logw(n, 0.0);
  std::vector<double> row_avg(m, 0.0);
  std::vector<double> col_avg(n, 0.0);

  auto softmax = [](const std::vector<double>& logw) {
    const double mx = *std::max_element(logw.begin(), logw.end());
    std::vector<double> p(logw.size());
    double total = 0.0;
    for (std::size_t i = 0; i < logw.size(); ++i) {
      p[i] = std::exp(logw[i] - mx);
      total += p[i];
    }
    for (double& v : p) v /= total;
    return p;
  };

  for (std::size_t t = 0; t < config.iterations; ++t) {
    const auto p = softmax(row_logw);
    const auto q = softmax(col_logw);
    for (std::size_t i = 0; i < m; ++i) row_avg[i] += p[i];
    for (std::size_t j = 0; j < n; ++j) col_avg[j] += q[j];

    const auto row_pay = game.row_payoffs(q);   // row wants high
    const auto col_pay = game.col_payoffs(p);   // col wants low
    for (std::size_t i = 0; i < m; ++i) {
      row_logw[i] += eta_row * (row_pay[i] - lo) / range;
    }
    for (std::size_t j = 0; j < n; ++j) {
      col_logw[j] -= eta_col * (col_pay[j] - lo) / range;
    }
  }

  Equilibrium eq;
  eq.row_strategy = normalize(std::move(row_avg));
  eq.col_strategy = normalize(std::move(col_avg));
  eq.value = game.expected_payoff(eq.row_strategy, eq.col_strategy);
  return eq;
}

}  // namespace pg::game
