#include "game/solvers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "game/lp.h"
#include "runtime/parallel_reduce.h"
#include "util/error.h"

namespace pg::game {

namespace {

/// How many chunks to cut one player's best-response scan into. The scan
/// costs O(dim) per iteration, so the per-iteration fork-join only pays
/// for itself on wide games; below the threshold everything collapses to
/// one chunk per player (still overlapping the two players on two
/// threads). Chunking affects scheduling only -- the deterministic fold
/// makes the result identical at any value.
std::size_t scan_chunks(std::size_t dim, runtime::Executor* executor) {
  if (executor == nullptr) return 1;
  const std::size_t workers = executor->concurrency();
  if (workers <= 1) return 1;
  constexpr std::size_t kMinChunk = 512;
  const std::size_t by_size = dim / kMinChunk;
  return std::clamp<std::size_t>(by_size, 1, workers);
}

}  // namespace

Equilibrium solve_lp_equilibrium(const MatrixGame& game,
                                 runtime::Executor* executor,
                                 const LpConfig& lp) {
  const std::size_t m = game.num_rows();
  const std::size_t n = game.num_cols();

  // Shift the payoff matrix strictly positive so the game value is > 0 and
  // the classic normalization applies. Exact min is associative, so the
  // chunked reduction is deterministic at any thread count.
  const la::Matrix& payoff = game.payoff();
  const std::size_t row_grain = runtime::grain_for_cells(n);
  const double lo = runtime::chunked_reduce<double>(
      executor, 0, m, row_grain,
      [&](std::size_t row_lo, std::size_t row_hi) {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = row_lo; i < row_hi; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            best = std::min(best, payoff(i, j));
          }
        }
        return best;
      },
      [](double a, double b) { return std::min(a, b); });
  const double shift = (lo <= 0.0) ? (1.0 - lo) : 0.0;

  // Column player's LP: maximize sum(z) s.t. B z <= 1, z >= 0 where
  // B = payoff + shift. Optimum: sum(z) = 1 / v', q = z * v'; the duals u
  // give the row strategy p = u * v'; game value = v' - shift.
  LpProblem problem;
  problem.a = la::Matrix(m, n);
  runtime::parallel_for(executor, 0, m, row_grain, [&](std::size_t i) {
    for (std::size_t j = 0; j < n; ++j) {
      problem.a(i, j) = payoff(i, j) + shift;
    }
  });
  problem.b.assign(m, 1.0);
  problem.c.assign(n, 1.0);

  const LpSolution sol = solve_lp(problem, executor, lp);
  PG_ASSERT(sol.status == LpStatus::kOptimal,
            "shifted matrix game LP must be bounded");
  PG_ASSERT(sol.objective > 0.0, "shifted game value must be positive");

  const double v_shifted = 1.0 / sol.objective;
  Equilibrium eq;
  eq.value = v_shifted - shift;
  eq.col_strategy.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    eq.col_strategy[j] = std::max(0.0, sol.x[j] * v_shifted);
  }
  eq.row_strategy.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    eq.row_strategy[i] = std::max(0.0, sol.dual[i] * v_shifted);
  }
  eq.row_strategy = normalize(std::move(eq.row_strategy));
  eq.col_strategy = normalize(std::move(eq.col_strategy));
  return eq;
}

Equilibrium solve_fictitious_play(const MatrixGame& game,
                                  const IterativeConfig& config,
                                  runtime::Executor* executor) {
  PG_CHECK(config.iterations >= 1, "iterations must be >= 1");
  const std::size_t m = game.num_rows();
  const std::size_t n = game.num_cols();
  const la::Matrix& payoff = game.payoff();

  std::vector<double> row_counts(m, 0.0);
  std::vector<double> col_counts(n, 0.0);
  // Cumulative payoffs of each pure action against the opponent's play
  // history; best response = argmax / argmin without renormalizing.
  std::vector<double> row_scores(m, 0.0);
  std::vector<double> col_scores(n, 0.0);

  // Fixed chunking for the whole solve; partials are preallocated so the
  // per-iteration loop never touches the heap. Each chunk fuses the score
  // update with its local best-response scan; the ascending-order fold
  // below reproduces std::max_element / std::min_element exactly (strict
  // comparisons at both levels keep the smallest-index tie-break), so the
  // trajectory -- and therefore the equilibrium -- is bit-identical to
  // the serial solve at any thread count.
  const std::size_t row_grain = (m + scan_chunks(m, executor) - 1) /
                                scan_chunks(m, executor);
  const std::size_t col_grain = (n + scan_chunks(n, executor) - 1) /
                                scan_chunks(n, executor);
  // Recompute the counts from the grain so every chunk is non-empty.
  const std::size_t row_chunks = (m + row_grain - 1) / row_grain;
  const std::size_t col_chunks = (n + col_grain - 1) / col_grain;
  std::vector<runtime::ArgExtremum> row_partials(row_chunks);
  std::vector<runtime::ArgExtremum> col_partials(col_chunks);

  std::size_t row_action = 0;
  std::size_t col_action = 0;
  for (std::size_t t = 0; t < config.iterations; ++t) {
    row_counts[row_action] += 1.0;
    col_counts[col_action] += 1.0;

    // One fork-join covers both players: chunks [0, row_chunks) scan the
    // row player (maximizer), the rest scan the column player (minimizer).
    runtime::parallel_for(
        executor, 0, row_chunks + col_chunks, 1, [&](std::size_t c) {
          if (c < row_chunks) {
            const std::size_t lo = c * row_grain;
            const std::size_t hi = std::min(m, lo + row_grain);
            row_scores[lo] += payoff(lo, col_action);
            runtime::ArgExtremum best{row_scores[lo], lo};
            for (std::size_t i = lo + 1; i < hi; ++i) {
              row_scores[i] += payoff(i, col_action);
              if (row_scores[i] > best.value) best = {row_scores[i], i};
            }
            row_partials[c] = best;
          } else {
            const std::size_t lo = (c - row_chunks) * col_grain;
            const std::size_t hi = std::min(n, lo + col_grain);
            col_scores[lo] += payoff(row_action, lo);
            runtime::ArgExtremum best{col_scores[lo], lo};
            for (std::size_t j = lo + 1; j < hi; ++j) {
              col_scores[j] += payoff(row_action, j);
              if (col_scores[j] < best.value) best = {col_scores[j], j};
            }
            col_partials[c - row_chunks] = best;
          }
        });

    runtime::ArgExtremum row_best = row_partials[0];
    for (std::size_t c = 1; c < row_chunks; ++c) {
      if (row_partials[c].value > row_best.value) row_best = row_partials[c];
    }
    runtime::ArgExtremum col_best = col_partials[0];
    for (std::size_t c = 1; c < col_chunks; ++c) {
      if (col_partials[c].value < col_best.value) col_best = col_partials[c];
    }
    row_action = row_best.index;
    col_action = col_best.index;
  }

  Equilibrium eq;
  eq.row_strategy = normalize(std::move(row_counts));
  eq.col_strategy = normalize(std::move(col_counts));
  eq.value = game.expected_payoff(eq.row_strategy, eq.col_strategy);
  return eq;
}

Equilibrium solve_multiplicative_weights(const MatrixGame& game,
                                         const IterativeConfig& config,
                                         runtime::Executor* executor) {
  PG_CHECK(config.iterations >= 1, "iterations must be >= 1");
  const std::size_t m = game.num_rows();
  const std::size_t n = game.num_cols();

  // Scale payoffs to [0, 1] for the standard Hedge guarantee.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      lo = std::min(lo, game.payoff_at(i, j));
      hi = std::max(hi, game.payoff_at(i, j));
    }
  }
  const double range = (hi > lo) ? (hi - lo) : 1.0;

  const auto t_total = static_cast<double>(config.iterations);
  const double eta_row =
      config.learning_rate > 0.0
          ? config.learning_rate
          : std::sqrt(8.0 * std::log(static_cast<double>(std::max<std::size_t>(m, 2))) / t_total);
  const double eta_col =
      config.learning_rate > 0.0
          ? config.learning_rate
          : std::sqrt(8.0 * std::log(static_cast<double>(std::max<std::size_t>(n, 2))) / t_total);

  std::vector<double> row_logw(m, 0.0);
  std::vector<double> col_logw(n, 0.0);
  std::vector<double> row_avg(m, 0.0);
  std::vector<double> col_avg(n, 0.0);

  auto softmax = [](const std::vector<double>& logw) {
    const double mx = *std::max_element(logw.begin(), logw.end());
    std::vector<double> p(logw.size());
    double total = 0.0;
    for (std::size_t i = 0; i < logw.size(); ++i) {
      p[i] = std::exp(logw[i] - mx);
      total += p[i];
    }
    for (double& v : p) v /= total;
    return p;
  };

  for (std::size_t t = 0; t < config.iterations; ++t) {
    const auto p = softmax(row_logw);
    const auto q = softmax(col_logw);
    for (std::size_t i = 0; i < m; ++i) row_avg[i] += p[i];
    for (std::size_t j = 0; j < n; ++j) col_avg[j] += q[j];

    // The O(m*n) cost of every Hedge step; per-entry accumulation order
    // is index-fixed, so the parallel matvecs are bit-identical.
    const auto row_pay = game.row_payoffs(q, executor);  // row wants high
    const auto col_pay = game.col_payoffs(p, executor);  // col wants low
    for (std::size_t i = 0; i < m; ++i) {
      row_logw[i] += eta_row * (row_pay[i] - lo) / range;
    }
    for (std::size_t j = 0; j < n; ++j) {
      col_logw[j] -= eta_col * (col_pay[j] - lo) / range;
    }
  }

  Equilibrium eq;
  eq.row_strategy = normalize(std::move(row_avg));
  eq.col_strategy = normalize(std::move(col_avg));
  eq.value = game.expected_payoff(eq.row_strategy, eq.col_strategy);
  return eq;
}

}  // namespace pg::game
