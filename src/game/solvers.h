// Equilibrium solvers for zero-sum matrix games.
//
// Three independent methods with different accuracy/cost trade-offs; the
// solver-ablation bench compares them on the discretized poisoning game:
//  * solve_lp_equilibrium      -- exact (simplex), the reference answer.
//  * solve_fictitious_play     -- Brown/Robinson iterative play; averages
//                                 converge to NE in zero-sum games.
//  * solve_multiplicative_weights -- Hedge self-play; O(sqrt(log K / T))
//                                 regret gives an approximate equilibrium.
//
// Every solver takes an optional runtime::Executor* (null = serial) and
// parallelizes its per-iteration inner loops -- the fictitious-play
// best-response scans over rows/columns, the simplex pricing scan and row
// elimination, the Hedge payoff matvecs -- with a deterministic chunked
// reduction (runtime/parallel_reduce.h), so the returned equilibrium is
// BIT-IDENTICAL to the serial solve at any thread count. This is the same
// contract tests/runtime_test.cpp asserts for payoff grids, extended to
// the solvers that consume them.
//
// The two iterative solvers additionally keep a resident
// runtime::PersistentTeam for the whole solve when the game is narrow
// enough that per-iteration fork-join dispatch would outweigh the step
// itself (and the solve is not already nested inside a pool task); the
// team's spin barrier replaces thousands of dispatches while the
// ascending-order exact folds keep the equilibrium bit-identical on
// every backend (see solvers.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "game/lp.h"
#include "game/matrix_game.h"

namespace pg::runtime {
class Executor;
}

namespace pg::game {

/// Exact equilibrium via one simplex solve of the shifted game.
/// See lp.h for the reduction; `lp` picks the pricing rule (Bland stays
/// the default for the anti-cycling guarantee).
[[nodiscard]] Equilibrium solve_lp_equilibrium(
    const MatrixGame& game, runtime::Executor* executor = nullptr,
    const LpConfig& lp = {});

/// Parallel backend for the iterative solvers' per-iteration step.
/// kAuto picks a resident PersistentTeam when the solve's shape amortizes
/// it (narrow game, many iterations, not nested in a pool task) and the
/// executor's fork-join otherwise; kDispatch/kTeam force one path -- the
/// bench uses them to measure team-vs-dispatch head to head. Every
/// backend returns bit-identical equilibria.
enum class IterativeBackend { kAuto, kDispatch, kTeam };

/// kAuto's total-work cutoff (iterations x per-iteration cells) for
/// standing up a resident team, calibrated ONCE per process from a quick
/// microprobe of the best-response scan kernel on this host (spawn-budget
/// nanoseconds / measured per-cell nanoseconds), instead of a hard-coded
/// size guess. Clamped to [64K, 4M] cells; the PG_TEAM_MIN_WORK env var
/// (a cell count) overrides the probe entirely. The chosen value is
/// exposed as the `obs.solver.team_min_work` gauge. Thread-safe; the
/// probe runs on first call and the result is cached for the process
/// lifetime. Calibration only moves the dispatch/team choice -- every
/// backend returns bit-identical equilibria, so results never depend on
/// what this returns.
[[nodiscard]] std::size_t team_dispatch_min_work();

/// One convergence measurement: the duality-gap estimate after
/// `iteration` steps (best-response payoff vs. the running average for
/// fictitious play; instantaneous exploitability spread for Hedge).
struct ConvergenceSample {
  std::size_t iteration = 0;
  double gap = 0.0;
};

/// Bounded-memory per-iteration gap recorder. push() keeps every
/// `stride`-th iteration; when the buffer reaches `max_samples` it drops
/// every other retained sample and doubles the stride, so memory stays
/// O(max_samples) for any iteration count while coverage stays uniform
/// from iteration 0 to the end. wants() lets callers skip the gap
/// computation itself on iterations that would not be recorded.
///
/// Telemetry is observation only: attaching a trace must not change the
/// solver trajectory, so solvers may only READ solver state to fill it.
struct ConvergenceTrace {
  std::size_t max_samples = 256;
  std::size_t stride = 1;
  std::vector<ConvergenceSample> samples;

  [[nodiscard]] bool wants(std::size_t iteration) const {
    return iteration % stride == 0;
  }
  void push(std::size_t iteration, double gap);
};

struct IterativeConfig {
  std::size_t iterations = 10000;
  /// Hedge learning rate; <= 0 means use the theory rate
  /// sqrt(8 ln K / T) per player.
  double learning_rate = 0.0;
  IterativeBackend backend = IterativeBackend::kAuto;
  /// Optional convergence recorder (owned by the caller, may be null).
  /// Null skips all gap computation; the solve itself is identical
  /// either way.
  ConvergenceTrace* trace = nullptr;
};

/// Fictitious play: both players best-respond to the opponent's empirical
/// action frequencies; returns the averaged strategies. Each iteration
/// fuses the score update and the best-response scan into one chunked
/// parallel pass per player.
[[nodiscard]] Equilibrium solve_fictitious_play(
    const MatrixGame& game, const IterativeConfig& config = {},
    runtime::Executor* executor = nullptr);

/// Multiplicative-weights (Hedge) self-play; returns averaged strategies.
/// The per-iteration payoff matvecs (the O(m*n) cost) run on the executor.
[[nodiscard]] Equilibrium solve_multiplicative_weights(
    const MatrixGame& game, const IterativeConfig& config = {},
    runtime::Executor* executor = nullptr);

}  // namespace pg::game
