// Equilibrium solvers for zero-sum matrix games.
//
// Three independent methods with different accuracy/cost trade-offs; the
// solver-ablation bench compares them on the discretized poisoning game:
//  * solve_lp_equilibrium      -- exact (simplex), the reference answer.
//  * solve_fictitious_play     -- Brown/Robinson iterative play; averages
//                                 converge to NE in zero-sum games.
//  * solve_multiplicative_weights -- Hedge self-play; O(sqrt(log K / T))
//                                 regret gives an approximate equilibrium.
#pragma once

#include <cstddef>

#include "game/matrix_game.h"

namespace pg::game {

/// Exact equilibrium via one simplex solve of the shifted game.
/// See lp.h for the reduction.
[[nodiscard]] Equilibrium solve_lp_equilibrium(const MatrixGame& game);

struct IterativeConfig {
  std::size_t iterations = 10000;
  /// Hedge learning rate; <= 0 means use the theory rate
  /// sqrt(8 ln K / T) per player.
  double learning_rate = 0.0;
};

/// Fictitious play: both players best-respond to the opponent's empirical
/// action frequencies; returns the averaged strategies.
[[nodiscard]] Equilibrium solve_fictitious_play(const MatrixGame& game,
                                                const IterativeConfig& config = {});

/// Multiplicative-weights (Hedge) self-play; returns averaged strategies.
[[nodiscard]] Equilibrium solve_multiplicative_weights(
    const MatrixGame& game, const IterativeConfig& config = {});

}  // namespace pg::game
