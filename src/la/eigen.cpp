#include "la/eigen.h"

#include <cmath>

#include "util/error.h"

namespace pg::la {

EigenPair power_iteration(const Matrix& sym, util::Rng& rng,
                          const PowerIterationConfig& config) {
  PG_CHECK(!sym.empty(), "power_iteration: empty matrix");
  PG_CHECK(sym.rows() == sym.cols(), "power_iteration: matrix must be square");
  const std::size_t n = sym.rows();

  Vector v(n);
  for (double& x : v) x = rng.normal();
  double nv = norm(v);
  if (nv == 0.0) {
    v[0] = 1.0;
    nv = 1.0;
  }
  scale(v, 1.0 / nv);

  double lambda = 0.0;
  for (std::size_t it = 0; it < config.max_iters; ++it) {
    Vector w = sym.matvec(v);
    const double wn = norm(w);
    if (wn == 0.0) {
      // x is in the null space; eigenvalue 0 with the current direction.
      return {0.0, v};
    }
    scale(w, 1.0 / wn);
    // Convergence when the direction stops changing (up to sign).
    const double align = std::abs(dot(w, v));
    v = std::move(w);
    lambda = dot(v, sym.matvec(v));
    if (1.0 - align < config.tolerance) break;
  }

  // Deterministic sign: largest-magnitude component positive.
  std::size_t arg = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (std::abs(v[i]) > std::abs(v[arg])) arg = i;
  }
  if (v[arg] < 0.0) scale(v, -1.0);
  return {lambda, v};
}

std::vector<EigenPair> top_eigenpairs(const Matrix& sym, std::size_t k,
                                      util::Rng& rng,
                                      const PowerIterationConfig& config) {
  PG_CHECK(!sym.empty(), "top_eigenpairs: empty matrix");
  PG_CHECK(sym.rows() == sym.cols(), "top_eigenpairs: matrix must be square");
  PG_CHECK(k <= sym.rows(), "top_eigenpairs: k exceeds dimension");

  Matrix deflated = sym;
  std::vector<EigenPair> pairs;
  pairs.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    EigenPair p = power_iteration(deflated, rng, config);
    // Re-orthogonalize against previously found vectors for stability.
    for (const auto& prev : pairs) {
      axpy(-dot(p.vector, prev.vector), prev.vector, p.vector);
    }
    const double vn = norm(p.vector);
    if (vn > 0.0) scale(p.vector, 1.0 / vn);
    // Hotelling deflation: A <- A - lambda v v^T.
    const std::size_t n = deflated.rows();
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        deflated(r, c) -= p.value * p.vector[r] * p.vector[c];
      }
    }
    pairs.push_back(std::move(p));
  }
  return pairs;
}

Vector project_onto_basis(const Vector& x, const std::vector<EigenPair>& basis) {
  Vector out(x.size(), 0.0);
  for (const auto& b : basis) {
    PG_CHECK(b.vector.size() == x.size(), "project_onto_basis: size mismatch");
    axpy(dot(x, b.vector), b.vector, out);
  }
  return out;
}

}  // namespace pg::la
