// Symmetric eigen-decomposition by power iteration with deflation.
//
// The PCA-based sanitization baseline projects points onto the top-k
// principal components of the (poisoned) training set and thresholds the
// reconstruction error; k is small (<= 10), so power iteration on the
// covariance matrix is the right tool and avoids a full QR eigensolver.
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.h"
#include "la/vector_ops.h"
#include "util/rng.h"

namespace pg::la {

struct EigenPair {
  double value = 0.0;
  Vector vector;  // unit norm
};

struct PowerIterationConfig {
  std::size_t max_iters = 1000;
  double tolerance = 1e-10;  // convergence in eigenvector direction
};

/// Dominant eigenpair of a symmetric matrix via power iteration.
/// Requires a square, non-empty matrix. The sign convention makes the
/// largest-magnitude component of the eigenvector positive.
[[nodiscard]] EigenPair power_iteration(const Matrix& sym, util::Rng& rng,
                                        const PowerIterationConfig& config = {});

/// Top-k eigenpairs of a symmetric positive semi-definite matrix via power
/// iteration with Hotelling deflation. Requires k <= dimension.
[[nodiscard]] std::vector<EigenPair> top_eigenpairs(
    const Matrix& sym, std::size_t k, util::Rng& rng,
    const PowerIterationConfig& config = {});

/// Project x onto the span of the given orthonormal basis vectors and
/// return the reconstruction (sum of projections).
[[nodiscard]] Vector project_onto_basis(const Vector& x,
                                        const std::vector<EigenPair>& basis);

}  // namespace pg::la
