#include "la/matrix.h"

#include "util/error.h"

namespace pg::la {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  PG_CHECK(!rows.empty(), "from_rows: no rows");
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    PG_CHECK(rows[r].size() == m.cols_, "from_rows: ragged rows");
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  PG_CHECK(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  PG_CHECK(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

std::span<double> Matrix::row(std::size_t r) {
  PG_CHECK(r < rows_, "Matrix::row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  PG_CHECK(r < rows_, "Matrix::row out of range");
  return {data_.data() + r * cols_, cols_};
}

Vector Matrix::row_copy(std::size_t r) const {
  const auto view = row(r);
  return Vector(view.begin(), view.end());
}

Vector Matrix::col_copy(std::size_t c) const {
  PG_CHECK(c < cols_, "Matrix::col_copy out of range");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  PG_CHECK(r < rows_, "Matrix::set_row out of range");
  PG_CHECK(v.size() == cols_, "Matrix::set_row size mismatch");
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::append_row(const Vector& v) {
  if (rows_ == 0 && cols_ == 0) cols_ = v.size();
  PG_CHECK(v.size() == cols_, "Matrix::append_row size mismatch");
  data_.insert(data_.end(), v.begin(), v.end());
  ++rows_;
}

// Kernel policy (see also vector_ops.cpp): each output element keeps its
// serial left-to-right accumulation order -- the bit-stability contract
// every payoff grid and golden baseline rides on -- so the speed comes
// from restructuring AROUND the chains, never from reassociating them:
// matvec processes four rows per pass (four independent accumulator
// chains hide the FP add latency; each row's own order is untouched),
// and matvec_transposed walks the matrix in column blocks sized to keep
// the output slice resident in L1 across all rows (per-column order is
// still row-ascending, so the blocked result is bit-identical to the
// naive loop). PG_NO_VECTORIZE swaps back the reference loops.
namespace {
/// Column-block width for matvec_transposed: 512 doubles = 4 KiB of
/// output accumulators, comfortably L1-resident alongside the row being
/// streamed.
constexpr std::size_t kColBlock = 512;
}  // namespace

Vector Matrix::matvec(const Vector& x) const {
  PG_CHECK(x.size() == cols_, "matvec: size mismatch");
  Vector out(rows_, 0.0);
#ifdef PG_NO_VECTORIZE
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += row_ptr[c] * x[c];
    out[r] = s;
  }
#else
  const double* base = data_.data();
  const double* px = x.data();
  std::size_t r = 0;
  for (; r + 4 <= rows_; r += 4) {
    const double* r0 = base + r * cols_;
    const double* r1 = r0 + cols_;
    const double* r2 = r1 + cols_;
    const double* r3 = r2 + cols_;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      const double xc = px[c];
      s0 += r0[c] * xc;
      s1 += r1[c] * xc;
      s2 += r2[c] * xc;
      s3 += r3[c] * xc;
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < rows_; ++r) {
    const double* row_ptr = base + r * cols_;
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += row_ptr[c] * px[c];
    out[r] = s;
  }
#endif
  return out;
}

Vector Matrix::matvec_transposed(const Vector& x) const {
  PG_CHECK(x.size() == rows_, "matvec_transposed: size mismatch");
  Vector out(cols_, 0.0);
#ifdef PG_NO_VECTORIZE
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) out[c] += row_ptr[c] * xr;
  }
#else
  const double* base = data_.data();
  double* po = out.data();
  for (std::size_t c0 = 0; c0 < cols_; c0 += kColBlock) {
    const std::size_t c1 = c0 + kColBlock < cols_ ? c0 + kColBlock : cols_;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double* row_ptr = base + r * cols_;
      const double xr = x[r];
      for (std::size_t c = c0; c < c1; ++c) po[c] += row_ptr[c] * xr;
    }
  }
#endif
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Vector Matrix::column_means() const {
  PG_CHECK(rows_ > 0, "column_means of empty matrix");
  Vector m(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) m[c] += row_ptr[c];
  }
  for (double& v : m) v /= static_cast<double>(rows_);
  return m;
}

Matrix Matrix::covariance() const {
  PG_CHECK(rows_ >= 2, "covariance needs at least two rows");
  const Vector mu = column_means();
  Matrix cov(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double di = row_ptr[i] - mu[i];
      for (std::size_t j = i; j < cols_; ++j) {
        cov(i, j) += di * (row_ptr[j] - mu[j]);
      }
    }
  }
  const double denom = static_cast<double>(rows_ - 1);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  }
  return cov;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t r = 0; r < idx.size(); ++r) {
    PG_CHECK(idx[r] < rows_, "select_rows: index out of range");
    const double* src = data_.data() + idx[r] * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out(r, c) = src[c];
  }
  return out;
}

}  // namespace pg::la
