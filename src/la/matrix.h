// Dense row-major matrix.
//
// Holds datasets (rows = instances), payoff matrices of discretized games,
// and covariance matrices for the PCA defense. Kept intentionally small:
// element access, row views, matvec, transpose, and the reductions the
// library needs.
//
// The hot kernels (matvec, matvec_transposed) are cache-blocked and
// ILP-restructured in matrix.cpp WITHOUT reordering any output element's
// floating-point accumulation -- results are bit-identical to the naive
// loops (compile with -DPG_NO_VECTORIZE to get those instead).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "la/vector_ops.h"

namespace pg::la {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols with a fill value.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  /// Build from nested vectors; all rows must have equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Bounds-checked element access.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Unchecked element access (hot loops).
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Contiguous view of one row.
  [[nodiscard]] std::span<double> row(std::size_t r);
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  /// Copy of one row as a Vector.
  [[nodiscard]] Vector row_copy(std::size_t r) const;

  /// Copy of one column as a Vector.
  [[nodiscard]] Vector col_copy(std::size_t c) const;

  /// Overwrite one row. Requires v.size() == cols().
  void set_row(std::size_t r, const Vector& v);

  /// Append a row. Requires v.size() == cols() (or empty matrix).
  void append_row(const Vector& v);

  /// Matrix-vector product. Requires x.size() == cols().
  [[nodiscard]] Vector matvec(const Vector& x) const;

  /// Transposed matrix-vector product (A^T x). Requires x.size() == rows().
  [[nodiscard]] Vector matvec_transposed(const Vector& x) const;

  [[nodiscard]] Matrix transposed() const;

  /// Column means. Requires a non-empty matrix.
  [[nodiscard]] Vector column_means() const;

  /// Sample covariance (n-1 denominator). Requires rows() >= 2.
  [[nodiscard]] Matrix covariance() const;

  /// Select a subset of rows by index.
  [[nodiscard]] Matrix select_rows(const std::vector<std::size_t>& idx) const;

  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace pg::la
