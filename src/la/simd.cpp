#include "la/simd.h"

#include <cstdlib>
#include <stdexcept>

#include "util/error.h"

// Everything ISA-specific is compiled in this one TU behind per-function
// target attributes, so the library builds with the baseline flags and
// the AVX2 code paths only ever execute after cpuid said they may.
//
// FMA is deliberately ABSENT from the target attributes: with only
// "avx2" enabled the compiler has no fused instruction to contract
// mul+add into, so the SoA lockstep kernels execute exactly the
// mul-then-add sequences of the reference trainers and stay bit-identical
// per lane. Adding "fma" here would silently break that contract.
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define PG_SIMD_X86 1
#include <immintrin.h>
#else
#define PG_SIMD_X86 0
#endif

namespace pg::la::simd {

namespace {

// The SoA kernels keep one accumulator register per 4 lanes; 32 lanes
// bounds that at 8 (fits the 16 ymm registers with room for operands).
// BatchedLinearTrainer enforces the cap; kernels just trust it.
constexpr std::size_t kMaxLanes = 32;

// ------------------------------------------------------------- scalar
// Reference loops. These are also what the "scalar" tier dispatches to,
// so the batched code path is testable on any host.

double dot_scalar(const double* x, const double* y, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void axpy_scalar(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale_scalar(double* x, double alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void matvec_scalar(const double* a, std::size_t rows, std::size_t cols,
                   const double* x, double* y) {
  for (std::size_t r = 0; r < rows; ++r) y[r] = dot_scalar(a + r * cols, x, cols);
}

void soa_gather_scalar(const double* const* __restrict rows, std::size_t d,
                       double* __restrict x_soa, std::size_t lanes) {
  // c-outer / k-inner: the stores are contiguous (one lane-slice per c)
  // and each rows[k] stream is walked sequentially across iterations.
  for (std::size_t c = 0; c < d; ++c) {
    double* xc = x_soa + c * lanes;
    for (std::size_t k = 0; k < lanes; ++k) xc[k] = rows[k][c];
  }
}

void soa_score_scalar(const double* __restrict w, const double* __restrict x, const double* __restrict b,
                      double* __restrict scores, std::size_t d, std::size_t lanes) {
  for (std::size_t k = 0; k < lanes; ++k) scores[k] = b[k];
  for (std::size_t c = 0; c < d; ++c) {
    const double* wc = w + c * lanes;
    const double* xc = x + c * lanes;
    for (std::size_t k = 0; k < lanes; ++k) scores[k] += wc[k] * xc[k];
  }
}

void soa_affine_step_scalar(double* __restrict w, const double* __restrict x, const double* __restrict decay,
                            const double* __restrict step, std::size_t d,
                            std::size_t lanes) {
  for (std::size_t c = 0; c < d; ++c) {
    double* wc = w + c * lanes;
    const double* xc = x + c * lanes;
    for (std::size_t k = 0; k < lanes; ++k) {
      wc[k] = decay[k] * wc[k] + step[k] * xc[k];
    }
  }
}

void soa_logreg_step_scalar(double* __restrict w, const double* __restrict x, const double* __restrict eta,
                            const double* __restrict g, double lambda, std::size_t d,
                            std::size_t lanes) {
  for (std::size_t c = 0; c < d; ++c) {
    double* wc = w + c * lanes;
    const double* xc = x + c * lanes;
    for (std::size_t k = 0; k < lanes; ++k) {
      wc[k] -= eta[k] * (g[k] * xc[k] + lambda * wc[k]);
    }
  }
}

// The fused kernels below run affine/logreg update + next-sample gather
// + next-sample score in a single sweep of w. Per element the operations
// (and their order) are exactly the three separate kernels'; only the
// number of passes over memory changes.

void soa_affine_fused_scalar(double* __restrict w, const double* __restrict x, const double* __restrict decay,
                             const double* __restrict step, const double* const* __restrict rows,
                             double* __restrict x_next, const double* __restrict b, double* __restrict scores,
                             std::size_t d, std::size_t lanes) {
  for (std::size_t k = 0; k < lanes; ++k) scores[k] = b[k];
  for (std::size_t c = 0; c < d; ++c) {
    double* wc = w + c * lanes;
    const double* xc = x + c * lanes;
    double* nc = x_next + c * lanes;
    for (std::size_t k = 0; k < lanes; ++k) {
      wc[k] = decay[k] * wc[k] + step[k] * xc[k];
      nc[k] = rows[k][c];
      scores[k] += wc[k] * nc[k];
    }
  }
}

void soa_logreg_fused_scalar(double* __restrict w, const double* __restrict x, const double* __restrict eta,
                             const double* __restrict g, double lambda,
                             const double* const* __restrict rows, double* __restrict x_next,
                             const double* __restrict b, double* __restrict scores, std::size_t d,
                             std::size_t lanes) {
  for (std::size_t k = 0; k < lanes; ++k) scores[k] = b[k];
  for (std::size_t c = 0; c < d; ++c) {
    double* wc = w + c * lanes;
    const double* xc = x + c * lanes;
    double* nc = x_next + c * lanes;
    for (std::size_t k = 0; k < lanes; ++k) {
      wc[k] -= eta[k] * (g[k] * xc[k] + lambda * wc[k]);
      nc[k] = rows[k][c];
      scores[k] += wc[k] * nc[k];
    }
  }
}

#if PG_SIMD_X86

// --------------------------------------------------------------- SSE2

__attribute__((target("sse2"))) double dot_sse2(const double* x,
                                                const double* y,
                                                std::size_t n) {
  __m128d a0 = _mm_setzero_pd();
  __m128d a1 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 = _mm_add_pd(a0, _mm_mul_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(y + i)));
    a1 = _mm_add_pd(
        a1, _mm_mul_pd(_mm_loadu_pd(x + i + 2), _mm_loadu_pd(y + i + 2)));
  }
  double buf[2];
  _mm_storeu_pd(buf, _mm_add_pd(a0, a1));
  double acc = buf[0] + buf[1];
  for (; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

__attribute__((target("sse2"))) void axpy_sse2(double alpha, const double* x,
                                               double* y, std::size_t n) {
  const __m128d av = _mm_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i),
                                    _mm_mul_pd(av, _mm_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("sse2"))) void scale_sse2(double* x, double alpha,
                                                std::size_t n) {
  const __m128d av = _mm_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(x + i, _mm_mul_pd(av, _mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("sse2"))) void matvec_sse2(const double* a,
                                                 std::size_t rows,
                                                 std::size_t cols,
                                                 const double* x, double* y) {
  for (std::size_t r = 0; r < rows; ++r) y[r] = dot_sse2(a + r * cols, x, cols);
}

__attribute__((target("sse2"))) void soa_gather_sse2(const double* const* __restrict rows,
                                                     std::size_t d,
                                                     double* __restrict x_soa,
                                                     std::size_t lanes) {
  // 2x2 block transpose in registers: two contiguous loads per lane pair,
  // two contiguous stores per column pair.
  std::size_t c = 0;
  for (; c + 2 <= d; c += 2) {
    for (std::size_t k = 0; k < lanes; k += 2) {
      const __m128d r0 = _mm_loadu_pd(rows[k] + c);      // a0 a1
      const __m128d r1 = _mm_loadu_pd(rows[k + 1] + c);  // b0 b1
      _mm_storeu_pd(x_soa + c * lanes + k, _mm_unpacklo_pd(r0, r1));
      _mm_storeu_pd(x_soa + (c + 1) * lanes + k, _mm_unpackhi_pd(r0, r1));
    }
  }
  for (; c < d; ++c) {
    double* xc = x_soa + c * lanes;
    for (std::size_t k = 0; k < lanes; ++k) xc[k] = rows[k][c];
  }
}

__attribute__((target("sse2"))) void soa_score_sse2(const double* __restrict w,
                                                    const double* __restrict x,
                                                    const double* __restrict b,
                                                    double* __restrict scores,
                                                    std::size_t d,
                                                    std::size_t lanes) {
  __m128d acc[kMaxLanes / 2];
  const std::size_t groups = lanes / 2;
  for (std::size_t g = 0; g < groups; ++g) acc[g] = _mm_loadu_pd(b + 2 * g);
  for (std::size_t c = 0; c < d; ++c) {
    const double* wc = w + c * lanes;
    const double* xc = x + c * lanes;
    for (std::size_t g = 0; g < groups; ++g) {
      acc[g] = _mm_add_pd(acc[g], _mm_mul_pd(_mm_loadu_pd(wc + 2 * g),
                                             _mm_loadu_pd(xc + 2 * g)));
    }
  }
  for (std::size_t g = 0; g < groups; ++g) _mm_storeu_pd(scores + 2 * g, acc[g]);
}

__attribute__((target("sse2"))) void soa_affine_step_sse2(
    double* __restrict w, const double* __restrict x, const double* __restrict decay, const double* __restrict step,
    std::size_t d, std::size_t lanes) {
  __m128d dv[kMaxLanes / 2];
  __m128d sv[kMaxLanes / 2];
  const std::size_t groups = lanes / 2;
  for (std::size_t g = 0; g < groups; ++g) {
    dv[g] = _mm_loadu_pd(decay + 2 * g);
    sv[g] = _mm_loadu_pd(step + 2 * g);
  }
  for (std::size_t c = 0; c < d; ++c) {
    double* wc = w + c * lanes;
    const double* xc = x + c * lanes;
    for (std::size_t g = 0; g < groups; ++g) {
      const __m128d wv = _mm_loadu_pd(wc + 2 * g);
      const __m128d xv = _mm_loadu_pd(xc + 2 * g);
      _mm_storeu_pd(wc + 2 * g, _mm_add_pd(_mm_mul_pd(dv[g], wv),
                                           _mm_mul_pd(sv[g], xv)));
    }
  }
}

__attribute__((target("sse2"))) void soa_logreg_step_sse2(
    double* __restrict w, const double* __restrict x, const double* __restrict eta, const double* __restrict g,
    double lambda, std::size_t d, std::size_t lanes) {
  __m128d ev[kMaxLanes / 2];
  __m128d gv[kMaxLanes / 2];
  const __m128d lv = _mm_set1_pd(lambda);
  const std::size_t groups = lanes / 2;
  for (std::size_t q = 0; q < groups; ++q) {
    ev[q] = _mm_loadu_pd(eta + 2 * q);
    gv[q] = _mm_loadu_pd(g + 2 * q);
  }
  for (std::size_t c = 0; c < d; ++c) {
    double* wc = w + c * lanes;
    const double* xc = x + c * lanes;
    for (std::size_t q = 0; q < groups; ++q) {
      const __m128d wv = _mm_loadu_pd(wc + 2 * q);
      const __m128d xv = _mm_loadu_pd(xc + 2 * q);
      const __m128d inner =
          _mm_add_pd(_mm_mul_pd(gv[q], xv), _mm_mul_pd(lv, wv));
      _mm_storeu_pd(wc + 2 * q, _mm_sub_pd(wv, _mm_mul_pd(ev[q], inner)));
    }
  }
}

__attribute__((target("sse2"))) void soa_affine_fused_sse2(
    double* __restrict w, const double* __restrict x, const double* __restrict decay, const double* __restrict step,
    const double* const* __restrict rows, double* __restrict x_next, const double* __restrict b, double* __restrict scores,
    std::size_t d, std::size_t lanes) {
  // Lane-group outer (see soa_affine_fused_avx2 for the rationale).
  const std::size_t groups = lanes / 2;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t k = 2 * g;
    const __m128d dv = _mm_loadu_pd(decay + k);
    const __m128d sv = _mm_loadu_pd(step + k);
    __m128d acc = _mm_loadu_pd(b + k);
    const double* __restrict r0p = rows[k];
    const double* __restrict r1p = rows[k + 1];
    std::size_t c = 0;
    for (; c + 2 <= d; c += 2) {
      const __m128d r0 = _mm_loadu_pd(r0p + c);
      const __m128d r1 = _mm_loadu_pd(r1p + c);
      const __m128d n0 = _mm_unpacklo_pd(r0, r1);
      const __m128d n1 = _mm_unpackhi_pd(r0, r1);
      _mm_storeu_pd(x_next + c * lanes + k, n0);
      _mm_storeu_pd(x_next + (c + 1) * lanes + k, n1);
      const __m128d w0 = _mm_add_pd(
          _mm_mul_pd(dv, _mm_loadu_pd(w + c * lanes + k)),
          _mm_mul_pd(sv, _mm_loadu_pd(x + c * lanes + k)));
      _mm_storeu_pd(w + c * lanes + k, w0);
      acc = _mm_add_pd(acc, _mm_mul_pd(w0, n0));
      const __m128d w1 = _mm_add_pd(
          _mm_mul_pd(dv, _mm_loadu_pd(w + (c + 1) * lanes + k)),
          _mm_mul_pd(sv, _mm_loadu_pd(x + (c + 1) * lanes + k)));
      _mm_storeu_pd(w + (c + 1) * lanes + k, w1);
      acc = _mm_add_pd(acc, _mm_mul_pd(w1, n1));
    }
    for (; c < d; ++c) {
      const __m128d n = _mm_set_pd(r1p[c], r0p[c]);
      _mm_storeu_pd(x_next + c * lanes + k, n);
      const __m128d wv = _mm_add_pd(
          _mm_mul_pd(dv, _mm_loadu_pd(w + c * lanes + k)),
          _mm_mul_pd(sv, _mm_loadu_pd(x + c * lanes + k)));
      _mm_storeu_pd(w + c * lanes + k, wv);
      acc = _mm_add_pd(acc, _mm_mul_pd(wv, n));
    }
    _mm_storeu_pd(scores + k, acc);
  }
}

__attribute__((target("sse2"))) void soa_logreg_fused_sse2(
    double* __restrict w, const double* __restrict x, const double* __restrict eta, const double* __restrict g,
    double lambda, const double* const* __restrict rows, double* __restrict x_next, const double* __restrict b,
    double* __restrict scores, std::size_t d, std::size_t lanes) {
  const __m128d lv = _mm_set1_pd(lambda);
  const std::size_t groups = lanes / 2;
  for (std::size_t q = 0; q < groups; ++q) {
    const std::size_t k = 2 * q;
    const __m128d ev = _mm_loadu_pd(eta + k);
    const __m128d gv = _mm_loadu_pd(g + k);
    __m128d acc = _mm_loadu_pd(b + k);
    const double* __restrict r0p = rows[k];
    const double* __restrict r1p = rows[k + 1];
    std::size_t c = 0;
    for (; c + 2 <= d; c += 2) {
      const __m128d r0 = _mm_loadu_pd(r0p + c);
      const __m128d r1 = _mm_loadu_pd(r1p + c);
      const __m128d n0 = _mm_unpacklo_pd(r0, r1);
      const __m128d n1 = _mm_unpackhi_pd(r0, r1);
      _mm_storeu_pd(x_next + c * lanes + k, n0);
      _mm_storeu_pd(x_next + (c + 1) * lanes + k, n1);
      const __m128d wv0 = _mm_loadu_pd(w + c * lanes + k);
      const __m128d in0 =
          _mm_add_pd(_mm_mul_pd(gv, _mm_loadu_pd(x + c * lanes + k)),
                     _mm_mul_pd(lv, wv0));
      const __m128d w0 = _mm_sub_pd(wv0, _mm_mul_pd(ev, in0));
      _mm_storeu_pd(w + c * lanes + k, w0);
      acc = _mm_add_pd(acc, _mm_mul_pd(w0, n0));
      const __m128d wv1 = _mm_loadu_pd(w + (c + 1) * lanes + k);
      const __m128d in1 =
          _mm_add_pd(_mm_mul_pd(gv, _mm_loadu_pd(x + (c + 1) * lanes + k)),
                     _mm_mul_pd(lv, wv1));
      const __m128d w1 = _mm_sub_pd(wv1, _mm_mul_pd(ev, in1));
      _mm_storeu_pd(w + (c + 1) * lanes + k, w1);
      acc = _mm_add_pd(acc, _mm_mul_pd(w1, n1));
    }
    for (; c < d; ++c) {
      const __m128d n = _mm_set_pd(r1p[c], r0p[c]);
      _mm_storeu_pd(x_next + c * lanes + k, n);
      const __m128d wv = _mm_loadu_pd(w + c * lanes + k);
      const __m128d inner =
          _mm_add_pd(_mm_mul_pd(gv, _mm_loadu_pd(x + c * lanes + k)),
                     _mm_mul_pd(lv, wv));
      const __m128d wn = _mm_sub_pd(wv, _mm_mul_pd(ev, inner));
      _mm_storeu_pd(w + c * lanes + k, wn);
      acc = _mm_add_pd(acc, _mm_mul_pd(wn, n));
    }
    _mm_storeu_pd(scores + k, acc);
  }
}

// --------------------------------------------------------------- AVX2

__attribute__((target("avx2"))) double dot_avx2(const double* x,
                                                const double* y,
                                                std::size_t n) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 = _mm256_add_pd(
        a0, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(x + i + 4),
                                         _mm256_loadu_pd(y + i + 4)));
  }
  double buf[4];
  _mm256_storeu_pd(buf, _mm256_add_pd(a0, a1));
  double acc = (buf[0] + buf[1]) + (buf[2] + buf[3]);
  for (; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

__attribute__((target("avx2"))) void axpy_avx2(double alpha, const double* x,
                                               double* y, std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i,
                     _mm256_add_pd(_mm256_loadu_pd(y + i),
                                   _mm256_mul_pd(av, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void scale_avx2(double* x, double alpha,
                                                std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx2"))) void matvec_avx2(const double* a,
                                                 std::size_t rows,
                                                 std::size_t cols,
                                                 const double* x, double* y) {
  for (std::size_t r = 0; r < rows; ++r) y[r] = dot_avx2(a + r * cols, x, cols);
}

__attribute__((target("avx2"))) void soa_gather_avx2(const double* const* __restrict rows,
                                                     std::size_t d,
                                                     double* __restrict x_soa,
                                                     std::size_t lanes) {
  // 4x4 block transpose in registers: 4 contiguous loads (one per lane),
  // unpack + permute, 4 contiguous stores (one per column). Replaces the
  // naive strided-scatter gather that dominated the batched step.
  std::size_t c = 0;
  for (; c + 4 <= d; c += 4) {
    for (std::size_t k = 0; k < lanes; k += 4) {
      const __m256d r0 = _mm256_loadu_pd(rows[k] + c);      // a0 a1 a2 a3
      const __m256d r1 = _mm256_loadu_pd(rows[k + 1] + c);  // b0 b1 b2 b3
      const __m256d r2 = _mm256_loadu_pd(rows[k + 2] + c);  // c0 c1 c2 c3
      const __m256d r3 = _mm256_loadu_pd(rows[k + 3] + c);  // d0 d1 d2 d3
      const __m256d t0 = _mm256_unpacklo_pd(r0, r1);  // a0 b0 a2 b2
      const __m256d t1 = _mm256_unpackhi_pd(r0, r1);  // a1 b1 a3 b3
      const __m256d t2 = _mm256_unpacklo_pd(r2, r3);  // c0 d0 c2 d2
      const __m256d t3 = _mm256_unpackhi_pd(r2, r3);  // c1 d1 c3 d3
      _mm256_storeu_pd(x_soa + (c + 0) * lanes + k,
                       _mm256_permute2f128_pd(t0, t2, 0x20));
      _mm256_storeu_pd(x_soa + (c + 1) * lanes + k,
                       _mm256_permute2f128_pd(t1, t3, 0x20));
      _mm256_storeu_pd(x_soa + (c + 2) * lanes + k,
                       _mm256_permute2f128_pd(t0, t2, 0x31));
      _mm256_storeu_pd(x_soa + (c + 3) * lanes + k,
                       _mm256_permute2f128_pd(t1, t3, 0x31));
    }
  }
  for (; c < d; ++c) {
    double* xc = x_soa + c * lanes;
    for (std::size_t k = 0; k < lanes; ++k) xc[k] = rows[k][c];
  }
}

__attribute__((target("avx2"))) void soa_score_avx2(const double* __restrict w,
                                                    const double* __restrict x,
                                                    const double* __restrict b,
                                                    double* __restrict scores,
                                                    std::size_t d,
                                                    std::size_t lanes) {
  // One independent add-chain per 4-lane group: with >= 2 groups the
  // chains interleave and hide the add latency that serializes the
  // sequential trainer's score dot.
  __m256d acc[kMaxLanes / 4];
  const std::size_t groups = lanes / 4;
  for (std::size_t g = 0; g < groups; ++g) acc[g] = _mm256_loadu_pd(b + 4 * g);
  for (std::size_t c = 0; c < d; ++c) {
    const double* wc = w + c * lanes;
    const double* xc = x + c * lanes;
    for (std::size_t g = 0; g < groups; ++g) {
      acc[g] = _mm256_add_pd(acc[g], _mm256_mul_pd(_mm256_loadu_pd(wc + 4 * g),
                                                   _mm256_loadu_pd(xc + 4 * g)));
    }
  }
  for (std::size_t g = 0; g < groups; ++g) {
    _mm256_storeu_pd(scores + 4 * g, acc[g]);
  }
}

__attribute__((target("avx2"))) void soa_affine_step_avx2(
    double* __restrict w, const double* __restrict x, const double* __restrict decay, const double* __restrict step,
    std::size_t d, std::size_t lanes) {
  __m256d dv[kMaxLanes / 4];
  __m256d sv[kMaxLanes / 4];
  const std::size_t groups = lanes / 4;
  for (std::size_t g = 0; g < groups; ++g) {
    dv[g] = _mm256_loadu_pd(decay + 4 * g);
    sv[g] = _mm256_loadu_pd(step + 4 * g);
  }
  for (std::size_t c = 0; c < d; ++c) {
    double* wc = w + c * lanes;
    const double* xc = x + c * lanes;
    for (std::size_t g = 0; g < groups; ++g) {
      const __m256d wv = _mm256_loadu_pd(wc + 4 * g);
      const __m256d xv = _mm256_loadu_pd(xc + 4 * g);
      _mm256_storeu_pd(wc + 4 * g, _mm256_add_pd(_mm256_mul_pd(dv[g], wv),
                                                 _mm256_mul_pd(sv[g], xv)));
    }
  }
}

__attribute__((target("avx2"))) void soa_logreg_step_avx2(
    double* __restrict w, const double* __restrict x, const double* __restrict eta, const double* __restrict g,
    double lambda, std::size_t d, std::size_t lanes) {
  __m256d ev[kMaxLanes / 4];
  __m256d gv[kMaxLanes / 4];
  const __m256d lv = _mm256_set1_pd(lambda);
  const std::size_t groups = lanes / 4;
  for (std::size_t q = 0; q < groups; ++q) {
    ev[q] = _mm256_loadu_pd(eta + 4 * q);
    gv[q] = _mm256_loadu_pd(g + 4 * q);
  }
  for (std::size_t c = 0; c < d; ++c) {
    double* wc = w + c * lanes;
    const double* xc = x + c * lanes;
    for (std::size_t q = 0; q < groups; ++q) {
      const __m256d wv = _mm256_loadu_pd(wc + 4 * q);
      const __m256d xv = _mm256_loadu_pd(xc + 4 * q);
      const __m256d inner =
          _mm256_add_pd(_mm256_mul_pd(gv[q], xv), _mm256_mul_pd(lv, wv));
      _mm256_storeu_pd(wc + 4 * q, _mm256_sub_pd(wv, _mm256_mul_pd(ev[q], inner)));
    }
  }
}

__attribute__((target("avx2"))) void soa_affine_fused_avx2(
    double* __restrict w, const double* __restrict x, const double* __restrict decay, const double* __restrict step,
    const double* const* __restrict rows, double* __restrict x_next, const double* __restrict b, double* __restrict scores,
    std::size_t d, std::size_t lanes) {
  // Lane-group OUTER, columns inner: the 4 row pointers, the coefficient
  // vectors, and the score accumulator stay in registers for the whole
  // sweep (column-outer forces the compiler to reload all of them every
  // iteration), and each row is read contiguously.
  const std::size_t groups = lanes / 4;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t k = 4 * g;
    const __m256d dv = _mm256_loadu_pd(decay + k);
    const __m256d sv = _mm256_loadu_pd(step + k);
    __m256d acc = _mm256_loadu_pd(b + k);
    const double* __restrict r0p = rows[k];
    const double* __restrict r1p = rows[k + 1];
    const double* __restrict r2p = rows[k + 2];
    const double* __restrict r3p = rows[k + 3];
    std::size_t c = 0;
    for (; c + 4 <= d; c += 4) {
      // 4x4 gather transpose (see soa_gather_avx2).
      const __m256d r0 = _mm256_loadu_pd(r0p + c);
      const __m256d r1 = _mm256_loadu_pd(r1p + c);
      const __m256d r2 = _mm256_loadu_pd(r2p + c);
      const __m256d r3 = _mm256_loadu_pd(r3p + c);
      const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
      const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
      const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
      const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
      const __m256d n0 = _mm256_permute2f128_pd(t0, t2, 0x20);
      const __m256d n1 = _mm256_permute2f128_pd(t1, t3, 0x20);
      const __m256d n2 = _mm256_permute2f128_pd(t0, t2, 0x31);
      const __m256d n3 = _mm256_permute2f128_pd(t1, t3, 0x31);
      _mm256_storeu_pd(x_next + (c + 0) * lanes + k, n0);
      _mm256_storeu_pd(x_next + (c + 1) * lanes + k, n1);
      _mm256_storeu_pd(x_next + (c + 2) * lanes + k, n2);
      _mm256_storeu_pd(x_next + (c + 3) * lanes + k, n3);
      const __m256d w0 = _mm256_add_pd(
          _mm256_mul_pd(dv, _mm256_loadu_pd(w + (c + 0) * lanes + k)),
          _mm256_mul_pd(sv, _mm256_loadu_pd(x + (c + 0) * lanes + k)));
      _mm256_storeu_pd(w + (c + 0) * lanes + k, w0);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(w0, n0));
      const __m256d w1 = _mm256_add_pd(
          _mm256_mul_pd(dv, _mm256_loadu_pd(w + (c + 1) * lanes + k)),
          _mm256_mul_pd(sv, _mm256_loadu_pd(x + (c + 1) * lanes + k)));
      _mm256_storeu_pd(w + (c + 1) * lanes + k, w1);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(w1, n1));
      const __m256d w2 = _mm256_add_pd(
          _mm256_mul_pd(dv, _mm256_loadu_pd(w + (c + 2) * lanes + k)),
          _mm256_mul_pd(sv, _mm256_loadu_pd(x + (c + 2) * lanes + k)));
      _mm256_storeu_pd(w + (c + 2) * lanes + k, w2);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(w2, n2));
      const __m256d w3 = _mm256_add_pd(
          _mm256_mul_pd(dv, _mm256_loadu_pd(w + (c + 3) * lanes + k)),
          _mm256_mul_pd(sv, _mm256_loadu_pd(x + (c + 3) * lanes + k)));
      _mm256_storeu_pd(w + (c + 3) * lanes + k, w3);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(w3, n3));
    }
    for (; c < d; ++c) {
      const __m256d n = _mm256_set_pd(r3p[c], r2p[c], r1p[c], r0p[c]);
      _mm256_storeu_pd(x_next + c * lanes + k, n);
      const __m256d wv = _mm256_add_pd(
          _mm256_mul_pd(dv, _mm256_loadu_pd(w + c * lanes + k)),
          _mm256_mul_pd(sv, _mm256_loadu_pd(x + c * lanes + k)));
      _mm256_storeu_pd(w + c * lanes + k, wv);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(wv, n));
    }
    _mm256_storeu_pd(scores + k, acc);
  }
}

__attribute__((target("avx2"))) void soa_logreg_fused_avx2(
    double* __restrict w, const double* __restrict x, const double* __restrict eta, const double* __restrict g,
    double lambda, const double* const* __restrict rows, double* __restrict x_next, const double* __restrict b,
    double* __restrict scores, std::size_t d, std::size_t lanes) {
  // Lane-group outer for the same reasons as soa_affine_fused_avx2.
  const __m256d lv = _mm256_set1_pd(lambda);
  const std::size_t groups = lanes / 4;
  for (std::size_t q = 0; q < groups; ++q) {
    const std::size_t k = 4 * q;
    const __m256d ev = _mm256_loadu_pd(eta + k);
    const __m256d gv = _mm256_loadu_pd(g + k);
    __m256d acc = _mm256_loadu_pd(b + k);
    const double* __restrict r0p = rows[k];
    const double* __restrict r1p = rows[k + 1];
    const double* __restrict r2p = rows[k + 2];
    const double* __restrict r3p = rows[k + 3];
    std::size_t c = 0;
    for (; c + 4 <= d; c += 4) {
      const __m256d r0 = _mm256_loadu_pd(r0p + c);
      const __m256d r1 = _mm256_loadu_pd(r1p + c);
      const __m256d r2 = _mm256_loadu_pd(r2p + c);
      const __m256d r3 = _mm256_loadu_pd(r3p + c);
      const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
      const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
      const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
      const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
      const __m256d n0 = _mm256_permute2f128_pd(t0, t2, 0x20);
      const __m256d n1 = _mm256_permute2f128_pd(t1, t3, 0x20);
      const __m256d n2 = _mm256_permute2f128_pd(t0, t2, 0x31);
      const __m256d n3 = _mm256_permute2f128_pd(t1, t3, 0x31);
      _mm256_storeu_pd(x_next + (c + 0) * lanes + k, n0);
      _mm256_storeu_pd(x_next + (c + 1) * lanes + k, n1);
      _mm256_storeu_pd(x_next + (c + 2) * lanes + k, n2);
      _mm256_storeu_pd(x_next + (c + 3) * lanes + k, n3);
      const __m256d wv0 = _mm256_loadu_pd(w + (c + 0) * lanes + k);
      const __m256d in0 = _mm256_add_pd(
          _mm256_mul_pd(gv, _mm256_loadu_pd(x + (c + 0) * lanes + k)),
          _mm256_mul_pd(lv, wv0));
      const __m256d w0 = _mm256_sub_pd(wv0, _mm256_mul_pd(ev, in0));
      _mm256_storeu_pd(w + (c + 0) * lanes + k, w0);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(w0, n0));
      const __m256d wv1 = _mm256_loadu_pd(w + (c + 1) * lanes + k);
      const __m256d in1 = _mm256_add_pd(
          _mm256_mul_pd(gv, _mm256_loadu_pd(x + (c + 1) * lanes + k)),
          _mm256_mul_pd(lv, wv1));
      const __m256d w1 = _mm256_sub_pd(wv1, _mm256_mul_pd(ev, in1));
      _mm256_storeu_pd(w + (c + 1) * lanes + k, w1);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(w1, n1));
      const __m256d wv2 = _mm256_loadu_pd(w + (c + 2) * lanes + k);
      const __m256d in2 = _mm256_add_pd(
          _mm256_mul_pd(gv, _mm256_loadu_pd(x + (c + 2) * lanes + k)),
          _mm256_mul_pd(lv, wv2));
      const __m256d w2 = _mm256_sub_pd(wv2, _mm256_mul_pd(ev, in2));
      _mm256_storeu_pd(w + (c + 2) * lanes + k, w2);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(w2, n2));
      const __m256d wv3 = _mm256_loadu_pd(w + (c + 3) * lanes + k);
      const __m256d in3 = _mm256_add_pd(
          _mm256_mul_pd(gv, _mm256_loadu_pd(x + (c + 3) * lanes + k)),
          _mm256_mul_pd(lv, wv3));
      const __m256d w3 = _mm256_sub_pd(wv3, _mm256_mul_pd(ev, in3));
      _mm256_storeu_pd(w + (c + 3) * lanes + k, w3);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(w3, n3));
    }
    for (; c < d; ++c) {
      const __m256d n = _mm256_set_pd(r3p[c], r2p[c], r1p[c], r0p[c]);
      _mm256_storeu_pd(x_next + c * lanes + k, n);
      const __m256d wv = _mm256_loadu_pd(w + c * lanes + k);
      const __m256d inner = _mm256_add_pd(
          _mm256_mul_pd(gv, _mm256_loadu_pd(x + c * lanes + k)),
          _mm256_mul_pd(lv, wv));
      const __m256d wn = _mm256_sub_pd(wv, _mm256_mul_pd(ev, inner));
      _mm256_storeu_pd(w + c * lanes + k, wn);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(wn, n));
    }
    _mm256_storeu_pd(scores + k, acc);
  }
}

#endif  // PG_SIMD_X86

}  // namespace

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kSse2: return "sse2";
    case Tier::kAvx2: return "avx2";
  }
  return "scalar";
}

Tier parse_tier(const std::string& name) {
  if (name == "scalar") return Tier::kScalar;
  if (name == "sse2") return Tier::kSse2;
  if (name == "avx2") return Tier::kAvx2;
  // Direct throw (not PG_CHECK): these surface verbatim as the CLI's
  // one-line error, so no expression/file-position noise.
  throw std::invalid_argument("unknown simd tier '" + name +
                              "' (expected scalar, sse2, avx2, or auto)");
}

Tier detect_tier() {
  static const Tier tier = [] {
#if PG_SIMD_X86
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
    if (__builtin_cpu_supports("sse2")) return Tier::kSse2;
#endif
    return Tier::kScalar;
  }();
  return tier;
}

Tier resolve_tier(const std::string& requested) {
  std::string request = requested;
  if (request.empty() || request == "auto") {
    const char* env = std::getenv("PG_SIMD");
    if (env != nullptr && *env != '\0') request = env;
  }
  if (request.empty() || request == "auto") {
    const Tier detected = detect_tier();
    if (detected == Tier::kScalar) {
      throw std::invalid_argument(
          "kernel=simd: this host supports neither SSE2 nor AVX2; set "
          "simd=scalar (or PG_SIMD=scalar) to force the batched scalar "
          "path explicitly");
    }
    return detected;
  }
  const Tier tier = parse_tier(request);
  if (tier > detect_tier()) {
    throw std::invalid_argument(
        std::string("kernel=simd: requested tier '") + tier_name(tier) +
        "' but this host supports at most '" + tier_name(detect_tier()) +
        "'");
  }
  return tier;
}

const Ops& ops(Tier tier) {
  PG_CHECK(tier <= detect_tier(),
           std::string("simd tier '") + tier_name(tier) +
               "' is not executable on this host (max '" +
               tier_name(detect_tier()) + "')");
  static const Ops scalar{Tier::kScalar,
                          1,
                          &dot_scalar,
                          &axpy_scalar,
                          &scale_scalar,
                          &matvec_scalar,
                          &soa_gather_scalar,
                          &soa_score_scalar,
                          &soa_affine_step_scalar,
                          &soa_logreg_step_scalar,
                        &soa_affine_fused_scalar,
                        &soa_logreg_fused_scalar};
#if PG_SIMD_X86
  static const Ops sse2{Tier::kSse2,
                        2,
                        &dot_sse2,
                        &axpy_sse2,
                        &scale_sse2,
                        &matvec_sse2,
                        &soa_gather_sse2,
                        &soa_score_sse2,
                        &soa_affine_step_sse2,
                        &soa_logreg_step_sse2,
                        &soa_affine_fused_sse2,
                        &soa_logreg_fused_sse2};
  static const Ops avx2{Tier::kAvx2,
                        4,
                        &dot_avx2,
                        &axpy_avx2,
                        &scale_avx2,
                        &matvec_avx2,
                        &soa_gather_avx2,
                        &soa_score_avx2,
                        &soa_affine_step_avx2,
                        &soa_logreg_step_avx2,
                        &soa_affine_fused_avx2,
                        &soa_logreg_fused_avx2};
  switch (tier) {
    case Tier::kScalar: return scalar;
    case Tier::kSse2: return sse2;
    case Tier::kAvx2: return avx2;
  }
#endif
  return scalar;
}

}  // namespace pg::la::simd
