// Runtime-dispatched SIMD kernel tiers.
//
// PR 5 stopped at auto-vectorization-friendly loops because reassociating
// the hot accumulations would move trained accuracies and break the golden
// baselines. This module goes further WITHOUT giving that up: it detects
// the host's vector ISA once (cpuid), exposes a function-pointer table of
// hand-written intrinsic kernels per tier (scalar / SSE2 / AVX2), and --
// the part the batched trainer is built on -- a family of structure-of-
// arrays "lockstep" kernels that step K independent models per
// instruction with each model's OWN floating-point accumulation order
// preserved exactly (lane k's operations are the sequential trainer's
// operations, in the sequential order; the vector width spans MODELS, not
// a single model's dot product).
//
// Tolerance contract: the SoA lockstep kernels are bit-identical per lane
// to the reference trainers BY CONSTRUCTION on every tier (the AVX2
// variants are compiled without FMA so mul+add cannot contract). The
// horizontal kernels (dot/matvec) DO reassociate and are only used by
// opt-in paths validated at the documented 1e-9 tolerance; nothing on the
// default reference path calls into this module.
//
// Tier resolution precedence (highest first): explicit request (the
// `simd=` spec key) > the PG_SIMD environment variable > cpuid detection.
// Requesting a tier the host cannot execute is a hard error, never a
// silent fallback.
#pragma once

#include <cstddef>
#include <string>

namespace pg::la::simd {

/// Kernel tiers in strictly increasing capability order (comparisons
/// below rely on the ordering). kScalar is always available.
enum class Tier { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Upper bound on the SoA lane count W the soa_* kernels accept: they
/// keep one accumulator register per 4 lanes, and 32 lanes caps that at
/// 8 ymm registers (with room left for the operand streams).
inline constexpr std::size_t kMaxSoaLanes = 32;

/// "scalar" / "sse2" / "avx2".
[[nodiscard]] const char* tier_name(Tier tier) noexcept;

/// Parse a tier name; throws std::invalid_argument on anything else.
[[nodiscard]] Tier parse_tier(const std::string& name);

/// Best tier the host CPU can execute (cpuid-based, cached after the
/// first call). Non-x86 builds report kScalar.
[[nodiscard]] Tier detect_tier();

/// Resolve a tier request against the host: `requested` is a tier name,
/// "auto", or "" (auto). Auto consults $PG_SIMD first (same grammar,
/// including "auto") and then cpuid; an auto resolution that finds no
/// vector ISA at all throws (the caller asked for SIMD kernels the host
/// cannot provide -- forcing "scalar" explicitly is the escape hatch, and
/// exercises the same batched code path at vector width 1). An explicit
/// request above detect_tier() throws a one-line error naming both tiers.
[[nodiscard]] Tier resolve_tier(const std::string& requested);

/// Dispatch table of one tier's kernels. `width` is the vector width in
/// doubles (1 / 2 / 4); the soa_* kernels require the lane count W to be
/// a multiple of it. All pointers are non-null for every supported tier.
struct Ops {
  Tier tier = Tier::kScalar;
  std::size_t width = 1;

  /// Horizontal kernels (vector width spans ONE array): these
  /// reassociate the accumulation and carry the 1e-9 tolerance.
  double (*dot)(const double* x, const double* y, std::size_t n);
  void (*axpy)(double alpha, const double* x, double* y, std::size_t n);
  void (*scale)(double* x, double alpha, std::size_t n);
  /// y[r] = dot(A row r, x) for a row-major rows x cols matrix.
  void (*matvec)(const double* a, std::size_t rows, std::size_t cols,
                 const double* x, double* y);

  /// SoA lockstep kernels (vector width spans MODELS; per-lane op order
  /// is the sequential order, so these are bit-identical per lane).
  /// Layout: element c of lane k lives at [c * W + k]. W % width == 0.
  ///
  /// x_soa[c * W + k] = rows[k][c]: the strided transpose feeding the
  /// kernels below (block-transposed in registers on the vector tiers).
  /// Pure data movement -- no arithmetic, bit-exact on every tier. Every
  /// rows[k] must point at d readable doubles (callers park inactive
  /// lanes on a dummy row; the step kernels mask them).
  void (*soa_gather)(const double* const* rows, std::size_t d,
                     double* x_soa, std::size_t w_lanes);
  /// scores[k] = b[k] + sum_c w[c][k] * x[c][k], accumulated c-ascending.
  void (*soa_score)(const double* w, const double* x, const double* b,
                    double* scores, std::size_t d, std::size_t w_lanes);
  /// w[c][k] = decay[k] * w[c][k] + step[k] * x[c][k] -- the shared form
  /// of both Pegasos branches (non-violating lanes pass step = 0, which
  /// reproduces `w *= decay` bitwise; inactive/ragged lanes pass
  /// decay = 1, step = 0, leaving w untouched).
  void (*soa_affine_step)(double* w, const double* x, const double* decay,
                          const double* step, std::size_t d,
                          std::size_t w_lanes);
  /// w[c][k] -= eta[k] * (g[k] * x[c][k] + lambda * w[c][k]) -- the
  /// logistic SGD update with the reference expression tree. Inactive
  /// lanes pass eta = 0, g = 0.
  void (*soa_logreg_step)(double* w, const double* x, const double* eta,
                          const double* g, double lambda, std::size_t d,
                          std::size_t w_lanes);

  /// Fused steady-state step: in ONE pass over w, per column c
  /// (ascending) apply soa_affine_step's update for the CURRENT sample
  /// x, gather the NEXT sample (rows -> x_next, soa_gather semantics),
  /// and accumulate the next sample's score over the just-updated
  /// weights (scores[k] = b[k] + sum_c w[c][k] * x_next[c][k]). Every
  /// per-lane FP operation and its order is exactly the three separate
  /// kernels' -- the fusion only removes two of the three sweeps of w/x
  /// through L1 per SGD step, which is where the batched trainer's
  /// throughput comes from.
  void (*soa_affine_fused)(double* w, const double* x, const double* decay,
                           const double* step, const double* const* rows,
                           double* x_next, const double* b, double* scores,
                           std::size_t d, std::size_t w_lanes);
  /// Fused logistic twin: soa_logreg_step's update + gather + score.
  void (*soa_logreg_fused)(double* w, const double* x, const double* eta,
                           const double* g, double lambda,
                           const double* const* rows, double* x_next,
                           const double* b, double* scores, std::size_t d,
                           std::size_t w_lanes);
};

/// Kernel table for a tier. Throws when the tier is not executable on
/// this host (resolve_tier() already guarantees executability).
[[nodiscard]] const Ops& ops(Tier tier);

}  // namespace pg::la::simd
