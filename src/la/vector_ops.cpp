#include "la/vector_ops.h"

#include <cmath>

#include "util/error.h"

namespace pg::la {

double dot(const Vector& a, const Vector& b) {
  PG_CHECK(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double squared_norm(const Vector& a) {
  double s = 0.0;
  for (double x : a) s += x * x;
  return s;
}

double norm(const Vector& a) { return std::sqrt(squared_norm(a)); }

double distance(const Vector& a, const Vector& b) {
  PG_CHECK(a.size() == b.size(), "distance: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

void axpy(double alpha, const Vector& x, Vector& y) {
  PG_CHECK(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Vector& x, double alpha) {
  for (double& v : x) v *= alpha;
}

Vector add(const Vector& a, const Vector& b) {
  PG_CHECK(a.size() == b.size(), "add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector subtract(const Vector& a, const Vector& b) {
  PG_CHECK(a.size() == b.size(), "subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scaled(const Vector& a, double alpha) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = alpha * a[i];
  return out;
}

Vector normalized(const Vector& a) {
  const double n = norm(a);
  PG_CHECK(n > 0.0, "normalized: zero vector");
  return scaled(a, 1.0 / n);
}

Vector lerp(const Vector& a, const Vector& b, double t) {
  PG_CHECK(a.size() == b.size(), "lerp: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = (1.0 - t) * a[i] + t * b[i];
  }
  return out;
}

Vector zeros(std::size_t dim) { return Vector(dim, 0.0); }

}  // namespace pg::la
