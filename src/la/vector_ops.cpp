#include "la/vector_ops.h"

#include <cmath>

#include "util/error.h"

// Kernel policy (see also matrix.cpp): the elementwise kernels (axpy,
// scale, add, subtract, scaled, lerp) are written as contiguous
// pointer loops with no loop-carried dependence, so the compiler
// auto-vectorizes them outright. The REDUCTIONS (dot, norms, distance)
// deliberately keep one accumulator advancing left-to-right: SIMD-izing
// a float reduction requires reassociation, and every consumer of these
// kernels -- payoff cells, solver trajectories, golden baselines -- is
// gated on bit-stable results. Defining PG_NO_VECTORIZE rebuilds every
// restructured kernel in this file and matrix.cpp as its straightforward
// reference loop; results are identical either way (the restructuring
// never reorders floating-point arithmetic), the knob only exists to
// isolate codegen when triaging a miscompile or a perf regression.
namespace pg::la {

double dot(const Vector& a, const Vector& b) {
  PG_CHECK(a.size() == b.size(), "dot: size mismatch");
  const std::size_t n = a.size();
  const double* pa = a.data();
  const double* pb = b.data();
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += pa[i] * pb[i];
  return s;
}

double squared_norm(const Vector& a) {
  double s = 0.0;
  for (double x : a) s += x * x;
  return s;
}

double norm(const Vector& a) { return std::sqrt(squared_norm(a)); }

double distance(const Vector& a, const Vector& b) {
  PG_CHECK(a.size() == b.size(), "distance: size mismatch");
  const std::size_t n = a.size();
  const double* pa = a.data();
  const double* pb = b.data();
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = pa[i] - pb[i];
    s += d * d;
  }
  return std::sqrt(s);
}

void axpy(double alpha, const Vector& x, Vector& y) {
  PG_CHECK(x.size() == y.size(), "axpy: size mismatch");
  const std::size_t n = x.size();
  const double* px = x.data();
  double* py = y.data();
  for (std::size_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

void scale(Vector& x, double alpha) {
  for (double& v : x) v *= alpha;
}

Vector add(const Vector& a, const Vector& b) {
  PG_CHECK(a.size() == b.size(), "add: size mismatch");
  const std::size_t n = a.size();
  Vector out(n);
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
  return out;
}

Vector subtract(const Vector& a, const Vector& b) {
  PG_CHECK(a.size() == b.size(), "subtract: size mismatch");
  const std::size_t n = a.size();
  Vector out(n);
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
  return out;
}

Vector scaled(const Vector& a, double alpha) {
  const std::size_t n = a.size();
  Vector out(n);
  const double* pa = a.data();
  double* po = out.data();
  for (std::size_t i = 0; i < n; ++i) po[i] = alpha * pa[i];
  return out;
}

Vector normalized(const Vector& a) {
  const double n = norm(a);
  PG_CHECK(n > 0.0, "normalized: zero vector");
  return scaled(a, 1.0 / n);
}

Vector lerp(const Vector& a, const Vector& b, double t) {
  PG_CHECK(a.size() == b.size(), "lerp: size mismatch");
  const std::size_t n = a.size();
  Vector out(n);
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  for (std::size_t i = 0; i < n; ++i) po[i] = (1.0 - t) * pa[i] + t * pb[i];
  return out;
}

Vector zeros(std::size_t dim) { return Vector(dim, 0.0); }

}  // namespace pg::la
