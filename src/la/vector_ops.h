// Dense BLAS-1 style kernels on std::vector<double>.
//
// The library deliberately uses plain std::vector<double> as its vector
// type: every consumer (SVM weights, centroids, poison points) is a flat
// contiguous array and free functions keep the API minimal and composable.
#pragma once

#include <cstddef>
#include <vector>

namespace pg::la {

using Vector = std::vector<double>;

/// Dot product. Requires equal sizes.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
[[nodiscard]] double norm(const Vector& a);

/// Squared Euclidean norm.
[[nodiscard]] double squared_norm(const Vector& a);

/// Euclidean distance between two points. Requires equal sizes.
[[nodiscard]] double distance(const Vector& a, const Vector& b);

/// y += alpha * x. Requires equal sizes.
void axpy(double alpha, const Vector& x, Vector& y);

/// x *= alpha.
void scale(Vector& x, double alpha);

/// Element-wise a + b. Requires equal sizes.
[[nodiscard]] Vector add(const Vector& a, const Vector& b);

/// Element-wise a - b. Requires equal sizes.
[[nodiscard]] Vector subtract(const Vector& a, const Vector& b);

/// alpha * a.
[[nodiscard]] Vector scaled(const Vector& a, double alpha);

/// Normalize to unit Euclidean norm. Requires a non-zero vector.
[[nodiscard]] Vector normalized(const Vector& a);

/// Linear interpolation (1-t)*a + t*b. Requires equal sizes.
[[nodiscard]] Vector lerp(const Vector& a, const Vector& b, double t);

/// All-zeros vector of the given dimension.
[[nodiscard]] Vector zeros(std::size_t dim);

}  // namespace pg::la
