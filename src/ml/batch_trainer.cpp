#include "ml/batch_trainer.h"

#include <algorithm>
#include <numeric>

#include "obs/trace.h"
#include "util/error.h"

namespace pg::ml {

namespace {

// Shared lane bookkeeping for both loss functions.
struct BatchLayout {
  std::size_t cells = 0;   // K: real lanes
  std::size_t lanes = 0;   // W: K rounded up to the vector width
  std::size_t dim = 0;     // common feature dimension
  std::size_t max_n = 0;   // widest lane's training-set size
};

BatchLayout validate_batch(const std::vector<BatchCell>& cells,
                           std::size_t width) {
  PG_CHECK(!cells.empty(), "BatchedLinearTrainer: empty batch");
  BatchLayout layout;
  layout.cells = cells.size();
  for (const BatchCell& cell : cells) {
    PG_CHECK(cell.train != nullptr && !cell.train->empty(),
             "BatchedLinearTrainer: every cell needs a non-empty training set");
    layout.max_n = std::max(layout.max_n, cell.train->size());
  }
  layout.dim = cells.front().train->dim();
  for (const BatchCell& cell : cells) {
    PG_CHECK(cell.train->dim() == layout.dim,
             "BatchedLinearTrainer: batch cells must share one feature "
             "dimension");
  }
  layout.lanes = ((layout.cells + width - 1) / width) * width;
  PG_CHECK(layout.lanes <= la::simd::kMaxSoaLanes,
           "BatchedLinearTrainer: batch exceeds the SoA lane cap");
  return layout;
}

// Hot-loop pointer hoists shared by both loss functions: per-lane
// feature-matrix bases and label arrays (Dataset::label() is
// bounds-checked and out of line -- too expensive once per lane-step),
// plus a zero dummy row so exhausted/padded lanes always hand
// soa_gather a readable pointer (the step kernels mask those lanes, so
// the gathered zeros are never observable).
struct LanePointers {
  std::vector<const double*> feat;
  std::vector<const int*> labels;
  std::vector<double> dummy;
  std::vector<const double*> rows;

  LanePointers(const std::vector<BatchCell>& cells, const BatchLayout& layout)
      : feat(layout.cells),
        labels(layout.cells),
        dummy(layout.dim, 0.0),
        rows(layout.lanes, dummy.data()) {
    for (std::size_t k = 0; k < layout.cells; ++k) {
      feat[k] = cells[k].train->features().data().data();
      labels[k] = cells[k].train->labels().data();
    }
  }

  /// Point rows[k] at step s's sample (dummy when the lane is exhausted)
  /// and software-prefetch the FOLLOWING step's row and label: the
  /// shuffled orders make every access a random row of a working set the
  /// hardware prefetcher cannot predict, and a full SGD step of lead
  /// time covers an L2/L3 miss that a just-in-time prefetch would not.
  void stage_lane(const std::vector<std::size_t>& order, std::size_t k,
                  std::size_t s, std::size_t d) {
    rows[k] = s < order.size() ? feat[k] + order[s] * d : dummy.data();
    if (s + 1 < order.size()) {
      const double* nxt = feat[k] + order[s + 1] * d;
      for (std::size_t c = 0; c < d; c += 8) __builtin_prefetch(nxt + c);
      __builtin_prefetch(labels[k] + order[s + 1]);
    }
  }

  void stage(const std::vector<std::vector<std::size_t>>& orders,
             std::size_t s, std::size_t d) {
    for (std::size_t k = 0; k < feat.size(); ++k) {
      stage_lane(orders[k], k, s, d);
    }
  }
};

std::vector<std::vector<std::size_t>> make_orders(
    const std::vector<BatchCell>& cells) {
  std::vector<std::vector<std::size_t>> orders(cells.size());
  for (std::size_t k = 0; k < cells.size(); ++k) {
    orders[k].resize(cells[k].train->size());
    std::iota(orders[k].begin(), orders[k].end(), std::size_t{0});
  }
  return orders;
}

}  // namespace

std::vector<std::vector<std::size_t>> plan_batches(
    const std::vector<std::size_t>& sizes, std::size_t width) {
  PG_CHECK(width >= 1 && width <= la::simd::kMaxSoaLanes,
           "plan_batches: width must be in [1, kMaxSoaLanes]");
  std::vector<std::size_t> by_size(sizes.size());
  std::iota(by_size.begin(), by_size.end(), std::size_t{0});
  std::stable_sort(by_size.begin(), by_size.end(),
                   [&sizes](std::size_t a, std::size_t b) {
                     return sizes[a] > sizes[b];
                   });
  std::vector<std::vector<std::size_t>> batches;
  for (std::size_t i = 0; i < by_size.size(); i += width) {
    const std::size_t end = std::min(i + width, by_size.size());
    batches.emplace_back(by_size.begin() + static_cast<std::ptrdiff_t>(i),
                         by_size.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

BatchedLinearTrainer::BatchedLinearTrainer(la::simd::Tier tier)
    : ops_(&la::simd::ops(tier)) {}

la::simd::Tier BatchedLinearTrainer::tier() const noexcept {
  return ops_->tier;
}

std::vector<LinearModel> BatchedLinearTrainer::train_svm(
    const SvmConfig& config, std::vector<BatchCell>& cells) const {
  obs::Span span("sgd_svm_batched", "solver");
  PG_CHECK(config.epochs >= 1, "SvmConfig: epochs must be >= 1");
  PG_CHECK(config.lambda > 0.0, "SvmConfig: lambda must be > 0");
  const BatchLayout layout = validate_batch(cells, ops_->width);
  const std::size_t K = layout.cells;
  const std::size_t W = layout.lanes;
  const std::size_t d = layout.dim;
  const double lambda = config.lambda;

  std::vector<double> w_soa(d * W, 0.0);
  std::vector<double> w_avg(d * W, 0.0);
  // Two x buffers: step s+1 is gathered into the spare one while step
  // s's update is still in flight (see the pipeline comment below).
  std::vector<double> x_a(d * W, 0.0);
  std::vector<double> x_b(d * W, 0.0);
  double* x_cur = x_a.data();
  double* x_nxt = x_b.data();
  std::vector<double> b(W, 0.0);
  std::vector<double> b_avg(W, 0.0);
  // Padded lanes [K, W) keep the identity coefficients forever.
  std::vector<double> decay(W, 1.0);
  std::vector<double> step(W, 0.0);
  std::vector<double> scores(W, 0.0);
  std::vector<std::size_t> t(K, 0);
  auto orders = make_orders(cells);
  LanePointers lanes(cells, layout);

  std::size_t avg_count = 0;
  const std::size_t avg_start_epoch = config.epochs / 2;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Each lane shuffles its OWN order with its OWN stream -- the exact
    // per-epoch draw sequence of the sequential trainer.
    for (std::size_t k = 0; k < K; ++k) cells[k].rng.shuffle(orders[k]);
    // Pipelined epoch: gather + score step 0, then each iteration's
    // fused kernel applies step s's update and produces step s+1's
    // gathered sample and score in the same sweep of w (one pass over
    // memory instead of three; FP ops and their order are unchanged).
    lanes.stage(orders, 0, d);
    ops_->soa_gather(lanes.rows.data(), d, x_cur, W);
    ops_->soa_score(w_soa.data(), x_cur, b.data(), scores.data(), d, W);
    for (std::size_t s = 0; s < layout.max_n; ++s) {
      const bool has_next = s + 1 < layout.max_n;
      for (std::size_t k = 0; k < K; ++k) {
        if (s >= orders[k].size()) {  // exhausted (ragged) lane
          decay[k] = 1.0;
          step[k] = 0.0;
        } else {
          ++t[k];
          const double yi = static_cast<double>(lanes.labels[k][orders[k][s]]);
          const double eta = 1.0 / (lambda * static_cast<double>(t[k]) + 1.0);
          decay[k] = 1.0 - eta * lambda;
          // Branchless hinge: the non-violating side takes step = 0, for
          // which both the w update (step * x contributes +/-0.0 through
          // decay-only lanes -- already the masked-lane identity) and
          // b += +0.0 (b is never -0.0: it starts at +0.0 and finite
          // nonzero adds can only cancel to +0.0) are exact no-ops, so
          // the reference's taken/not-taken branches stay bit-identical.
          step[k] = yi * scores[k] < 1.0 ? eta * yi : 0.0;
          b[k] += step[k];  // bias unregularized, as in the reference
        }
        if (has_next) lanes.stage_lane(orders[k], k, s + 1, d);
      }
      // b is final for step s+1 here (this step's bookkeeping already
      // applied), so the fused score can seed its accumulators with it.
      if (has_next) {
        ops_->soa_affine_fused(w_soa.data(), x_cur, decay.data(), step.data(),
                               lanes.rows.data(), x_nxt, b.data(),
                               scores.data(), d, W);
        std::swap(x_cur, x_nxt);
      } else {
        ops_->soa_affine_step(w_soa.data(), x_cur, decay.data(), step.data(),
                              d, W);
      }
    }
    if (config.average && epoch >= avg_start_epoch) {
      ops_->axpy(1.0, w_soa.data(), w_avg.data(), d * W);
      for (std::size_t k = 0; k < K; ++k) b_avg[k] += b[k];
      ++avg_count;
    }
  }

  std::vector<LinearModel> models;
  models.reserve(K);
  if (config.average && avg_count > 0) {
    ops_->scale(w_avg.data(), 1.0 / static_cast<double>(avg_count), d * W);
    for (std::size_t k = 0; k < K; ++k) {
      la::Vector w(d);
      for (std::size_t c = 0; c < d; ++c) w[c] = w_avg[c * W + k];
      models.emplace_back(std::move(w),
                          b_avg[k] / static_cast<double>(avg_count));
    }
  } else {
    for (std::size_t k = 0; k < K; ++k) {
      la::Vector w(d);
      for (std::size_t c = 0; c < d; ++c) w[c] = w_soa[c * W + k];
      models.emplace_back(std::move(w), b[k]);
    }
  }
  return models;
}

std::vector<LinearModel> BatchedLinearTrainer::train_logreg(
    const LogRegConfig& config, std::vector<BatchCell>& cells) const {
  obs::Span span("sgd_logreg_batched", "solver");
  PG_CHECK(config.epochs >= 1, "LogRegConfig: epochs must be >= 1");
  PG_CHECK(config.lambda >= 0.0, "LogRegConfig: lambda must be >= 0");
  PG_CHECK(config.learning_rate > 0.0,
           "LogRegConfig: learning_rate must be > 0");
  const BatchLayout layout = validate_batch(cells, ops_->width);
  const std::size_t K = layout.cells;
  const std::size_t W = layout.lanes;
  const std::size_t d = layout.dim;
  const double lambda = config.lambda;

  std::vector<double> w_soa(d * W, 0.0);
  std::vector<double> x_a(d * W, 0.0);
  std::vector<double> x_b(d * W, 0.0);
  double* x_cur = x_a.data();
  double* x_nxt = x_b.data();
  std::vector<double> b(W, 0.0);
  // eta = 0, g = 0 masks exhausted and padded lanes bit-exactly:
  // w -= 0 * (0 * x + lambda * w) leaves w untouched.
  std::vector<double> eta(W, 0.0);
  std::vector<double> g(W, 0.0);
  std::vector<double> scores(W, 0.0);
  std::vector<std::size_t> t(K, 0);
  auto orders = make_orders(cells);
  LanePointers lanes(cells, layout);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::size_t k = 0; k < K; ++k) cells[k].rng.shuffle(orders[k]);
    // Same pipelined epoch as train_svm.
    lanes.stage(orders, 0, d);
    ops_->soa_gather(lanes.rows.data(), d, x_cur, W);
    ops_->soa_score(w_soa.data(), x_cur, b.data(), scores.data(), d, W);
    for (std::size_t s = 0; s < layout.max_n; ++s) {
      const bool has_next = s + 1 < layout.max_n;
      for (std::size_t k = 0; k < K; ++k) {
        if (s >= orders[k].size()) {
          eta[k] = 0.0;
          g[k] = 0.0;
        } else {
          ++t[k];
          const double yi = static_cast<double>(lanes.labels[k][orders[k][s]]);
          g[k] = -yi * sigmoid(-yi * scores[k]);
          eta[k] = config.learning_rate /
                   (1.0 + static_cast<double>(t[k]) * lambda);
          b[k] -= eta[k] * g[k];
        }
        if (has_next) lanes.stage_lane(orders[k], k, s + 1, d);
      }
      if (has_next) {
        ops_->soa_logreg_fused(w_soa.data(), x_cur, eta.data(), g.data(),
                               lambda, lanes.rows.data(), x_nxt, b.data(),
                               scores.data(), d, W);
        std::swap(x_cur, x_nxt);
      } else {
        ops_->soa_logreg_step(w_soa.data(), x_cur, eta.data(), g.data(),
                              lambda, d, W);
      }
    }
  }

  std::vector<LinearModel> models;
  models.reserve(K);
  for (std::size_t k = 0; k < K; ++k) {
    la::Vector w(d);
    for (std::size_t c = 0; c < d; ++c) w[c] = w_soa[c * W + k];
    models.emplace_back(std::move(w), b[k]);
  }
  return models;
}

}  // namespace pg::ml
