// SoA batched SGD: train K payoff cells' linear models in lockstep.
//
// A payoff sweep retrains thousands of independent SVM/logreg models that
// share one configuration (epochs, lambda) and one feature dimension but
// differ in training data and RNG stream. The sequential trainers are
// latency-bound: the per-sample score is a strict left-to-right
// accumulation chain (kept that way on purpose for bit-stability), so the
// core sits idle between dependent adds. BatchedLinearTrainer transposes
// the problem instead of the arithmetic: K models' weights are laid out
// structure-of-arrays (`w[k][c] -> w_soa[c * W + k]`) and one instruction
// stream steps all K updates at once through the la::simd soa_* kernels.
// Lane k performs exactly the sequential trainer's operations in the
// sequential order, so each returned model is BIT-IDENTICAL to what
// `SvmTrainer(config).train(*cells[k].train, cells[k].rng)` returns --
// at every tier, including AVX2 (compiled without FMA; see la/simd.h).
//
// Ragged batches (cells with different training-set sizes) run epoch-major:
// a lane whose epoch is exhausted passes identity coefficients
// (decay = 1, step = 0 / eta = 0, g = 0) until the widest lane finishes,
// which leaves its weights bit-untouched.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "la/simd.h"
#include "ml/linear_model.h"
#include "ml/logreg.h"
#include "ml/svm.h"
#include "util/rng.h"

namespace pg::ml {

/// One lane of a batch: a training set and the RNG stream the sequential
/// trainer would have consumed (it is consumed the same way here -- one
/// shuffle of this cell's own sample order per epoch).
struct BatchCell {
  const data::Dataset* train = nullptr;
  util::Rng rng{0};
};

/// Group cell indices into batches of at most `width` lanes, ordered by
/// descending training-set size (ties by ascending index): cells of
/// similar size share a batch, minimizing the ragged tail lanes idle at
/// the end of each epoch. Deterministic; indices partition [0, sizes.size()).
[[nodiscard]] std::vector<std::vector<std::size_t>> plan_batches(
    const std::vector<std::size_t>& sizes, std::size_t width);

class BatchedLinearTrainer {
 public:
  /// Uses the kernel table of the given tier; throws when the host cannot
  /// execute it (resolve_tier() upstream guarantees it can).
  explicit BatchedLinearTrainer(la::simd::Tier tier);

  [[nodiscard]] la::simd::Tier tier() const noexcept;

  /// Train all cells' SVMs in lockstep. Cells must be non-empty, share
  /// one feature dimension, and number at most la::simd::kMaxSoaLanes.
  /// models[k] is bit-identical to the sequential SvmTrainer result for
  /// cell k; cells[k].rng is advanced exactly as the sequential trainer
  /// would have advanced it.
  [[nodiscard]] std::vector<LinearModel> train_svm(
      const SvmConfig& config, std::vector<BatchCell>& cells) const;

  /// Same contract for the logistic-regression baseline.
  [[nodiscard]] std::vector<LinearModel> train_logreg(
      const LogRegConfig& config, std::vector<BatchCell>& cells) const;

 private:
  const la::simd::Ops* ops_;
};

}  // namespace pg::ml
