#include "ml/linear_model.h"

#include <cmath>

#include "util/error.h"

namespace pg::ml {

LinearModel::LinearModel(la::Vector w, double b) : w_(std::move(w)), b_(b) {
  PG_CHECK(!w_.empty(), "LinearModel requires a non-empty weight vector");
}

double LinearModel::decision_function(const la::Vector& x) const {
  return la::dot(w_, x) + b_;
}

int LinearModel::predict(const la::Vector& x) const {
  return decision_function(x) >= 0.0 ? 1 : -1;
}

double LinearModel::accuracy(const data::Dataset& d) const {
  PG_CHECK(!d.empty(), "accuracy on empty dataset");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (predict(d.instance(i)) == d.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(d.size());
}

double LinearModel::margin(const la::Vector& x, int label) const {
  PG_CHECK(label == 1 || label == -1, "label must be -1 or +1");
  return static_cast<double>(label) * decision_function(x);
}

double LinearModel::distance_to_boundary(const la::Vector& x) const {
  const double wn = la::norm(w_);
  PG_CHECK(wn > 0.0, "distance_to_boundary requires non-zero weights");
  return std::abs(decision_function(x)) / wn;
}

}  // namespace pg::ml
