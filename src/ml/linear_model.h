// Linear binary classifier: sign(w . x + b).
//
// Both the hinge-loss SVM (the paper's victim model) and the logistic
// regression baseline produce this model type; every payoff in the game is
// an accuracy of a LinearModel on held-out data.
#pragma once

#include "data/dataset.h"
#include "la/vector_ops.h"

namespace pg::ml {

class LinearModel {
 public:
  LinearModel() = default;

  /// Requires a non-empty weight vector.
  LinearModel(la::Vector w, double b);

  [[nodiscard]] std::size_t dim() const noexcept { return w_.size(); }
  [[nodiscard]] const la::Vector& weights() const noexcept { return w_; }
  [[nodiscard]] double bias() const noexcept { return b_; }

  /// Signed score w . x + b. Requires matching dimension.
  [[nodiscard]] double decision_function(const la::Vector& x) const;

  /// Predicted label: +1 if the score is >= 0, else -1.
  [[nodiscard]] int predict(const la::Vector& x) const;

  /// Fraction of correctly classified instances. Requires non-empty data.
  [[nodiscard]] double accuracy(const data::Dataset& d) const;

  /// Functional margin y * (w . x + b) of one labeled point.
  [[nodiscard]] double margin(const la::Vector& x, int label) const;

  /// Geometric distance of x to the decision hyperplane.
  /// Requires a non-zero weight vector.
  [[nodiscard]] double distance_to_boundary(const la::Vector& x) const;

 private:
  la::Vector w_;
  double b_ = 0.0;
};

}  // namespace pg::ml
