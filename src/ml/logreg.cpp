#include "ml/logreg.h"

#include <cmath>

#include "util/error.h"

namespace pg::ml {

double sigmoid(double z) noexcept {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double logistic_objective(const LinearModel& model, const data::Dataset& d,
                          double lambda) {
  PG_CHECK(!d.empty(), "logistic_objective on empty dataset");
  PG_CHECK(lambda >= 0.0, "lambda must be >= 0");
  double total = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double m = model.margin(d.instance(i), d.label(i));
    // log(1 + exp(-m)) computed stably.
    total += (m > 0.0) ? std::log1p(std::exp(-m)) : -m + std::log1p(std::exp(m));
  }
  return total / static_cast<double>(d.size()) +
         0.5 * lambda * la::squared_norm(model.weights());
}

LogRegTrainer::LogRegTrainer(LogRegConfig config) : config_(config) {
  PG_CHECK(config_.epochs >= 1, "LogRegConfig: epochs must be >= 1");
  PG_CHECK(config_.lambda >= 0.0, "LogRegConfig: lambda must be >= 0");
  PG_CHECK(config_.learning_rate > 0.0,
           "LogRegConfig: learning_rate must be > 0");
}

LinearModel LogRegTrainer::train(const data::Dataset& train,
                                 util::Rng& rng) const {
  PG_CHECK(!train.empty(), "LogRegTrainer: empty training set");
  const std::size_t n = train.size();
  const std::size_t d = train.dim();

  la::Vector w(d, 0.0);
  double b = 0.0;

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  const auto& X = train.features();
  const auto& y = train.labels();

  // Same kernel shape as the SVM trainer: contiguous pointer loops, with
  // the gradient pass elementwise (auto-vectorizable) and the score dot a
  // strict left-to-right chain (bit-stability; see ml/svm.cpp).
  double* wp = w.data();
  const double lambda = config_.lambda;
  std::size_t t = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t k = 0; k < n; ++k) {
      ++t;
      const std::size_t i = order[k];
      const auto xi = X.row(i);
      const double* xp = xi.data();
      const double yi = static_cast<double>(y[i]);
      double score = b;
      for (std::size_t c = 0; c < d; ++c) score += wp[c] * xp[c];
      // d/dz log(1+exp(-y z)) = -y * sigmoid(-y z)
      const double g = -yi * sigmoid(-yi * score);
      const double eta =
          config_.learning_rate / (1.0 + static_cast<double>(t) * lambda);
      for (std::size_t c = 0; c < d; ++c) {
        wp[c] -= eta * (g * xp[c] + lambda * wp[c]);
      }
      b -= eta * g;
    }
  }
  return LinearModel(std::move(w), b);
}

}  // namespace pg::ml
