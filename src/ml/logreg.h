// L2-regularized logistic regression trained by SGD.
//
// Baseline victim model: the paper's game analysis does not depend on the
// victim being an SVM, so the defense-comparison ablation also runs the
// pipeline with a logistic loss to show the E/Gamma curve shapes are
// model-agnostic.
#pragma once

#include <cstddef>

#include "data/dataset.h"
#include "ml/linear_model.h"
#include "util/rng.h"

namespace pg::ml {

struct LogRegConfig {
  std::size_t epochs = 200;
  double lambda = 1e-4;       // L2 strength
  double learning_rate = 0.1; // base rate, decayed as lr / (1 + t*lambda)
};

/// Mean negative log-likelihood plus L2 penalty.
[[nodiscard]] double logistic_objective(const LinearModel& model,
                                        const data::Dataset& d, double lambda);

class LogRegTrainer {
 public:
  explicit LogRegTrainer(LogRegConfig config);

  [[nodiscard]] const LogRegConfig& config() const noexcept { return config_; }

  /// Train on a non-empty dataset.
  [[nodiscard]] LinearModel train(const data::Dataset& train,
                                  util::Rng& rng) const;

 private:
  LogRegConfig config_;
};

/// Numerically stable sigmoid.
[[nodiscard]] double sigmoid(double z) noexcept;

}  // namespace pg::ml
