#include "ml/metrics.h"

#include "util/error.h"

namespace pg::ml {

double ConfusionMatrix::accuracy() const {
  const std::size_t n = total();
  PG_CHECK(n > 0, "accuracy of empty confusion matrix");
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(n);
}

double ConfusionMatrix::precision() const {
  const std::size_t denom = true_positive + false_positive;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::recall() const {
  const std::size_t denom = true_positive + false_negative;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::false_positive_rate() const {
  const std::size_t denom = false_positive + true_negative;
  if (denom == 0) return 0.0;
  return static_cast<double>(false_positive) / static_cast<double>(denom);
}

ConfusionMatrix evaluate(const LinearModel& model, const data::Dataset& d) {
  PG_CHECK(!d.empty(), "evaluate on empty dataset");
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const int pred = model.predict(d.instance(i));
    const int truth = d.label(i);
    if (truth == 1) {
      if (pred == 1) {
        ++cm.true_positive;
      } else {
        ++cm.false_negative;
      }
    } else {
      if (pred == 1) {
        ++cm.false_positive;
      } else {
        ++cm.true_negative;
      }
    }
  }
  return cm;
}

double accuracy(const LinearModel& model, const data::Dataset& d) {
  return evaluate(model, d).accuracy();
}

}  // namespace pg::ml
