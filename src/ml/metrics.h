// Classification metrics used by experiment reports.
#pragma once

#include <cstddef>

#include "data/dataset.h"
#include "ml/linear_model.h"

namespace pg::ml {

/// 2x2 confusion counts for the +1 (positive) class.
struct ConfusionMatrix {
  std::size_t true_positive = 0;
  std::size_t false_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_negative = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return true_positive + false_positive + true_negative + false_negative;
  }
  [[nodiscard]] double accuracy() const;
  [[nodiscard]] double precision() const;  // 0 when no predicted positives
  [[nodiscard]] double recall() const;     // 0 when no actual positives
  [[nodiscard]] double f1() const;         // 0 when precision+recall == 0
  [[nodiscard]] double false_positive_rate() const;
};

/// Evaluate a model on a non-empty dataset.
[[nodiscard]] ConfusionMatrix evaluate(const LinearModel& model,
                                       const data::Dataset& d);

/// Shorthand for evaluate(...).accuracy().
[[nodiscard]] double accuracy(const LinearModel& model, const data::Dataset& d);

}  // namespace pg::ml
