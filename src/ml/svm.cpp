#include "ml/svm.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/error.h"

namespace pg::ml {

double hinge_loss(const LinearModel& model, const data::Dataset& d) {
  PG_CHECK(!d.empty(), "hinge_loss on empty dataset");
  double total = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    total += std::max(0.0, 1.0 - model.margin(d.instance(i), d.label(i)));
  }
  return total / static_cast<double>(d.size());
}

double hinge_objective(const LinearModel& model, const data::Dataset& d,
                       double lambda) {
  PG_CHECK(lambda > 0.0, "lambda must be positive");
  return 0.5 * lambda * la::squared_norm(model.weights()) +
         hinge_loss(model, d);
}

SvmTrainer::SvmTrainer(SvmConfig config) : config_(config) {
  PG_CHECK(config_.epochs >= 1, "SvmConfig: epochs must be >= 1");
  PG_CHECK(config_.lambda > 0.0, "SvmConfig: lambda must be > 0");
}

LinearModel SvmTrainer::train(const data::Dataset& train,
                              util::Rng& rng) const {
  // The SGD solve is the inner "solver" of every payoff cell; tracing it
  // under the same category as the game solvers makes retrain cost
  // directly comparable to equilibrium cost in one trace.
  obs::Span span("sgd_svm", "solver");
  PG_CHECK(!train.empty(), "SvmTrainer: empty training set");
  const std::size_t n = train.size();
  const std::size_t d = train.dim();
  const double lambda = config_.lambda;

  la::Vector w(d, 0.0);
  double b = 0.0;

  // Polyak averaging over the second half of training.
  la::Vector w_avg(d, 0.0);
  double b_avg = 0.0;
  std::size_t avg_count = 0;
  const std::size_t avg_start_epoch = config_.epochs / 2;

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  const auto& X = train.features();
  const auto& y = train.labels();

  // This loop is retrained once per payoff cell -- millions of times over
  // a sweep grid -- so the inner passes are written as contiguous pointer
  // loops: the elementwise update/decay passes auto-vectorize (no
  // loop-carried dependence), while the score dot keeps a single
  // accumulator advancing left-to-right because reassociating it would
  // move trained accuracies and break the golden baselines.
  double* wp = w.data();
  std::size_t t = 0;  // global step counter (1-based in the update)
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t k = 0; k < n; ++k) {
      ++t;
      const std::size_t i = order[k];
      const auto xi = X.row(i);
      const double* xp = xi.data();
      const double yi = static_cast<double>(y[i]);
      double score = b;
      for (std::size_t c = 0; c < d; ++c) score += wp[c] * xp[c];
      // Pegasos rate with a t0 = 1/lambda warm-start offset: the textbook
      // eta_t = 1/(lambda*t) opens at eta_1 = 1/lambda (10^4 for the
      // default lambda), which catapults the unregularized bias and costs
      // hundreds of epochs to undo; the offset caps eta at 1 while
      // preserving the O(1/t) asymptotics.
      const double eta = 1.0 / (lambda * static_cast<double>(t) + 1.0);
      const double decay = 1.0 - eta * lambda;
      if (yi * score < 1.0) {
        const double step = eta * yi;
        for (std::size_t c = 0; c < d; ++c) {
          wp[c] = decay * wp[c] + step * xp[c];
        }
        b += step;  // bias unregularized
      } else {
        for (std::size_t c = 0; c < d; ++c) wp[c] *= decay;
      }
    }
    if (config_.average && epoch >= avg_start_epoch) {
      la::axpy(1.0, w, w_avg);
      b_avg += b;
      ++avg_count;
    }
  }

  if (config_.average && avg_count > 0) {
    la::scale(w_avg, 1.0 / static_cast<double>(avg_count));
    return LinearModel(std::move(w_avg),
                       b_avg / static_cast<double>(avg_count));
  }
  return LinearModel(std::move(w), b);
}

}  // namespace pg::ml
