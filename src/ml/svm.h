// Hinge-loss linear SVM trained by Pegasos-style subgradient SGD.
//
// This is the paper's victim model: "We used Support Vector Machine (SVM)
// with hinge loss as our ML model and trained it for 5000 epoch in every
// iteration." The trainer implements the Pegasos update
//   eta_t = 1 / (lambda * t)
//   w <- (1 - eta_t * lambda) * w + eta_t * y_i * x_i   (on margin violation)
// with an unregularized bias term, per-epoch reshuffling, and an optional
// averaged-weights (Polyak averaging) output that stabilizes accuracy
// measurements across the thousands of retrainings the sweeps perform.
#pragma once

#include <cstddef>

#include "data/dataset.h"
#include "ml/linear_model.h"
#include "util/rng.h"

namespace pg::ml {

struct SvmConfig {
  /// Full passes over the training data. The paper uses 5000; the
  /// experiment harness defaults to fewer because Pegasos converges at
  /// O(1/(lambda*T)) and the accuracy plateau is reached much earlier
  /// (verified by tests/ml/svm_test convergence cases).
  std::size_t epochs = 400;
  /// L2 regularization strength (lambda > 0).
  double lambda = 1e-4;
  /// Average the weight iterates of the second half of training.
  bool average = true;
};

/// Regularized empirical hinge loss:
///   lambda/2 ||w||^2 + mean_i max(0, 1 - y_i (w.x_i + b)).
[[nodiscard]] double hinge_objective(const LinearModel& model,
                                     const data::Dataset& d, double lambda);

/// Mean hinge loss without the regularizer.
[[nodiscard]] double hinge_loss(const LinearModel& model,
                                const data::Dataset& d);

class SvmTrainer {
 public:
  explicit SvmTrainer(SvmConfig config);

  [[nodiscard]] const SvmConfig& config() const noexcept { return config_; }

  /// Train on the given dataset. Requires a non-empty dataset containing
  /// both classes is NOT required (a one-class set yields a constant-ish
  /// classifier), but it must be non-empty.
  [[nodiscard]] LinearModel train(const data::Dataset& train,
                                  util::Rng& rng) const;

 private:
  SvmConfig config_;
};

}  // namespace pg::ml
