#include "ml/validation.h"

#include "ml/metrics.h"
#include "util/error.h"

namespace pg::ml {

std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n,
                                                    std::size_t k,
                                                    util::Rng& rng) {
  PG_CHECK(k >= 2, "kfold requires k >= 2");
  PG_CHECK(k <= n, "kfold requires k <= n");
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.shuffle(idx);
  std::vector<std::vector<std::size_t>> folds(k);
  for (std::size_t i = 0; i < n; ++i) folds[i % k].push_back(idx[i]);
  return folds;
}

double cross_validated_accuracy(const data::Dataset& d, std::size_t k,
                                const TrainFn& train_fn, util::Rng& rng) {
  PG_CHECK(!d.empty(), "cross validation on empty dataset");
  const auto folds = kfold_indices(d.size(), k, rng);
  double total = 0.0;
  for (std::size_t f = 0; f < folds.size(); ++f) {
    std::vector<std::size_t> train_idx;
    for (std::size_t g = 0; g < folds.size(); ++g) {
      if (g == f) continue;
      train_idx.insert(train_idx.end(), folds[g].begin(), folds[g].end());
    }
    const data::Dataset train = d.select(train_idx);
    const data::Dataset test = d.select(folds[f]);
    util::Rng fold_rng = rng.fork(f);
    const LinearModel model = train_fn(train, fold_rng);
    total += accuracy(model, test);
  }
  return total / static_cast<double>(folds.size());
}

}  // namespace pg::ml
