// K-fold cross validation.
//
// Used by tests to bound the variance of accuracy measurements and by the
// RONI defense to score candidate points on held-out folds.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "data/dataset.h"
#include "ml/linear_model.h"
#include "util/rng.h"

namespace pg::ml {

/// A function that trains a model on a dataset.
using TrainFn =
    std::function<LinearModel(const data::Dataset&, util::Rng&)>;

/// Deterministic k-fold index partition of [0, n). Requires 2 <= k <= n.
[[nodiscard]] std::vector<std::vector<std::size_t>> kfold_indices(
    std::size_t n, std::size_t k, util::Rng& rng);

/// Mean held-out accuracy over k folds.
[[nodiscard]] double cross_validated_accuracy(const data::Dataset& d,
                                              std::size_t k,
                                              const TrainFn& train_fn,
                                              util::Rng& rng);

}  // namespace pg::ml
