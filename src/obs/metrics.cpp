#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace pg::obs {

#ifndef PG_OBS_DISABLED

namespace detail {

std::size_t thread_shard() noexcept {
  // Derive a stable slot from the address of a thread_local byte: cheap,
  // no TLS counter handshake, and uniform enough once divided by the
  // typical TLS slot stride.
  static thread_local const char anchor = 0;
  const auto bits = reinterpret_cast<std::uintptr_t>(&anchor);
  return static_cast<std::size_t>((bits >> 6) ^ (bits >> 12)) %
         kMetricShards;
}

}  // namespace detail

std::uint64_t Counter::value() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::reset() noexcept {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Timer::record_ns(std::uint64_t ns) noexcept {
  Shard& s = shards_[detail::thread_shard()];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.total.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = s.min.load(std::memory_order_relaxed);
  while (ns < seen &&
         !s.min.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  seen = s.max.load(std::memory_order_relaxed);
  while (ns > seen &&
         !s.max.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

Timer::Stats Timer::stats() const noexcept {
  Stats out;
  out.min_ns = ~0ULL;
  for (const auto& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.total_ns += s.total.load(std::memory_order_relaxed);
    out.min_ns = std::min(out.min_ns, s.min.load(std::memory_order_relaxed));
    out.max_ns = std::max(out.max_ns, s.max.load(std::memory_order_relaxed));
  }
  if (out.count == 0) out.min_ns = 0;
  return out;
}

void Timer::reset() noexcept {
  for (auto& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.total.store(0, std::memory_order_relaxed);
    s.min.store(~0ULL, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

namespace {

// One entry per registered name. unique_ptr gives stable addresses across
// map rebalancing, so references handed out stay valid forever. std::map
// keeps snapshot order sorted without a second pass.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlive every thread
  return *r;
}

template <class Map>
auto& find_or_insert(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return find_or_insert(r.counters, name);
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return find_or_insert(r.gauges, name);
}

Timer& timer(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return find_or_insert(r.timers, name);
}

std::vector<MetricSnapshot> snapshot_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<MetricSnapshot> out;
  out.reserve(r.counters.size() + r.gauges.size() + r.timers.size());
  constexpr double kNsToMs = 1e-6;
  for (const auto& [name, c] : r.counters) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricSnapshot::Kind::kCounter;
    m.count = c->value();
    out.push_back(std::move(m));
  }
  for (const auto& [name, g] : r.gauges) {
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricSnapshot::Kind::kGauge;
    m.count = g->max();
    out.push_back(std::move(m));
  }
  for (const auto& [name, t] : r.timers) {
    const Timer::Stats s = t->stats();
    MetricSnapshot m;
    m.name = name;
    m.kind = MetricSnapshot::Kind::kTimer;
    m.count = s.count;
    m.total_ms = static_cast<double>(s.total_ns) * kNsToMs;
    m.min_ms = static_cast<double>(s.min_ns) * kNsToMs;
    m.max_ms = static_cast<double>(s.max_ns) * kNsToMs;
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& [name, t] : r.timers) t->reset();
}

#else  // PG_OBS_DISABLED

namespace {
Counter g_noop_counter;
Gauge g_noop_gauge;
Timer g_noop_timer;
}  // namespace

Counter& counter(std::string_view) { return g_noop_counter; }
Gauge& gauge(std::string_view) { return g_noop_gauge; }
Timer& timer(std::string_view) { return g_noop_timer; }
std::vector<MetricSnapshot> snapshot_metrics() { return {}; }
void reset_metrics() {}

#endif  // PG_OBS_DISABLED

}  // namespace pg::obs
