// Process-wide metrics registry: named counters, high-water gauges, and
// histogram timers, cheap enough to leave on in every hot path.
//
// Design constraints, in order:
//  1. A hot-path increment must cost ONE relaxed atomic add on a
//     cache-line-private shard -- no lock, no shared line ping-pong.
//     Counters and timers keep kMetricShards padded slots; each thread
//     hashes to a stable slot, and value()/stats() fold the shards on
//     read (reads are rare: once per scenario run).
//  2. Instrumented code must not pay a registry lookup per event. Call
//     sites hold a `static obs::Counter& c = obs::counter("name");`
//     function-local -- one registration ever, then a direct reference.
//     Registered metrics live for the process (the registry never
//     shrinks), so cached references cannot dangle.
//  3. The whole subsystem compiles out: configuring with -DPG_OBS=OFF
//     defines PG_OBS_DISABLED (PUBLIC on the library target), and every
//     recording call below becomes an empty inline function -- zero
//     code, zero atomics, zero bytes of state. snapshot_metrics() then
//     returns nothing, so sinks degrade to empty sections instead of
//     lying with zeros.
//
// Values are APPROXIMATE under concurrency in exactly one sense: a
// snapshot taken while threads are mid-increment can miss in-flight adds
// (relaxed ordering). Once the instrumented work has joined -- the only
// time the engine reads -- folds are exact; tests/obs_test.cpp asserts
// concurrent increments fold to the exact total after the join.
//
// Naming convention: dotted lowercase paths, `obs.<subsystem>.<what>`
// (obs.pool.tasks_stolen, obs.cache.hits, obs.engine.point_wall).
// scenario/diff.cpp excludes `obs.*` metric keys from golden comparison
// by that prefix, so instrumentation can never destabilize a baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef PG_OBS_DISABLED
#include <atomic>
#include <chrono>
#endif

namespace pg::obs {

/// One registered metric, folded for reporting. Counters fill `count`
/// only; gauges put the high-water mark in `count`; timers fill all
/// fields (durations in milliseconds).
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kTimer };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
};

#ifndef PG_OBS_DISABLED

/// Shard count for counter/timer slots. A power of two so the per-thread
/// slot is a mask, sized past the core counts this library targets --
/// two threads sharing a slot is a throughput nuisance, never an error.
inline constexpr std::size_t kMetricShards = 16;

namespace detail {
/// Stable per-thread shard slot in [0, kMetricShards).
[[nodiscard]] std::size_t thread_shard() noexcept;

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

/// Monotonic event count. add() is one relaxed fetch_add on the calling
/// thread's shard.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::thread_shard()].value.fetch_add(n,
                                                    std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  detail::PaddedU64 shards_[kMetricShards];
};

/// High-water mark (queue depths, sizes). record() keeps the maximum via
/// a CAS loop on one shared atomic -- gauges sit on enqueue/submit paths
/// that already take locks, so sharing one line is fine there.
class Gauge {
 public:
  void record(std::uint64_t v) noexcept {
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen && !max_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { max_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> max_{0};
};

/// Duration accumulator: count, total, min, max in nanoseconds, sharded
/// like Counter. The summary (not a full histogram) is what the
/// committed BENCH_* snapshots track; min/max bound the distribution
/// well enough to spot a stall without per-event storage.
class Timer {
 public:
  struct Stats {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
  };

  void record_ns(std::uint64_t ns) noexcept;
  [[nodiscard]] Stats stats() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total{0};
    std::atomic<std::uint64_t> min{~0ULL};
    std::atomic<std::uint64_t> max{0};
  };
  Shard shards_[kMetricShards];
};

/// RAII wall-clock sample into a Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer) noexcept
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_);
    timer_.record_ns(static_cast<std::uint64_t>(ns.count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  std::chrono::steady_clock::time_point start_;
};

#else  // PG_OBS_DISABLED: the same API as empty inline functions.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void record(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t max() const noexcept { return 0; }
  void reset() noexcept {}
};

class Timer {
 public:
  struct Stats {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
  };
  void record_ns(std::uint64_t) noexcept {}
  [[nodiscard]] Stats stats() const noexcept { return {}; }
  void reset() noexcept {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Timer&) noexcept {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#endif  // PG_OBS_DISABLED

/// Find-or-register by name. References stay valid for the process
/// lifetime; a name registers as exactly one kind (re-registering under
/// a different kind throws std::invalid_argument). Compiled out, these
/// return shared no-op instances.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Timer& timer(std::string_view name);

/// Every registered metric, sorted by name, with timer durations
/// converted to milliseconds. Empty when compiled out.
[[nodiscard]] std::vector<MetricSnapshot> snapshot_metrics();

/// Zero every registered metric (the registration set is untouched).
/// The scenario engine calls this at the start of an instrumented run so
/// a snapshot at the end describes that run alone.
void reset_metrics();

}  // namespace pg::obs
