#include "obs/trace.h"

#include <chrono>
#include <ostream>

namespace pg::obs {

#ifndef PG_OBS_DISABLED

namespace {

// Minimal JSON string escaper. obs/ sits below scenario/ in the layer
// order, so it cannot reuse the sink helpers there; span names are
// ASCII identifiers and coordinates, so control chars + quote + slash
// cover everything real.
void write_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer();  // leaked: outlive every traced thread
  return *t;
}

std::uint64_t Tracer::now_ns() const noexcept {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now().time_since_epoch());
  return static_cast<std::uint64_t>(ns.count());
}

Tracer::ThreadBuf& Tracer::local_buf() {
  // The shared_ptr keeps the buffer alive in buffers_ after the owning
  // thread exits, so pool workers that die before write_chrome_trace()
  // still contribute their events.
  static thread_local std::shared_ptr<ThreadBuf> local;
  if (!local) {
    local = std::make_shared<ThreadBuf>();
    std::lock_guard<std::mutex> lock(registry_mu_);
    local->tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(local);
  }
  return *local;
}

void Tracer::start() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
    buf->dropped = 0;
    buf->span_depth.store(0, std::memory_order_relaxed);
  }
  epoch_ns_.store(now_ns(), std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
}

void Tracer::stop() { active_.store(false, std::memory_order_release); }

std::uint64_t Tracer::dropped_events() const noexcept {
  std::uint64_t total = 0;
  auto* self = const_cast<Tracer*>(this);
  std::lock_guard<std::mutex> lock(self->registry_mu_);
  for (const auto& buf : self->buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

void Tracer::write_chrome_trace(std::ostream& os) {
  stop();
  std::lock_guard<std::mutex> lock(registry_mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t dropped = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    dropped += buf->dropped;
    if (buf->events.empty()) continue;
    if (!first) os << ",";
    first = false;
    // Stable human-readable row label per thread.
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << buf->tid << ",\"args\":{\"name\":\"pg-thread-" << buf->tid
       << "\"}}";
    for (const Event& e : buf->events) {
      // Chrome trace timestamps are microseconds; keep sub-µs precision
      // as a fraction, which both chrome://tracing and Perfetto accept.
      const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
      const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
      os << ",{\"name\":";
      write_escaped(os, e.name.c_str());
      os << ",\"cat\":";
      write_escaped(os, e.cat);
      os << ",\"ph\":\"X\",\"ts\":" << ts_us << ",\"dur\":" << dur_us
         << ",\"pid\":1,\"tid\":" << buf->tid << ",\"args\":{\"depth\":"
         << e.depth << "}}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << dropped << "}}\n";
}

void Span::open(const char* name, const char* cat) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.active()) return;
  Tracer::ThreadBuf& buf = tracer.local_buf();
  buf_ = &buf;
  name_ = name;
  cat_ = cat;
  start_ns_ = tracer.now_ns();
  generation_ = tracer.generation_.load(std::memory_order_relaxed);
  buf.span_depth.fetch_add(1, std::memory_order_relaxed);
}

Span::~Span() {
  if (buf_ == nullptr) return;
  Tracer& tracer = Tracer::instance();
  const std::uint64_t end_ns = tracer.now_ns();
  Tracer::ThreadBuf& buf = *buf_;
  // Decrement even when the event itself is dropped so nesting stays
  // balanced across the cap.
  const std::uint32_t depth =
      buf.span_depth.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (generation_ !=
      tracer.generation_.load(std::memory_order_relaxed)) {
    return;  // straddled a start(): timestamps belong to a dead epoch
  }
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    return;
  }
  Tracer::Event e;
  e.name = std::move(name_);
  e.cat = cat_;
  e.ts_ns = start_ns_ - tracer.epoch_ns_.load(std::memory_order_relaxed);
  e.dur_ns = end_ns - start_ns_;
  e.depth = depth;
  buf.events.push_back(std::move(e));
}

#else  // PG_OBS_DISABLED

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::write_chrome_trace(std::ostream& os) {
  os << "{\"traceEvents\":[]}\n";
}

#endif  // PG_OBS_DISABLED

}  // namespace pg::obs
