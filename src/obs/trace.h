// Span tracer emitting Chrome Trace Event Format JSON.
//
// `pg_run --trace out.json` (or `trace=out.json` in a spec) turns the
// tracer on for one scenario run; the file loads directly in
// chrome://tracing or https://ui.perfetto.dev. Spans are recorded around
// scenario phases, sweep-grid points, payoff-cell batches, solver
// solves, and pool/team worker tasks, each tagged with the recording
// thread and its nesting depth -- so work stealing and barrier idle time
// show up as gaps and interleavings on the per-thread rows.
//
// Recording model:
//  - `obs::Span s("name", "category");` at any scope. When the tracer is
//    inactive (the default) the constructor reads one relaxed atomic and
//    stores nothing -- cheap enough to leave on task-grained paths.
//    (It is NOT free; per-element inner loops should stay uninstrumented.)
//  - Events buffer per thread: a thread_local shared_ptr<ThreadBuf>
//    registered with the tracer on first use. Each buffer has its own
//    mutex -- effectively uncontended (the owner writes, the writer folds
//    after recording stops) but it keeps TSan provably happy and the
//    buffer alive after thread exit.
//  - Buffers cap at kMaxEventsPerThread; overflow increments a dropped
//    counter that write_chrome_trace() reports in trace metadata rather
//    than silently truncating.
//  - start() bumps a generation; a Span constructed before a start/stop
//    boundary and destroyed after it sees the generation mismatch and
//    drops itself, so stale timestamps never cross runs.
//
// Determinism contract: tracing observes, never steers. No scheduling
// decision, RNG draw, or result value may depend on tracer state; the
// golden suite runs with tracing on and compares at tolerance 0 to hold
// the line. Compiled out (PG_OBS_DISABLED), Span is an empty struct and
// the tracer reports inactive forever.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#ifndef PG_OBS_DISABLED
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>
#endif

namespace pg::obs {

#ifndef PG_OBS_DISABLED

/// Per-thread event cap; ~96 bytes/event, so ~6 MiB/thread worst case.
inline constexpr std::size_t kMaxEventsPerThread = 65536;

class Tracer {
 public:
  static Tracer& instance();

  /// Begin a recording: clears all thread buffers, re-anchors the
  /// epoch, and invalidates any in-flight spans from a previous run.
  void start();

  /// Stop recording (spans constructed afterwards store nothing).
  void stop();

  [[nodiscard]] bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Stop if needed, fold every thread buffer, and emit Chrome Trace
  /// Event JSON ("X" complete events on stable per-thread rows, plus "M"
  /// thread_name metadata). Events from dead threads are included.
  void write_chrome_trace(std::ostream& os);

  /// Total events dropped to per-thread caps during the last recording.
  [[nodiscard]] std::uint64_t dropped_events() const noexcept;

 private:
  friend class Span;

  struct Event {
    std::string name;
    const char* cat;
    std::uint64_t ts_ns;
    std::uint64_t dur_ns;
    std::uint32_t depth;
  };

  struct ThreadBuf {
    std::mutex mu;
    std::vector<Event> events;
    std::uint64_t dropped = 0;
    std::uint32_t tid = 0;  // registration order: stable row id
    // Nesting counter. Owner-thread-mostly, but start() zeroes it from
    // the controlling thread, so it is atomic (relaxed) for TSan.
    std::atomic<std::uint32_t> span_depth{0};
  };

  Tracer() = default;
  ThreadBuf& local_buf();
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuf>> buffers_;
  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> epoch_ns_{0};
};

/// RAII span. Captures the start time in the constructor and appends one
/// complete event in the destructor. Nesting depth is tracked per thread
/// and emitted in the event args, so a flame view distinguishes a
/// top-level grid point from the nested payoff cells it fanned out.
class Span {
 public:
  Span(const char* name, const char* cat) { open(name, cat); }
  Span(const std::string& name, const char* cat) {
    open(name.c_str(), cat);
  }
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(const char* name, const char* cat);

  // Armed spans keep everything needed to emit without re-consulting
  // global state; `buf_ == nullptr` means "tracer was off, do nothing".
  Tracer::ThreadBuf* buf_ = nullptr;
  std::string name_;
  const char* cat_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t generation_ = 0;
};

#else  // PG_OBS_DISABLED

class Tracer {
 public:
  static Tracer& instance();
  void start() {}
  void stop() {}
  [[nodiscard]] bool active() const noexcept { return false; }
  void write_chrome_trace(std::ostream& os);
  [[nodiscard]] std::uint64_t dropped_events() const noexcept { return 0; }
};

class Span {
 public:
  Span(const char*, const char*) {}
  Span(const std::string&, const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // PG_OBS_DISABLED

}  // namespace pg::obs
