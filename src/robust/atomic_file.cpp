#include "robust/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "robust/faultpoint.h"

namespace pg::robust {

namespace {

[[noreturn]] void fail(int fd, const std::string& tmp, const std::string& what) {
  const std::string reason = std::strerror(errno);
  if (fd >= 0) ::close(fd);
  ::unlink(tmp.c_str());
  throw std::runtime_error("atomic write: " + what + " " + tmp + ": " +
                           reason);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view content,
                       std::string_view site, std::uint64_t arg) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail(-1, tmp, "cannot create");

  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(fd, tmp, "cannot write");
    }
    written += static_cast<std::size_t>(n);
  }

  // The injection point sits between write and fsync+rename -- the worst
  // moment: `crash` leaves only the temp file (the final path is intact
  // or absent, never torn), `short-write` truncates and renames anyway
  // to exercise loaders against a torn final file.
  const FaultHit hit = faultpoint(site, arg);
  if (hit.short_write && content.size() > 1) {
    if (::ftruncate(fd, static_cast<off_t>(content.size() / 2)) != 0) {
      fail(fd, tmp, "cannot truncate");
    }
  }

  if (::fsync(fd) != 0) fail(fd, tmp, "cannot fsync");
  if (::close(fd) != 0) fail(-1, tmp, "cannot close");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    fail(-1, tmp, "cannot rename into place:");
  }
}

}  // namespace pg::robust
