// Crash-safe whole-file writes: temp + fsync + rename.
//
// Every JSON/binary artifact the project emits (result out-files, shard
// partials, metrics snapshots, traces, payoff-cache shards) goes through
// atomic_write_file, so a reader can NEVER observe a torn file at the
// final path: either the old content is still there, or the complete new
// content is. A writer killed mid-write leaves only a `<path>.tmp.<pid>`
// temp file -- which loaders never look at, and which a retried worker
// never collides with (the pid is in the name).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace pg::robust {

/// Write `content` to `path` atomically: create `<path>.tmp.<pid>`,
/// write, fsync, rename(2) over `path`. Throws std::runtime_error naming
/// the path on any filesystem refusal (the temp file is removed).
///
/// `site`/`arg` name the fault point evaluated between the write and the
/// fsync+rename, so injected faults land at the worst moment: `crash`
/// dies leaving only the temp (proving the no-torn-file guarantee),
/// `short-write` truncates the payload to half and then renames anyway
/// (simulating a non-atomic legacy writer or filesystem corruption, to
/// exercise loaders' torn-read handling). By convention `arg` carries
/// the shard index; 0 elsewhere.
void atomic_write_file(const std::string& path, std::string_view content,
                       std::string_view site = "artifact.write",
                       std::uint64_t arg = 0);

}  // namespace pg::robust
