#include "robust/faultpoint.h"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "util/env.h"

namespace pg::robust {

namespace {

struct Rule {
  std::string site;
  bool has_arg = false;
  std::uint64_t arg = 0;
  enum class Action { kCrash, kThrow, kDelay, kShortWrite };
  Action action = Action::kThrow;
  std::uint64_t delay_ms = 0;
  enum class Trigger { kAlways, kNth, kFromNth, kProb, kAttempt };
  Trigger trigger = Trigger::kAlways;
  std::uint64_t n = 0;      // kNth / kFromNth / kAttempt
  double prob = 0.0;        // kProb
  std::uint64_t seed = 0;   // kProb
  std::uint64_t hits = 0;   // matching hits so far, this process
  std::string entry;        // original spec text, for error messages
};

// One mutex guards the table for both configure() swaps and armed-path
// evaluation. Fault points live on cold paths (file writes, request
// framing, worker startup), and the unarmed fast path never gets here.
std::mutex g_mutex;
std::vector<Rule> g_rules;
std::atomic<std::uint64_t> g_attempt{0};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t state = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    state ^= static_cast<unsigned char>(c);
    state *= 0x100000001B3ULL;
  }
  return state;
}

[[noreturn]] void bad_entry(const std::string& entry, const std::string& why) {
  throw std::invalid_argument("PG_FAULTS: bad entry '" + entry + "': " + why);
}

std::uint64_t parse_u64(const std::string& text, const std::string& entry,
                        const std::string& what) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    bad_entry(entry, what + " must be a non-negative integer, got '" + text +
                         "'");
  }
  return std::strtoull(text.c_str(), nullptr, 10);
}

Rule parse_entry(const std::string& entry) {
  Rule rule;
  rule.entry = entry;

  const std::size_t colon = entry.find(':');
  if (colon == std::string::npos || colon == 0) {
    bad_entry(entry, "expected site:action");
  }
  std::string site = entry.substr(0, colon);
  std::string rest = entry.substr(colon + 1);

  // Optional [arg] selector on the site.
  if (!site.empty() && site.back() == ']') {
    const std::size_t open = site.find('[');
    if (open == std::string::npos || open == 0) {
      bad_entry(entry, "malformed [arg] selector");
    }
    rule.has_arg = true;
    rule.arg = parse_u64(site.substr(open + 1, site.size() - open - 2), entry,
                         "[arg]");
    site = site.substr(0, open);
  }
  rule.site = site;

  // Optional @trigger suffix on the action.
  std::string trigger;
  if (const std::size_t at = rest.find('@'); at != std::string::npos) {
    trigger = rest.substr(at + 1);
    rest = rest.substr(0, at);
  }

  if (rest == "crash") {
    rule.action = Rule::Action::kCrash;
  } else if (rest == "throw") {
    rule.action = Rule::Action::kThrow;
  } else if (rest == "short-write") {
    rule.action = Rule::Action::kShortWrite;
  } else if (rest.rfind("delay=", 0) == 0) {
    rule.action = Rule::Action::kDelay;
    rule.delay_ms = parse_u64(rest.substr(6), entry, "delay");
  } else {
    bad_entry(entry, "unknown action '" + rest +
                         "' (crash | throw | delay=MS | short-write)");
  }

  if (trigger.empty()) {
    rule.trigger = Rule::Trigger::kAlways;
  } else if (trigger[0] == 'p') {
    rule.trigger = Rule::Trigger::kProb;
    std::string prob = trigger.substr(1);
    if (const std::size_t slash = prob.find('/');
        slash != std::string::npos) {
      rule.seed = parse_u64(prob.substr(slash + 1), entry, "seed");
      prob = prob.substr(0, slash);
    }
    char* end = nullptr;
    rule.prob = std::strtod(prob.c_str(), &end);
    if (prob.empty() || end == nullptr || *end != '\0' || rule.prob < 0.0 ||
        rule.prob > 1.0) {
      bad_entry(entry, "probability must be in [0,1], got '" + prob + "'");
    }
  } else if (trigger[0] == 'a') {
    rule.trigger = Rule::Trigger::kAttempt;
    rule.n = parse_u64(trigger.substr(1), entry, "attempt");
  } else if (trigger.back() == '+') {
    rule.trigger = Rule::Trigger::kFromNth;
    rule.n = parse_u64(trigger.substr(0, trigger.size() - 1), entry,
                       "trigger");
    if (rule.n == 0) bad_entry(entry, "hit triggers are 1-based");
  } else {
    rule.trigger = Rule::Trigger::kNth;
    rule.n = parse_u64(trigger, entry, "trigger");
    if (rule.n == 0) bad_entry(entry, "hit triggers are 1-based");
  }
  return rule;
}

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

FaultHit faultpoint_slow(std::string_view site, std::uint64_t arg) {
  const Rule* fired = nullptr;
  Rule snapshot;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    for (Rule& rule : g_rules) {
      if (rule.site != site) continue;
      if (rule.has_arg && rule.arg != arg) continue;
      const std::uint64_t hit = ++rule.hits;
      bool fire = false;
      switch (rule.trigger) {
        case Rule::Trigger::kAlways:
          fire = true;
          break;
        case Rule::Trigger::kNth:
          fire = hit == rule.n;
          break;
        case Rule::Trigger::kFromNth:
          fire = hit >= rule.n;
          break;
        case Rule::Trigger::kProb: {
          const std::uint64_t draw =
              splitmix64(rule.seed ^ splitmix64(fnv1a(rule.site) ^ hit));
          fire = static_cast<double>(draw >> 11) * 0x1.0p-53 < rule.prob;
          break;
        }
        case Rule::Trigger::kAttempt:
          fire = g_attempt.load(std::memory_order_relaxed) == rule.n;
          break;
      }
      if (fire) {
        snapshot = rule;
        fired = &snapshot;
        break;
      }
    }
  }
  if (fired == nullptr) return {};

  // Record the trigger BEFORE acting: throw/delay/short-write survive to
  // be snapshotted; a crash loses its counter with the process (the
  // orchestrator's obs.shard.retried is the durable record there).
  obs::counter("obs.fault.triggered").add(1);
  obs::counter("obs.fault." + std::string(site)).add(1);

  switch (fired->action) {
    case Rule::Action::kCrash:
      // Die like a killed worker: unblockable, no atexit, no unwinding.
      std::raise(SIGKILL);
      std::_Exit(137);  // unreachable unless raise() somehow failed
    case Rule::Action::kThrow:
      throw InjectedFault("injected fault at " + std::string(site) + " (" +
                          fired->entry + ")");
    case Rule::Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fired->delay_ms));
      return {};
    case Rule::Action::kShortWrite:
      return {.short_write = true};
  }
  return {};
}

}  // namespace detail

void configure(const std::string& spec) {
  std::vector<Rule> rules;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    if (!entry.empty()) rules.push_back(parse_entry(entry));
    begin = end + 1;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_rules = std::move(rules);
  detail::g_armed.store(!g_rules.empty(), std::memory_order_relaxed);
}

void configure_from_env() {
  const std::string spec = util::env_string("PG_FAULTS");
  if (!spec.empty()) configure(spec);
}

void reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_rules.clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

void set_attempt(std::uint64_t attempt) noexcept {
  g_attempt.store(attempt, std::memory_order_relaxed);
}

std::uint64_t attempt() noexcept {
  return g_attempt.load(std::memory_order_relaxed);
}

}  // namespace pg::robust
