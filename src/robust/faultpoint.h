// Deterministic fault injection: always compiled, zero-cost when idle.
//
// A fault POINT is a named call site at a place that can really fail --
// a cache shard store, an artifact write, a socket read, a shard worker
// coming up. Unarmed (the default), faultpoint() is one relaxed atomic
// load and nothing else: no counters, no allocation, no branch beyond
// the flag check. Armed via PG_FAULTS / `pg_run --fault`, a matching
// site executes its injected ACTION, and `obs.fault.*` counters record
// every trigger (obs.fault.triggered plus obs.fault.<site>).
//
// Spec grammar (comma-separated entries, no spaces):
//
//     PG_FAULTS = site[\[arg\]]:action[@trigger][,...]
//
//     action   crash        raise(SIGKILL) -- the process dies exactly
//                           like an OOM-killed or operator-killed worker
//              throw        throw robust::InjectedFault (a
//                           std::runtime_error naming the site)
//              delay=MS     sleep MS milliseconds, then continue
//              short-write  tell the CALLER to truncate its write; only
//                           cooperating writers (atomic_write_file)
//                           honor it, everyone else ignores the flag
//
//     trigger  (none)       every matching hit fires
//              N            only the Nth matching hit fires (1-based,
//                           counted per rule per process)
//              N+           every hit from the Nth onward fires
//              pP[/SEED]    each hit fires independently with
//                           probability P in [0,1]; deterministic in
//                           (SEED, site, hit index) via SplitMix64
//              aK           every hit fires, but only while the process
//                           fault attempt == K (the shard-retry
//                           orchestrator sets the attempt in relaunched
//                           workers; 0 everywhere else) -- so
//                           `shard.worker.start[1]:crash@a0` kills shard
//                           1's first launch and lets its retry live
//
//     arg      an optional numeric selector matched against the
//              faultpoint's `arg` (by convention the shard index; 0
//              when the site has no natural argument)
//
// Examples:
//     PG_FAULTS=cache.store:short-write
//     PG_FAULTS=shard.worker.start[1]:crash@a0
//     PG_FAULTS=serve.write:throw@1,cache.load:delay=50@p0.5/7
//
// Determinism: hit counters are per-rule and per-process (forked shard
// workers inherit a COPY at fork time), probability draws hash the seed,
// site, and hit index -- two identically-armed runs inject identically.
// configure() replaces the whole rule table; reset() disarms.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pg::robust {

/// What `throw` actions throw. Derived from std::runtime_error so every
/// existing catch path (CLI catch-all, serve connection loops, cache
/// degrade wrappers) handles an injected failure like a real one.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// What an armed site tells its caller. crash/throw/delay are executed
/// INSIDE faultpoint(); short_write is returned because only the caller
/// can tear its own write.
struct FaultHit {
  bool short_write = false;
};

namespace detail {
extern std::atomic<bool> g_armed;
FaultHit faultpoint_slow(std::string_view site, std::uint64_t arg);
}  // namespace detail

/// True when any fault rule is loaded.
[[nodiscard]] inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Evaluate the named site. The unarmed path is a single relaxed load.
inline FaultHit faultpoint(std::string_view site, std::uint64_t arg = 0) {
  if (!armed()) return {};
  return detail::faultpoint_slow(site, arg);
}

/// Parse `spec` (the PG_FAULTS grammar above) and REPLACE the process
/// rule table; an empty spec disarms. Throws std::invalid_argument on a
/// malformed entry, naming it.
void configure(const std::string& spec);

/// configure() from $PG_FAULTS; unset/empty leaves the table untouched
/// (so a test-armed process is not disarmed by an innocent call).
void configure_from_env();

/// Disarm and clear every rule and hit counter.
void reset();

/// The process fault attempt consulted by `aK` triggers. The shard-exec
/// orchestrator sets it (post-fork) to the worker's relaunch count.
void set_attempt(std::uint64_t attempt) noexcept;
[[nodiscard]] std::uint64_t attempt() noexcept;

}  // namespace pg::robust
