#include "runtime/executor.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "util/error.h"

namespace pg::runtime {

void SerialExecutor::parallel_for(std::size_t begin, std::size_t end,
                                  std::size_t grain,
                                  const std::function<void(std::size_t)>& fn) {
  PG_CHECK(fn != nullptr, "parallel_for: null body");
  (void)grain;  // chunking is a scheduling concern; serially it is a no-op
  for (std::size_t i = begin; i < end; ++i) fn(i);
}

namespace {

/// Shared completion state for one parallel_for call.
struct LoopState {
  std::mutex mutex;
  std::condition_variable done;
  std::atomic<std::size_t> pending{0};
  std::exception_ptr error;  // first failure wins; guarded by mutex
};

/// The executor whose pool the current thread is a worker of, if any.
/// Guards against the classic nested-parallel_for deadlock: a loop body
/// that calls parallel_for on its own executor would block a worker on
/// sub-chunks that can only run on (already blocked) workers.
thread_local const ThreadPoolExecutor* tls_running_on = nullptr;

/// Nesting depth of the pool task the current thread is executing:
/// 0 outside the pool, 1 inside a top-level task, 2 inside a chunk that
/// task dispatched, ... . Tasks submitted from this thread are tagged
/// tls_depth + 1, and joins help-drain at that same tag, so a blocked
/// thread only ever picks up work at least as deep as what it waits for.
thread_local std::size_t tls_depth = 0;

void run_chunk(const ThreadPoolExecutor* self, std::size_t depth,
               LoopState& state, std::size_t lo, std::size_t hi,
               const std::function<void(std::size_t)>& fn) {
  const ThreadPoolExecutor* prev = tls_running_on;
  const std::size_t prev_depth = tls_depth;
  tls_running_on = self;
  tls_depth = depth;
  try {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  } catch (...) {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.error) state.error = std::current_exception();
  }
  tls_running_on = prev;
  tls_depth = prev_depth;
}

void finish_chunk(const std::shared_ptr<LoopState>& state) {
  if (state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last chunk: notify under the mutex so the waiter cannot check the
    // counter and sleep between our decrement and our notify.
    std::lock_guard<std::mutex> lock(state->mutex);
    state->done.notify_all();
  }
}

}  // namespace

bool on_pool_worker() noexcept { return tls_depth > 0; }

void ThreadPoolExecutor::dispatch(std::size_t begin, std::size_t end,
                                  std::size_t grain, std::size_t chunks,
                                  const std::function<void(std::size_t)>& fn) {
  // The depth this call's chunks run at: one level below the caller.
  // The join only helps tasks at least this deep (its own chunks always
  // qualify), so waiting can never stack a fresh outer task on top.
  const std::size_t depth = tls_depth + 1;

  auto state = std::make_shared<LoopState>();
  // The caller runs chunk 0 itself and only waits on the rest: one less
  // dispatch, and the fork-join never idles the issuing thread.
  state->pending.store(chunks - 1, std::memory_order_relaxed);

  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    pool_.submit(
        [this, depth, state, lo, hi, &fn] {
          run_chunk(this, depth, *state, lo, hi, fn);
          finish_chunk(state);
        },
        depth);
  }

  const std::size_t first_hi = begin + grain < end ? begin + grain : end;
  run_chunk(this, depth, *state, begin, first_hi, fn);

  // Help-first join: drain queued tasks no shallower than our own chunks
  // (chunk bodies never block indefinitely -- any nested join inside them
  // follows this same rule -- so stealing is always safe), then spin
  // briefly before sleeping. The condition-variable fallback costs a
  // futex round-trip -- as long as a whole solver iteration -- so the
  // fine-grained fork-join cadence must normally complete within the spin.
  constexpr int kJoinSpinRounds = 128;
  int spin = 0;
  while (state->pending.load(std::memory_order_acquire) > 0) {
    if (pool_.try_run_one(depth)) {
      spin = 0;
      continue;
    }
    if (spin < kJoinSpinRounds) {
      if (++spin % 16 == 0) std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(state->mutex);
    if (state->pending.load(std::memory_order_acquire) == 0) break;
    state->done.wait(lock, [&state] {
      return state->pending.load(std::memory_order_acquire) == 0;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPoolExecutor::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t)>& fn) {
  PG_CHECK(fn != nullptr, "parallel_for: null body");
  if (end <= begin) return;
  if (grain == 0) grain = 1;

  const std::size_t count = end - begin;
  const std::size_t chunks = (count + grain - 1) / grain;
  if (chunks == 1 || pool_.size() == 1 || tls_running_on == this) {
    // Run inline when dispatch buys nothing (one chunk, one worker) or is
    // the wrong trade (nested call from one of our own workers: for the
    // fine-grained loops routed here, inline beats re-dispatch -- coarse
    // bodies use parallel_for_nested instead). Identical results by the
    // determinism contract.
    static obs::Counter& inline_loops = obs::counter("obs.exec.inline");
    inline_loops.add(1);
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  static obs::Counter& dispatched = obs::counter("obs.exec.dispatch");
  dispatched.add(1);
  dispatch(begin, end, grain, chunks, fn);
}

void ThreadPoolExecutor::parallel_for_nested(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t)>& fn) {
  PG_CHECK(fn != nullptr, "parallel_for: null body");
  if (end <= begin) return;
  if (grain == 0) grain = 1;

  const std::size_t count = end - begin;
  const std::size_t chunks = (count + grain - 1) / grain;
  if (chunks == 1 || pool_.size() == 1) {
    static obs::Counter& inline_loops = obs::counter("obs.exec.inline");
    inline_loops.add(1);
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  static obs::Counter& dispatched = obs::counter("obs.exec.dispatch");
  dispatched.add(1);
  dispatch(begin, end, grain, chunks, fn);
}

bool ThreadPoolExecutor::submit_for_group(std::function<void()> task) {
  if (pool_.size() == 1) return false;  // inline is strictly cheaper
  const std::size_t depth = tls_depth + 1;
  pool_.submit(
      [this, depth, task = std::move(task)] {
        const ThreadPoolExecutor* prev = tls_running_on;
        const std::size_t prev_depth = tls_depth;
        tls_running_on = this;
        tls_depth = depth;
        task();  // TaskGroup's wrapper owns exception capture + completion
        tls_running_on = prev;
        tls_depth = prev_depth;
      },
      depth);
  return true;
}

bool ThreadPoolExecutor::help_one() { return pool_.try_run_one(tls_depth + 1); }

Executor& serial_executor() noexcept {
  static SerialExecutor instance;
  return instance;
}

}  // namespace pg::runtime
