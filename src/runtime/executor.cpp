#include "runtime/executor.h"

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "util/error.h"

namespace pg::runtime {

void SerialExecutor::parallel_for(std::size_t begin, std::size_t end,
                                  std::size_t grain,
                                  const std::function<void(std::size_t)>& fn) {
  PG_CHECK(fn != nullptr, "parallel_for: null body");
  (void)grain;  // chunking is a scheduling concern; serially it is a no-op
  for (std::size_t i = begin; i < end; ++i) fn(i);
}

namespace {

/// Shared completion state for one parallel_for call.
struct LoopState {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t pending = 0;
  std::exception_ptr error;  // first failure wins
};

/// The executor whose pool the current thread is a worker of, if any.
/// Guards against the classic nested-parallel_for deadlock: a loop body
/// that calls parallel_for on its own executor would block a worker on
/// sub-chunks that can only run on (already blocked) workers.
thread_local const ThreadPoolExecutor* tls_running_on = nullptr;

}  // namespace

void ThreadPoolExecutor::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t)>& fn) {
  PG_CHECK(fn != nullptr, "parallel_for: null body");
  if (end <= begin) return;
  if (grain == 0) grain = 1;

  const std::size_t count = end - begin;
  const std::size_t chunks = (count + grain - 1) / grain;
  if (chunks == 1 || pool_.size() == 1 || tls_running_on == this) {
    // Run inline when dispatch buys nothing (one chunk, one worker) or
    // would deadlock (nested call from one of our own workers: the
    // sub-chunks could only run on workers that are themselves blocked).
    // Identical results by the determinism contract.
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->pending = chunks;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    pool_.submit([this, state, lo, hi, &fn] {
      tls_running_on = this;
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      tls_running_on = nullptr;
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->pending == 0) state->done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&state] { return state->pending == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

Executor& serial_executor() noexcept {
  static SerialExecutor instance;
  return instance;
}

}  // namespace pg::runtime
