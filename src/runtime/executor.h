// Execution strategy for data-parallel loops.
//
// Every grid/sweep entry point in the library takes an optional
// runtime::Executor*; null means "run serially, inline". The contract that
// makes the swap safe is DETERMINISM BY CONSTRUCTION: a loop body handed
// to parallel_for must depend only on its index (deriving any randomness
// from an RngStreamFactory, never from shared mutable state), so the
// result is bit-identical whether the loop runs inline, on one worker, or
// on sixteen.
//
// parallel_for blocks until every index has run. If one or more loop
// bodies throw, the first exception (in chunk submission order, best
// effort) is rethrown on the calling thread after all chunks finish or
// abandon; the executor remains usable afterwards.
#pragma once

#include <cstddef>
#include <functional>

#include "runtime/thread_pool.h"

namespace pg::runtime {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Worker count available to parallel_for (1 for the serial executor).
  [[nodiscard]] virtual std::size_t concurrency() const noexcept = 0;

  /// Blocking loop: calls fn(i) exactly once for every i in [begin, end),
  /// dispatching contiguous chunks of `grain` indices as tasks. grain == 0
  /// is treated as 1. Exceptions from fn propagate to the caller.
  virtual void parallel_for(std::size_t begin, std::size_t end,
                            std::size_t grain,
                            const std::function<void(std::size_t)>& fn) = 0;
};

/// Runs every index inline on the calling thread, in order.
class SerialExecutor final : public Executor {
 public:
  [[nodiscard]] std::size_t concurrency() const noexcept override { return 1; }
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t)>& fn) override;
};

/// Dispatches chunks onto a fixed-size work-stealing ThreadPool owned by
/// the executor. The calling thread participates: it runs the first chunk
/// itself and helps drain queued chunks while waiting, so even a two-chunk
/// loop (e.g. one solver iteration's row scan + column scan) overlaps.
/// Reentrancy-safe: a parallel_for issued from inside one of this
/// executor's own loop bodies runs inline on the calling worker instead
/// of deadlocking on the saturated pool.
class ThreadPoolExecutor final : public Executor {
 public:
  /// 0 threads means default_thread_count().
  explicit ThreadPoolExecutor(std::size_t threads = 0) : pool_(threads) {}

  [[nodiscard]] std::size_t concurrency() const noexcept override {
    return pool_.size();
  }
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t)>& fn) override;

 private:
  ThreadPool pool_;
};

/// Process-wide shared SerialExecutor (the null-executor fallback).
[[nodiscard]] Executor& serial_executor() noexcept;

/// Resolve the optional-executor convention used across sim/ and core/.
[[nodiscard]] inline Executor& executor_or_serial(Executor* executor) noexcept {
  return executor != nullptr ? *executor : serial_executor();
}

/// Free-function form used by call sites that hold an optional pointer.
inline void parallel_for(Executor* executor, std::size_t begin,
                         std::size_t end, std::size_t grain,
                         const std::function<void(std::size_t)>& fn) {
  executor_or_serial(executor).parallel_for(begin, end, grain, fn);
}

}  // namespace pg::runtime
