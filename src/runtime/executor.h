// Execution strategy for data-parallel loops.
//
// Every grid/sweep entry point in the library takes an optional
// runtime::Executor*; null means "run serially, inline". The contract that
// makes the swap safe is DETERMINISM BY CONSTRUCTION: a loop body handed
// to parallel_for must depend only on its index (deriving any randomness
// from an RngStreamFactory, never from shared mutable state), so the
// result is bit-identical whether the loop runs inline, on one worker, or
// on sixteen.
//
// parallel_for blocks until every index has run. If one or more loop
// bodies throw, the first exception (in chunk submission order, best
// effort) is rethrown on the calling thread after all chunks finish or
// abandon; the executor remains usable afterwards.
//
// NESTED SCHEDULING: parallel_for called from inside one of the pool's
// own tasks runs inline (the cheap, always-safe choice for fine-grained
// solver loops). parallel_for_nested instead dispatches its chunks onto
// the SAME work-stealing pool even from a worker thread: the chunks are
// depth-tagged one level below the caller, the caller runs the first
// chunk itself and help-drains tasks at least that deep while joining,
// so the join can neither deadlock (its own chunks are always eligible
// to run on the joining thread) nor be diverted into an unbounded
// outer-level task. Coarse inner loops -- payoff cells under a sweep
// point, grid points under the scenario engine -- use it to share one
// pool across nesting levels. TaskGroup (task_group.h) exposes the same
// machinery for irregular task sets.
#pragma once

#include <cstddef>
#include <functional>

#include "runtime/thread_pool.h"

namespace pg::runtime {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Worker count available to parallel_for (1 for the serial executor).
  [[nodiscard]] virtual std::size_t concurrency() const noexcept = 0;

  /// Blocking loop: calls fn(i) exactly once for every i in [begin, end),
  /// dispatching contiguous chunks of `grain` indices as tasks. grain == 0
  /// is treated as 1. Exceptions from fn propagate to the caller.
  virtual void parallel_for(std::size_t begin, std::size_t end,
                            std::size_t grain,
                            const std::function<void(std::size_t)>& fn) = 0;

  /// Nesting-aware variant: identical contract, but a call issued from
  /// inside one of this executor's own tasks still dispatches chunks to
  /// the shared pool (depth-tagged; see the file comment) instead of
  /// collapsing inline. Use it for coarse loop bodies that are worth
  /// spreading across idle workers even mid-task; keep plain parallel_for
  /// for fine-grained per-iteration loops. Executors without a pool run
  /// it as plain parallel_for.
  virtual void parallel_for_nested(std::size_t begin, std::size_t end,
                                   std::size_t grain,
                                   const std::function<void(std::size_t)>& fn) {
    parallel_for(begin, end, grain, fn);
  }

 protected:
  friend class TaskGroup;

  /// TaskGroup hooks. submit_for_group enqueues one eagerly-started task
  /// (depth-tagged below the caller); returning false means "no async
  /// backend, run it inline" (the serial executor's answer). help_one
  /// runs one queued task no shallower than the caller's children while
  /// a group waits; false when nothing eligible is queued.
  virtual bool submit_for_group(std::function<void()> task) {
    (void)task;
    return false;
  }
  virtual bool help_one() { return false; }
};

/// Runs every index inline on the calling thread, in order.
class SerialExecutor final : public Executor {
 public:
  [[nodiscard]] std::size_t concurrency() const noexcept override { return 1; }
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t)>& fn) override;
};

/// Dispatches chunks onto a fixed-size work-stealing ThreadPool owned by
/// the executor. The calling thread participates: it runs the first chunk
/// itself and helps drain queued chunks while waiting, so even a two-chunk
/// loop (e.g. one solver iteration's row scan + column scan) overlaps.
/// Reentrancy-safe: a parallel_for issued from inside one of this
/// executor's own loop bodies runs inline on the calling worker instead
/// of deadlocking on the saturated pool; parallel_for_nested dispatches
/// even then (depth-tagged, help-first join -- see the file comment).
class ThreadPoolExecutor final : public Executor {
 public:
  /// 0 threads means default_thread_count().
  explicit ThreadPoolExecutor(std::size_t threads = 0) : pool_(threads) {}

  [[nodiscard]] std::size_t concurrency() const noexcept override {
    return pool_.size();
  }
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t)>& fn) override;
  void parallel_for_nested(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t)>& fn) override;

 protected:
  bool submit_for_group(std::function<void()> task) override;
  bool help_one() override;

 private:
  void dispatch(std::size_t begin, std::size_t end, std::size_t grain,
                std::size_t chunks, const std::function<void(std::size_t)>& fn);

  ThreadPool pool_;
};

/// True when the calling thread is currently executing a task scheduled
/// by some ThreadPoolExecutor (a sweep point, a payoff cell, a solver
/// chunk). Long-lived helpers that spawn their own threads -- notably
/// PersistentTeam -- consult this to avoid oversubscribing from inside an
/// already-parallel region.
[[nodiscard]] bool on_pool_worker() noexcept;

/// Process-wide shared SerialExecutor (the null-executor fallback).
[[nodiscard]] Executor& serial_executor() noexcept;

/// Resolve the optional-executor convention used across sim/ and core/.
[[nodiscard]] inline Executor& executor_or_serial(Executor* executor) noexcept {
  return executor != nullptr ? *executor : serial_executor();
}

/// Free-function form used by call sites that hold an optional pointer.
inline void parallel_for(Executor* executor, std::size_t begin,
                         std::size_t end, std::size_t grain,
                         const std::function<void(std::size_t)>& fn) {
  executor_or_serial(executor).parallel_for(begin, end, grain, fn);
}

/// Free-function form of the nesting-aware loop.
inline void parallel_for_nested(Executor* executor, std::size_t begin,
                                std::size_t end, std::size_t grain,
                                const std::function<void(std::size_t)>& fn) {
  executor_or_serial(executor).parallel_for_nested(begin, end, grain, fn);
}

}  // namespace pg::runtime
