// Deterministic parallel reductions on an Executor.
//
// parallel_for covers loops whose bodies write disjoint state; the solver
// engine also needs REDUCTIONS -- the argmax of a best-response score
// vector, the first column passing Bland's pricing test -- whose parallel
// result must equal the serial left-to-right scan BIT FOR BIT at any
// thread count. The scheme here is a fixed two-level tree: the index
// range is cut into chunks by a grain that is a pure function of the
// arguments, each chunk computes a partial in parallel (leaf level), and
// the partials are folded on the calling thread in ascending chunk order
// (root level). Because every comparison is exact -- no epsilon, no
// reassociated floating-point accumulation -- the fold reproduces the
// serial scan's result (including first-index tie-breaking) regardless of
// how chunks were scheduled.
//
// All helpers accept a nullable Executor* (null = serial) like the rest
// of the runtime.
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/executor.h"
#include "util/error.h"

namespace pg::runtime {

/// Shared grain policy for loops whose iteration touches `inner_dim`
/// cells (a matrix row, a tableau row): one chunk per ~4096 touched
/// cells, so dispatch never outweighs the work and small problems
/// collapse to a single inline chunk.
[[nodiscard]] inline std::size_t grain_for_cells(
    std::size_t inner_dim) noexcept {
  constexpr std::size_t kCellsPerChunk = 4096;
  const std::size_t g = kCellsPerChunk / (inner_dim == 0 ? 1 : inner_dim);
  return g == 0 ? 1 : g;
}

/// Generic two-level reduction. `map(lo, hi)` computes one chunk's
/// partial (a pure function of the index range); `fold(acc, partial)`
/// combines partials in ascending chunk order, starting from the first
/// chunk's partial. Requires a non-empty range. Exceptions thrown by
/// `map` propagate to the caller (see Executor::parallel_for).
template <typename Partial, typename MapFn, typename FoldFn>
[[nodiscard]] Partial chunked_reduce(Executor* executor, std::size_t begin,
                                     std::size_t end, std::size_t grain,
                                     const MapFn& map, const FoldFn& fold) {
  PG_CHECK(begin < end, "chunked_reduce: empty range");
  if (grain == 0) grain = 1;
  const std::size_t count = end - begin;
  const std::size_t chunks = (count + grain - 1) / grain;
  if (chunks == 1) return map(begin, end);

  std::vector<Partial> partials(chunks);
  parallel_for(executor, 0, chunks, 1, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    partials[c] = map(lo, hi);
  });
  Partial acc = partials[0];
  for (std::size_t c = 1; c < chunks; ++c) acc = fold(acc, partials[c]);
  return acc;
}

/// Partial result of an extremum scan: the best value seen in a chunk and
/// the smallest index attaining it.
struct ArgExtremum {
  double value = 0.0;
  std::size_t index = 0;
};

/// Index of the FIRST maximum of value(i) over [begin, end) -- exactly
/// std::max_element's answer -- computed chunk-parallel. Strict-greater
/// comparisons at both levels preserve the smallest-index tie-break.
template <typename ValueFn>
[[nodiscard]] std::size_t parallel_argmax(Executor* executor,
                                          std::size_t begin, std::size_t end,
                                          std::size_t grain,
                                          const ValueFn& value) {
  return chunked_reduce<ArgExtremum>(
             executor, begin, end, grain,
             [&](std::size_t lo, std::size_t hi) {
               ArgExtremum best{value(lo), lo};
               for (std::size_t i = lo + 1; i < hi; ++i) {
                 const double v = value(i);
                 if (v > best.value) best = {v, i};
               }
               return best;
             },
             [](const ArgExtremum& a, const ArgExtremum& b) {
               return b.value > a.value ? b : a;
             })
      .index;
}

/// Index of the FIRST minimum of value(i) over [begin, end) -- exactly
/// std::min_element's answer.
template <typename ValueFn>
[[nodiscard]] std::size_t parallel_argmin(Executor* executor,
                                          std::size_t begin, std::size_t end,
                                          std::size_t grain,
                                          const ValueFn& value) {
  return parallel_argmax(executor, begin, end, grain,
                         [&](std::size_t i) { return -value(i); });
}

/// Smallest index in [begin, end) with pred(i) true, or `end` when none.
/// Scans block-by-block (each block = `block_chunks` grains evaluated in
/// parallel) and stops at the first block containing a hit, so the common
/// early hit costs at most one block of extra evaluations over the serial
/// break-on-first-hit loop. The answer itself is exact either way.
template <typename PredFn>
[[nodiscard]] std::size_t parallel_find_first(Executor* executor,
                                              std::size_t begin,
                                              std::size_t end,
                                              std::size_t grain,
                                              const PredFn& pred,
                                              std::size_t block_chunks = 4) {
  if (grain == 0) grain = 1;
  if (block_chunks == 0) block_chunks = 1;
  const std::size_t block = grain * block_chunks;
  for (std::size_t lo = begin; lo < end; lo += block) {
    const std::size_t hi = lo + block < end ? lo + block : end;
    const std::size_t found = chunked_reduce<std::size_t>(
        executor, lo, hi, grain,
        [&](std::size_t clo, std::size_t chi) {
          for (std::size_t i = clo; i < chi; ++i) {
            if (pred(i)) return i;
          }
          return end;  // sentinel: no hit in this chunk
        },
        [](std::size_t a, std::size_t b) { return a < b ? a : b; });
    if (found != end) return found;
  }
  return end;
}

}  // namespace pg::runtime
