#include "runtime/payoff_disk_cache.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>
#include <vector>

#include "obs/metrics.h"
#include "robust/atomic_file.h"
#include "robust/faultpoint.h"
#include "util/env.h"
#include "util/logging.h"

namespace pg::runtime {

namespace {

// "PGPCACH1" as a little-endian u64: magic and version in one word.
constexpr std::uint64_t kMagic = 0x3148434143504750ULL;

void put_u64(std::string& out, std::uint64_t word) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<char>((word >> (8 * b)) & 0xFFU));
  }
}

std::uint64_t get_u64(const std::string& in, std::size_t offset) {
  std::uint64_t word = 0;
  for (int b = 0; b < 8; ++b) {
    word |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(in[offset + b]))
            << (8 * b);
  }
  return word;
}

std::uint64_t fnv1a(std::uint64_t state, std::uint64_t word) {
  for (int b = 0; b < 8; ++b) {
    state ^= (word >> (8 * b)) & 0xFFU;
    state *= 0x100000001B3ULL;
  }
  return state;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string hex16(std::uint64_t word) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[word & 0xFU];
    word >>= 4;
  }
  return s;
}

}  // namespace

std::string DiskPayoffCache::env_dir() {
  return util::env_string("PG_CACHE_DIR");
}

std::string DiskPayoffCache::shard_path(std::uint64_t shard) const {
  return (std::filesystem::path(dir_) / ("payoff-" + hex16(shard) + ".pgpc"))
      .string();
}

std::string DiskPayoffCache::encode(
    const std::vector<std::pair<std::uint64_t, double>>& entries) {
  std::string out;
  out.reserve(8 * (3 + 2 * entries.size()));
  put_u64(out, kMagic);
  put_u64(out, static_cast<std::uint64_t>(entries.size()));
  std::uint64_t checksum = 0xCBF29CE484222325ULL;
  for (const auto& [key, value] : entries) {
    const std::uint64_t bits = double_bits(value);
    put_u64(out, key);
    put_u64(out, bits);
    checksum = fnv1a(fnv1a(checksum, key), bits);
  }
  put_u64(out, checksum);
  return out;
}

bool DiskPayoffCache::decode(
    const std::string& bytes,
    std::vector<std::pair<std::uint64_t, double>>& entries) {
  entries.clear();
  if (bytes.size() < 24 || bytes.size() % 8 != 0) return false;
  if (get_u64(bytes, 0) != kMagic) return false;
  const std::uint64_t count = get_u64(bytes, 8);
  // Bound-check BEFORE the arithmetic below: a corrupt count near 2^61
  // would overflow 8 * (3 + 2 * count) and could slip past the equality.
  if (count > (bytes.size() - 24) / 16) return false;
  if (bytes.size() != 8 * (3 + 2 * count)) return false;
  std::uint64_t checksum = 0xCBF29CE484222325ULL;
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t key = get_u64(bytes, 16 + 16 * i);
    const std::uint64_t bits = get_u64(bytes, 24 + 16 * i);
    checksum = fnv1a(fnv1a(checksum, key), bits);
    entries.emplace_back(key, bits_double(bits));
  }
  if (checksum != get_u64(bytes, bytes.size() - 8)) {
    entries.clear();
    return false;
  }
  return true;
}

std::size_t DiskPayoffCache::load(std::uint64_t shard,
                                  PayoffCache& into) const {
  if (!enabled()) return 0;
  const std::string path = shard_path(shard);
  robust::faultpoint("cache.load", shard);
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;  // no shard yet: a cold run, not an error
  std::ostringstream buf;
  buf << in.rdbuf();
  std::vector<std::pair<std::uint64_t, double>> entries;
  if (!decode(buf.str(), entries)) {
    static obs::Counter& failures = obs::counter("obs.disk.checksum_failures");
    failures.add(1);
    // Quarantine the poisoned file: left in place it would be re-read
    // and re-rejected on every later run. The rename keeps the bytes for
    // post-mortem while the .corrupt extension hides it from both this
    // loader and the eviction scan (which only touches *.pgpc).
    in.close();
    std::error_code ec;
    std::filesystem::rename(path, path + ".corrupt", ec);
    if (ec) std::filesystem::remove(path, ec);
    static obs::Counter& quarantined = obs::counter("obs.cache.quarantined");
    quarantined.add(1);
    util::log_warn() << "payoff disk cache: quarantined corrupt shard "
                     << path << " (likely a truncated or torn write); "
                     << "this run degrades to a cold retrain";
    return 0;
  }
  into.preload(entries);
  static obs::Counter& loaded = obs::counter("obs.disk.entries_loaded");
  loaded.add(entries.size());
  return entries.size();
}

std::size_t DiskPayoffCache::save(std::uint64_t shard,
                                  const PayoffCache& cache) const {
  if (!enabled()) return 0;
  const auto entries = cache.snapshot();
  if (entries.empty()) return 0;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    util::log_warn() << "payoff disk cache: cannot create " << dir_ << ": "
                     << ec.message();
    return 0;
  }
  const std::string path = shard_path(shard);
  // Cache persistence is best-effort by contract: a refused write (or an
  // injected cache.store fault) degrades to "this run's retrains are not
  // reused", never to a failed run.
  try {
    robust::atomic_write_file(path, encode(entries), "cache.store", shard);
  } catch (const std::exception& e) {
    util::log_warn() << "payoff disk cache: cannot write " << path << ": "
                     << e.what();
    return 0;
  }
  static obs::Counter& saved = obs::counter("obs.disk.entries_saved");
  saved.add(entries.size());
  return entries.size();
}

std::size_t DiskPayoffCache::enforce_max_bytes() const {
  if (!enabled() || max_bytes_ == 0) return 0;
  struct Shard {
    std::filesystem::file_time_type mtime;
    std::string name;  // same-mtime tiebreak, so eviction is deterministic
    std::uintmax_t bytes;
    std::filesystem::path path;
  };
  std::vector<Shard> shards;
  std::uintmax_t total = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return 0;  // unreadable/missing dir: nothing to evict
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("payoff-", 0) != 0 ||
        entry.path().extension() != ".pgpc") {
      continue;  // never touch files the cache did not write
    }
    const std::uintmax_t bytes = entry.file_size(ec);
    if (ec) continue;
    const auto mtime = entry.last_write_time(ec);
    if (ec) continue;
    total += bytes;
    shards.push_back({mtime, name, bytes, entry.path()});
  }
  if (total <= max_bytes_) return 0;
  std::sort(shards.begin(), shards.end(), [](const Shard& a, const Shard& b) {
    return std::tie(a.mtime, a.name) < std::tie(b.mtime, b.name);
  });
  std::size_t evicted = 0;
  for (const Shard& shard : shards) {
    if (total <= max_bytes_) break;
    const bool removed = std::filesystem::remove(shard.path, ec);
    if (ec) {
      util::log_warn() << "payoff disk cache: cannot evict " << shard.name
                       << ": " << ec.message();
      continue;
    }
    // Either way the shard no longer occupies the directory, so it stops
    // counting against the budget -- but only an unlink WE performed is an
    // eviction. `removed == false` (no error) means a concurrent worker
    // sharing this cache dir already removed it between directory_iterator
    // and here: multi-process steady state, silent by design.
    total -= shard.bytes;
    if (removed) ++evicted;
  }
  if (evicted > 0) {
    static obs::Counter& obs_evicted = obs::counter("obs.disk.shards_evicted");
    obs_evicted.add(evicted);
    util::log_warn() << "payoff disk cache: evicted " << evicted
                     << " oldest shard(s) to fit " << max_bytes_
                     << " bytes in " << dir_;
  }
  return evicted;
}

}  // namespace pg::runtime
