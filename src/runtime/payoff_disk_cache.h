// Disk spill for runtime::PayoffCache: cross-process reuse of retrains.
//
// A payoff cell's key is a 64-bit content hash of EVERYTHING its value
// depends on (context fingerprint + cell knobs + replication), so a cached
// (key, payoff) pair is valid in any later process that derives the same
// key -- a re-run, or a tweaked sweep whose grids overlap the old one.
// This class persists one cache file per SHARD (the shard id is the
// context fingerprint, so every experiment context gets its own file and
// unrelated corpora never share buckets) under a cache directory:
//
//     <dir>/payoff-<shard hex>.pgpc
//
// File format v1 (little-endian, fixed width):
//     u64 magic "PGPCACH1"  | u64 entry count N
//     N x (u64 key, u64 payoff bit pattern)
//     u64 checksum (FNV-1a over all N entry words)
//
// Loading is strictly validating: a bad magic, truncated body, or checksum
// mismatch makes load() return 0 entries (with a log warning) instead of
// throwing -- a corrupt or stale cache file degrades to a cold run, never
// to a wrong result or a crash. A rejected shard is QUARANTINED (renamed
// to <file>.corrupt, counted as obs.cache.quarantined) so later runs stop
// re-reading and re-rejecting the same poisoned bytes. save() goes through
// robust::atomic_write_file (temp + fsync + rename) so a crashed writer
// cannot leave a half-written shard; both paths carry robust fault points
// (cache.load / cache.store) for chaos testing.
//
// The directory comes from the caller or the PG_CACHE_DIR environment
// variable; empty means disabled (every call becomes a no-op).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runtime/payoff_evaluator.h"

namespace pg::runtime {

class DiskPayoffCache {
 public:
  /// `dir` empty -> disabled. The directory is created lazily on the
  /// first save(). `max_bytes` caps the directory's total shard size
  /// (0 = unbounded); enforce_max_bytes() applies it.
  explicit DiskPayoffCache(std::string dir, std::uint64_t max_bytes = 0)
      : dir_(std::move(dir)), max_bytes_(max_bytes) {}

  /// Directory from PG_CACHE_DIR (empty when unset -> disabled).
  [[nodiscard]] static std::string env_dir();

  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// The shard's file path (defined even when the file does not exist).
  [[nodiscard]] std::string shard_path(std::uint64_t shard) const;

  /// Merge the shard's persisted entries into `into` (existing keys win).
  /// Returns the number of entries read; 0 when disabled, missing, or
  /// corrupt. Never throws on bad file contents; a corrupt file is
  /// quarantined (renamed to <file>.corrupt) on detection.
  std::size_t load(std::uint64_t shard, PayoffCache& into) const;

  /// Persist the cache's full contents as the shard file (the caller
  /// loads before running, so the snapshot is old entries + new ones).
  /// Returns the number of entries written; 0 when disabled or the
  /// filesystem refuses (logged, not thrown).
  std::size_t save(std::uint64_t shard, const PayoffCache& cache) const;

  [[nodiscard]] std::uint64_t max_bytes() const noexcept { return max_bytes_; }

  /// Evict oldest shards (by modification time, then filename for
  /// same-stamp determinism) until the directory's total `payoff-*.pgpc`
  /// size fits under max_bytes(). Returns the number of shard files
  /// removed; 0 when disabled, uncapped, already within the cap, or the
  /// filesystem refuses (logged, not thrown). The engine runs this once
  /// after spilling, so a freshly-written shard is the newest and only
  /// falls to the cap when it alone exceeds it.
  std::size_t enforce_max_bytes() const;

  /// Serialize/deserialize the v1 format (exposed for tests).
  [[nodiscard]] static std::string encode(
      const std::vector<std::pair<std::uint64_t, double>>& entries);
  /// Returns false (leaving `entries` empty) on any malformed input.
  [[nodiscard]] static bool decode(
      const std::string& bytes,
      std::vector<std::pair<std::uint64_t, double>>& entries);

 private:
  std::string dir_;
  std::uint64_t max_bytes_ = 0;
};

}  // namespace pg::runtime
