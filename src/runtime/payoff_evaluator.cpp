#include "runtime/payoff_evaluator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace pg::runtime {

ContentKey& ContentKey::mix(std::uint64_t word) noexcept {
  // FNV-1a, one byte at a time over the word.
  for (int b = 0; b < 8; ++b) {
    state_ ^= (word >> (8 * b)) & 0xFFU;
    state_ *= 0x100000001B3ULL;  // FNV-1a 64-bit prime
  }
  return *this;
}

ContentKey& ContentKey::mix(double value) noexcept {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return mix(bits);
}

std::uint64_t ContentKey::digest() const noexcept {
  // SplitMix64 finalizer: avalanches the FNV state so near-equal inputs
  // (adjacent grid fractions) land in unrelated cache buckets and RNG
  // stream indices.
  std::uint64_t z = state_ + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool PayoffCache::lookup(std::uint64_t key, double& value) const {
  static obs::Counter& obs_hits = obs::counter("obs.cache.hits");
  static obs::Counter& obs_misses = obs::counter("obs.cache.misses");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    obs_misses.add(1);
    return false;
  }
  ++stats_.hits;
  obs_hits.add(1);
  value = it->second;
  return true;
}

void PayoffCache::store(std::uint64_t key, double value) {
  static obs::Counter& obs_stores = obs::counter("obs.cache.stores");
  obs_stores.add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  map_.emplace(key, value);
}

PayoffCache::Claim PayoffCache::claim(std::uint64_t key, double& value) {
  static obs::Counter& obs_hits = obs::counter("obs.cache.hits");
  static obs::Counter& obs_misses = obs::counter("obs.cache.misses");
  static obs::Counter& obs_coalesced = obs::counter("obs.cache.coalesced");
  std::unique_lock<std::mutex> lock(mutex_);
  bool waited = false;
  for (;;) {
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      obs_hits.add(1);
      if (waited) obs_coalesced.add(1);
      value = it->second;
      return waited ? Claim::kWaited : Claim::kHit;
    }
    if (inflight_.insert(key).second) {
      ++stats_.misses;
      obs_misses.add(1);
      return Claim::kOwner;
    }
    // Someone else owns this key: sleep until it publishes or abandons.
    waited = true;
    flight_cv_.wait(lock);
  }
}

void PayoffCache::publish(std::uint64_t key, double value) {
  static obs::Counter& obs_stores = obs::counter("obs.cache.stores");
  obs_stores.add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.emplace(key, value);
    inflight_.erase(key);
  }
  flight_cv_.notify_all();
}

PayoffCache::TryClaim PayoffCache::try_claim(std::uint64_t key,
                                             double& value) {
  static obs::Counter& obs_hits = obs::counter("obs.cache.hits");
  static obs::Counter& obs_misses = obs::counter("obs.cache.misses");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    obs_hits.add(1);
    value = it->second;
    return TryClaim::kHit;
  }
  if (inflight_.insert(key).second) {
    ++stats_.misses;
    obs_misses.add(1);
    return TryClaim::kOwner;
  }
  // In flight elsewhere; deliberately uncounted (see header).
  return TryClaim::kBusy;
}

void PayoffCache::abandon(std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key);
  }
  // A waiter on this key re-runs the claim loop, finds no value and no
  // owner, and is promoted to owner itself.
  flight_cv_.notify_all();
}

std::size_t PayoffCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

void PayoffCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  stats_ = {};
}

PayoffCacheStats PayoffCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<std::pair<std::uint64_t, double>> PayoffCache::snapshot() const {
  std::vector<std::pair<std::uint64_t, double>> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries.assign(map_.begin(), map_.end());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

void PayoffCache::preload(
    const std::vector<std::pair<std::uint64_t, double>>& entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, value] : entries) map_.emplace(key, value);
}

std::vector<double> PayoffEvaluator::evaluate_cells(std::size_t count,
                                                    const CellFn& cell,
                                                    const KeyFn& key) const {
  PG_CHECK(cell != nullptr, "PayoffEvaluator: null cell function");
  obs::Span span("evaluate_cells", "payoff");
  static obs::Counter& obs_retrains = obs::counter("obs.cache.retrains");
  std::vector<double> values(count, 0.0);
  // Nesting-aware dispatch: payoff cells are coarse (a retrain each), so
  // even when this evaluator runs inside an outer pool task -- a sweep
  // point under the scenario engine's point-parallel grid -- its cells
  // still fan out to idle workers instead of serializing on one.
  executor_.parallel_for_nested(0, count, grain_, [&](std::size_t i) {
    if (cache_ != nullptr && key) {
      // Single-flight: when two concurrent evaluations (grid points, or
      // server requests on a shared store) hit the same cold cell, one
      // computes and the rest wait for its value instead of retraining.
      const std::uint64_t k = key(i);
      double cached = 0.0;
      const PayoffCache::Claim claim = cache_->claim(k, cached);
      if (claim != PayoffCache::Claim::kOwner) {
        values[i] = cached;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      try {
        values[i] = cell(i);
      } catch (...) {
        cache_->abandon(k);
        throw;
      }
      computed_.fetch_add(1, std::memory_order_relaxed);
      obs_retrains.add(1);
      cache_->publish(k, values[i]);
      return;
    }
    values[i] = cell(i);
    computed_.fetch_add(1, std::memory_order_relaxed);
    obs_retrains.add(1);
  });
  return values;
}

std::vector<double> PayoffEvaluator::evaluate_cells_batched(
    std::size_t count, const BatchFn& batch, const KeyFn& key) const {
  PG_CHECK(batch != nullptr, "PayoffEvaluator: null batch function");
  obs::Span span("evaluate_cells_batched", "payoff");
  static obs::Counter& obs_retrains = obs::counter("obs.cache.retrains");
  std::vector<double> values(count, 0.0);

  if (cache_ == nullptr || !key) {
    std::vector<std::size_t> all(count);
    for (std::size_t i = 0; i < count; ++i) all[i] = i;
    batch(all, values);
    computed_.fetch_add(count, std::memory_order_relaxed);
    obs_retrains.add(count);
    return values;
  }

  // Phase A: non-blocking triage. try_claim never sleeps, so holding many
  // unpublished claims here cannot deadlock against a concurrent batched
  // evaluation claiming the same keys in a different order.
  std::vector<std::size_t> owned;
  std::vector<std::uint64_t> owned_keys;
  std::vector<std::size_t> pending;  // owned by someone else right now
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t k = key(i);
    double cached = 0.0;
    switch (cache_->try_claim(k, cached)) {
      case PayoffCache::TryClaim::kHit:
        values[i] = cached;
        hits_.fetch_add(1, std::memory_order_relaxed);
        break;
      case PayoffCache::TryClaim::kOwner:
        owned.push_back(i);
        owned_keys.push_back(k);
        break;
      case PayoffCache::TryClaim::kBusy:
        pending.push_back(i);
        break;
    }
  }

  if (!owned.empty()) {
    try {
      batch(owned, values);
    } catch (...) {
      for (const std::uint64_t k : owned_keys) cache_->abandon(k);
      throw;
    }
    for (std::size_t j = 0; j < owned.size(); ++j) {
      cache_->publish(owned_keys[j], values[owned[j]]);
    }
    computed_.fetch_add(owned.size(), std::memory_order_relaxed);
    obs_retrains.add(owned.size());
  }

  // Phase B: cells that were in flight elsewhere. All our claims are
  // published by now, so blocking is safe -- but only one claim at a
  // time, released (published) before the next, to keep it that way.
  for (const std::size_t i : pending) {
    const std::uint64_t k = key(i);
    double cached = 0.0;
    if (cache_->claim(k, cached) != PayoffCache::Claim::kOwner) {
      values[i] = cached;
      hits_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // The original owner abandoned; retrain through the same batched
    // path (single-cell batch) so the published value never depends on
    // which contender won the promotion.
    const std::vector<std::size_t> one{i};
    try {
      batch(one, values);
    } catch (...) {
      cache_->abandon(k);
      throw;
    }
    cache_->publish(k, values[i]);
    computed_.fetch_add(1, std::memory_order_relaxed);
    obs_retrains.add(1);
  }
  return values;
}

la::Matrix PayoffEvaluator::evaluate_matrix(std::size_t rows,
                                            std::size_t cols,
                                            const CellFn& cell,
                                            const KeyFn& key) const {
  PG_CHECK(rows > 0 && cols > 0, "PayoffEvaluator: empty matrix");
  const std::vector<double> values = evaluate_cells(rows * cols, cell, key);
  la::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = values[r * cols + c];
  }
  return m;
}

std::size_t PayoffEvaluator::cache_hits() const noexcept {
  return hits_.load(std::memory_order_relaxed);
}

std::size_t PayoffEvaluator::cells_computed() const noexcept {
  return computed_.load(std::memory_order_relaxed);
}

}  // namespace pg::runtime
