// Cell-parallel payoff-grid evaluation with content-keyed memoization.
//
// The hottest object in the library is a payoff matrix whose cell (i, j)
// costs either a closed-form curve lookup (the analytic PoisoningGame
// discretization) or a full sanitize-and-retrain pipeline run (the
// empirical Fig.-1 / Table-1 grids). Both are embarrassingly parallel --
// every cell is a pure function of its configuration -- so the evaluator
// fans cells out over an Executor and, when the caller supplies a content
// key (a 64-bit hash of EVERYTHING the cell's value depends on: corpus
// fingerprint, model config, placement, filter strength, replication
// index, seed), memoizes trained-model payoffs in a PayoffCache so
// repeated grids (support sweeps, transfer evaluation, solver ablations)
// never retrain the same cell twice.
//
// Memoization cannot change results, only skip work: a cached value is by
// definition the value the cell function would deterministically
// recompute for that key. Under-specified keys break this -- key builders
// must cover every input (see sim/mixed_eval.cpp for the reference use).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "la/matrix.h"
#include "runtime/executor.h"

namespace pg::runtime {

/// Incremental 64-bit content hash (FNV-1a over 64-bit words, finalized
/// with a SplitMix64-style avalanche). Used both for cache keys and as the
/// stream index handed to RngStreamFactory, so "same content" implies both
/// "same randomness" and "same cache slot".
class ContentKey {
 public:
  ContentKey& mix(std::uint64_t word) noexcept;
  ContentKey& mix(double value) noexcept;  // hashes the bit pattern
  [[nodiscard]] std::uint64_t digest() const noexcept;

 private:
  std::uint64_t state_ = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
};

/// Cumulative lookup traffic on a PayoffCache. `hits + misses` is the
/// total lookup count; `size()` tracks stores (including preloads).
struct PayoffCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
};

/// Thread-safe key -> payoff store shared across evaluator calls. Callers
/// that want memoization ACROSS entry points (e.g. a support sweep
/// re-evaluating overlapping mixtures) create one cache and pass it to
/// every evaluator they build. The scenario engine additionally spills a
/// cache to disk between processes (runtime/payoff_disk_cache.h) through
/// the snapshot/preload pair below.
class PayoffCache {
 public:
  [[nodiscard]] bool lookup(std::uint64_t key, double& value) const;
  void store(std::uint64_t key, double value);
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// SINGLE-FLIGHT claim on one cell key, for coalescing concurrent
  /// computations of the same cold cell (two server requests, or two grid
  /// points, hitting one cell at once). Exactly one caller per key
  /// becomes kOwner and MUST follow up with publish() (or abandon() on
  /// failure); everyone else either gets the value immediately (kHit) or
  /// blocks until the owner publishes and then gets it (kWaited --
  /// morally a hit: the cell was not recomputed). Counted as a hit/miss
  /// in stats(): kOwner is the one miss, kHit and kWaited are hits.
  ///
  /// DEADLOCK CONTRACT: a kOwner's cell computation must never claim()
  /// another key on the same cache from the same thread chain it blocks
  /// on -- cell bodies in this codebase are leaf computations (pipeline
  /// runs, closed-form curves), so claims only ever nest through
  /// INDEPENDENT keys computed by independent tasks.
  enum class Claim { kHit, kOwner, kWaited };
  [[nodiscard]] Claim claim(std::uint64_t key, double& value);
  /// Publish a kOwner's computed value and wake the waiters.
  void publish(std::uint64_t key, double value);
  /// Release a kOwner's claim WITHOUT a value (the computation threw);
  /// one waiter is promoted to owner and recomputes.
  void abandon(std::uint64_t key);

  /// Non-blocking claim for batch schedulers: kBusy means another owner
  /// is computing the key RIGHT NOW and the caller should not wait while
  /// it holds other unpublished claims (a batch holding claims A and B
  /// must never sleep on a key owned by a batch holding B and waiting on
  /// A). kHit / kOwner behave exactly like claim()'s, and are counted in
  /// stats() the same way; kBusy counts NOTHING -- the caller resolves
  /// the cell later with a blocking claim(), which does the counting.
  enum class TryClaim { kHit, kOwner, kBusy };
  [[nodiscard]] TryClaim try_claim(std::uint64_t key, double& value);

  /// Lookup traffic since construction / the last clear().
  [[nodiscard]] PayoffCacheStats stats() const;

  /// All entries, sorted by key so serialized cache files are
  /// deterministic for identical contents.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>> snapshot() const;

  /// Bulk-insert entries (e.g. loaded from disk) without touching the
  /// hit/miss counters. Existing keys keep their current value.
  void preload(const std::vector<std::pair<std::uint64_t, double>>& entries);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, double> map_;
  // Keys claimed by an in-flight owner; waiters sleep on flight_cv_.
  std::unordered_set<std::uint64_t> inflight_;
  std::condition_variable flight_cv_;
  mutable PayoffCacheStats stats_;
};

class PayoffEvaluator {
 public:
  /// fn(index) -> payoff for the flattened-cell overloads.
  using CellFn = std::function<double(std::size_t)>;
  /// key(index) -> content key; empty function disables memoization.
  using KeyFn = std::function<std::uint64_t(std::size_t)>;

  /// The evaluator borrows both the executor and the (optional) cache;
  /// they must outlive it. `grain` is the parallel_for chunk size --
  /// 1 for retrain-priced cells, larger for closed-form cells.
  explicit PayoffEvaluator(Executor& executor, PayoffCache* cache = nullptr,
                           std::size_t grain = 1)
      : executor_(executor), cache_(cache), grain_(grain == 0 ? 1 : grain) {}

  [[nodiscard]] Executor& executor() const noexcept { return executor_; }
  [[nodiscard]] PayoffCache* cache() const noexcept { return cache_; }

  /// Evaluate `count` independent cells; returns values in index order.
  [[nodiscard]] std::vector<double> evaluate_cells(std::size_t count,
                                                   const CellFn& cell,
                                                   const KeyFn& key = {}) const;

  /// batch(indices, values): compute every listed cell and write each
  /// values[indices[j]]. The callee may (that is the point) train the
  /// listed cells together -- e.g. in one SoA lockstep batch -- as long
  /// as each value is the same pure function of its index that a CellFn
  /// would compute.
  using BatchFn =
      std::function<void(const std::vector<std::size_t>&, std::vector<double>&)>;

  /// Batch-aware variant of evaluate_cells with identical cache
  /// semantics and results: cache keys are per CELL, so hits, disk
  /// spills, and single-flight coalescing are unchanged -- only the
  /// grouping of cold cells into batch() calls differs. Cold cells are
  /// claimed with try_claim (never blocking while claims are held) and
  /// handed to batch() in one list; cells that were in flight elsewhere
  /// are resolved afterwards with blocking claims, one at a time, each
  /// promoted owner retraining through a single-cell batch() call.
  [[nodiscard]] std::vector<double> evaluate_cells_batched(
      std::size_t count, const BatchFn& batch, const KeyFn& key = {}) const;

  /// Row-major matrix of rows x cols cells (cell index = r * cols + c).
  /// core::PoisoningGame::discretize is built on this, so every payoff
  /// matrix in the library -- analytic or trained -- is filled here.
  [[nodiscard]] la::Matrix evaluate_matrix(std::size_t rows, std::size_t cols,
                                           const CellFn& cell,
                                           const KeyFn& key = {}) const;

  /// Cells served from the cache / computed, cumulative over this
  /// evaluator's lifetime (approximate under concurrency: relaxed
  /// atomics, but totals are exact once evaluate_* has returned).
  [[nodiscard]] std::size_t cache_hits() const noexcept;
  [[nodiscard]] std::size_t cells_computed() const noexcept;

 private:
  Executor& executor_;
  PayoffCache* cache_;
  std::size_t grain_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> computed_{0};
};

}  // namespace pg::runtime
