#include "runtime/persistent_team.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace pg::runtime {

namespace {
/// Yield rounds a parked thread polls the barrier before falling back to
/// the condition variable. Solver iterations arrive microseconds apart,
/// well inside this window; a team left idle (between solves, or after
/// its last run) parks on the futex and costs nothing.
constexpr int kSpinRounds = 256;
}  // namespace

PersistentTeam::PersistentTeam(std::size_t ranks) : ranks_(ranks) {
  PG_CHECK(ranks_ >= 1, "PersistentTeam: needs at least one rank");
  workers_.reserve(ranks_ - 1);
  for (std::size_t r = 1; r < ranks_; ++r) {
    workers_.emplace_back([this, r] { worker_loop(r); });
  }
}

PersistentTeam::~PersistentTeam() {
  stop_.store(true, std::memory_order_release);
  {
    // Empty critical section: a worker that checked the predicate before
    // the store is guaranteed to be inside wait() by the time we notify.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void PersistentTeam::worker_loop(std::size_t rank) {
  // Worker-lifetime span: in a trace, the gaps between the job spans on
  // this row ARE the barrier idle time.
  obs::Span lifetime("team_worker", "team");
  std::uint64_t seen = 0;
  for (;;) {
    // Wait for the next generation (or shutdown): spin-yield first, park
    // on the condition variable only when the team has gone quiet.
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    int spin = 0;
    bool parked = false;
    while (gen == seen && !stop_.load(std::memory_order_acquire)) {
      if (++spin <= kSpinRounds) {
        std::this_thread::yield();
      } else {
        parked = true;
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        cv_.wait(lock, [this, seen] {
          return generation_.load(std::memory_order_acquire) != seen ||
                 stop_.load(std::memory_order_acquire);
        });
      }
      gen = generation_.load(std::memory_order_acquire);
    }
    if (spin > 0) {
      // One wait per generation crossing, classified by how it resolved:
      // inside the spin window (cheap) or via the futex-backed condition
      // variable (a wake-up, as long as a whole solver iteration).
      static obs::Counter& spins = obs::counter("obs.team.spin_waits");
      static obs::Counter& futexes = obs::counter("obs.team.futex_waits");
      (parked ? futexes : spins).add(1);
    }
    if (stop_.load(std::memory_order_acquire)) return;
    seen = gen;

    // job_ was published before the generation bump we just acquired.
    try {
      obs::Span span("team_job", "team");
      (*job_)(rank);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!error_) error_ = std::current_exception();
    }
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == ranks_ - 1) {
      // Last rank in: notify under the mutex so the caller cannot check
      // the count and sleep between our increment and our notify.
      std::lock_guard<std::mutex> lock(done_mutex_);
      done_cv_.notify_one();
    }
  }
}

void PersistentTeam::run(const std::function<void(std::size_t)>& job) {
  PG_CHECK(job != nullptr, "PersistentTeam::run: null job");
  if (ranks_ == 1) {
    job(0);
    return;
  }

  // Previous run() returned only after every rank counted in, so nobody
  // is still touching arrived_ -- the reset cannot race.
  job_ = &job;
  arrived_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  static obs::Counter& generations = obs::counter("obs.team.generations");
  generations.add(1);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  cv_.notify_all();

  try {
    job(0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_) error_ = std::current_exception();
  }

  // Barrier: all worker ranks must arrive before the iteration's results
  // may be read (or the next run() reuses arrived_).
  int spin = 0;
  while (arrived_.load(std::memory_order_acquire) < ranks_ - 1) {
    if (++spin <= kSpinRounds) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] {
      return arrived_.load(std::memory_order_acquire) >= ranks_ - 1;
    });
  }

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    std::swap(error, error_);
  }
  if (error) std::rethrow_exception(error);
}

namespace {

/// Upper bound on parked idle teams. Two covers the common shapes (the
/// FP and MW solvers ask for slightly different rank counts); an
/// overflow team is simply destroyed -- parked workers sleep on a futex,
/// but their stacks are real memory.
constexpr std::size_t kMaxParkedTeams = 2;

/// Process-wide park of idle teams, keyed by exact rank count. A
/// function-local static: construction is thread-safe, and destruction
/// at process exit joins the parked workers -- safe because their
/// shutdown path touches only the team's own members and the obs
/// singletons, which are intentionally leaked (never destroyed).
struct TeamPark {
  std::mutex mutex;
  std::vector<std::unique_ptr<PersistentTeam>> parked;
};

TeamPark& team_park() {
  static TeamPark park;
  return park;
}

}  // namespace

TeamLease::TeamLease(std::size_t ranks) {
  static obs::Counter& reused = obs::counter("obs.team.reused");
  static obs::Counter& created = obs::counter("obs.team.created");
  {
    TeamPark& park = team_park();
    std::lock_guard<std::mutex> lock(park.mutex);
    for (auto it = park.parked.begin(); it != park.parked.end(); ++it) {
      if ((*it)->size() == ranks) {
        team_ = std::move(*it);
        park.parked.erase(it);
        break;
      }
    }
  }
  if (team_ != nullptr) {
    reused.add(1);
    return;
  }
  created.add(1);
  team_ = std::make_unique<PersistentTeam>(ranks);
}

TeamLease::~TeamLease() {
  if (team_ == nullptr) return;
  // Park under the lock, destroy (join) any overflow OUTSIDE it -- a
  // join can block for a worker's last barrier crossing.
  std::unique_ptr<PersistentTeam> dispose;
  {
    TeamPark& park = team_park();
    std::lock_guard<std::mutex> lock(park.mutex);
    if (park.parked.size() >= kMaxParkedTeams) {
      // Evict the OLDEST parked team: the one just released is the most
      // likely to be asked for again (back-to-back solves of one shape).
      dispose = std::move(park.parked.front());
      park.parked.erase(park.parked.begin());
    }
    park.parked.push_back(std::move(team_));
  }
}

}  // namespace pg::runtime
