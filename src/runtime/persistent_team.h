// Persistent parallel region: a resident worker team with a spin barrier.
//
// The work-stealing pool is built for irregular tasks; an iterative
// solver is the opposite workload -- the SAME O(m + n) step, thousands of
// times, microseconds apart. Dispatching that step through parallel_for
// costs one std::function allocation, one deque push, and one wake-up per
// chunk per iteration, which on narrow games outweighs the step itself
// (the PR-2 follow-up named in ROADMAP.md). PersistentTeam removes the
// per-iteration dispatch entirely: N - 1 workers are spawned once and
// parked on a generation-counter barrier; run(job) publishes the job,
// bumps the generation (one atomic release), executes rank 0 on the
// calling thread, and spins until every rank has arrived. Steady-state
// cost per iteration is two barrier crossings -- no allocation, no
// queue, no futex on the hot path (workers fall back to a condition
// variable only after an idle spin window, so an abandoned team does not
// burn CPU).
//
// Determinism: run(job) calls job(rank) exactly once per rank in
// [0, size()); the job partitions its index space by rank as a pure
// function of (rank, size()), so which OS thread executes which rank can
// never affect results. Exception contract matches parallel_for: the
// first failure is captured and rethrown from run() after the barrier.
//
// Teams are single-owner (run() from the creating thread only) and
// intentionally NOT nested: creating one inside a pool task would
// oversubscribe -- callers gate on runtime::on_pool_worker() (the game
// solvers do).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pg::runtime {

class PersistentTeam {
 public:
  /// Spawns `ranks - 1` resident workers (the caller is rank 0).
  /// Requires ranks >= 1; a team of one degenerates to inline calls.
  explicit PersistentTeam(std::size_t ranks);
  ~PersistentTeam();

  PersistentTeam(const PersistentTeam&) = delete;
  PersistentTeam& operator=(const PersistentTeam&) = delete;

  /// Total ranks, including the calling thread.
  [[nodiscard]] std::size_t size() const noexcept { return ranks_; }

  /// Execute job(rank) once on every rank; the caller runs rank 0 and the
  /// call returns after ALL ranks have finished (full barrier). Rethrows
  /// the first exception any rank raised. `job` must not recurse into
  /// run() on the same team.
  void run(const std::function<void(std::size_t)>& job);

 private:
  void worker_loop(std::size_t rank);

  std::size_t ranks_;
  std::vector<std::thread> workers_;

  // One generation per run(): workers wait for generation_ to move past
  // what they last served, execute the published job, and count into
  // arrived_. run() resets arrived_ BEFORE bumping generation_ -- safe
  // because the previous run() returned only after every rank counted in.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::size_t> arrived_{0};
  const std::function<void(std::size_t)>* job_ = nullptr;  // published
                                                           // before the
                                                           // generation bump
  std::atomic<bool> stop_{false};

  std::mutex error_mutex_;
  std::exception_ptr error_;  // first failure wins

  // Idle-sleep fallback: workers spin-yield for a window, then wait here;
  // run() pulses the mutex and notifies after bumping the generation.
  std::mutex sleep_mutex_;
  std::condition_variable cv_;

  // Completion fallback for the caller's barrier wait (same pattern).
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
};

/// A borrowed PersistentTeam from the process-wide park: acquiring a
/// lease reuses a previously-parked team of the SAME rank count when one
/// is available (obs.team.reused) and spawns a fresh one otherwise
/// (obs.team.created); the destructor parks the team for the next solve
/// instead of joining its threads. This hoists team reuse above the
/// individual solve -- under kAuto a scenario that issues thousands of
/// team-priced solves (the solver ablation grid) used to pay a full
/// thread spawn + join per solve.
///
/// Determinism is untouched: run(job) is exactly PersistentTeam::run on a
/// team of the leased size, and a team carries no state between jobs
/// beyond its parked threads. Same single-owner, non-nested contract as
/// PersistentTeam; a lease may be acquired on one thread and released on
/// another only when a happens-before edge orders the two (the solvers
/// hold the caller's synchronization).
class TeamLease {
 public:
  /// Acquire a team of exactly `ranks` ranks (>= 1).
  explicit TeamLease(std::size_t ranks);
  /// Parks the team for reuse (bounded park; overflow teams join here).
  ~TeamLease();

  TeamLease(const TeamLease&) = delete;
  TeamLease& operator=(const TeamLease&) = delete;
  TeamLease(TeamLease&&) = delete;
  TeamLease& operator=(TeamLease&&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return team_->size(); }
  void run(const std::function<void(std::size_t)>& job) { team_->run(job); }

 private:
  std::unique_ptr<PersistentTeam> team_;
};

}  // namespace pg::runtime
