#include "runtime/rng_stream.h"

namespace pg::runtime {

namespace {

// Weyl increment of SplitMix64; also used by util::Rng as its default seed.
constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

}  // namespace

std::uint64_t RngStreamFactory::derive_seed(
    std::uint64_t index) const noexcept {
  // Jump the SplitMix64 Weyl sequence of `base_` to position `index + 1`
  // (state advances by kGolden per draw, so the jump is a multiply), then
  // run the avalanche output twice. Distinct indices give distinct states,
  // and the double mix kills the low-entropy structure of small indices.
  util::SplitMix64 mixer(base_ + kGolden * (index + 1));
  const std::uint64_t once = mixer.next();
  return once ^ mixer.next();
}

std::uint64_t RngStreamFactory::derive_seed(std::uint64_t i,
                                            std::uint64_t j) const noexcept {
  return RngStreamFactory(derive_seed(i)).derive_seed(j);
}

}  // namespace pg::runtime
