// Deterministic per-task RNG streams for parallel loops.
//
// A parallel loop body must not share an Rng with its siblings (the
// interleaving would depend on scheduling), and must not seed one from
// anything scheduling-dependent. RngStreamFactory solves both: it
// SplitMix64-mixes (base seed, task index) into a fresh seed, so
//   * every index owns a private, decorrelated Rng,
//   * the stream for an index is a pure function of (base seed, index) --
//     bit-identical results on 1 thread or 16, in any execution order,
//   * two-dimensional grids get streams keyed by (i, j) without manual
//     prime-multiplier arithmetic (the pre-runtime sim code's idiom).
//
// SplitMix64 is the right mixer here: it is the generator the library
// already uses to expand seeds into xoshiro state (util/rng.h), and its
// output function is a bijective avalanche mix, so distinct indices can
// never collapse onto one seed.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace pg::runtime {

class RngStreamFactory {
 public:
  explicit RngStreamFactory(std::uint64_t base_seed) noexcept
      : base_(base_seed) {}

  [[nodiscard]] std::uint64_t base_seed() const noexcept { return base_; }

  /// The derived 64-bit seed for stream `index` (pure function).
  [[nodiscard]] std::uint64_t derive_seed(std::uint64_t index) const noexcept;

  /// Seed for a two-dimensional task id (e.g. grid cell x replication).
  [[nodiscard]] std::uint64_t derive_seed(std::uint64_t i,
                                          std::uint64_t j) const noexcept;

  /// A fresh Rng on the derived seed.
  [[nodiscard]] util::Rng stream(std::uint64_t index) const noexcept {
    return util::Rng(derive_seed(index));
  }
  [[nodiscard]] util::Rng stream(std::uint64_t i,
                                 std::uint64_t j) const noexcept {
    return util::Rng(derive_seed(i, j));
  }

 private:
  std::uint64_t base_;
};

}  // namespace pg::runtime
