#include "runtime/task_group.h"

#include <thread>
#include <utility>

#include "runtime/executor.h"
#include "util/error.h"

namespace pg::runtime {

TaskGroup::TaskGroup(Executor* executor)
    : executor_(executor), state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() {
  // Tasks hold a shared_ptr to the state, so letting them finish is a
  // matter of joining, not lifetime. Errors from unwaited tasks are
  // dropped by design -- call wait() to observe them.
  if (state_->pending.load(std::memory_order_acquire) == 0) return;
  try {
    wait();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void TaskGroup::run(std::function<void()> task) {
  PG_CHECK(task != nullptr, "TaskGroup::run: null task");
  auto state = state_;
  state->pending.fetch_add(1, std::memory_order_acq_rel);
  auto wrapped = [state, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (!state->error) state->error = std::current_exception();
    }
    if (state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task out: notify under the mutex so wait() cannot check the
      // counter and sleep between our decrement and our notify.
      std::lock_guard<std::mutex> lock(state->mutex);
      state->done.notify_all();
    }
  };
  if (executor_ == nullptr || !executor_->submit_for_group(wrapped)) {
    wrapped();  // serial executor (or pool of one): run inline now
  }
}

void TaskGroup::wait() {
  constexpr int kJoinSpinRounds = 128;
  int spin = 0;
  while (state_->pending.load(std::memory_order_acquire) > 0) {
    if (executor_ != nullptr && executor_->help_one()) {
      spin = 0;
      continue;
    }
    if (spin < kJoinSpinRounds) {
      if (++spin % 16 == 0) std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(state_->mutex);
    if (state_->pending.load(std::memory_order_acquire) == 0) break;
    state_->done.wait(lock, [this] {
      return state_->pending.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    std::swap(error, state_->error);
  }
  if (error) std::rethrow_exception(error);
}

std::size_t TaskGroup::pending() const noexcept {
  return state_->pending.load(std::memory_order_acquire);
}

}  // namespace pg::runtime
