// Structured fork-join over an Executor for irregular task sets.
//
// parallel_for covers index loops; TaskGroup covers the "a few unlike
// tasks" shape -- e.g. the scenario engine overlapping a handful of
// heterogeneous sweep points, or a solver overlapping two asymmetric
// scans. Tasks start EAGERLY on run() (on the executor's work-stealing
// pool, depth-tagged one level below the caller) and wait() blocks until
// all of them finish, helping drain eligible pool tasks instead of
// sleeping -- the same caller-participation join parallel_for uses, so a
// group nested inside a pool task cannot deadlock even when every worker
// is busy.
//
// Exception contract: the FIRST task failure (in completion order, best
// effort) is captured and rethrown from wait(); the remaining tasks
// still run to completion. On a serial (or null) executor run() executes
// the task inline and wait() only rethrows, so the group's semantics --
// "errors surface at the join" -- are identical either way.
//
// A TaskGroup is single-owner: run()/wait() must be called from the
// thread that created it, and the destructor waits for any tasks still
// in flight (swallowing their errors; call wait() to observe them).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>

namespace pg::runtime {

class Executor;

class TaskGroup {
 public:
  /// Binds the group to `executor` for its lifetime; null means serial
  /// (every task runs inline in run()).
  explicit TaskGroup(Executor* executor);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedule one task. Starts immediately: on the pool when the executor
  /// has one, inline otherwise. A task that throws marks the group failed
  /// (first error wins) -- the exception surfaces from wait().
  void run(std::function<void()> task);

  /// Block until every task submitted so far has finished, then rethrow
  /// the first captured error, if any. The group is reusable afterwards.
  void wait();

  /// Tasks submitted and not yet finished (approximate while running).
  [[nodiscard]] std::size_t pending() const noexcept;

 private:
  struct State {
    std::mutex mutex;
    std::condition_variable done;
    std::atomic<std::size_t> pending{0};
    std::exception_ptr error;  // first failure wins; guarded by mutex
  };

  Executor* executor_;
  std::shared_ptr<State> state_;
};

}  // namespace pg::runtime
