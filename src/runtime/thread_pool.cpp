#include "runtime/thread_pool.h"

#include <utility>

#include "util/error.h"

namespace pg::runtime {

std::size_t default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? default_thread_count() : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  PG_CHECK(task != nullptr, "ThreadPool::submit: null task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PG_CHECK(!stop_, "ThreadPool::submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are the task's responsibility (see executor.cpp)
  }
}

}  // namespace pg::runtime
