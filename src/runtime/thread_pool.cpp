#include "runtime/thread_pool.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace pg::runtime {

namespace {
/// How many yield rounds a worker polls the deques before sleeping on the
/// condition variable. Solver loops issue one parallel_for per iteration,
/// microseconds apart; a short spin keeps workers hot across that gap
/// without burning meaningful CPU when the pool is genuinely idle.
constexpr int kSpinRounds = 64;

/// Static span name per task nesting depth: depth is almost always 1 or
/// 2, and a fixed name keeps the traced hot path free of string builds.
const char* task_span_name(std::size_t depth) {
  if (depth <= 1) return "worker_task";
  if (depth == 2) return "worker_task_d2";
  return "worker_task_deep";
}
}  // namespace

std::size_t default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  // Register the full obs.pool.* family up front so the metric SET is
  // deterministic: a run with zero steals still reports tasks_stolen=0
  // instead of omitting the key (consumers assert on presence).
  (void)obs::counter("obs.pool.tasks_executed");
  (void)obs::counter("obs.pool.tasks_stolen");
  (void)obs::counter("obs.pool.tasks_inline");
  (void)obs::gauge("obs.pool.queue_high_water");
  const std::size_t n = threads == 0 ? default_thread_count() : threads;
  deques_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Empty critical section: a worker that checked the predicate before
    // the store is guaranteed to be inside wait() by the time we notify.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task, std::size_t depth) {
  PG_CHECK(task != nullptr, "ThreadPool::submit: null task");
  PG_CHECK(!stop_.load(std::memory_order_acquire),
           "ThreadPool::submit after shutdown");
  const std::size_t victim =
      next_deque_.fetch_add(1, std::memory_order_relaxed) % deques_.size();
  // Increment BEFORE publishing the task: a pop can only follow the push,
  // so the matching decrement can never land first and transiently wrap
  // the counter. A worker waking in the window just finds nothing yet.
  const std::size_t queued =
      pending_.fetch_add(1, std::memory_order_release) + 1;
  static obs::Gauge& high_water = obs::gauge("obs.pool.queue_high_water");
  high_water.record(queued);
  {
    std::lock_guard<std::mutex> lock(deques_[victim]->mutex);
    deques_[victim]->tasks.push_back(Task{std::move(task), depth});
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  cv_.notify_one();
}

ThreadPool::Task ThreadPool::take_task(std::size_t self,
                                       std::size_t min_depth) {
  const std::size_t n = deques_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (self + k) % n;
    Deque& d = *deques_[victim];
    std::lock_guard<std::mutex> lock(d.mutex);
    if (d.tasks.empty()) continue;
    // Own deque: newest-first (cache-hot, and the deepest nesting level
    // sits at the back). Steal: oldest-first. Either way, skip past
    // entries shallower than min_depth -- a depth-constrained joiner must
    // not be diverted into outer-level work -- and take the first
    // eligible one. Skipped entries stay queued for the workers' own
    // unconstrained (min_depth == 0) scans.
    Task task;
    if (victim == self) {
      for (auto it = d.tasks.rbegin(); it != d.tasks.rend(); ++it) {
        if (it->depth < min_depth) continue;
        task = std::move(*it);
        d.tasks.erase(std::next(it).base());
        break;
      }
    } else {
      for (auto it = d.tasks.begin(); it != d.tasks.end(); ++it) {
        if (it->depth < min_depth) continue;
        task = std::move(*it);
        d.tasks.erase(it);
        break;
      }
    }
    if (!task.fn) continue;
    pending_.fetch_sub(1, std::memory_order_relaxed);
    if (victim != self && self < n) {
      // A worker crossing deques is a genuine steal; external threads
      // (self == n) are counted at their call sites instead.
      static obs::Counter& stolen = obs::counter("obs.pool.tasks_stolen");
      stolen.add(1);
    }
    return task;
  }
  return {};
}

bool ThreadPool::try_run_one(std::size_t min_depth) {
  // size() as `self` never equals a worker index, so the scan is
  // steal-only and starts at deque 0.
  Task task = take_task(deques_.size(), min_depth);
  if (!task.fn) return false;
  static obs::Counter& inline_runs = obs::counter("obs.pool.tasks_inline");
  inline_runs.add(1);
  obs::Span span(task_span_name(task.depth), "pool");
  task.fn();
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    Task task = take_task(index, 0);
    for (int spin = 0; !task.fn && spin < kSpinRounds; ++spin) {
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::yield();
      task = take_task(index, 0);
    }
    if (!task.fn) {
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) ||
               pending_.load(std::memory_order_acquire) > 0;
      });
      continue;  // re-check stop_ and race for the task at the loop top
    }
    static obs::Counter& executed = obs::counter("obs.pool.tasks_executed");
    executed.add(1);
    obs::Span span(task_span_name(task.depth), "pool");
    task.fn();  // exceptions are the task's responsibility (see executor.cpp)
  }
}

}  // namespace pg::runtime
