// Fixed-size worker pool with one work-stealing deque per worker.
//
// The pool is the low-level engine behind runtime::ThreadPoolExecutor; it
// knows nothing about loops, RNG streams, or payoffs -- it just runs
// std::function<void()> tasks on a fixed set of threads. Completion
// tracking, chunking, and exception propagation live in executor.h, where
// the blocking parallel_for is implemented.
//
// Scheduling: every submission is pushed onto one worker's deque
// (round-robin). A worker pops its own deque LIFO (newest chunk is the
// cache-hottest) and, when it runs dry, steals FIFO from the other
// workers' deques, so a burst of heterogeneous tasks -- cheap closed-form
// cells next to retrain-priced ones, or uneven solver chunks -- cannot
// strand work behind one slow worker. A thread blocked on completion can
// help through try_run_one() instead of sleeping. Workers spin briefly
// before sleeping so fork-join cadences (one parallel_for per solver
// iteration) do not pay a wake-up on every beat.
//
// NESTING / DEPTH TAGS: every task carries a nesting depth (outer sweep
// points at depth 1, the cell or solver chunks they spawn at depth 2,
// and so on). Workers take any task, but a thread that is BLOCKED
// joining its own tasks helps through try_run_one(min_depth) with the
// depth of the tasks it waits for -- so it only picks up work at least
// that deep. This is what makes nested fork-join safe AND bounded: the
// joining thread can always run its own queued chunks (they carry
// exactly min_depth), and it can never be diverted into a fresh
// outer-level task whose latency (and stack) would be unbounded.
//
// Threads are joined in the destructor after the queues drain of running
// tasks; tasks still queued but not started are discarded on shutdown
// (every user in this library blocks until its own tasks finish, so
// nothing is lost in practice).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pg::runtime {

/// Number of workers to use when the caller does not care: the hardware
/// concurrency, with a floor of 1 (hardware_concurrency may return 0).
[[nodiscard]] std::size_t default_thread_count() noexcept;

class ThreadPool {
 public:
  /// Spawns `threads` workers immediately. 0 means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task onto one worker's deque (round-robin). Never blocks.
  /// `depth` is the task's nesting level (see the file comment); plain
  /// top-level submissions use depth 1. Must not be called after
  /// destruction has begun.
  void submit(std::function<void()> task, std::size_t depth = 1);

  /// Pop one queued (not yet started) task with depth >= `min_depth` and
  /// run it on the calling thread; returns false when no eligible task is
  /// queued. This is how a thread blocked on its own tasks' completion
  /// helps drain the pool instead of sleeping -- the caller-participation
  /// half of work stealing. min_depth == 0 takes anything (the worker
  /// loop); a joiner passes the depth of the chunks it waits for.
  bool try_run_one(std::size_t min_depth = 0);

 private:
  struct Task {
    std::function<void()> fn;
    std::size_t depth = 1;
  };

  /// One worker's deque. Heap-allocated so the vector never moves a
  /// mutex; each deque is only touched under its own mutex.
  struct Deque {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t index);

  /// Own deque back (LIFO), then steal the other deques' fronts (FIFO),
  /// skipping entries shallower than `min_depth` (a skipped entry stays
  /// for the unconstrained worker loop to take). `self` == size() means
  /// "external thread": steal-only, fair scan. Returns the whole Task
  /// (empty fn = nothing eligible) so the caller can tag its trace span
  /// with the task's nesting depth.
  [[nodiscard]] Task take_task(std::size_t self, std::size_t min_depth);

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;

  // Sleep/wake bookkeeping. pending_ counts queued-but-not-started tasks;
  // submit bumps it and pulses sleep_mutex_ so a worker checking the wait
  // predicate can never miss the increment.
  std::mutex sleep_mutex_;
  std::condition_variable cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> next_deque_{0};
};

}  // namespace pg::runtime
