// Fixed-size worker pool with a FIFO task queue.
//
// The pool is the low-level engine behind runtime::ThreadPoolExecutor; it
// knows nothing about loops, RNG streams, or payoffs -- it just runs
// std::function<void()> tasks on a fixed set of threads. Completion
// tracking, chunking, and exception propagation live in executor.h, where
// the blocking parallel_for is implemented.
//
// Threads are joined in the destructor after the queue drains of running
// tasks; tasks still queued but not started are discarded on shutdown
// (every user in this library blocks until its own tasks finish, so
// nothing is lost in practice).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pg::runtime {

/// Number of workers to use when the caller does not care: the hardware
/// concurrency, with a floor of 1 (hardware_concurrency may return 0).
[[nodiscard]] std::size_t default_thread_count() noexcept;

class ThreadPool {
 public:
  /// Spawns `threads` workers immediately. 0 means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task. Never blocks; tasks run in FIFO order per worker
  /// pick-up. Must not be called after destruction has begun.
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace pg::runtime
