#include "scenario/cache_bundle.h"

namespace pg::scenario {

ShardStore::ShardStore(bool memo, std::string dir, std::uint64_t max_bytes)
    : memo_(memo), disk_(memo ? std::move(dir) : std::string(), max_bytes) {}

runtime::PayoffCache* ShardStore::shard(std::uint64_t fingerprint) {
  if (!memo_) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [fp, cache] : shards_) {
    if (fp == fingerprint) return &cache;
  }
  shards_.emplace_back();
  shards_.back().first = fingerprint;
  loaded_ += disk_.load(fingerprint, shards_.back().second);
  return &shards_.back().second;
}

std::size_t ShardStore::shard_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_.size();
}

std::size_t ShardStore::entries_loaded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return loaded_;
}

ShardStore::SpillStats ShardStore::spill() {
  std::lock_guard<std::mutex> lock(mutex_);
  SpillStats stats;
  for (auto& [fp, cache] : shards_) {
    stats.entries_saved += disk_.save(fp, cache);
  }
  stats.shards_evicted = disk_.enforce_max_bytes();
  return stats;
}

void CacheBundle::add_sweep_stats(const sim::PureSweepStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  sweep_stats_.cells_total += stats.cells_total;
  sweep_stats_.cells_retrained += stats.cells_retrained;
  sweep_stats_.cache_hits += stats.cache_hits;
}

void CacheBundle::absorb(const runtime::PayoffEvaluator& evaluator) {
  std::lock_guard<std::mutex> lock(mutex_);
  eval_retrained_ += evaluator.cells_computed();
  eval_hits_ += evaluator.cache_hits();
}

void CacheBundle::add_cells(std::size_t retrained, std::size_t hits) {
  std::lock_guard<std::mutex> lock(mutex_);
  eval_retrained_ += retrained;
  eval_hits_ += hits;
}

void CacheBundle::finish(CacheReport& report, bool spill) {
  report.enabled = store_.memo();
  report.disk_enabled = store_.disk_enabled();
  report.disk_dir = store_.dir();
  report.shards = store_.shard_count();
  report.cells_total =
      sweep_stats_.cells_total + eval_retrained_ + eval_hits_;
  report.cells_retrained = sweep_stats_.cells_retrained + eval_retrained_;
  report.cache_hits = sweep_stats_.cache_hits + eval_hits_;
  // Per-run delta: shards preloaded by EARLIER runs on the same store are
  // that run's traffic, not this one's.
  report.disk_entries_loaded = store_.entries_loaded() - loaded_at_start_;
  report.disk_max_bytes = store_.max_bytes();
  if (spill) {
    const ShardStore::SpillStats stats = store_.spill();
    report.disk_entries_saved = stats.entries_saved;
    report.disk_shards_evicted = stats.shards_evicted;
  }
}

}  // namespace pg::scenario
