// The engine's cache layers, split so a resident server can share them
// across requests.
//
// ShardStore is the LONG-LIVED half: per-context PayoffCache shards
// (created and disk-preloaded on first use), the DiskPayoffCache they
// spill back to, and nothing else. One store lives for a whole pg_serve
// process -- every request's run_scenario sees the same warm shards -- or
// for exactly one run under the standalone engine, which is the
// pre-refactor behavior.
//
// CacheBundle is the PER-RUN view the runners are handed: it delegates
// shard lookup to the store and keeps this run's traffic counters (sweep
// cells, evaluator cells, manually-cached cells), so ScenarioResult::cache
// reports what THIS request did even when the shards are shared -- a warm
// second request for the same spec shows cells_retrained == 0.
//
// THREAD-SAFE: one store is shared by every point of a point-parallel
// grid and by every concurrent server request; shard lookup serializes on
// a mutex (the PayoffCache instances handed out are themselves
// thread-safe, and deque growth never invalidates shard pointers). The
// traffic COUNTERS may legitimately differ run-to-run under concurrency,
// which is exactly why the cache block is excluded from
// `pg_run --compare`; the cached VALUES cannot differ (each is a pure
// function of its content key).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>

#include "runtime/payoff_disk_cache.h"
#include "runtime/payoff_evaluator.h"
#include "scenario/result.h"
#include "sim/pure_sweep.h"

namespace pg::scenario {

class ShardStore {
 public:
  /// `memo` off turns every shard() into nullptr (memoization disabled);
  /// `dir` empty disables the disk layer only.
  ShardStore(bool memo, std::string dir, std::uint64_t max_bytes);

  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  /// The shard for one experiment context (created and disk-preloaded on
  /// first use). Returns nullptr when memoization is off -- callers pass
  /// the pointer straight through to the sim/ entry points.
  [[nodiscard]] runtime::PayoffCache* shard(std::uint64_t fingerprint);

  [[nodiscard]] bool memo() const noexcept { return memo_; }
  [[nodiscard]] bool disk_enabled() const { return disk_.enabled(); }
  [[nodiscard]] const std::string& dir() const { return disk_.dir(); }
  [[nodiscard]] std::uint64_t max_bytes() const { return disk_.max_bytes(); }
  [[nodiscard]] std::size_t shard_count() const;
  /// Cumulative disk entries preloaded into shards since construction.
  [[nodiscard]] std::size_t entries_loaded() const;

  struct SpillStats {
    std::size_t entries_saved = 0;
    std::size_t shards_evicted = 0;
  };
  /// Spill every shard to disk, then run one eviction pass (the shards
  /// just written are the newest, so a size cap evicts stale contexts
  /// first). Callable repeatedly: the standalone engine spills once per
  /// run, the server once at drain.
  SpillStats spill();

 private:
  bool memo_;
  runtime::DiskPayoffCache disk_;
  mutable std::mutex mutex_;
  // Deque: growth never invalidates the shard pointers handed out.
  std::deque<std::pair<std::uint64_t, runtime::PayoffCache>> shards_;
  std::size_t loaded_ = 0;
};

/// One run's window onto a ShardStore: shard access plus this run's
/// traffic counters. Runners keep local counters and deposit them here
/// once, so concurrent grid points never share a live counter struct.
class CacheBundle {
 public:
  explicit CacheBundle(ShardStore& store)
      : store_(store), loaded_at_start_(store.entries_loaded()) {}

  [[nodiscard]] runtime::PayoffCache* shard(std::uint64_t fingerprint) {
    return store_.shard(fingerprint);
  }
  [[nodiscard]] bool memo() const noexcept { return store_.memo(); }

  /// Fold one runner's sweep-cell counters into the totals.
  void add_sweep_stats(const sim::PureSweepStats& stats);
  /// Fold one engine-built evaluator's counters into the totals.
  void absorb(const runtime::PayoffEvaluator& evaluator);
  /// Manually-cached cells (the defense-ablation runner).
  void add_cells(std::size_t retrained, std::size_t hits);

  /// Fill this run's cache report. Single-threaded: called once after
  /// every point has joined. When `spill`, the backing store writes every
  /// shard to disk and the eviction pass runs (the standalone engine
  /// path); a shared-context run passes false and the owner spills at
  /// drain instead.
  void finish(CacheReport& report, bool spill);

 private:
  ShardStore& store_;
  std::size_t loaded_at_start_;
  std::mutex mutex_;
  sim::PureSweepStats sweep_stats_;
  std::size_t eval_retrained_ = 0;
  std::size_t eval_hits_ = 0;
};

}  // namespace pg::scenario
