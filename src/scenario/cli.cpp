#include "scenario/cli.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "la/simd.h"
#include "obs/metrics.h"
#include "robust/atomic_file.h"
#include "robust/faultpoint.h"
#include "scenario/diff.h"
#include "scenario/engine.h"
#include "scenario/registry.h"
#include "scenario/request.h"
#include "scenario/result.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/table.h"

namespace pg::scenario {

namespace {

std::string flag_value(const std::vector<std::string>& args, std::size_t& i,
                       const std::string& flag) {
  PG_CHECK(i + 1 < args.size(), flag + " requires a value");
  return args[++i];
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PG_CHECK(static_cast<bool>(in), "cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Fail fast on an unwritable output path, BEFORE the run: opening for
/// append creates the file if missing but leaves existing content alone,
/// so probing costs nothing and a hours-long sweep cannot die at the
/// write-out step (mirroring the unwritable-cache-dir degradation
/// contract -- except outputs are the point of the run, so this is a
/// hard error, not a downgrade).
void ensure_writable(const std::string& path, const std::string& what) {
  // Probe in append mode (never clobbers existing bytes), and remove the
  // probe file again when it did not exist before: a failed run must not
  // leave a zero-byte artifact that reads as a torn write -- the final
  // path appears only via atomic_write_file's rename.
  const bool existed = std::filesystem::exists(path);
  std::ofstream probe(path, std::ios::app);
  PG_CHECK(static_cast<bool>(probe),
           "cannot write " + what + ": " + path);
  probe.close();
  if (!existed) std::filesystem::remove(path);
}

/// `pg_run --compare baseline candidate`: structured regression diff.
/// Exit 0 when every aligned value is within tolerance, 1 on drift or
/// shape changes -- unless --update-baseline, which accepts the
/// candidate by overwriting the baseline file and exits 0.
int run_compare(const CliOptions& options, std::ostream& out,
                std::ostream& err) {
  const std::string baseline_text = read_file(options.compare_baseline);
  const JsonValue baseline = parse_json(baseline_text);
  const JsonValue candidate = parse_json(read_file(options.compare_candidate));

  DiffOptions diff_options;
  diff_options.tolerance = options.tolerance;
  diff_options.ignore_timing = !options.with_timing;
  diff_options.ignore_telemetry = !options.with_telemetry;
  const ResultDiff diff = diff_results(baseline, candidate, diff_options);

  out << "comparing " << options.compare_baseline << " (baseline) vs "
      << options.compare_candidate << " (candidate)\n";
  write_diff_report(diff, diff_options, out);
  if (diff.clean()) return 0;

  if (options.update_baseline) {
    std::ofstream file(options.compare_baseline,
                       std::ios::binary | std::ios::trunc);
    PG_CHECK(static_cast<bool>(file),
             "cannot rewrite baseline " + options.compare_baseline);
    file << read_file(options.compare_candidate);
    PG_CHECK(static_cast<bool>(file),
             "short write updating " + options.compare_baseline);
    out << "baseline updated: " << options.compare_baseline << " now matches "
        << options.compare_candidate << "\n";
    return 0;
  }
  err << "error: results differ past tolerance (see report above)\n";
  return 1;
}

/// Parse a JSON artifact with a loader-side diagnosis: artifacts this
/// tree writes go through robust::atomic_write_file, so a file that
/// exists but does not parse is almost always a truncated or torn write
/// from a crashed legacy/foreign producer -- name that cause instead of
/// surfacing a bare parse error.
JsonValue parse_artifact(const std::string& path) {
  try {
    return parse_json(read_file(path));
  } catch (const std::exception& e) {
    throw std::runtime_error("cannot parse artifact " + path +
                             " (truncated or torn write?): " + e.what());
  }
}

/// Strict base-10 parse for shard counts/indices (no signs, no spaces).
std::size_t parse_count(const std::string& token, const std::string& what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  PG_CHECK(!token.empty() && end != nullptr && *end == '\0' &&
               token.find_first_not_of("0123456789") == std::string::npos,
           what + ", got '" + token + "'");
  return static_cast<std::size_t>(v);
}

/// `pg_run --merge a.json b.json ... [--out-file merged.json]`: stitch
/// shard partials into the canonical merged artifact. All validation
/// (schema, disjointness, completeness) lives in merge_partials; the
/// one failure this layer decorates is absent shards, which becomes the
/// machine-readable `missing_shards=i,j,...` stdout line plus exit code
/// kExitMissingShards so a retry wrapper can relaunch exactly those
/// shards without scraping prose.
int run_merge(const CliOptions& options, std::ostream& out,
              std::ostream& err) {
  std::vector<std::pair<std::string, JsonValue>> partials;
  partials.reserve(options.merge_inputs.size());
  for (const std::string& path : options.merge_inputs) {
    partials.emplace_back(path, parse_artifact(path));
  }
  ScenarioResult merged;
  try {
    merged = merge_partials(partials);
  } catch (const MissingShardsError& e) {
    std::string list;
    for (const std::size_t index : e.missing) {
      if (!list.empty()) list += ',';
      list += std::to_string(index);
    }
    out << "missing_shards=" << list << "\n";
    err << "error: " << e.what() << "\n";
    return kExitMissingShards;
  }
  if (!options.out_file.empty()) {
    std::ostringstream sink;
    write_result(merged, options.out_format, sink);
    robust::atomic_write_file(options.out_file, sink.str(),
                              "artifact.merged");
    out << "merged " << options.merge_inputs.size()
        << " shard partial(s) -> " << options.out_file << "\n";
  } else {
    write_result(merged, options.out_format, out);
  }
  return 0;
}

/// Fork one shard worker. The child stamps its attempt number into the
/// robust layer FIRST (so `@aN` fault triggers can arm "first launch
/// only" rules -- the chaos tests' way of making a crash that a retry
/// survives), passes the shard.worker.start fault point, then re-enters
/// run_cli as `--shard index/workers` writing `path`. Workers stay
/// quiet on stdout (the parent prints the summary); their error lines
/// go to the shared stderr. _Exit skips atexit and static destructors
/// -- correct for a forked worker.
pid_t spawn_shard_worker(const CliOptions& options, std::size_t index,
                         std::size_t workers, const std::string& path,
                         std::uint64_t attempt) {
  const pid_t pid = ::fork();
  PG_CHECK(pid >= 0, "--shard-exec: fork failed");
  if (pid != 0) return pid;
  robust::set_attempt(attempt);
  int code = 1;
  try {
    robust::faultpoint("shard.worker.start", index);
    CliOptions child = options;
    child.shard_exec = 0;
    child.shard_retries = 0;
    child.shard_index = index;
    child.shard_total = workers;
    child.out_file = path;
    child.out_format = "json";
    if (!options.metrics_out.empty()) {
      child.metrics_out = options.metrics_out + ".shard-" + std::to_string(index);
    }
    std::ostringstream quiet;
    code = run_cli(child, quiet, std::cerr);
  } catch (...) {
  }
  std::_Exit(code);
}

/// A worker's partial is usable iff it exists AND parses as JSON. A
/// worker that died inside atomic_write_file leaves NO final file (the
/// temp never renamed), so "missing" is the common crash signature;
/// "present but unparseable" catches torn writes from legacy producers
/// and the injected short-write action.
bool partial_usable(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  try {
    (void)parse_json(text.str());
  } catch (...) {
    return false;
  }
  return true;
}

/// `pg_run --shard-exec N [--shard-retries K]`: the single-machine
/// orchestrator. Fork N worker processes BEFORE this process creates
/// any executor threads (fork + threads do not mix); each worker
/// re-enters run_cli as `--shard i/N` writing `<out-file>.shard-<i>`,
/// all of them sharing the run's cache dir -- so cross-worker cell
/// reuse goes through DiskPayoffCache::claim/publish for real.
///
/// Failure handling: after each round the parent inspects every
/// launched worker -- nonzero exit, death by signal, or a
/// missing/unparseable partial all mark that shard failed. With
/// --shard-retries K, exactly the failed shards relaunch (up to K extra
/// rounds) after an exponential backoff with jitter; shards are
/// deterministic, so a retried partial is bit-identical to what the
/// first launch would have written. Shards still failing after the
/// budget are reported per-index and the run exits 1
/// (obs.shard.failed_permanent counts them; obs.shard.retried counts
/// every relaunch). The parent finally merges in-process and writes the
/// merged artifact; the partials stay on disk for inspection.
int run_shard_exec(const CliOptions& options, std::ostream& out,
                   std::ostream& err) {
  const std::size_t workers = options.shard_exec;
  ensure_writable(options.out_file, "output file");
  std::vector<std::string> paths(workers);
  std::vector<std::size_t> pending(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    paths[i] = options.out_file + ".shard-" + std::to_string(i);
    pending[i] = i;
  }
  // Jitter decorrelates workers relaunched by SIBLING orchestrators
  // sharing one cache dir, so the seed must differ per process -- the
  // pid is exactly that (and this is scheduling, not results, so the
  // nondeterminism is contained).
  util::Rng jitter(static_cast<std::uint64_t>(::getpid()));
  std::vector<std::size_t> failed_permanent;
  for (std::uint64_t attempt = 0;; ++attempt) {
    std::vector<pid_t> pids(pending.size(), -1);
    for (std::size_t j = 0; j < pending.size(); ++j) {
      // Drop any stale partial first: a worker that failed AFTER
      // renaming its artifact into place must not satisfy the
      // usability probe below with last attempt's bytes.
      if (attempt > 0) std::remove(paths[pending[j]].c_str());
      pids[j] = spawn_shard_worker(options, pending[j], workers,
                                   paths[pending[j]], attempt);
    }
    std::vector<std::size_t> failures;
    for (std::size_t j = 0; j < pending.size(); ++j) {
      const std::size_t i = pending[j];
      int status = 0;
      const pid_t waited = ::waitpid(pids[j], &status, 0);
      std::string why;
      if (waited != pids[j]) {
        why = "waitpid failed";
      } else if (WIFSIGNALED(status)) {
        why = "killed by signal " + std::to_string(WTERMSIG(status));
      } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        why = "exited with code " +
              std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
      } else if (!partial_usable(paths[i])) {
        why = "exited cleanly but its partial is missing or unparseable";
      }
      if (why.empty()) continue;
      err << "error: --shard-exec worker " << i << "/" << workers << " "
          << why << " (attempt " << (attempt + 1) << "/"
          << (options.shard_retries + 1) << ")\n";
      failures.push_back(i);
    }
    if (failures.empty()) break;
    if (attempt >= options.shard_retries) {
      failed_permanent = std::move(failures);
      break;
    }
    static obs::Counter& retried = obs::counter("obs.shard.retried");
    retried.add(failures.size());
    const std::uint64_t base =
        std::min<std::uint64_t>(std::uint64_t{100} << attempt, 2000);
    const std::uint64_t sleep_ms =
        base / 2 + jitter.uniform_index(static_cast<std::size_t>(base / 2) + 1);
    err << "--shard-exec: retrying " << failures.size() << " shard(s) after "
        << sleep_ms << " ms backoff\n";
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    pending = std::move(failures);
  }
  if (!failed_permanent.empty()) {
    static obs::Counter& permanent =
        obs::counter("obs.shard.failed_permanent");
    permanent.add(failed_permanent.size());
    std::string list;
    for (const std::size_t index : failed_permanent) {
      if (!list.empty()) list += ',';
      list += std::to_string(index);
    }
    PG_CHECK(false, "--shard-exec: shard(s) " + list +
                        " failed permanently after " +
                        std::to_string(options.shard_retries) +
                        " retr" +
                        (options.shard_retries == 1 ? "y" : "ies") +
                        " (worker error output is above)");
  }
  std::vector<std::pair<std::string, JsonValue>> partials;
  partials.reserve(workers);
  for (const std::string& path : paths) {
    partials.emplace_back(path, parse_artifact(path));
  }
  const ScenarioResult merged = merge_partials(partials);
  std::ostringstream sink;
  write_result(merged, options.out_format, sink);
  robust::atomic_write_file(options.out_file, sink.str(), "artifact.merged");
  out << "merged " << workers << " shard partial(s) -> " << options.out_file
      << "\n";
  if (!options.metrics_out.empty()) {
    // The orchestrator's own snapshot: obs.shard.* live HERE, not in any
    // worker's metrics file, so chaos harnesses assert on this one.
    std::ostringstream metrics;
    write_metrics_json("shard-exec", metrics);
    robust::atomic_write_file(options.metrics_out, metrics.str(),
                              "artifact.metrics");
    out << "wrote " << options.metrics_out << "\n";
  }
  return 0;
}

}  // namespace

CliOptions parse_cli(const std::vector<std::string>& args) {
  CliOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--print-spec") {
      options.print_spec = true;
    } else if (arg == "--scenario") {
      options.scenario = flag_value(args, i, arg);
    } else if (arg == "--spec") {
      options.spec_file = flag_value(args, i, arg);
    } else if (arg == "--set") {
      const std::string kv = flag_value(args, i, arg);
      const std::size_t eq = kv.find('=');
      PG_CHECK(eq != std::string::npos && eq > 0,
               "--set expects key=value, got '" + kv + "'");
      options.overrides.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (arg == "--sweep") {
      // Appends one grid axis; see CliOptions for the "sweep+" marker.
      options.overrides.emplace_back("sweep+", flag_value(args, i, arg));
    } else if (arg == "--compare") {
      options.compare = true;
      options.compare_baseline = flag_value(args, i, arg);
      options.compare_candidate = flag_value(args, i, "--compare <baseline>");
    } else if (arg == "--tolerance") {
      const std::string value = flag_value(args, i, arg);
      char* end = nullptr;
      options.tolerance = std::strtod(value.c_str(), &end);
      PG_CHECK(!value.empty() && end != nullptr && *end == '\0' &&
                   options.tolerance >= 0.0,
               "--tolerance expects a non-negative number, got '" + value +
                   "'");
    } else if (arg == "--update-baseline") {
      options.update_baseline = true;
    } else if (arg == "--with-timing") {
      options.with_timing = true;
    } else if (arg == "--with-telemetry") {
      options.with_telemetry = true;
    } else if (arg == "--cache-max-bytes") {
      options.overrides.emplace_back("cache_max_bytes",
                                     flag_value(args, i, arg));
    } else if (arg == "--threads") {
      options.overrides.emplace_back("threads", flag_value(args, i, arg));
    } else if (arg == "--kernel") {
      options.overrides.emplace_back("kernel", flag_value(args, i, arg));
    } else if (arg == "--cache-dir") {
      options.overrides.emplace_back("cache_dir", flag_value(args, i, arg));
    } else if (arg == "--no-cache") {
      options.overrides.emplace_back("use_cache", "false");
    } else if (arg == "--out") {
      options.out_format = flag_value(args, i, arg);
    } else if (arg == "--out-file") {
      options.out_file = flag_value(args, i, arg);
    } else if (arg == "--trace") {
      options.overrides.emplace_back("trace", flag_value(args, i, arg));
    } else if (arg == "--metrics-out") {
      options.metrics_out = flag_value(args, i, arg);
      options.overrides.emplace_back("metrics", "true");
    } else if (arg == "--shard") {
      const std::string value = flag_value(args, i, arg);
      const std::size_t slash = value.find('/');
      PG_CHECK(slash != std::string::npos && slash > 0 &&
                   slash + 1 < value.size(),
               "--shard expects i/N (e.g. 0/3), got '" + value + "'");
      options.shard_index = parse_count(
          value.substr(0, slash), "--shard expects i/N (e.g. 0/3)");
      options.shard_total = parse_count(
          value.substr(slash + 1), "--shard expects i/N (e.g. 0/3)");
      PG_CHECK(options.shard_total >= 1,
               "--shard: total shard count must be >= 1, got '" + value +
                   "'");
      PG_CHECK(options.shard_index < options.shard_total,
               "--shard: index " + std::to_string(options.shard_index) +
                   " out of range for " +
                   std::to_string(options.shard_total) + " shard(s)");
    } else if (arg == "--shard-exec") {
      options.shard_exec = parse_count(
          flag_value(args, i, arg), "--shard-exec expects a worker count");
      PG_CHECK(options.shard_exec >= 1 && options.shard_exec <= 1024,
               "--shard-exec expects 1-1024 workers, got " +
                   std::to_string(options.shard_exec));
    } else if (arg == "--shard-retries") {
      options.shard_retries = parse_count(
          flag_value(args, i, arg), "--shard-retries expects a retry count");
      PG_CHECK(options.shard_retries <= 16,
               "--shard-retries expects 0-16, got " +
                   std::to_string(options.shard_retries));
    } else if (arg == "--fault") {
      options.faults.push_back(flag_value(args, i, arg));
    } else if (arg == "--merge") {
      options.merge = true;
    } else if (options.merge && arg.rfind("--", 0) != 0) {
      // Trailing non-flag arguments after --merge are the partials.
      options.merge_inputs.push_back(arg);
    } else {
      PG_CHECK(false, "unknown argument: " + arg + "\n" + cli_usage());
    }
  }
  PG_CHECK(options.scenario.empty() || options.spec_file.empty(),
           "--scenario and --spec are mutually exclusive");
  PG_CHECK(!options.compare ||
               (options.scenario.empty() && options.spec_file.empty()),
           "--compare does not combine with --scenario/--spec");
  PG_CHECK(options.compare || !options.update_baseline,
           "--update-baseline only applies to --compare");
  PG_CHECK(options.out_format == "text" || options.out_format == "json" ||
               options.out_format == "csv",
           "--out expects json, csv, or text");
  if (options.merge) {
    PG_CHECK(options.scenario.empty() && options.spec_file.empty(),
             "--merge does not combine with --scenario/--spec");
    PG_CHECK(!options.compare, "--merge does not combine with --compare");
    PG_CHECK(options.shard_total == 0 && options.shard_exec == 0,
             "--merge does not combine with --shard/--shard-exec");
    PG_CHECK(!options.merge_inputs.empty(),
             "--merge needs at least one partial artifact "
             "(pg_run --merge a.json b.json ...)");
    PG_CHECK(options.metrics_out.empty(),
             "--metrics-out does not apply to --merge (merging runs no "
             "scenario)");
  }
  if (options.shard_total > 0) {
    PG_CHECK(!options.compare, "--shard does not combine with --compare");
  }
  PG_CHECK(options.shard_retries == 0 || options.shard_exec > 0,
           "--shard-retries only applies to --shard-exec (nothing else "
           "relaunches workers)");
  if (options.shard_exec > 0) {
    PG_CHECK(options.shard_total == 0,
             "--shard-exec and --shard are mutually exclusive (the "
             "orchestrator assigns worker shards itself)");
    PG_CHECK(!options.compare, "--shard-exec does not combine with "
                               "--compare");
    PG_CHECK(!options.out_file.empty(),
             "--shard-exec needs --out-file (the merged artifact "
             "destination; partials land next to it)");
    PG_CHECK(!options.print_spec,
             "--print-spec does not combine with --shard-exec");
    for (const auto& [key, value] : options.overrides) {
      (void)value;
      PG_CHECK(key != "trace",
               "--trace does not combine with --shard-exec (N workers "
               "would race on one trace file)");
    }
  }
  return options;
}

std::string cli_usage() {
  return
      "pg_run -- unified scenario driver for the poisongame reproduction\n"
      "\n"
      "usage:\n"
      "  pg_run --list                      show the scenario catalog\n"
      "  pg_run --scenario <name> [opts]    run a registered scenario\n"
      "  pg_run --spec <file> [opts]        run a key=value spec file\n"
      "  pg_run --compare A.json B.json     diff two JSON result artifacts\n"
      "  pg_run --merge P0.json P1.json ... stitch --shard partials into\n"
      "                                     the canonical merged result\n"
      "                                     (absent shards print\n"
      "                                     missing_shards=i,j,... and\n"
      "                                     exit 4)\n"
      "\n"
      "run options:\n"
      "  --set key=value   override one spec field (repeatable, last wins)\n"
      "  --sweep CLAUSE    add a grid axis: key=lo..hi[:steps] (steps\n"
      "                    default 5) or key=v1,v2,... (repeatable; the\n"
      "                    run becomes the cross product of all axes,\n"
      "                    merged into one result)\n"
      "  --threads N       executor width (0 = all cores, 1 = serial)\n"
      "  --kernel K        retrain kernel: reference (default, bit-identical)\n"
      "                    or simd (SoA batched SGD, 1e-9 tolerance; tier\n"
      "                    picked by cpuid, overridable with --set simd=TIER\n"
      "                    or PG_SIMD=TIER where TIER is scalar|sse2|avx2)\n"
      "  --cache-dir DIR   payoff disk-cache directory (default $PG_CACHE_DIR)\n"
      "  --cache-max-bytes N  evict oldest disk-cache shards past N bytes\n"
      "  --no-cache        disable payoff memoization entirely\n"
      "  --out FORMAT      json | csv | text (default text)\n"
      "  --out-file PATH   write the sink there instead of stdout\n"
      "  --trace PATH      record a Chrome Trace Event JSON of the run\n"
      "                    (open in chrome://tracing or Perfetto)\n"
      "  --metrics-out PATH  write the run's counter/timer snapshot as\n"
      "                    JSON (implies --set metrics=true)\n"
      "  --shard i/N       run the deterministic stride {i, i+N, i+2N, ...}\n"
      "                    of the sweep grid (plan indices) and emit a\n"
      "                    partial artifact; point workers at ONE shared\n"
      "                    --cache-dir so they reuse each other's retrains,\n"
      "                    then stitch the N partials with --merge\n"
      "  --shard-exec N    single-machine orchestrator: fork N local shard\n"
      "                    workers over the shared cache dir, wait, merge,\n"
      "                    and write the merged artifact to --out-file\n"
      "                    (partials stay at <out-file>.shard-<i>)\n"
      "  --shard-retries K with --shard-exec: relaunch a failed worker\n"
      "                    (crash, nonzero exit, missing/torn partial) up\n"
      "                    to K more times with exponential backoff before\n"
      "                    giving up (default 0 = fail fast)\n"
      "  --fault SPEC      arm one deterministic fault-injection rule\n"
      "                    (repeatable; flags replace $PG_FAULTS). Grammar:\n"
      "                    site[arg]:action[@trigger], e.g.\n"
      "                    'cache.store:short-write' or\n"
      "                    'shard.worker.start[1]:crash@a0' -- see\n"
      "                    src/robust/faultpoint.h\n"
      "  --print-spec      print the resolved spec and exit\n"
      "\n"
      "compare options (regression triage; exits 1 past tolerance):\n"
      "  --tolerance T       accept |a-b| <= T or relative delta <= T\n"
      "  --update-baseline   overwrite A.json with B.json when they differ\n"
      "  --with-timing       also compare _ms/_seconds wall-clock values\n"
      "  --with-telemetry    also compare telemetry* tables and obs.*\n"
      "                    metric keys (skipped by default)\n"
      "\n"
      "Scenario sizes honor the historical PG_BENCH_* env knobs; --set\n"
      "overrides take precedence over both.\n";
}

int run_cli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  try {
    if (!options.faults.empty()) {
      // --fault flags REPLACE any $PG_FAULTS table (flags win, like
      // every other env/flag pair in this CLI). Forked shard workers
      // re-run this line with the same entries, which just resets their
      // per-process hit counters -- each worker counts its own hits.
      std::string joined;
      for (const std::string& entry : options.faults) {
        if (!joined.empty()) joined += ',';
        joined += entry;
      }
      robust::configure(joined);
    }
    if (options.help) {
      out << cli_usage();
      return 0;
    }
    if (options.list) {
      util::TextTable table({"scenario", "kind", "description"});
      for (const ScenarioEntry& e : ScenarioRegistry::instance().entries()) {
        table.add_row({e.name, e.kind, e.description});
      }
      out << table.str();
      return 0;
    }

    if (options.compare) {
      return run_compare(options, out, err);
    }
    if (options.merge) {
      return run_merge(options, out, err);
    }

    PG_CHECK(!options.scenario.empty() || !options.spec_file.empty(),
             "nothing to run: pass --list, --scenario, --spec, --merge, "
             "or --compare\n" +
                 cli_usage());
    // Resolution (name/spec-text + overrides -> runnable spec) lives in
    // RequestOptions so pg_serve requests follow the exact same
    // precedence rules as this CLI.
    RequestOptions request;
    request.scenario = options.scenario;
    if (!options.spec_file.empty()) {
      request.spec_text = read_file(options.spec_file);
    }
    request.overrides = options.overrides;
    ScenarioSpec spec = request.resolve();

    if (options.print_spec) {
      out << spec.to_text();
      // Surface the host's vector ISA alongside the resolved spec, and --
      // when the simd kernel is requested -- the tier the run would
      // actually dispatch to. An unsatisfiable request errors here, same
      // as it would at run start.
      out << "# simd: detected=" << la::simd::tier_name(la::simd::detect_tier())
          << "\n";
      if (spec.kernel == "simd") {
        out << "# simd: resolved="
            << la::simd::tier_name(la::simd::resolve_tier(spec.simd)) << "\n";
      }
      return 0;
    }

    if (options.shard_exec > 0) {
      // Fork the workers BEFORE any executor threads exist in this
      // process (each worker builds its own runtime after the fork).
      return run_shard_exec(options, out, err);
    }

    // Probe every output path BEFORE the run: a typo'd --out-file/--trace/
    // --metrics-out must be a one-line error now, not a dead artifact
    // after minutes of compute.
    if (!options.out_file.empty()) {
      ensure_writable(options.out_file, "output file");
    }
    if (!spec.trace.empty()) ensure_writable(spec.trace, "trace file");
    if (!options.metrics_out.empty()) {
      ensure_writable(options.metrics_out, "metrics file");
    }

    const ScenarioResult result =
        options.shard_total > 0
            ? run_scenario_shard(spec,
                                 {options.shard_index, options.shard_total})
            : run_scenario(spec);
    if (!options.out_file.empty()) {
      // Shard partials and plain result artifacts carry distinct fault
      // sites so chaos specs can kill exactly the write they mean to;
      // the arg is the shard index (0 for unsharded runs).
      std::ostringstream sink;
      write_result(result, options.out_format, sink);
      robust::atomic_write_file(
          options.out_file, sink.str(),
          options.shard_total > 0 ? "artifact.partial" : "artifact.out",
          options.shard_index);
      out << "wrote " << options.out_file << "\n";
    } else {
      write_result(result, options.out_format, out);
    }
    if (!options.metrics_out.empty()) {
      std::ostringstream sink;
      write_metrics_json(result.spec.name, sink);
      robust::atomic_write_file(options.metrics_out, sink.str(),
                                "artifact.metrics", options.shard_index);
      out << "wrote " << options.metrics_out << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace pg::scenario
