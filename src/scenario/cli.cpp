#include "scenario/cli.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include "la/simd.h"
#include "scenario/diff.h"
#include "scenario/engine.h"
#include "scenario/registry.h"
#include "scenario/request.h"
#include "scenario/result.h"
#include "util/error.h"
#include "util/table.h"

namespace pg::scenario {

namespace {

std::string flag_value(const std::vector<std::string>& args, std::size_t& i,
                       const std::string& flag) {
  PG_CHECK(i + 1 < args.size(), flag + " requires a value");
  return args[++i];
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PG_CHECK(static_cast<bool>(in), "cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Fail fast on an unwritable output path, BEFORE the run: opening for
/// append creates the file if missing but leaves existing content alone,
/// so probing costs nothing and a hours-long sweep cannot die at the
/// write-out step (mirroring the unwritable-cache-dir degradation
/// contract -- except outputs are the point of the run, so this is a
/// hard error, not a downgrade).
void ensure_writable(const std::string& path, const std::string& what) {
  std::ofstream probe(path, std::ios::app);
  PG_CHECK(static_cast<bool>(probe),
           "cannot write " + what + ": " + path);
}

/// `pg_run --compare baseline candidate`: structured regression diff.
/// Exit 0 when every aligned value is within tolerance, 1 on drift or
/// shape changes -- unless --update-baseline, which accepts the
/// candidate by overwriting the baseline file and exits 0.
int run_compare(const CliOptions& options, std::ostream& out,
                std::ostream& err) {
  const std::string baseline_text = read_file(options.compare_baseline);
  const JsonValue baseline = parse_json(baseline_text);
  const JsonValue candidate = parse_json(read_file(options.compare_candidate));

  DiffOptions diff_options;
  diff_options.tolerance = options.tolerance;
  diff_options.ignore_timing = !options.with_timing;
  diff_options.ignore_telemetry = !options.with_telemetry;
  const ResultDiff diff = diff_results(baseline, candidate, diff_options);

  out << "comparing " << options.compare_baseline << " (baseline) vs "
      << options.compare_candidate << " (candidate)\n";
  write_diff_report(diff, diff_options, out);
  if (diff.clean()) return 0;

  if (options.update_baseline) {
    std::ofstream file(options.compare_baseline,
                       std::ios::binary | std::ios::trunc);
    PG_CHECK(static_cast<bool>(file),
             "cannot rewrite baseline " + options.compare_baseline);
    file << read_file(options.compare_candidate);
    PG_CHECK(static_cast<bool>(file),
             "short write updating " + options.compare_baseline);
    out << "baseline updated: " << options.compare_baseline << " now matches "
        << options.compare_candidate << "\n";
    return 0;
  }
  err << "error: results differ past tolerance (see report above)\n";
  return 1;
}

/// Strict base-10 parse for shard counts/indices (no signs, no spaces).
std::size_t parse_count(const std::string& token, const std::string& what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  PG_CHECK(!token.empty() && end != nullptr && *end == '\0' &&
               token.find_first_not_of("0123456789") == std::string::npos,
           what + ", got '" + token + "'");
  return static_cast<std::size_t>(v);
}

/// `pg_run --merge a.json b.json ... [--out-file merged.json]`: stitch
/// shard partials into the canonical merged artifact. All validation
/// (schema, disjointness, completeness) lives in merge_partials.
int run_merge(const CliOptions& options, std::ostream& out) {
  std::vector<std::pair<std::string, JsonValue>> partials;
  partials.reserve(options.merge_inputs.size());
  for (const std::string& path : options.merge_inputs) {
    partials.emplace_back(path, parse_json(read_file(path)));
  }
  const ScenarioResult merged = merge_partials(partials);
  if (!options.out_file.empty()) {
    std::ofstream file(options.out_file);
    PG_CHECK(static_cast<bool>(file),
             "cannot write output file: " + options.out_file);
    write_result(merged, options.out_format, file);
    out << "merged " << options.merge_inputs.size()
        << " shard partial(s) -> " << options.out_file << "\n";
  } else {
    write_result(merged, options.out_format, out);
  }
  return 0;
}

/// `pg_run --shard-exec N`: the single-machine orchestrator. Fork N
/// worker processes BEFORE this process creates any executor threads
/// (fork + threads do not mix); each worker re-enters run_cli as
/// `--shard i/N` writing `<out-file>.shard-<i>`, all of them sharing the
/// run's cache dir -- so cross-worker cell reuse goes through
/// DiskPayoffCache::claim/publish for real. The parent waits, merges
/// in-process, and writes the merged artifact; the partials stay on disk
/// for inspection.
int run_shard_exec(const CliOptions& options, std::ostream& out,
                   std::ostream& err) {
  const std::size_t workers = options.shard_exec;
  ensure_writable(options.out_file, "output file");
  std::vector<std::string> paths(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    paths[i] = options.out_file + ".shard-" + std::to_string(i);
  }
  std::vector<pid_t> pids(workers, -1);
  for (std::size_t i = 0; i < workers; ++i) {
    const pid_t pid = ::fork();
    PG_CHECK(pid >= 0, "--shard-exec: fork failed");
    if (pid == 0) {
      CliOptions child = options;
      child.shard_exec = 0;
      child.shard_index = i;
      child.shard_total = workers;
      child.out_file = paths[i];
      child.out_format = "json";
      if (!options.metrics_out.empty()) {
        child.metrics_out =
            options.metrics_out + ".shard-" + std::to_string(i);
      }
      // Workers stay quiet on stdout (the parent prints the summary);
      // their error lines go to the shared stderr. _Exit skips atexit
      // and static destructors -- correct for a forked worker.
      std::ostringstream quiet;
      int code = 1;
      try {
        code = run_cli(child, quiet, std::cerr);
      } catch (...) {
      }
      std::_Exit(code);
    }
    pids[i] = pid;
  }
  bool failed = false;
  for (std::size_t i = 0; i < workers; ++i) {
    int status = 0;
    const pid_t waited = ::waitpid(pids[i], &status, 0);
    if (waited != pids[i] || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      err << "error: --shard-exec worker " << i << "/" << workers
          << " failed\n";
      failed = true;
    }
  }
  PG_CHECK(!failed,
           "--shard-exec: one or more shard workers failed (their error "
           "output is above)");
  std::vector<std::pair<std::string, JsonValue>> partials;
  partials.reserve(workers);
  for (const std::string& path : paths) {
    partials.emplace_back(path, parse_json(read_file(path)));
  }
  const ScenarioResult merged = merge_partials(partials);
  std::ofstream file(options.out_file);
  PG_CHECK(static_cast<bool>(file),
           "cannot write output file: " + options.out_file);
  write_result(merged, options.out_format, file);
  out << "merged " << workers << " shard partial(s) -> " << options.out_file
      << "\n";
  return 0;
}

}  // namespace

CliOptions parse_cli(const std::vector<std::string>& args) {
  CliOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--print-spec") {
      options.print_spec = true;
    } else if (arg == "--scenario") {
      options.scenario = flag_value(args, i, arg);
    } else if (arg == "--spec") {
      options.spec_file = flag_value(args, i, arg);
    } else if (arg == "--set") {
      const std::string kv = flag_value(args, i, arg);
      const std::size_t eq = kv.find('=');
      PG_CHECK(eq != std::string::npos && eq > 0,
               "--set expects key=value, got '" + kv + "'");
      options.overrides.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (arg == "--sweep") {
      // Appends one grid axis; see CliOptions for the "sweep+" marker.
      options.overrides.emplace_back("sweep+", flag_value(args, i, arg));
    } else if (arg == "--compare") {
      options.compare = true;
      options.compare_baseline = flag_value(args, i, arg);
      options.compare_candidate = flag_value(args, i, "--compare <baseline>");
    } else if (arg == "--tolerance") {
      const std::string value = flag_value(args, i, arg);
      char* end = nullptr;
      options.tolerance = std::strtod(value.c_str(), &end);
      PG_CHECK(!value.empty() && end != nullptr && *end == '\0' &&
                   options.tolerance >= 0.0,
               "--tolerance expects a non-negative number, got '" + value +
                   "'");
    } else if (arg == "--update-baseline") {
      options.update_baseline = true;
    } else if (arg == "--with-timing") {
      options.with_timing = true;
    } else if (arg == "--with-telemetry") {
      options.with_telemetry = true;
    } else if (arg == "--cache-max-bytes") {
      options.overrides.emplace_back("cache_max_bytes",
                                     flag_value(args, i, arg));
    } else if (arg == "--threads") {
      options.overrides.emplace_back("threads", flag_value(args, i, arg));
    } else if (arg == "--kernel") {
      options.overrides.emplace_back("kernel", flag_value(args, i, arg));
    } else if (arg == "--cache-dir") {
      options.overrides.emplace_back("cache_dir", flag_value(args, i, arg));
    } else if (arg == "--no-cache") {
      options.overrides.emplace_back("use_cache", "false");
    } else if (arg == "--out") {
      options.out_format = flag_value(args, i, arg);
    } else if (arg == "--out-file") {
      options.out_file = flag_value(args, i, arg);
    } else if (arg == "--trace") {
      options.overrides.emplace_back("trace", flag_value(args, i, arg));
    } else if (arg == "--metrics-out") {
      options.metrics_out = flag_value(args, i, arg);
      options.overrides.emplace_back("metrics", "true");
    } else if (arg == "--shard") {
      const std::string value = flag_value(args, i, arg);
      const std::size_t slash = value.find('/');
      PG_CHECK(slash != std::string::npos && slash > 0 &&
                   slash + 1 < value.size(),
               "--shard expects i/N (e.g. 0/3), got '" + value + "'");
      options.shard_index = parse_count(
          value.substr(0, slash), "--shard expects i/N (e.g. 0/3)");
      options.shard_total = parse_count(
          value.substr(slash + 1), "--shard expects i/N (e.g. 0/3)");
      PG_CHECK(options.shard_total >= 1,
               "--shard: total shard count must be >= 1, got '" + value +
                   "'");
      PG_CHECK(options.shard_index < options.shard_total,
               "--shard: index " + std::to_string(options.shard_index) +
                   " out of range for " +
                   std::to_string(options.shard_total) + " shard(s)");
    } else if (arg == "--shard-exec") {
      options.shard_exec = parse_count(
          flag_value(args, i, arg), "--shard-exec expects a worker count");
      PG_CHECK(options.shard_exec >= 1 && options.shard_exec <= 1024,
               "--shard-exec expects 1-1024 workers, got " +
                   std::to_string(options.shard_exec));
    } else if (arg == "--merge") {
      options.merge = true;
    } else if (options.merge && arg.rfind("--", 0) != 0) {
      // Trailing non-flag arguments after --merge are the partials.
      options.merge_inputs.push_back(arg);
    } else {
      PG_CHECK(false, "unknown argument: " + arg + "\n" + cli_usage());
    }
  }
  PG_CHECK(options.scenario.empty() || options.spec_file.empty(),
           "--scenario and --spec are mutually exclusive");
  PG_CHECK(!options.compare ||
               (options.scenario.empty() && options.spec_file.empty()),
           "--compare does not combine with --scenario/--spec");
  PG_CHECK(options.compare || !options.update_baseline,
           "--update-baseline only applies to --compare");
  PG_CHECK(options.out_format == "text" || options.out_format == "json" ||
               options.out_format == "csv",
           "--out expects json, csv, or text");
  if (options.merge) {
    PG_CHECK(options.scenario.empty() && options.spec_file.empty(),
             "--merge does not combine with --scenario/--spec");
    PG_CHECK(!options.compare, "--merge does not combine with --compare");
    PG_CHECK(options.shard_total == 0 && options.shard_exec == 0,
             "--merge does not combine with --shard/--shard-exec");
    PG_CHECK(!options.merge_inputs.empty(),
             "--merge needs at least one partial artifact "
             "(pg_run --merge a.json b.json ...)");
    PG_CHECK(options.metrics_out.empty(),
             "--metrics-out does not apply to --merge (merging runs no "
             "scenario)");
  }
  if (options.shard_total > 0) {
    PG_CHECK(!options.compare, "--shard does not combine with --compare");
  }
  if (options.shard_exec > 0) {
    PG_CHECK(options.shard_total == 0,
             "--shard-exec and --shard are mutually exclusive (the "
             "orchestrator assigns worker shards itself)");
    PG_CHECK(!options.compare, "--shard-exec does not combine with "
                               "--compare");
    PG_CHECK(!options.out_file.empty(),
             "--shard-exec needs --out-file (the merged artifact "
             "destination; partials land next to it)");
    PG_CHECK(!options.print_spec,
             "--print-spec does not combine with --shard-exec");
    for (const auto& [key, value] : options.overrides) {
      (void)value;
      PG_CHECK(key != "trace",
               "--trace does not combine with --shard-exec (N workers "
               "would race on one trace file)");
    }
  }
  return options;
}

std::string cli_usage() {
  return
      "pg_run -- unified scenario driver for the poisongame reproduction\n"
      "\n"
      "usage:\n"
      "  pg_run --list                      show the scenario catalog\n"
      "  pg_run --scenario <name> [opts]    run a registered scenario\n"
      "  pg_run --spec <file> [opts]        run a key=value spec file\n"
      "  pg_run --compare A.json B.json     diff two JSON result artifacts\n"
      "  pg_run --merge P0.json P1.json ... stitch --shard partials into\n"
      "                                     the canonical merged result\n"
      "\n"
      "run options:\n"
      "  --set key=value   override one spec field (repeatable, last wins)\n"
      "  --sweep CLAUSE    add a grid axis: key=lo..hi[:steps] (steps\n"
      "                    default 5) or key=v1,v2,... (repeatable; the\n"
      "                    run becomes the cross product of all axes,\n"
      "                    merged into one result)\n"
      "  --threads N       executor width (0 = all cores, 1 = serial)\n"
      "  --kernel K        retrain kernel: reference (default, bit-identical)\n"
      "                    or simd (SoA batched SGD, 1e-9 tolerance; tier\n"
      "                    picked by cpuid, overridable with --set simd=TIER\n"
      "                    or PG_SIMD=TIER where TIER is scalar|sse2|avx2)\n"
      "  --cache-dir DIR   payoff disk-cache directory (default $PG_CACHE_DIR)\n"
      "  --cache-max-bytes N  evict oldest disk-cache shards past N bytes\n"
      "  --no-cache        disable payoff memoization entirely\n"
      "  --out FORMAT      json | csv | text (default text)\n"
      "  --out-file PATH   write the sink there instead of stdout\n"
      "  --trace PATH      record a Chrome Trace Event JSON of the run\n"
      "                    (open in chrome://tracing or Perfetto)\n"
      "  --metrics-out PATH  write the run's counter/timer snapshot as\n"
      "                    JSON (implies --set metrics=true)\n"
      "  --shard i/N       run the deterministic stride {i, i+N, i+2N, ...}\n"
      "                    of the sweep grid (plan indices) and emit a\n"
      "                    partial artifact; point workers at ONE shared\n"
      "                    --cache-dir so they reuse each other's retrains,\n"
      "                    then stitch the N partials with --merge\n"
      "  --shard-exec N    single-machine orchestrator: fork N local shard\n"
      "                    workers over the shared cache dir, wait, merge,\n"
      "                    and write the merged artifact to --out-file\n"
      "                    (partials stay at <out-file>.shard-<i>)\n"
      "  --print-spec      print the resolved spec and exit\n"
      "\n"
      "compare options (regression triage; exits 1 past tolerance):\n"
      "  --tolerance T       accept |a-b| <= T or relative delta <= T\n"
      "  --update-baseline   overwrite A.json with B.json when they differ\n"
      "  --with-timing       also compare _ms/_seconds wall-clock values\n"
      "  --with-telemetry    also compare telemetry* tables and obs.*\n"
      "                    metric keys (skipped by default)\n"
      "\n"
      "Scenario sizes honor the historical PG_BENCH_* env knobs; --set\n"
      "overrides take precedence over both.\n";
}

int run_cli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  try {
    if (options.help) {
      out << cli_usage();
      return 0;
    }
    if (options.list) {
      util::TextTable table({"scenario", "kind", "description"});
      for (const ScenarioEntry& e : ScenarioRegistry::instance().entries()) {
        table.add_row({e.name, e.kind, e.description});
      }
      out << table.str();
      return 0;
    }

    if (options.compare) {
      return run_compare(options, out, err);
    }
    if (options.merge) {
      return run_merge(options, out);
    }

    PG_CHECK(!options.scenario.empty() || !options.spec_file.empty(),
             "nothing to run: pass --list, --scenario, --spec, --merge, "
             "or --compare\n" +
                 cli_usage());
    // Resolution (name/spec-text + overrides -> runnable spec) lives in
    // RequestOptions so pg_serve requests follow the exact same
    // precedence rules as this CLI.
    RequestOptions request;
    request.scenario = options.scenario;
    if (!options.spec_file.empty()) {
      request.spec_text = read_file(options.spec_file);
    }
    request.overrides = options.overrides;
    ScenarioSpec spec = request.resolve();

    if (options.print_spec) {
      out << spec.to_text();
      // Surface the host's vector ISA alongside the resolved spec, and --
      // when the simd kernel is requested -- the tier the run would
      // actually dispatch to. An unsatisfiable request errors here, same
      // as it would at run start.
      out << "# simd: detected=" << la::simd::tier_name(la::simd::detect_tier())
          << "\n";
      if (spec.kernel == "simd") {
        out << "# simd: resolved="
            << la::simd::tier_name(la::simd::resolve_tier(spec.simd)) << "\n";
      }
      return 0;
    }

    if (options.shard_exec > 0) {
      // Fork the workers BEFORE any executor threads exist in this
      // process (each worker builds its own runtime after the fork).
      return run_shard_exec(options, out, err);
    }

    // Probe every output path BEFORE the run: a typo'd --out-file/--trace/
    // --metrics-out must be a one-line error now, not a dead artifact
    // after minutes of compute.
    if (!options.out_file.empty()) {
      ensure_writable(options.out_file, "output file");
    }
    if (!spec.trace.empty()) ensure_writable(spec.trace, "trace file");
    if (!options.metrics_out.empty()) {
      ensure_writable(options.metrics_out, "metrics file");
    }

    const ScenarioResult result =
        options.shard_total > 0
            ? run_scenario_shard(spec,
                                 {options.shard_index, options.shard_total})
            : run_scenario(spec);
    if (!options.out_file.empty()) {
      std::ofstream file(options.out_file);
      PG_CHECK(static_cast<bool>(file),
               "cannot write output file: " + options.out_file);
      write_result(result, options.out_format, file);
      out << "wrote " << options.out_file << "\n";
    } else {
      write_result(result, options.out_format, out);
    }
    if (!options.metrics_out.empty()) {
      std::ofstream file(options.metrics_out, std::ios::trunc);
      PG_CHECK(static_cast<bool>(file),
               "cannot write metrics file: " + options.metrics_out);
      write_metrics_json(result.spec.name, file);
      out << "wrote " << options.metrics_out << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace pg::scenario
