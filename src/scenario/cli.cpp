#include "scenario/cli.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "scenario/engine.h"
#include "scenario/registry.h"
#include "scenario/result.h"
#include "util/error.h"
#include "util/table.h"

namespace pg::scenario {

namespace {

std::string flag_value(const std::vector<std::string>& args, std::size_t& i,
                       const std::string& flag) {
  PG_CHECK(i + 1 < args.size(), flag + " requires a value");
  return args[++i];
}

}  // namespace

CliOptions parse_cli(const std::vector<std::string>& args) {
  CliOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--print-spec") {
      options.print_spec = true;
    } else if (arg == "--scenario") {
      options.scenario = flag_value(args, i, arg);
    } else if (arg == "--spec") {
      options.spec_file = flag_value(args, i, arg);
    } else if (arg == "--set") {
      const std::string kv = flag_value(args, i, arg);
      const std::size_t eq = kv.find('=');
      PG_CHECK(eq != std::string::npos && eq > 0,
               "--set expects key=value, got '" + kv + "'");
      options.overrides.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (arg == "--threads") {
      options.overrides.emplace_back("threads", flag_value(args, i, arg));
    } else if (arg == "--cache-dir") {
      options.overrides.emplace_back("cache_dir", flag_value(args, i, arg));
    } else if (arg == "--no-cache") {
      options.overrides.emplace_back("use_cache", "false");
    } else if (arg == "--out") {
      options.out_format = flag_value(args, i, arg);
    } else if (arg == "--out-file") {
      options.out_file = flag_value(args, i, arg);
    } else {
      PG_CHECK(false, "unknown argument: " + arg + "\n" + cli_usage());
    }
  }
  PG_CHECK(options.scenario.empty() || options.spec_file.empty(),
           "--scenario and --spec are mutually exclusive");
  PG_CHECK(options.out_format == "text" || options.out_format == "json" ||
               options.out_format == "csv",
           "--out expects json, csv, or text");
  return options;
}

std::string cli_usage() {
  return
      "pg_run -- unified scenario driver for the poisongame reproduction\n"
      "\n"
      "usage:\n"
      "  pg_run --list                      show the scenario catalog\n"
      "  pg_run --scenario <name> [opts]    run a registered scenario\n"
      "  pg_run --spec <file> [opts]        run a key=value spec file\n"
      "\n"
      "options:\n"
      "  --set key=value   override one spec field (repeatable, last wins)\n"
      "  --threads N       executor width (0 = all cores, 1 = serial)\n"
      "  --cache-dir DIR   payoff disk-cache directory (default $PG_CACHE_DIR)\n"
      "  --no-cache        disable payoff memoization entirely\n"
      "  --out FORMAT      json | csv | text (default text)\n"
      "  --out-file PATH   write the sink there instead of stdout\n"
      "  --print-spec      print the resolved spec and exit\n"
      "\n"
      "Scenario sizes honor the historical PG_BENCH_* env knobs; --set\n"
      "overrides take precedence over both.\n";
}

int run_cli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  try {
    if (options.help) {
      out << cli_usage();
      return 0;
    }
    if (options.list) {
      util::TextTable table({"scenario", "kind", "description"});
      for (const ScenarioEntry& e : ScenarioRegistry::instance().entries()) {
        table.add_row({e.name, e.kind, e.description});
      }
      out << table.str();
      return 0;
    }

    PG_CHECK(!options.scenario.empty() || !options.spec_file.empty(),
             "nothing to run: pass --list, --scenario, or --spec\n" +
                 cli_usage());
    ScenarioSpec spec;
    if (!options.scenario.empty()) {
      spec = ScenarioRegistry::instance().make(options.scenario);
    } else {
      std::ifstream in(options.spec_file);
      PG_CHECK(static_cast<bool>(in),
               "cannot read spec file: " + options.spec_file);
      std::ostringstream text;
      text << in.rdbuf();
      spec = ScenarioSpec::parse(text.str());
    }
    for (const auto& [key, value] : options.overrides) {
      spec.set(key, value);
    }

    if (options.print_spec) {
      out << spec.to_text();
      return 0;
    }

    const ScenarioResult result = run_scenario(spec);
    if (!options.out_file.empty()) {
      std::ofstream file(options.out_file);
      PG_CHECK(static_cast<bool>(file),
               "cannot write output file: " + options.out_file);
      write_result(result, options.out_format, file);
      out << "wrote " << options.out_file << "\n";
    } else {
      write_result(result, options.out_format, out);
    }
    return 0;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace pg::scenario
