// Argument parsing and top-level command logic for the pg_run driver.
//
// Split from tools/pg_run.cpp so tests can drive the full CLI surface
// (parse errors, --set precedence, --list output, sink selection) against
// in-memory streams without spawning a process.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace pg::scenario {

struct CliOptions {
  bool help = false;
  bool list = false;
  bool print_spec = false;      // resolve + print the spec, do not run
  std::string scenario;         // --scenario <name> (registry lookup)
  std::string spec_file;        // --spec <file> (parsed over defaults)
  /// --set key=value overrides, applied IN ORDER after the scenario /
  /// spec-file resolution, so later flags win (--threads, --cache-dir and
  /// --no-cache desugar to overrides too).
  std::vector<std::pair<std::string, std::string>> overrides;
  std::string out_format = "text";  // --out json|csv|text
  std::string out_file;             // --out-file <path>; empty = stdout
};

/// Parse argv (excluding argv[0]). Throws std::invalid_argument on
/// unknown flags, missing flag values, or malformed --set syntax.
[[nodiscard]] CliOptions parse_cli(const std::vector<std::string>& args);

[[nodiscard]] std::string cli_usage();

/// Execute the parsed command; human/machine output goes to `out`,
/// errors to `err`. Returns the process exit code.
int run_cli(const CliOptions& options, std::ostream& out, std::ostream& err);

}  // namespace pg::scenario
