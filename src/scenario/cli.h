// Argument parsing and top-level command logic for the pg_run driver.
//
// Split from tools/pg_run.cpp so tests can drive the full CLI surface
// (parse errors, --set precedence, --list output, sink selection) against
// in-memory streams without spawning a process.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace pg::scenario {

struct CliOptions {
  bool help = false;
  bool list = false;
  bool print_spec = false;      // resolve + print the spec, do not run
  std::string scenario;         // --scenario <name> (registry lookup)
  std::string spec_file;        // --spec <file> (parsed over defaults)
  /// --set key=value overrides, applied IN ORDER after the scenario /
  /// spec-file resolution, so later flags win (--threads, --cache-dir,
  /// --no-cache and --cache-max-bytes desugar to overrides too).
  /// `--sweep <clause>` desugars to the internal key "sweep+", which
  /// APPENDS an axis instead of replacing the list -- so repeated
  /// --sweep flags accumulate a grid, while `--set sweep=...` still
  /// replaces/clears it, in flag order.
  std::vector<std::pair<std::string, std::string>> overrides;
  std::string out_format = "text";  // --out json|csv|text
  std::string out_file;             // --out-file <path>; empty = stdout
  /// --metrics-out <path>: write the run's metrics-registry snapshot
  /// there as JSON (also desugars to a metrics=true override so the
  /// registry is reset for the run). --trace desugars to a trace=PATH
  /// override and lives in `overrides`.
  std::string metrics_out;

  // ---- distributed sweep sharding -------------------------------------
  /// --shard i/N: run the deterministic stride {i, i+N, ...} of the
  /// sweep grid and emit a partial artifact. shard_total == 0 = off.
  std::size_t shard_index = 0;
  std::size_t shard_total = 0;
  /// --shard-exec N: single-machine orchestrator -- fork N worker
  /// processes (each running one shard over the shared cache dir), wait,
  /// merge in-process, write the merged artifact to --out-file. 0 = off.
  std::size_t shard_exec = 0;
  /// --shard-retries K: with --shard-exec, relaunch a failed worker
  /// (nonzero exit, killed by a signal, or a missing/unparseable partial)
  /// up to K more times with exponential backoff + jitter before giving
  /// up. Only the failed shards relaunch; the merged result is
  /// unaffected because partials are deterministic per shard. 0 = the
  /// historical fail-fast behavior.
  std::size_t shard_retries = 0;
  /// --fault SITE:ACTION[@TRIGGER] entries (repeatable), applied as the
  /// process fault table before the run -- the CLI twin of $PG_FAULTS
  /// (flags win; see src/robust/faultpoint.h for the grammar).
  std::vector<std::string> faults;
  /// --merge a.json b.json ...: stitch shard partials into the canonical
  /// merged result (the trailing non-flag arguments after --merge).
  bool merge = false;
  std::vector<std::string> merge_inputs;

  // ---- --compare mode (mutually exclusive with running a scenario) ----
  bool compare = false;
  std::string compare_baseline;   // --compare <baseline.json> <candidate.json>
  std::string compare_candidate;
  double tolerance = 0.0;         // --tolerance t (abs OR rel per value)
  bool update_baseline = false;   // --update-baseline: accept the drift
  bool with_timing = false;       // --with-timing: compare _ms/_seconds too
  /// --with-telemetry: also compare telemetry* tables and obs.* metric
  /// keys (skipped by default -- their values are scheduling-dependent).
  bool with_telemetry = false;
};

/// Exit code for `--merge` when the inputs are valid, mutually
/// consistent partials of one sweep but some shards are absent. Paired
/// with the machine-readable `missing_shards=i,j,...` stdout line so a
/// retry wrapper can relaunch exactly those shards; every other merge
/// failure stays generic exit 1.
inline constexpr int kExitMissingShards = 4;

/// Parse argv (excluding argv[0]). Throws std::invalid_argument on
/// unknown flags, missing flag values, or malformed --set syntax.
[[nodiscard]] CliOptions parse_cli(const std::vector<std::string>& args);

[[nodiscard]] std::string cli_usage();

/// Execute the parsed command; human/machine output goes to `out`,
/// errors to `err`. Returns the process exit code.
int run_cli(const CliOptions& options, std::ostream& out, std::ostream& err);

}  // namespace pg::scenario
