#include "scenario/diff.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <ostream>
#include <utility>

#include "util/error.h"
#include "util/table.h"

namespace pg::scenario {

namespace {

// ------------------------------------------------------------ JSON reader

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    PG_CHECK(pos_ == text_.size(),
             "JSON: trailing garbage at byte " + std::to_string(pos_));
    return value;
  }

 private:
  void fail(const std::string& what) const {
    PG_CHECK(false, "JSON: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.text = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.kind = JsonValue::Kind::kNull;
        return v;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The sink only emits \u00XX control escapes; encode as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double parsed = std::strtod(start, &end);
    if (end == start) fail("expected a value");
    pos_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------------- diff machinery

bool timing_name(const std::string& name) {
  const auto ends_with = [&name](const char* suffix) {
    const std::string s(suffix);
    return name.size() >= s.size() &&
           name.compare(name.size() - s.size(), s.size(), s) == 0;
  };
  // "speedup" columns are ratios of wall-clock times -- just as
  // nondeterministic as the timings themselves.
  return ends_with("_ms") || ends_with("_seconds") ||
         name.find("speedup") != std::string::npos;
}

/// Telemetry tables (`telemetry`, `telemetry_counters`, `telemetry_timers`)
/// hold scheduling-dependent observability data -- excluded from gating
/// unless --with-telemetry.
bool telemetry_table_name(const std::string& name) {
  return name.rfind("telemetry", 0) == 0;
}

/// Registry metric keys are namespaced `obs.`; their values (steal
/// counts, cache traffic, span timings) vary run to run by design.
bool telemetry_metric_name(const std::string& name) {
  return name.rfind("obs.", 0) == 0;
}

std::string render(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kString: return v.text;
    case JsonValue::Kind::kNumber:
      if (std::isnan(v.number)) return "nan";
      if (std::isinf(v.number)) return v.number > 0 ? "inf" : "-inf";
      return util::format_double_roundtrip(v.number);
    case JsonValue::Kind::kArray: return "<array>";
    case JsonValue::Kind::kObject: return "<object>";
  }
  return "<?>";
}

class Differ {
 public:
  Differ(const DiffOptions& options, ResultDiff& diff)
      : options_(options), diff_(diff) {}

  /// Top-level artifact: a single run (has "scenario") or name -> run.
  /// Either side may be a pg_serve response ENVELOPE
  /// ({status, request_id, result: <run>}): an ok envelope is unwrapped
  /// to its result, so a served artifact diffs directly against a
  /// pg_run baseline; an error envelope has no result to compare and is
  /// rejected with its own message.
  void compare_artifact(const JsonValue& a_raw, const JsonValue& b_raw) {
    const JsonValue& a = unwrap_envelope(a_raw, "baseline");
    const JsonValue& b = unwrap_envelope(b_raw, "candidate");
    PG_CHECK(a.kind == JsonValue::Kind::kObject &&
                 b.kind == JsonValue::Kind::kObject,
             "--compare inputs must be JSON objects written by the JSON "
             "result sink");
    // Shard partials (pg_run --shard i/N) unwrap like serve envelopes:
    // the shard identity must agree, then the covered "result" bodies
    // compare as ordinary runs. A partial against a full artifact is a
    // refusal with the fix spelled out, not a wall of missing-row noise.
    const JsonValue* a_partial = a.find("partial");
    const JsonValue* b_partial = b.find("partial");
    if (a_partial != nullptr || b_partial != nullptr) {
      PG_CHECK(a_partial != nullptr && b_partial != nullptr &&
                   a_partial->kind == JsonValue::Kind::kObject &&
                   b_partial->kind == JsonValue::Kind::kObject,
               "--compare inputs disagree: one is a shard partial, the "
               "other is not (stitch partials with pg_run --merge first)");
      for (const char* key : {"shard", "total_shards", "grid_size"}) {
        const JsonValue* x = a_partial->find(key);
        const JsonValue* y = b_partial->find(key);
        if (x != nullptr && y != nullptr) {
          compare_value(std::string("partial/") + key, *x, *y);
        }
      }
      const JsonValue* a_covered = a_partial->find("covered");
      const JsonValue* b_covered = b_partial->find("covered");
      if (a_covered != nullptr && b_covered != nullptr &&
          a_covered->kind == JsonValue::Kind::kArray &&
          b_covered->kind == JsonValue::Kind::kArray) {
        if (a_covered->items.size() != b_covered->items.size()) {
          add(DiffKind::kShape, "partial/covered",
              std::to_string(a_covered->items.size()) + " indices",
              std::to_string(b_covered->items.size()) + " indices");
        } else {
          for (std::size_t i = 0; i < a_covered->items.size(); ++i) {
            compare_value("partial/covered[" + std::to_string(i) + "]",
                          a_covered->items[i], b_covered->items[i]);
          }
        }
      }
      const JsonValue* a_run = a.find("result");
      const JsonValue* b_run = b.find("result");
      PG_CHECK(a_run != nullptr && b_run != nullptr,
               "--compare: shard partial has no \"result\" member");
      compare_artifact(*a_run, *b_run);
      return;
    }
    const bool a_single = a.find("scenario") != nullptr;
    const bool b_single = b.find("scenario") != nullptr;
    if (a_single || b_single) {
      PG_CHECK(a_single && b_single,
               "--compare inputs disagree: one is a single run, the other "
               "a merged artifact");
      const JsonValue* name = a.find("scenario");
      compare_run(name->kind == JsonValue::Kind::kString ? name->text : "run",
                  a, b);
      return;
    }
    // Merged artifact: align runs by member name.
    for (const auto& [name, run] : a.members) {
      const JsonValue* other = b.find(name);
      if (other == nullptr) {
        add(DiffKind::kMissing, name, "<run>", "");
        continue;
      }
      compare_run(name, run, *other);
    }
    for (const auto& [name, run] : b.members) {
      (void)run;
      if (a.find(name) == nullptr) add(DiffKind::kExtra, name, "", "<run>");
    }
  }

 private:
  static const JsonValue& unwrap_envelope(const JsonValue& v,
                                          const char* side) {
    if (v.kind != JsonValue::Kind::kObject) return v;
    const JsonValue* status = v.find("status");
    if (status == nullptr || v.find("request_id") == nullptr) return v;
    PG_CHECK(status->kind == JsonValue::Kind::kString && status->text == "ok",
             std::string("--compare ") + side +
                 " is an ERROR response envelope (status=" +
                 (status->kind == JsonValue::Kind::kString ? status->text
                                                           : "<non-string>") +
                 "); nothing to compare");
    const JsonValue* result = v.find("result");
    PG_CHECK(result != nullptr, std::string("--compare ") + side +
                                    " envelope has no \"result\" member");
    return *result;
  }

  void add(DiffKind kind, std::string location, std::string baseline,
           std::string candidate) {
    diff_.entries.push_back(
        {kind, std::move(location), std::move(baseline), std::move(candidate),
         false, 0.0, 0.0});
  }

  /// Leaf comparison: numbers under tolerance, everything else exact.
  void compare_value(const std::string& location, const JsonValue& a,
                     const JsonValue& b) {
    ++diff_.values_compared;
    if (a.kind == JsonValue::Kind::kNumber &&
        b.kind == JsonValue::Kind::kNumber) {
      const double x = a.number;
      const double y = b.number;
      const bool both_nan = std::isnan(x) && std::isnan(y);
      if (both_nan || x == y) {
        ++diff_.values_matched;
        return;
      }
      const double abs_delta = std::abs(x - y);
      const double rel_delta =
          abs_delta / std::max(std::abs(x), std::abs(y));
      if (!std::isnan(abs_delta) && (abs_delta <= options_.tolerance ||
                                     rel_delta <= options_.tolerance)) {
        ++diff_.values_matched;
        return;
      }
      diff_.entries.push_back({DiffKind::kDrift, location, render(a),
                               render(b), true, abs_delta, rel_delta});
      return;
    }
    if (a.kind == b.kind && render(a) == render(b)) {
      ++diff_.values_matched;
      return;
    }
    add(DiffKind::kDrift, location, render(a), render(b));
  }

  void compare_run(const std::string& run, const JsonValue& a,
                   const JsonValue& b) {
    // Stable identity fields; description/threads/elapsed/cache traffic
    // are presentation or wall-clock state, not results.
    for (const char* key : {"scenario", "kind"}) {
      const JsonValue* x = a.find(key);
      const JsonValue* y = b.find(key);
      if (x != nullptr && y != nullptr) {
        compare_value(run + "/" + key, *x, *y);
      }
    }

    // Sweep axis columns (from the baseline) drive row alignment below.
    std::vector<std::string> axes;
    if (const JsonValue* ax = a.find("sweep_axes");
        ax != nullptr && ax->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& item : ax->items) {
        if (item.kind == JsonValue::Kind::kString) axes.push_back(item.text);
      }
    }

    compare_metrics(run, a.find("metrics"), b.find("metrics"));
    compare_tables(run, axes, a.find("tables"), b.find("tables"));
  }

  void compare_metrics(const std::string& run, const JsonValue* a,
                       const JsonValue* b) {
    if (a == nullptr || b == nullptr ||
        a->kind != JsonValue::Kind::kObject ||
        b->kind != JsonValue::Kind::kObject) {
      if (a != nullptr || b != nullptr) {
        add(DiffKind::kShape, run + "/metrics", a ? render(*a) : "",
            b ? render(*b) : "");
      }
      return;
    }
    for (const auto& [key, value] : a->members) {
      if (options_.ignore_timing && timing_name(key)) continue;
      if (options_.ignore_telemetry && telemetry_metric_name(key)) continue;
      const JsonValue* other = b->find(key);
      if (other == nullptr) {
        add(DiffKind::kMissing, run + "/metrics/" + key, render(value), "");
        continue;
      }
      compare_value(run + "/metrics/" + key, value, *other);
    }
    for (const auto& [key, value] : b->members) {
      if (options_.ignore_timing && timing_name(key)) continue;
      if (options_.ignore_telemetry && telemetry_metric_name(key)) continue;
      if (a->find(key) == nullptr) {
        add(DiffKind::kExtra, run + "/metrics/" + key, "", render(value));
      }
    }
  }

  /// Tables align by (name, occurrence-within-name), so duplicate names
  /// (a swept `kind` axis) still pair deterministically.
  void compare_tables(const std::string& run,
                      const std::vector<std::string>& axes, const JsonValue* a,
                      const JsonValue* b) {
    if (a == nullptr || b == nullptr || a->kind != JsonValue::Kind::kArray ||
        b->kind != JsonValue::Kind::kArray) {
      if (a != nullptr || b != nullptr) {
        add(DiffKind::kShape, run + "/tables", a ? render(*a) : "",
            b ? render(*b) : "");
      }
      return;
    }
    const auto table_key = [](const JsonValue& table,
                              std::map<std::string, std::size_t>& seen) {
      const JsonValue* name = table.find("name");
      std::string key =
          name != nullptr && name->kind == JsonValue::Kind::kString
              ? name->text
              : "<unnamed>";
      const std::size_t occurrence = seen[key]++;
      if (occurrence > 0) {
        key += '#';
        key += std::to_string(occurrence);
      }
      return key;
    };
    // Telemetry tables are dropped from BOTH sides before alignment (not
    // merely value-skipped): a metrics=true candidate against a plain
    // baseline must not report kExtra/kMissing for them.
    const auto skip_table = [this](const JsonValue& table) {
      if (!options_.ignore_telemetry) return false;
      const JsonValue* name = table.find("name");
      return name != nullptr && name->kind == JsonValue::Kind::kString &&
             telemetry_table_name(name->text);
    };
    std::map<std::string, const JsonValue*> b_tables;
    {
      std::map<std::string, std::size_t> seen;
      for (const JsonValue& table : b->items) {
        if (skip_table(table)) continue;
        b_tables.emplace(table_key(table, seen), &table);
      }
    }
    std::map<std::string, std::size_t> seen;
    for (const JsonValue& table : a->items) {
      if (skip_table(table)) continue;
      const std::string key = table_key(table, seen);
      const auto it = b_tables.find(key);
      if (it == b_tables.end()) {
        add(DiffKind::kMissing, run + "/" + key, "<table>", "");
        continue;
      }
      compare_table(run + "/" + key, axes, table, *it->second);
      b_tables.erase(it);
    }
    for (const auto& [key, table] : b_tables) {
      (void)table;
      add(DiffKind::kExtra, run + "/" + key, "", "<table>");
    }
  }

  /// A row's identity: first cell + sweep-axis cells + string cells.
  static std::string row_key(const std::vector<bool>& key_column,
                             const JsonValue& row) {
    std::string key;
    for (std::size_t c = 0; c < row.items.size(); ++c) {
      const JsonValue& cell = row.items[c];
      const bool keyed =
          c == 0 || (c < key_column.size() && key_column[c]) ||
          cell.kind == JsonValue::Kind::kString;
      if (!keyed) continue;
      key += render(cell);
      key += '\x1f';
    }
    return key;
  }

  void compare_table(const std::string& location,
                     const std::vector<std::string>& axes,
                     const JsonValue& a, const JsonValue& b) {
    // Columns must agree exactly; otherwise cell comparison is undefined.
    std::vector<std::string> columns;
    {
      const JsonValue* ca = a.find("columns");
      const JsonValue* cb = b.find("columns");
      std::string ra = ca ? "" : "<none>";
      std::string rb = cb ? "" : "<none>";
      if (ca != nullptr) {
        for (const JsonValue& c : ca->items) {
          columns.push_back(c.text);
          ra += (ra.empty() ? "" : ",") + c.text;
        }
      }
      if (cb != nullptr) {
        for (const JsonValue& c : cb->items) {
          rb += (rb.empty() ? "" : ",") + c.text;
        }
      }
      if (ra != rb) {
        add(DiffKind::kShape, location + "/columns", ra, rb);
        return;
      }
    }
    std::vector<bool> key_column(columns.size(), false);
    std::size_t metric_column = columns.size();
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (std::find(axes.begin(), axes.end(), columns[c]) != axes.end()) {
        key_column[c] = true;
      }
      if (columns[c] == "metric") metric_column = c;
    }

    const JsonValue* ra = a.find("rows");
    const JsonValue* rb = b.find("rows");
    if (ra == nullptr || rb == nullptr) {
      if (ra != rb) add(DiffKind::kShape, location + "/rows", "", "");
      return;
    }
    // Key every row; duplicates get an occurrence suffix, which also
    // makes an all-numeric, identical-key table align by row order.
    const auto keyed_rows = [&](const JsonValue& rows) {
      std::vector<std::pair<std::string, const JsonValue*>> out;
      std::map<std::string, std::size_t> seen;
      for (const JsonValue& row : rows.items) {
        std::string key = row_key(key_column, row);
        const std::size_t occurrence = seen[key]++;
        if (occurrence > 0) {
          key += '#';
          key += std::to_string(occurrence);
        }
        out.emplace_back(std::move(key), &row);
      }
      return out;
    };
    const auto rows_a = keyed_rows(*ra);
    auto rows_b = keyed_rows(*rb);
    std::map<std::string, const JsonValue*> b_by_key;
    for (auto& [key, row] : rows_b) b_by_key.emplace(key, row);

    const auto pretty = [](const std::string& key) {
      std::string label;
      for (const char c : key) {
        if (c == '\x1f') label += '|';
        else label += c;
      }
      if (!label.empty() && label.back() == '|') label.pop_back();
      return label;
    };

    for (const auto& [key, row] : rows_a) {
      const auto it = b_by_key.find(key);
      if (it == b_by_key.end()) {
        add(DiffKind::kMissing, location + "[" + pretty(key) + "]", "<row>",
            "");
        continue;
      }
      const JsonValue& other = *it->second;
      b_by_key.erase(it);
      if (row->items.size() != other.items.size()) {
        add(DiffKind::kShape, location + "[" + pretty(key) + "]",
            std::to_string(row->items.size()) + " cells",
            std::to_string(other.items.size()) + " cells");
        continue;
      }
      // A sweep_metrics row whose metric name is a timing name is
      // wall-clock data in row form; skip it like a timing column. Same
      // for rows naming an obs.* registry metric.
      if (metric_column < row->items.size() &&
          row->items[metric_column].kind == JsonValue::Kind::kString) {
        const std::string& metric = row->items[metric_column].text;
        if (options_.ignore_timing && timing_name(metric)) continue;
        if (options_.ignore_telemetry && telemetry_metric_name(metric)) {
          continue;
        }
      }
      for (std::size_t c = 0; c < row->items.size(); ++c) {
        if (options_.ignore_timing && c < columns.size() &&
            timing_name(columns[c])) {
          continue;
        }
        const std::string cell_location =
            location + "[" + pretty(key) + "]/" +
            (c < columns.size() ? columns[c] : std::to_string(c));
        compare_value(cell_location, row->items[c], other.items[c]);
      }
    }
    for (const auto& [key, row] : b_by_key) {
      (void)row;
      add(DiffKind::kExtra, location + "[" + pretty(key) + "]", "", "<row>");
    }
  }

  const DiffOptions& options_;
  ResultDiff& diff_;
};

const char* kind_label(DiffKind kind) {
  switch (kind) {
    case DiffKind::kDrift: return "DRIFT";
    case DiffKind::kMissing: return "MISSING";
    case DiffKind::kExtra: return "EXTRA";
    case DiffKind::kShape: return "SHAPE";
  }
  return "?";
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue parse_json(const std::string& text) {
  return JsonReader(text).parse_document();
}

std::size_t ResultDiff::count(DiffKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(),
                    [kind](const DiffEntry& e) { return e.kind == kind; }));
}

ResultDiff diff_results(const JsonValue& baseline, const JsonValue& candidate,
                        const DiffOptions& options) {
  ResultDiff diff;
  Differ(options, diff).compare_artifact(baseline, candidate);
  return diff;
}

void write_diff_report(const ResultDiff& diff, const DiffOptions& options,
                       std::ostream& out) {
  if (diff.clean()) {
    out << "results match: " << diff.values_matched << "/"
        << diff.values_compared << " compared values within tolerance "
        << util::format_double_roundtrip(options.tolerance) << "\n";
    return;
  }
  for (const DiffEntry& e : diff.entries) {
    out << kind_label(e.kind) << " " << e.location;
    if (e.kind == DiffKind::kDrift && e.numeric) {
      out << ": " << e.baseline << " -> " << e.candidate
          << " (abs " << util::format_double_roundtrip(e.abs_delta) << ", rel "
          << util::format_double_roundtrip(e.rel_delta) << ")";
    } else if (e.kind == DiffKind::kDrift || e.kind == DiffKind::kShape) {
      out << ": '" << e.baseline << "' -> '" << e.candidate << "'";
    } else if (e.kind == DiffKind::kMissing) {
      out << ": present only in baseline";
    } else {
      out << ": present only in candidate";
    }
    out << "\n";
  }
  out << diff.count(DiffKind::kDrift) << " drifted, "
      << diff.count(DiffKind::kMissing) << " missing, "
      << diff.count(DiffKind::kExtra) << " extra, "
      << diff.count(DiffKind::kShape) << " shape mismatch(es); "
      << diff.values_matched << "/" << diff.values_compared
      << " compared values within tolerance "
      << util::format_double_roundtrip(options.tolerance) << "\n";
}

}  // namespace pg::scenario
