// Structured result differ: the engine behind `pg_run --compare`.
//
// Two JSON artifacts written by the JSON ResultSink (a single run, or
// the merged `{name: run, ...}` object the CI smoke matrix produces) are
// aligned structurally -- run by scenario name, metric by key, table by
// (name, occurrence), row by its coordinate key -- and every aligned
// value is compared under a numeric tolerance. The diff distinguishes
// value DRIFT (both sides have the value, numbers differ past
// tolerance) from MISSING/EXTRA rows, metrics, tables, or runs (the
// shape changed), so a regression report says *what moved* rather than
// "bytes differ".
//
// Row alignment: a row's identity key is its first cell plus every cell
// in a sweep-axis column (the artifact's `sweep_axes` list) plus every
// string-valued cell -- i.e. the coordinates that name the row, not the
// measurements in it. Duplicate keys fall back to occurrence order, so
// two runs of the same spec always align row-for-row.
//
// Non-deterministic fields are excluded by default: wall-clock columns
// and metrics (names ending `_ms`/`_seconds`, or containing `speedup` --
// a ratio of wall-clock times), `elapsed_seconds`, executor `threads`,
// the `cache` traffic block, and rows of the merged `sweep_metrics`
// table whose metric name is itself a timing name. What
// remains is exactly the bit-stable surface the engine guarantees, so
// `--compare` at tolerance 0 is a true regression check.
//
// The JsonValue loader is a minimal strict JSON reader (objects, arrays,
// strings, numbers, literals) sufficient for the sink's own output; it
// throws std::invalid_argument with a byte offset on malformed input.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pg::scenario {

/// A parsed JSON document node.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;                 // kString
  std::vector<JsonValue> items;     // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject, ordered

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

/// Strict parse of a full JSON document. Throws std::invalid_argument
/// (with the byte offset) on malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(const std::string& text);

struct DiffOptions {
  /// A numeric pair matches when |a-b| <= tolerance OR the relative
  /// delta |a-b| / max(|a|,|b|) <= tolerance. 0 demands bit-equality.
  double tolerance = 0.0;
  /// Skip wall-clock values (see file comment). On by default; turning
  /// it off compares timings too (useful for perf triage, never for
  /// regression gating).
  bool ignore_timing = true;
  /// Skip telemetry output: tables whose name starts with "telemetry"
  /// (the metrics-registry dumps and solver convergence samples), metric
  /// keys starting with "obs.", and merged sweep_metrics rows naming
  /// such a metric. Telemetry values are scheduling-dependent (cache
  /// hits, steal counts, span timings), so they are excluded from
  /// regression gating by default; `--with-telemetry` compares them too.
  bool ignore_telemetry = true;
};

enum class DiffKind {
  kDrift,    // both sides present, value differs past tolerance
  kMissing,  // in baseline, absent from candidate
  kExtra,    // in candidate, absent from baseline
  kShape,    // structure mismatch (types, columns) -- contents not compared
};

struct DiffEntry {
  DiffKind kind = DiffKind::kDrift;
  std::string location;   // e.g. "fig1/pure_sweep[0.1]/accuracy_attacked"
  std::string baseline;   // rendered value ("" for kExtra)
  std::string candidate;  // rendered value ("" for kMissing)
  bool numeric = false;
  double abs_delta = 0.0;  // numeric drifts only
  double rel_delta = 0.0;
};

struct ResultDiff {
  std::vector<DiffEntry> entries;      // problems only, in document order
  std::size_t values_compared = 0;     // aligned leaf values examined
  std::size_t values_matched = 0;      // of those, within tolerance

  [[nodiscard]] bool clean() const noexcept { return entries.empty(); }
  [[nodiscard]] std::size_t count(DiffKind kind) const;
};

/// Compare two JSON result artifacts (each a single run or a merged
/// name->run object). Throws std::invalid_argument when an input is not
/// one of those two shapes.
[[nodiscard]] ResultDiff diff_results(const JsonValue& baseline,
                                      const JsonValue& candidate,
                                      const DiffOptions& options = {});

/// Human-readable report: per-entry lines with abs/rel deltas, then a
/// summary line. Prints "results match" when the diff is clean.
void write_diff_report(const ResultDiff& diff, const DiffOptions& options,
                       std::ostream& out);

}  // namespace pg::scenario
