#include "scenario/engine.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "attack/boundary_attack.h"
#include "attack/label_flip.h"
#include "attack/noise_attack.h"
#include "core/equilibrium.h"
#include "core/game_model.h"
#include "core/ne_properties.h"
#include "data/dataset.h"
#include "defense/centroid.h"
#include "defense/distance_filter.h"
#include "defense/knn_filter.h"
#include "defense/pca_filter.h"
#include "defense/pipeline.h"
#include "defense/roni.h"
#include "game/best_response.h"
#include "game/solvers.h"
#include "la/simd.h"
#include "la/vector_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/atomic_file.h"
#include "runtime/executor.h"
#include "runtime/payoff_disk_cache.h"
#include "runtime/payoff_evaluator.h"
#include "runtime/rng_stream.h"
#include "scenario/cache_bundle.h"
#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "sim/curve_fit.h"
#include "sim/experiment.h"
#include "sim/mixed_eval.h"
#include "sim/pure_sweep.h"
#include "sim/support_sweep.h"
#include "sim/transfer.h"
#include "serve/protocol.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pg::scenario {

namespace {

sim::ExperimentConfig experiment_config(const ScenarioSpec& spec) {
  sim::ExperimentConfig cfg;
  cfg.seed = spec.seed;
  cfg.corpus.n_instances = spec.instances;
  cfg.corpus.class_separation = spec.class_separation;
  cfg.svm.epochs = spec.epochs;
  cfg.train_fraction = spec.train_fraction;
  cfg.poison_fraction = spec.poison_fraction;
  cfg.try_real_corpus = spec.real_corpus;
  return cfg;
}

/// Resolve the spec's retrain-kernel request. nullopt = the bit-identical
/// reference default. kernel=simd resolves the tier (spec `simd=` over
/// $PG_SIMD over cpuid; an unsatisfiable request throws a one-line error,
/// never a silent fallback) and records it on the obs.simd.tier gauge
/// (encoded tier+1, so 0 distinguishes "never requested").
std::optional<sim::RetrainKernel> resolve_retrain_kernel(
    const ScenarioSpec& spec) {
  if (spec.kernel.empty() || spec.kernel == "reference") {
    PG_CHECK(spec.simd.empty(),
             "simd= tier override requires kernel=simd (the reference "
             "kernel has no tiers)");
    return std::nullopt;
  }
  PG_CHECK(spec.kernel == "simd", "unknown kernel '" + spec.kernel +
                                      "' (expected reference or simd)");
  sim::RetrainKernel kernel;
  kernel.tier = la::simd::resolve_tier(spec.simd);
  obs::gauge("obs.simd.tier")
      .record(static_cast<std::uint64_t>(kernel.tier) + 1);
  return kernel;
}

void add_context_metrics(const sim::ExperimentContext& ctx,
                         ScenarioResult& result) {
  result.add_metric("corpus_source", ctx.corpus_source);
  result.add_metric("instances", ctx.train.size() + ctx.test.size());
  result.add_metric("train_size", ctx.train.size());
  result.add_metric("test_size", ctx.test.size());
  result.add_metric("poison_budget", ctx.poison_budget);
  result.add_metric("clean_accuracy", ctx.clean_accuracy);
}

ResultTable sweep_table(const sim::PureSweepResult& sweep) {
  ResultTable table{"pure_sweep",
                    {"removal_fraction", "accuracy_no_attack",
                     "accuracy_attacked", "poison_survived_fraction"},
                    {}};
  for (const auto& pt : sweep.points) {
    table.add_row({pt.removal_fraction, pt.accuracy_no_attack,
                   pt.accuracy_attacked, pt.poison_survived_fraction});
  }
  return table;
}

// ------------------------------------------------------------- pure_sweep
// Legacy bench_fig1: the Fig.-1 sweep plus fitted payoff curves.
void run_pure_sweep_scenario(const ScenarioSpec& spec, runtime::Executor* exec,
                             CacheBundle& bundle, ScenarioResult& result) {
  const sim::ExperimentContext ctx =
      sim::prepare_experiment(experiment_config(spec));
  add_context_metrics(ctx, result);

  const auto kernel = resolve_retrain_kernel(spec);
  sim::PureSweepStats sweep_stats;
  const auto grid = sim::sweep_grid(spec.sweep_max, spec.sweep_steps);
  const auto sweep = sim::run_pure_sweep(
      ctx, grid, spec.replications, exec,
      bundle.shard(sim::context_fingerprint(ctx)), &sweep_stats,
      kernel ? &*kernel : nullptr);
  bundle.add_sweep_stats(sweep_stats);
  result.tables.push_back(sweep_table(sweep));

  const auto best = sim::best_pure_defense(sweep);
  const double majority = std::max(ctx.test.positive_fraction(),
                                   1.0 - ctx.test.positive_fraction());
  result.add_metric("majority_floor", majority);
  result.add_metric("attacked_accuracy_no_filter",
                    sweep.points.front().accuracy_attacked);
  result.add_metric("best_pure_fraction", best.best_fraction);
  result.add_metric("best_pure_accuracy", best.best_accuracy);

  const auto curves = sim::fit_payoff_curves(sweep);
  ResultTable fitted{"payoff_curves", {"p", "damage_E", "cost_Gamma"}, {}};
  for (const auto& pt : sweep.points) {
    fitted.add_row({pt.removal_fraction, curves.damage(pt.removal_fraction),
                    curves.cost(pt.removal_fraction)});
  }
  result.tables.push_back(std::move(fitted));
}

// ------------------------------------------------------------ mixed_table
// Legacy bench_table1: Algorithm 1 at n in [support_min, support_max],
// empirical mixed evaluation, and the mixed-vs-pure comparison claim.
void run_mixed_table_scenario(const ScenarioSpec& spec, runtime::Executor* exec,
                              CacheBundle& bundle, ScenarioResult& result) {
  PG_CHECK(spec.support_min >= 1 && spec.support_min <= spec.support_max,
           "mixed_table requires 1 <= support_min <= support_max");
  const sim::ExperimentContext ctx =
      sim::prepare_experiment(experiment_config(spec));
  add_context_metrics(ctx, result);

  runtime::PayoffCache* cache = bundle.shard(sim::context_fingerprint(ctx));
  const runtime::PayoffEvaluator evaluator(runtime::executor_or_serial(exec),
                                           cache);

  const auto kernel = resolve_retrain_kernel(spec);
  const sim::RetrainKernel* kptr = kernel ? &*kernel : nullptr;
  sim::PureSweepStats sweep_stats;
  const auto grid = sim::sweep_grid(spec.sweep_max, spec.sweep_steps);
  const auto sweep = sim::run_pure_sweep(ctx, grid, spec.replications, exec,
                                         cache, &sweep_stats, kptr);
  bundle.add_sweep_stats(sweep_stats);
  const auto curves = sim::fit_payoff_curves(sweep);
  const core::PoisoningGame game(curves, ctx.poison_budget);
  const auto pure = sim::best_pure_defense(sweep);

  ResultTable strategies{"mixed_strategies",
                         {"n", "removal_fraction", "probability"},
                         {}};
  ResultTable summary{"summary",
                      {"n", "predicted_loss", "converged", "iterations",
                       "properly_mixed", "indifference_spread",
                       "adversarial_accuracy", "no_attack_accuracy"},
                      {}};
  std::optional<core::DefenseSolution> last_solution;
  for (std::size_t n = spec.support_min; n <= spec.support_max; ++n) {
    core::Algorithm1Config acfg;
    acfg.support_size = n;
    const auto sol = core::compute_optimal_defense(game, acfg, exec);
    const auto indiff = core::check_indifference(game, sol.strategy, 1e-3);

    sim::MixedEvalConfig ecfg;
    ecfg.draws = spec.draws;
    ecfg.kernel = kptr;
    const auto eval =
        sim::evaluate_mixed_defense(ctx, sol.strategy, ecfg, evaluator);

    for (std::size_t i = 0; i < sol.strategy.support_size(); ++i) {
      strategies.add_row({n, sol.strategy.removal_fractions()[i],
                          sol.strategy.probabilities()[i]});
    }
    summary.add_row({n, sol.defender_loss,
                     static_cast<std::size_t>(sol.converged ? 1 : 0),
                     sol.iterations,
                     static_cast<std::size_t>(indiff.properly_mixed ? 1 : 0),
                     indiff.relative_spread, eval.adversarial_accuracy,
                     eval.no_attack_accuracy});
    last_solution = sol;
  }
  result.tables.push_back(std::move(strategies));
  result.tables.push_back(std::move(summary));

  // The paper's comparison claim: the (largest-n) mixed strategy's
  // predicted loss vs the best pure strategy's.
  double best_pure_predicted = 1e300;
  double best_theta = 0.0;
  for (double theta = 0.0; theta <= spec.sweep_max; theta += 0.0025) {
    const double loss =
        static_cast<double>(ctx.poison_budget) * curves.damage(theta) +
        curves.cost(theta);
    if (loss < best_pure_predicted) {
      best_pure_predicted = loss;
      best_theta = theta;
    }
  }
  result.add_metric("best_pure_theta", best_theta);
  result.add_metric("best_pure_predicted_loss", best_pure_predicted);
  result.add_metric("best_pure_measured_accuracy", pure.best_accuracy);
  result.add_metric("mixed_strategy", last_solution->strategy.describe());
  result.add_metric("mixed_predicted_loss", last_solution->defender_loss);
  result.add_metric(
      "mixed_beats_pure",
      static_cast<std::size_t>(
          last_solution->defender_loss < best_pure_predicted ? 1 : 0));

  bundle.absorb(evaluator);
}

// --------------------------------------------------------------- pure_ne
// Legacy bench_prop1: duality gap / saddle scan / best-response cycling
// on measured and analytic curve families, plus a control game.
void run_pure_ne_scenario(const ScenarioSpec& spec, runtime::Executor* exec,
                          CacheBundle& bundle, ScenarioResult& result) {
  ResultTable games{"games",
                    {"game", "maximin", "minimax", "gap", "saddle_points",
                     "br_moves", "br_steps"},
                    {}};
  const auto report = [&games](const std::string& name,
                               const core::PoisoningGame& game) {
    const auto rep = core::analyze_pure_equilibria(game, 96);
    const auto dynamics = core::best_response_dynamics(game, 0.05, 24);
    std::size_t moves = 0;
    for (std::size_t i = 1; i < dynamics.size(); ++i) {
      if (std::abs(dynamics[i].defender_theta -
                   dynamics[i - 1].defender_theta) > 1e-9) {
        ++moves;
      }
    }
    games.add_row({name, rep.maximin, rep.minimax, rep.gap, rep.saddle_points,
                   moves, dynamics.size() - 1});
  };

  const sim::ExperimentContext ctx =
      sim::prepare_experiment(experiment_config(spec));
  add_context_metrics(ctx, result);
  const auto kernel = resolve_retrain_kernel(spec);
  sim::PureSweepStats sweep_stats;
  const auto sweep = sim::run_pure_sweep(
      ctx, sim::sweep_grid(spec.sweep_max, spec.sweep_steps),
      spec.replications, exec, bundle.shard(sim::context_fingerprint(ctx)),
      &sweep_stats, kernel ? &*kernel : nullptr);
  bundle.add_sweep_stats(sweep_stats);
  report("measured (Spambase-like sweep)",
         core::PoisoningGame(sim::fit_payoff_curves(sweep),
                             ctx.poison_budget));

  report("analytic E=(1-p)^5, G=p^1.4",
         core::PoisoningGame(
             core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4), 100));
  report("analytic E=(1-p)^3, G=p^1.0",
         core::PoisoningGame(
             core::PayoffCurves::analytic(0.001, 3.0, 0.02, 1.0), 100));
  report("analytic E=(1-p)^8, G=p^2.0",
         core::PoisoningGame(
             core::PayoffCurves::analytic(0.005, 8.0, 0.10, 2.0), 100));
  result.tables.push_back(std::move(games));

  // Control: constant damage, zero cost -- a game WITH saddle points.
  const core::PayoffCurves flat(
      util::PiecewiseLinear({0.0, 1.0}, {0.001, 0.001}),
      util::PiecewiseLinear({0.0, 1.0}, {0.0, 0.0}));
  const auto control =
      core::analyze_pure_equilibria(core::PoisoningGame(flat, 100), 96);
  result.add_metric("control_gap", control.gap);
  result.add_metric("control_saddle_points", control.saddle_points);
}

// ---------------------------------------------------------- support_sweep
// Legacy bench_nsweep: the section-5 plateau claim.
void run_support_sweep_scenario(const ScenarioSpec& spec,
                                runtime::Executor* exec, CacheBundle& bundle,
                                ScenarioResult& result) {
  const sim::ExperimentContext ctx =
      sim::prepare_experiment(experiment_config(spec));
  add_context_metrics(ctx, result);

  runtime::PayoffCache* cache = bundle.shard(sim::context_fingerprint(ctx));
  const runtime::PayoffEvaluator evaluator(runtime::executor_or_serial(exec),
                                           cache);

  const auto kernel = resolve_retrain_kernel(spec);
  const sim::RetrainKernel* kptr = kernel ? &*kernel : nullptr;
  sim::PureSweepStats sweep_stats;
  const auto sweep = sim::run_pure_sweep(
      ctx, sim::sweep_grid(spec.sweep_max, spec.sweep_steps),
      spec.replications, exec, cache, &sweep_stats, kptr);
  bundle.add_sweep_stats(sweep_stats);
  const auto curves = sim::fit_payoff_curves(sweep);
  const core::PoisoningGame game(curves, ctx.poison_budget);

  sim::MixedEvalConfig ecfg;
  ecfg.draws = spec.draws;
  ecfg.kernel = kptr;
  const auto rows = sim::run_support_sweep(ctx, game, spec.support_max, {},
                                           ecfg, exec, &evaluator);

  ResultTable table{"support_sweep",
                    {"n", "strategy", "predicted_loss",
                     "adversarial_accuracy", "solve_ms", "solver_iterations"},
                    {}};
  for (const auto& row : rows) {
    table.add_row({row.support_size, row.strategy.describe(),
                   row.predicted_loss, row.adversarial_accuracy,
                   row.solve_seconds * 1e3, row.solve_iterations});
  }
  result.tables.push_back(std::move(table));

  if (rows.size() >= 5) {
    const double drop_2_to_3 = rows[1].predicted_loss - rows[2].predicted_loss;
    const double drop_3_to_5 = rows[2].predicted_loss - rows[4].predicted_loss;
    result.add_metric("loss_drop_2_to_3", drop_2_to_3);
    result.add_metric("loss_drop_3_to_5", drop_3_to_5);
    result.add_metric(
        "plateau_after_3",
        static_cast<std::size_t>(drop_3_to_5 <= drop_2_to_3 + 1e-9 ? 1 : 0));
  }
  bundle.absorb(evaluator);
}

// ---------------------------------------------------------------- transfer
// Legacy bench_transfer: source-solved strategy transplanted onto three
// perturbed target corpora vs the natively-solved strategy.
void run_transfer_scenario(const ScenarioSpec& spec, runtime::Executor* exec,
                           CacheBundle& bundle, ScenarioResult& result) {
  const sim::ExperimentConfig base = experiment_config(spec);
  const auto source = sim::prepare_experiment(base);
  add_context_metrics(source, result);

  struct Target {
    std::string name;
    sim::ExperimentConfig cfg;
  };
  std::vector<Target> targets;
  {
    Target t{"same generator, different seed", base};
    t.cfg.seed = base.seed + 1000;
    targets.push_back(t);
  }
  {
    Target t{"weaker class separation (0.8x)", base};
    t.cfg.seed = base.seed + 2000;
    t.cfg.corpus.class_separation = 0.8;
    targets.push_back(t);
  }
  {
    Target t{"smaller corpus (60%)", base};
    t.cfg.seed = base.seed + 3000;
    t.cfg.corpus.n_instances = base.corpus.n_instances * 3 / 5;
    targets.push_back(t);
  }

  const auto kernel = resolve_retrain_kernel(spec);
  sim::TransferConfig tcfg;
  tcfg.eval.draws = spec.draws;
  tcfg.sweep_replications = spec.replications;
  tcfg.support_size = spec.support_max;
  tcfg.kernel = kernel ? &*kernel : nullptr;
  tcfg.eval.kernel = tcfg.kernel;

  runtime::PayoffCache* source_cache =
      bundle.shard(sim::context_fingerprint(source));
  sim::PureSweepStats sweep_stats;
  ResultTable table{"targets",
                    {"target", "transferred_accuracy", "native_accuracy",
                     "transfer_gap"},
                    {}};
  for (const auto& target : targets) {
    const auto ctx = sim::prepare_experiment(target.cfg);
    runtime::PayoffCache* target_cache =
        bundle.shard(sim::context_fingerprint(ctx));
    const runtime::PayoffEvaluator evaluator(runtime::executor_or_serial(exec),
                                             target_cache);
    const auto res = sim::run_transfer_experiment(
        source, ctx, tcfg, exec, &evaluator, source_cache, target_cache,
        &sweep_stats);
    table.add_row(
        {target.name, res.transferred_accuracy, res.native_accuracy,
         res.transfer_gap});
    bundle.absorb(evaluator);
  }
  bundle.add_sweep_stats(sweep_stats);
  result.tables.push_back(std::move(table));
}

// --------------------------------------------------------- solver_ablation
// Legacy bench_solver_ablation: four routes to the mixed NE on analytic
// and measured curves.
void run_solver_ablation_scenario(const ScenarioSpec& spec,
                                  runtime::Executor* exec, CacheBundle& bundle,
                                  ScenarioResult& result) {
  const game::LpConfig lp{game::parse_lp_pricing(spec.lp_pricing)};
  // Opt-in convergence telemetry: one row per decimated gap sample of
  // each iterative solve. Attaching a recorder is read-only on the
  // solver trajectory, and the `telemetry` table name keeps the rows out
  // of golden comparison by default, so telemetry=true cannot move any
  // compared value.
  std::optional<ResultTable> convergence;
  if (spec.telemetry) {
    convergence.emplace(
        ResultTable{"telemetry", {"game", "solver", "iteration", "gap"}, {}});
  }
  const auto record_convergence = [&](const std::string& game_name,
                                      const char* solver,
                                      const game::ConvergenceTrace& trace) {
    for (const auto& sample : trace.samples) {
      convergence->add_row(
          {game_name, solver, sample.iteration, sample.gap});
    }
  };
  const auto ablate = [&](const std::string& name,
                          const core::PoisoningGame& game_model) {
    ResultTable table{name,
                      {"solver", "value", "exploitability", "time_ms"},
                      {}};
    {
      util::Stopwatch w;
      core::Algorithm1Config cfg;
      cfg.support_size = 5;
      const auto sol = core::compute_optimal_defense(game_model, cfg, exec);
      const auto ex =
          core::attacker_exploitability(game_model, sol.strategy, 4096);
      table.add_row({"algorithm1_n5", sol.defender_loss, ex.gain,
                     w.elapsed_ms()});
    }
    const auto mg =
        game_model.discretize(spec.solver_grid, spec.solver_grid, exec);
    {
      util::Stopwatch w;
      const auto eq = game::solve_lp_equilibrium(mg, exec, lp);
      table.add_row({std::string("simplex_lp_") + spec.lp_pricing, eq.value,
                     game::exploitability(mg, eq.row_strategy, eq.col_strategy),
                     w.elapsed_ms()});
    }
    {
      util::Stopwatch w;
      game::ConvergenceTrace trace;
      const auto eq = game::solve_fictitious_play(
          mg,
          {.iterations = spec.solver_iterations,
           .trace = convergence ? &trace : nullptr},
          exec);
      table.add_row({"fictitious_play", eq.value,
                     game::exploitability(mg, eq.row_strategy, eq.col_strategy),
                     w.elapsed_ms()});
      if (convergence) record_convergence(name, "fictitious_play", trace);
    }
    {
      util::Stopwatch w;
      game::ConvergenceTrace trace;
      const auto eq = game::solve_multiplicative_weights(
          mg,
          {.iterations = spec.solver_iterations,
           .trace = convergence ? &trace : nullptr},
          exec);
      table.add_row({"multiplicative_weights", eq.value,
                     game::exploitability(mg, eq.row_strategy, eq.col_strategy),
                     w.elapsed_ms()});
      if (convergence) record_convergence(name, "multiplicative_weights", trace);
    }
    result.tables.push_back(std::move(table));
  };

  ablate("analytic_curves",
         core::PoisoningGame(
             core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4), 100));

  const sim::ExperimentContext ctx =
      sim::prepare_experiment(experiment_config(spec));
  add_context_metrics(ctx, result);
  const auto kernel = resolve_retrain_kernel(spec);
  sim::PureSweepStats sweep_stats;
  const auto sweep = sim::run_pure_sweep(
      ctx, sim::sweep_grid(spec.sweep_max, spec.sweep_steps),
      spec.replications, exec, bundle.shard(sim::context_fingerprint(ctx)),
      &sweep_stats, kernel ? &*kernel : nullptr);
  bundle.add_sweep_stats(sweep_stats);
  ablate("measured_curves",
         core::PoisoningGame(sim::fit_payoff_curves(sweep),
                             ctx.poison_budget));
  if (convergence) result.tables.push_back(std::move(*convergence));
}

// -------------------------------------------------------- defense_ablation
// Legacy bench_defense_ablation: centroid drift under attack plus the
// sanitizer-family comparison across attack families.
void run_defense_ablation_scenario(const ScenarioSpec& spec,
                                   runtime::Executor* exec,
                                   CacheBundle& bundle,
                                   ScenarioResult& result) {
  const sim::ExperimentConfig cfg = experiment_config(spec);
  const sim::ExperimentContext ctx = sim::prepare_experiment(cfg);
  add_context_metrics(ctx, result);

  // ---- (1) centroid estimator drift under a 20% boundary attack -------
  attack::BoundaryAttackConfig acfg;
  acfg.placement_fraction = 0.05;
  const attack::BoundaryAttack drift_attack(acfg);
  util::Rng arng(cfg.seed);
  const auto poison = drift_attack.generate(ctx.train, ctx.poison_budget, arng);
  const auto poisoned = data::concatenate(ctx.train, poison);

  ResultTable drift{"centroid_drift",
                    {"estimator", "drift_class_pos", "drift_class_neg"},
                    {}};
  for (auto method : {defense::CentroidMethod::kMean,
                      defense::CentroidMethod::kCoordinateMedian,
                      defense::CentroidMethod::kTrimmedMean}) {
    defense::CentroidConfig cc;
    cc.method = method;
    std::vector<Value> row{defense::centroid_method_name(method)};
    for (int label : {1, -1}) {
      const auto clean_c = defense::compute_centroid(ctx.train, label, cc);
      const auto pois_c = defense::compute_centroid(poisoned, label, cc);
      row.emplace_back(la::distance(clean_c, pois_c));
    }
    drift.add_row(std::move(row));
  }
  result.tables.push_back(std::move(drift));

  // ---- (2) defense family comparison ---------------------------------
  std::vector<std::unique_ptr<attack::PoisoningAttack>> attacks;
  for (const std::string& name : split_list(spec.attacks)) {
    if (name == "boundary") {
      attacks.push_back(std::make_unique<attack::BoundaryAttack>(
          attack::BoundaryAttackConfig{.placement_fraction = 0.10}));
    } else if (name == "label_flip") {
      attacks.push_back(std::make_unique<attack::LabelFlipAttack>(
          attack::LabelFlipConfig{attack::FlipSelection::kNearCentroid}));
    } else if (name == "noise") {
      attacks.push_back(std::make_unique<attack::NoiseAttack>());
    } else {
      PG_CHECK(false, "unknown attack family: " + name);
    }
  }
  std::vector<std::unique_ptr<defense::Filter>> filters;
  for (const std::string& name : split_list(spec.defenses)) {
    if (name == "distance") {
      filters.push_back(std::make_unique<defense::DistanceFilter>(
          defense::DistanceFilterConfig{.removal_fraction = 0.15}));
    } else if (name == "knn") {
      filters.push_back(std::make_unique<defense::KnnFilter>(
          defense::KnnFilterConfig{.k = 10, .agreement_threshold = 0.5}));
    } else if (name == "pca") {
      filters.push_back(std::make_unique<defense::PcaFilter>(
          defense::PcaFilterConfig{.components = 5, .removal_fraction = 0.15}));
    } else if (name == "roni") {
      filters.push_back(
          std::make_unique<defense::RoniFilter>(defense::RoniConfig{}));
    } else {
      PG_CHECK(false, "unknown defense family: " + name);
    }
  }

  // Each (attack, defense) pipeline run memoizes its three measurements
  // under a content key covering the context plus both family names and
  // the RNG salt; like every payoff cell, a hit replays exactly what the
  // run would recompute.
  const std::uint64_t fingerprint = sim::context_fingerprint(ctx);
  runtime::PayoffCache* cache = bundle.shard(fingerprint);
  std::atomic<std::size_t> retrained{0};
  std::atomic<std::size_t> hits{0};
  const defense::Pipeline pipeline({cfg.svm});
  const util::Rng rng(cfg.seed + 1);
  constexpr std::uint64_t kAblationTag = 0x4445464142'4C0001ULL;

  const auto run_cell = [&](const attack::PoisoningAttack* atk,
                            const defense::Filter* filter,
                            const std::string& defense_name,
                            std::uint64_t salt) -> std::array<double, 3> {
    runtime::ContentKey base;
    base.mix(kAblationTag).mix(fingerprint).mix(salt);
    for (const char c : atk->name()) {
      base.mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
    for (const char c : defense_name) {
      base.mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
    const auto subkey = [&base](std::uint64_t arm) {
      runtime::ContentKey k = base;
      return k.mix(arm).digest();
    };
    std::array<double, 3> out{};
    // Single-flight on sub-key 0, published LAST (so a hit on 0 implies
    // 1 and 2 are present) -- concurrent requests sharing this shard
    // coalesce onto one pipeline run per cell.
    bool owner = false;
    if (cache != nullptr) {
      const runtime::PayoffCache::Claim claim = cache->claim(subkey(0), out[0]);
      if (claim != runtime::PayoffCache::Claim::kOwner) {
        if (cache->lookup(subkey(1), out[1]) &&
            cache->lookup(subkey(2), out[2])) {
          hits.fetch_add(1, std::memory_order_relaxed);
          return out;
        }
      } else {
        owner = true;
      }
    }
    std::array<double, 3> computed{};
    try {
      util::Rng r = rng.fork(salt);
      const auto res = pipeline.run(ctx.train, ctx.test, atk,
                                    ctx.poison_budget, filter, r);
      computed = {res.test_accuracy, res.detection.precision,
                  res.detection.recall};
    } catch (...) {
      if (owner) cache->abandon(subkey(0));
      throw;
    }
    out = computed;
    retrained.fetch_add(1, std::memory_order_relaxed);
    if (cache != nullptr) {
      cache->store(subkey(1), out[1]);
      cache->store(subkey(2), out[2]);
      if (owner) cache->publish(subkey(0), out[0]);
    }
    return out;
  };

  // The (attack x defense) pipeline cells run cell-parallel on the
  // executor this runner is handed (previously a sequential loop, the
  // `(void)exec` gap ROADMAP.md tracked). Every cell is a pure function
  // of its (attack, defense, salt) triple -- Rng::fork is stateless in
  // the parent, the pipeline and filters are shared const -- so the
  // dispatch order cannot affect any value; rows are assembled serially
  // in the legacy order afterwards.
  struct Cell {
    const attack::PoisoningAttack* atk;
    const defense::Filter* filter;
    std::string defense_name;
    std::uint64_t salt;
  };
  std::vector<Cell> cell_specs;
  for (const auto& atk : attacks) {
    cell_specs.push_back({atk.get(), nullptr, "(none)", 1});
    std::uint64_t salt = 2;
    for (const auto& f : filters) {
      cell_specs.push_back({atk.get(), f.get(), f->name(), salt++});
    }
  }
  std::vector<std::array<double, 3>> cells(cell_specs.size());
  runtime::parallel_for_nested(exec, 0, cell_specs.size(), 1,
                               [&](std::size_t i) {
                                 const Cell& c = cell_specs[i];
                                 cells[i] = run_cell(c.atk, c.filter,
                                                     c.defense_name, c.salt);
                               });

  ResultTable comparison{"defense_comparison",
                         {"attack", "defense", "accuracy",
                          "detection_precision", "detection_recall"},
                         {}};
  for (std::size_t i = 0; i < cell_specs.size(); ++i) {
    const Cell& c = cell_specs[i];
    if (c.filter == nullptr) {
      comparison.add_row({c.atk->name(), "(none)", cells[i][0], "-", "-"});
    } else {
      comparison.add_row({c.atk->name(), c.defense_name, cells[i][0],
                          cells[i][1], cells[i][2]});
    }
  }
  result.tables.push_back(std::move(comparison));
  bundle.add_cells(retrained.load(), hits.load());
}

// --------------------------------------------------------- solver_parallel
// Legacy bench_solver_parallel: serial vs executor-parallel solves with
// the bit-identity assertion.
game::MatrixGame random_game(std::size_t m, std::size_t n,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  la::Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-5.0, 5.0);
    }
  }
  return game::MatrixGame(std::move(a));
}

void check_identical(const game::Equilibrium& serial,
                     const game::Equilibrium& parallel) {
  PG_ASSERT(serial.value == parallel.value,
            "parallel solver broke bit-identity (value)");
  PG_ASSERT(serial.row_strategy == parallel.row_strategy,
            "parallel solver broke bit-identity (row strategy)");
  PG_ASSERT(serial.col_strategy == parallel.col_strategy,
            "parallel solver broke bit-identity (col strategy)");
}

void run_solver_parallel_scenario(const ScenarioSpec& spec,
                                  runtime::Executor* exec,
                                  CacheBundle& bundle,
                                  ScenarioResult& result) {
  (void)bundle;
  PG_CHECK(spec.timing_reps >= 1, "timing_reps must be >= 1");
  ResultTable table{"speedups",
                    {"solver", "rows", "cols", "serial_ms", "parallel_ms",
                     "speedup_vs_serial"},
                    {}};

  const auto time_solver = [&](ResultTable& out, const std::string& name,
                               std::size_t size, const game::MatrixGame& g,
                               const auto& solve) {
    game::Equilibrium serial_eq;
    double serial_best = 1e300;
    for (std::size_t r = 0; r < spec.timing_reps; ++r) {
      util::Stopwatch w;
      serial_eq = solve(g, static_cast<runtime::Executor*>(nullptr));
      serial_best = std::min(serial_best, w.elapsed_ms());
    }
    game::Equilibrium parallel_eq;
    double parallel_best = 1e300;
    for (std::size_t r = 0; r < spec.timing_reps; ++r) {
      util::Stopwatch w;
      parallel_eq = solve(g, exec);
      parallel_best = std::min(parallel_best, w.elapsed_ms());
    }
    check_identical(serial_eq, parallel_eq);
    out.add_row({name, size, size, serial_best, parallel_best,
                 serial_best / parallel_best});
  };

  const game::LpConfig lp{game::parse_lp_pricing(spec.lp_pricing)};
  for (const std::size_t size : parse_size_list(spec.lp_sizes)) {
    const auto g = random_game(size, size, 1000 + size);
    time_solver(table, "simplex_lp", size, g,
                [&lp](const game::MatrixGame& mg, runtime::Executor* e) {
                  return game::solve_lp_equilibrium(mg, e, lp);
                });
  }
  const game::IterativeConfig fp_cfg{.iterations = 3000};
  for (const std::size_t size : parse_size_list(spec.fp_sizes)) {
    const auto g = random_game(size, size, 2000 + size);
    time_solver(table, "fictitious_play", size, g,
                [&fp_cfg](const game::MatrixGame& mg, runtime::Executor* e) {
                  return game::solve_fictitious_play(mg, fp_cfg, e);
                });
  }
  result.tables.push_back(std::move(table));

  // Narrow-game persistent-team trajectory: the sizes where the old
  // per-iteration fork-join LOST to dispatch overhead, measured three
  // ways -- serial, forced fork-join dispatch, forced resident team --
  // so the table shows both the absolute speedup and the team's win over
  // the path it retires (speedup_team_vs_dispatch). A separate table
  // behind an opt-in spec key keeps the pre-team golden baselines
  // byte-stable.
  const auto narrow_sizes = parse_size_list(spec.fp_narrow_sizes);
  if (!narrow_sizes.empty()) {
    ResultTable narrow{"fp_narrow",
                       {"solver", "rows", "cols", "serial_ms", "dispatch_ms",
                        "team_ms", "speedup_vs_serial",
                        "speedup_team_vs_dispatch"},
                       {}};
    const auto timed = [&](const game::MatrixGame& g,
                           const game::IterativeConfig& cfg,
                           runtime::Executor* e, game::Equilibrium& eq) {
      double best = 1e300;
      for (std::size_t r = 0; r < spec.timing_reps; ++r) {
        util::Stopwatch w;
        eq = game::solve_fictitious_play(g, cfg, e);
        best = std::min(best, w.elapsed_ms());
      }
      return best;
    };
    for (const std::size_t size : narrow_sizes) {
      const auto g = random_game(size, size, 4000 + size);
      game::IterativeConfig cfg{.iterations = 6000};
      game::Equilibrium serial_eq;
      game::Equilibrium dispatch_eq;
      game::Equilibrium team_eq;
      const double serial_ms = timed(g, cfg, nullptr, serial_eq);
      cfg.backend = game::IterativeBackend::kDispatch;
      const double dispatch_ms = timed(g, cfg, exec, dispatch_eq);
      cfg.backend = game::IterativeBackend::kTeam;
      const double team_ms = timed(g, cfg, exec, team_eq);
      check_identical(serial_eq, dispatch_eq);
      check_identical(serial_eq, team_eq);
      narrow.add_row({"fictitious_play", size, size, serial_ms, dispatch_ms,
                      team_ms, serial_ms / team_ms, dispatch_ms / team_ms});
    }
    result.tables.push_back(std::move(narrow));
  }
  result.add_metric("bit_identical_to_serial", std::size_t{1});
}

// ------------------------------------------------------------------ micro
// Engine-native micro kernels (the subset of bench_micro that does not
// need the google-benchmark harness): grid fill and solver speedups.
void run_micro_scenario(const ScenarioSpec& spec, runtime::Executor* exec,
                        CacheBundle& bundle, ScenarioResult& result) {
  (void)bundle;
  PG_CHECK(spec.timing_reps >= 1, "timing_reps must be >= 1");
  ResultTable table{"kernels",
                    {"kernel", "serial_ms", "parallel_ms",
                     "speedup_vs_serial"},
                    {}};

  const auto timed = [&](const auto& fn) {
    double best = 1e300;
    for (std::size_t r = 0; r < spec.timing_reps; ++r) {
      util::Stopwatch w;
      fn();
      best = std::min(best, w.elapsed_ms());
    }
    return best;
  };

  {
    const core::PoisoningGame game(
        core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4), 100);
    la::Matrix serial_grid;
    la::Matrix parallel_grid;
    const double serial_ms = timed(
        [&] { serial_grid = game.discretize(256, 256, nullptr).payoff(); });
    const double parallel_ms =
        timed([&] { parallel_grid = game.discretize(256, 256, exec).payoff(); });
    PG_ASSERT(serial_grid.data() == parallel_grid.data(),
              "parallel payoff grid broke bit-identity");
    table.add_row({"discretize_256", serial_ms, parallel_ms,
                   serial_ms / parallel_ms});
  }
  {
    const game::LpConfig lp{game::parse_lp_pricing(spec.lp_pricing)};
    const auto g = random_game(192, 192, 1192);
    game::Equilibrium serial_eq;
    game::Equilibrium parallel_eq;
    const double serial_ms =
        timed([&] { serial_eq = game::solve_lp_equilibrium(g, nullptr, lp); });
    const double parallel_ms =
        timed([&] { parallel_eq = game::solve_lp_equilibrium(g, exec, lp); });
    check_identical(serial_eq, parallel_eq);
    table.add_row({"solve_lp_192", serial_ms, parallel_ms,
                   serial_ms / parallel_ms});
  }
  {
    const auto g = random_game(512, 512, 2512);
    const game::IterativeConfig cfg{.iterations = 2000};
    game::Equilibrium serial_eq;
    game::Equilibrium parallel_eq;
    const double serial_ms = timed(
        [&] { serial_eq = game::solve_fictitious_play(g, cfg, nullptr); });
    const double parallel_ms =
        timed([&] { parallel_eq = game::solve_fictitious_play(g, cfg, exec); });
    check_identical(serial_eq, parallel_eq);
    table.add_row({"fictitious_play_512", serial_ms, parallel_ms,
                   serial_ms / parallel_ms});
  }
  result.tables.push_back(std::move(table));
}

// Service-health scenario: snapshot the PROCESS's serve/fault/shard
// counters into a telemetry table. Submitted to a pg_serve daemon it
// reports the daemon's own live counters (queue depth, errors, pings,
// retries) without submitting real work; run standalone it pins the
// stable identity surface -- protocol and schema versions -- which is
// what the golden baseline compares (the counter VALUES are
// scheduling-dependent telemetry, excluded by table name and obs.-prefix
// like every other telemetry surface).
void run_serve_metrics_scenario(const ScenarioSpec& spec,
                                runtime::Executor* exec, CacheBundle& bundle,
                                ScenarioResult& result) {
  (void)spec;
  (void)exec;
  (void)bundle;
  result.add_metric("protocol_major", serve::kProtocolMajor);
  result.add_metric("protocol_minor", serve::kProtocolMinor);
  result.add_metric("schema_version", serve::kSchemaVersion);
  ResultTable table{"telemetry_serve", {"metric", "kind", "value"}, {}};
  for (const auto& m : obs::snapshot_metrics()) {
    const bool service = m.name.rfind("obs.serve.", 0) == 0 ||
                         m.name.rfind("obs.fault.", 0) == 0 ||
                         m.name.rfind("obs.shard.", 0) == 0 ||
                         m.name.rfind("obs.cache.quarantined", 0) == 0;
    if (!service) continue;
    const char* kind = m.kind == obs::MetricSnapshot::Kind::kTimer
                           ? "timer"
                           : (m.kind == obs::MetricSnapshot::Kind::kGauge
                                  ? "gauge"
                                  : "counter");
    table.add_row({m.name, kind, m.count});
  }
  // The row count is health data too, but it varies with process
  // history; the obs. prefix keeps it out of baseline comparison.
  result.add_metric("obs.serve.metrics_reported", table.rows.size());
  result.tables.push_back(std::move(table));
}

// ------------------------------------------------------------ sweep grids
// A sweep-grid run executes every SweepPlan child through the same
// runner dispatch, then folds the per-point results into ONE merged
// ScenarioResult: every child table gains one leading coordinate column
// per axis, same-shaped tables across points concatenate, and per-point
// scalar metrics become rows of a "sweep_metrics" table keyed by the
// same coordinates. One artifact carries the whole grid.

// coordinate_value (engine.h) is defined below, outside this anonymous
// namespace, so tests can exercise its canonical-form rules directly.

/// Find-or-create the merged table matching `name` + `columns` (tables
/// only concatenate when their full schema agrees -- a swept `kind` axis
/// can legitimately produce same-named tables with different columns).
ResultTable& merged_table(ScenarioResult& merged, const std::string& name,
                          const std::vector<std::string>& columns) {
  for (ResultTable& table : merged.tables) {
    if (table.name == name && table.columns == columns) return table;
  }
  merged.tables.push_back({name, columns, {}});
  return merged.tables.back();
}

void merge_sweep_point(
    const std::vector<std::pair<std::string, std::string>>& coords,
    const ScenarioResult& point, ScenarioResult& merged) {
  std::vector<Value> coord_cells;
  std::vector<std::string> coord_columns;
  coord_cells.reserve(coords.size());
  coord_columns.reserve(coords.size());
  for (const auto& [key, value] : coords) {
    coord_columns.push_back(key);
    coord_cells.push_back(coordinate_value(value));
  }

  {
    std::vector<std::string> columns = coord_columns;
    columns.push_back("metric");
    columns.push_back("value");
    ResultTable& metrics = merged_table(merged, "sweep_metrics", columns);
    for (const auto& [key, value] : point.metrics) {
      std::vector<Value> row = coord_cells;
      row.emplace_back(key);
      row.push_back(value);
      metrics.rows.push_back(std::move(row));
    }
  }

  for (const ResultTable& table : point.tables) {
    std::vector<std::string> columns = coord_columns;
    columns.insert(columns.end(), table.columns.begin(), table.columns.end());
    ResultTable& target = merged_table(merged, table.name, columns);
    for (const auto& row : table.rows) {
      std::vector<Value> out = coord_cells;
      out.insert(out.end(), row.begin(), row.end());
      target.rows.push_back(std::move(out));
    }
  }
}

/// True for value names the sinks treat as wall-clock measurements
/// (result.h's naming convention) -- excluded from aggregation because a
/// mean of timings is noise, not a reproducible number.
bool is_timing_name(const std::string& name) {
  return name.ends_with("_ms") || name.ends_with("_seconds") ||
         name.find("speedup") != std::string::npos;
}

/// Axis-aware aggregation (the ROADMAP PR-4 follow-up): collapse the
/// merged per-point metrics across the axes named in `spec.aggregate`
/// (typically replication-style axes like `seed`), appending a
/// `sweep_aggregates` table keyed by the REMAINING axes' coordinates:
///
///     [kept axis columns...] metric  mean  min  max  count
///
/// Group order is first-appearance order in sweep_metrics and the mean
/// folds values in row order, so the table is deterministic at any
/// thread count. String-valued and wall-clock metrics are skipped.
void add_sweep_aggregates(const ScenarioSpec& spec, ScenarioResult& merged) {
  const std::vector<std::string> agg_keys = split_list(spec.aggregate);
  if (agg_keys.empty()) return;

  for (const ResultTable& table : merged.tables) {
    if (table.name != "sweep_metrics") continue;
    // Columns are [axis keys..., "metric", "value"]; aggregated axes must
    // exist, kept axes keep their column order.
    PG_CHECK(table.columns.size() >= 2, "sweep_metrics: malformed schema");
    const std::size_t n_axes = table.columns.size() - 2;
    std::vector<std::size_t> kept_cols;
    for (std::size_t c = 0; c < n_axes; ++c) {
      const bool aggregated =
          std::find(agg_keys.begin(), agg_keys.end(), table.columns[c]) !=
          agg_keys.end();
      if (!aggregated) kept_cols.push_back(c);
    }
    for (const std::string& key : agg_keys) {
      PG_CHECK(std::find(table.columns.begin(),
                         table.columns.begin() +
                             static_cast<std::ptrdiff_t>(n_axes),
                         key) != table.columns.begin() +
                                     static_cast<std::ptrdiff_t>(n_axes),
               "aggregate: '" + key + "' is not a sweep axis of this run");
    }

    struct Group {
      std::vector<Value> kept;  // kept coordinate cells + metric name
      double sum = 0.0;
      double min = 0.0;
      double max = 0.0;
      std::size_t count = 0;
    };
    std::vector<Group> groups;  // first-appearance order
    // Lookup by a serialized key (renders are canonical: shortest-exact
    // for numbers) so grouping is O(rows log groups), not O(rows x
    // groups); `groups` keeps the presentation order.
    std::map<std::string, std::size_t> group_index;
    for (const auto& row : table.rows) {
      const Value& metric = row[n_axes];
      const Value& value = row[n_axes + 1];
      if (!value.is_number() || is_timing_name(metric.text())) continue;
      std::vector<Value> key_cells;
      key_cells.reserve(kept_cols.size() + 1);
      for (const std::size_t c : kept_cols) key_cells.push_back(row[c]);
      key_cells.push_back(metric);
      std::string key;
      for (const Value& cell : key_cells) {
        key += cell.is_number() ? 'n' : 's';
        key += cell.render();
        key += '\x1f';  // unit separator: never in rendered cells
      }
      const auto [it, inserted] = group_index.try_emplace(key, groups.size());
      if (inserted) {
        groups.push_back({std::move(key_cells), 0.0, value.number(),
                          value.number(), 0});
      }
      Group& group = groups[it->second];
      group.sum += value.number();
      group.min = std::min(group.min, value.number());
      group.max = std::max(group.max, value.number());
      ++group.count;
    }

    std::vector<std::string> columns;
    for (const std::size_t c : kept_cols) columns.push_back(table.columns[c]);
    columns.insert(columns.end(), {"metric", "mean", "min", "max", "count"});
    ResultTable aggregates{"sweep_aggregates", std::move(columns), {}};
    for (const Group& g : groups) {
      std::vector<Value> row = g.kept;
      row.emplace_back(g.sum / static_cast<double>(g.count));
      row.emplace_back(g.min);
      row.emplace_back(g.max);
      row.emplace_back(g.count);
      aggregates.rows.push_back(std::move(row));
    }
    merged.tables.push_back(std::move(aggregates));
    return;
  }
  PG_CHECK(false, "aggregate set but the run produced no sweep_metrics "
                  "table (is the spec a sweep grid?)");
}

/// Calling thread's cumulative CPU time, for the wall-vs-CPU split in
/// the per-point timers (a point whose wall time dwarfs its CPU time was
/// waiting, not computing).
std::uint64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

using RunnerFn = void (*)(const ScenarioSpec&, runtime::Executor*,
                          CacheBundle&, ScenarioResult&);

RunnerFn runner_for(const std::string& kind) {
  if (kind == "pure_sweep") return &run_pure_sweep_scenario;
  if (kind == "mixed_table") return &run_mixed_table_scenario;
  if (kind == "pure_ne") return &run_pure_ne_scenario;
  if (kind == "support_sweep") return &run_support_sweep_scenario;
  if (kind == "transfer") return &run_transfer_scenario;
  if (kind == "solver_ablation") return &run_solver_ablation_scenario;
  if (kind == "defense_ablation") return &run_defense_ablation_scenario;
  if (kind == "solver_parallel") return &run_solver_parallel_scenario;
  if (kind == "micro") return &run_micro_scenario;
  if (kind == "serve_metrics") return &run_serve_metrics_scenario;
  PG_CHECK(false, "unknown scenario kind: " + kind);
  return nullptr;  // unreachable
}

/// The shared body of both run_scenario overloads: validate, dispatch
/// (single run or point-parallel grid), merge, and fill the cache report.
/// The CALLER owns the executor, the shard store, and the observability
/// lifecycle; `spill` says whether this run flushes the store to disk
/// (standalone runs do, shared-context runs leave that to the owner's
/// drain).
ScenarioResult run_scenario_impl(const ScenarioSpec& spec,
                                 runtime::Executor* exec, ShardStore& store,
                                 bool spill,
                                 const ShardRequest* shard = nullptr) {
  const SweepPlan plan(spec);  // parses + type-checks every sweep clause
  PG_CHECK(shard == nullptr || !plan.empty(),
           "--shard requires sweep axes (a single point has nothing to "
           "partition)");

  // Validate every kind the run will dispatch BEFORE any work: the base
  // kind, or -- when `kind` itself is a swept axis -- each axis value.
  bool kind_swept = false;
  for (const SweepAxis& axis : plan.axes()) {
    if (axis.key != "kind") continue;
    kind_swept = true;
    for (const std::string& value : axis.values) (void)runner_for(value);
  }
  if (!kind_swept) (void)runner_for(spec.kind);

  // Surface the host's vector ISA on every run (metrics snapshots carry
  // it even for reference runs), and fail an unsatisfiable kernel=simd
  // request HERE, before any cell retrains.
  obs::gauge("obs.simd.detected")
      .record(static_cast<std::uint64_t>(la::simd::detect_tier()) + 1);
  (void)resolve_retrain_kernel(spec);

  util::Stopwatch watch;
  // ONE cache bundle for the whole grid: points sharing an experiment
  // context (e.g. a solver-knob axis) reuse each other's retrains. The
  // bundle is this run's counter window onto the (possibly shared) store.
  CacheBundle bundle(store);

  ScenarioResult result;
  result.spec = spec;
  result.executor_threads = exec->concurrency();

  {
    obs::Span scenario_span("scenario:" + spec.name, "scenario");
    if (plan.empty()) {
      PG_CHECK(spec.aggregate.empty(),
               "aggregate requires sweep axes to aggregate over");
      runner_for(spec.kind)(spec, exec, bundle, result);
    } else {
      result.sweep_axes = plan.axis_keys();
      result.add_metric("sweep_points", plan.size());
      // Covered plan indices: the whole grid, or -- on a shard run -- the
      // deterministic stride {i, i+N, ...}. The stride depends only on
      // the plan, so N workers launched with the same spec partition the
      // grid without talking to each other.
      std::vector<std::size_t> covered;
      if (shard != nullptr) {
        covered = plan.shard_indices(shard->index, shard->total);
        obs::gauge("obs.shard.index").record(shard->index);
        obs::gauge("obs.shard.total").record(shard->total);
        obs::counter("obs.shard.points_run").add(covered.size());
        result.partial.shard = shard->index;
        result.partial.total_shards = shard->total;
        result.partial.grid_size = plan.size();
        // The merge's cross-shard consistency key: every worker of one
        // sweep resolves to the same spec, hence the same canonical text.
        result.partial.spec_text = spec.to_text();
      } else {
        covered.resize(plan.size());
        for (std::size_t i = 0; i < covered.size(); ++i) covered[i] = i;
      }
      // POINT-PARALLEL GRID: independent grid points dispatch concurrently
      // through the nested executor (each point's inner loops still fan
      // out -- payoff cells use parallel_for_nested, so one late point can
      // spread across the whole pool). Each point computes into its own
      // slot; every point's randomness derives from its child spec's seed
      // (RngStreamFactory streams inside the runners), and the shared
      // bundle only memoizes content-keyed values -- so results cannot
      // depend on scheduling, and the serial merge below folds them in
      // plan order regardless of completion order.
      std::vector<ScenarioResult> points(covered.size());
      runtime::parallel_for_nested(
          exec, 0, covered.size(), 1, [&](std::size_t slot) {
            const std::size_t i = covered[slot];
            obs::Span point_span("grid_point_" + std::to_string(i), "grid");
            static obs::Timer& wall = obs::timer("obs.engine.point_wall");
            static obs::Timer& cpu = obs::timer("obs.engine.point_cpu");
            const obs::ScopedTimer wall_timer(wall);
            const std::uint64_t cpu_start = thread_cpu_ns();
            const ScenarioSpec child = plan.child(i);
            points[slot].spec = child;
            if (child.threads != spec.threads) {
              // `threads` is itself a swept axis: this point gets its own
              // executor (results are thread-count-invariant, so the grid
              // stays bit-identical either way).
              const auto child_exec = sim::make_executor(child.threads);
              runner_for(child.kind)(child, child_exec.get(), bundle,
                                     points[slot]);
            } else {
              runner_for(child.kind)(child, exec, bundle, points[slot]);
            }
            cpu.record_ns(thread_cpu_ns() - cpu_start);
          });
      for (std::size_t slot = 0; slot < covered.size(); ++slot) {
        merge_sweep_point(plan.coordinates(covered[slot]), points[slot],
                          result);
      }
      if (shard != nullptr) {
        // Keep every covered point's RAW output in the envelope: the
        // merge replays it through the same fold above, so the stitched
        // artifact is value-identical to a single-process run. Aggregates
        // are NOT computed here -- they need the full grid and are
        // recomputed at merge time.
        result.partial.points.reserve(covered.size());
        for (std::size_t slot = 0; slot < covered.size(); ++slot) {
          result.partial.points.push_back({covered[slot],
                                           std::move(points[slot].metrics),
                                           std::move(points[slot].tables)});
        }
      } else {
        add_sweep_aggregates(spec, result);
      }
    }
    bundle.finish(result.cache, spill);
  }

  // Fold the run's metrics into the result (diff-excluded `telemetry_*`
  // tables) after the scenario span closed, so a trace flushed by the
  // caller includes it.
  if (spec.metrics) append_metrics_tables(result);
  result.elapsed_seconds = watch.elapsed_seconds();
  return result;
}

/// The standalone lifecycle shared by run_scenario and
/// run_scenario_shard: own executor, own shard store, own observability
/// window, spill on completion.
ScenarioResult run_scenario_standalone(const ScenarioSpec& spec,
                                       const ShardRequest* shard) {
  // Observability lifecycle: reset the registry when this run will report
  // metrics (so the snapshot describes THIS run, not the process), and
  // arm the tracer when a trace path is set. Both are pure observers --
  // the run below computes exactly the same result with them on or off.
  if (spec.metrics) obs::reset_metrics();
  if (!spec.trace.empty()) obs::Tracer::instance().start();

  const auto exec = sim::make_executor(spec.threads);
  const std::string cache_dir = !spec.cache_dir.empty()
                                    ? spec.cache_dir
                                    : runtime::DiskPayoffCache::env_dir();
  ShardStore store(spec.use_cache, cache_dir, spec.cache_max_bytes);

  ScenarioResult result =
      run_scenario_impl(spec, exec.get(), store, /*spill=*/true, shard);

  // Flush the trace AFTER the run so the file includes every span. A
  // failing trace write throws past the result -- the CLI pre-checks
  // writability, so this only fires when the path went bad mid-run. The
  // write is atomic (temp + fsync + rename): a worker killed here leaves
  // no torn trace for tooling to choke on.
  if (!spec.trace.empty()) {
    std::ostringstream trace_out;
    obs::Tracer::instance().write_chrome_trace(trace_out);
    robust::atomic_write_file(spec.trace, trace_out.str(), "artifact.trace");
  }
  return result;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  return run_scenario_standalone(spec, nullptr);
}

ScenarioResult run_scenario_shard(const ScenarioSpec& spec,
                                  const ShardRequest& shard) {
  return run_scenario_standalone(spec, &shard);
}

Value coordinate_value(const std::string& text) {
  if (!text.empty()) {
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != nullptr && *end == '\0' && std::isfinite(v)) {
      // Numeric ONLY for the two canonical grid renderings (the forms
      // sweep.cpp's format_grid_value emits): the plain integer form, or
      // the shortest-roundtrip double form. Everything else strtod
      // happens to accept -- inf/nan spellings, hex (0x10), padded
      // digits (007), exponent aliases (1e3) -- stays the string the
      // spec text spelled, so JSON cells stay valid and merge keys
      // round-trip exactly.
      const bool integer_form =
          v == std::floor(v) && std::abs(v) < 9.007199254740992e15 &&
          text == std::to_string(static_cast<long long>(v));
      if (integer_form || text == util::format_double_roundtrip(v)) {
        return Value(v);
      }
    }
  }
  return Value(text);
}

ScenarioResult run_scenario(const ScenarioSpec& spec, EngineContext& context) {
  PG_CHECK(context.executor != nullptr && context.shards != nullptr,
           "run_scenario: EngineContext needs an executor and a shard store");
  // Per-request trace files would race on the process-wide tracer; the
  // owner decides whether tracing is on for the whole process instead.
  PG_CHECK(spec.trace.empty(),
           "run_scenario: per-request trace files are not supported on a "
           "shared context (the owner controls the tracer)");
  return run_scenario_impl(spec, context.executor, *context.shards,
                           /*spill=*/false);
}

// --------------------------------------------------------- shard merging

namespace {

/// Reconstruct a Value from its partial-envelope JSON form (the exact
/// encoding result.cpp's write_exact_value produces).
Value value_from_json(const JsonValue& v, const std::string& where) {
  switch (v.kind) {
    case JsonValue::Kind::kNumber: return Value(v.number);
    case JsonValue::Kind::kString: return Value(v.text);
    case JsonValue::Kind::kObject: {
      const JsonValue* nf = v.find("nf");
      PG_CHECK(nf != nullptr && nf->kind == JsonValue::Kind::kString,
               "merge: " + where + ": unexpected object cell");
      if (nf->text == "inf") {
        return Value(std::numeric_limits<double>::infinity());
      }
      if (nf->text == "-inf") {
        return Value(-std::numeric_limits<double>::infinity());
      }
      PG_CHECK(nf->text == "nan", "merge: " + where +
                                      ": unknown non-finite tag '" +
                                      nf->text + "'");
      return Value(std::numeric_limits<double>::quiet_NaN());
    }
    case JsonValue::Kind::kNull:
      // Defensive: the DISPLAY sink's stand-in for a non-finite number
      // (partials tag them instead, but accept a hand-carried artifact).
      return Value(std::numeric_limits<double>::quiet_NaN());
    default:
      PG_CHECK(false, "merge: " + where + ": cell is not a scalar value");
  }
  return Value();
}

/// Required non-negative integer member of a partial envelope.
std::size_t size_member(const JsonValue& obj, const char* key,
                        const std::string& label) {
  const JsonValue* v = obj.find(key);
  PG_CHECK(v != nullptr && v->kind == JsonValue::Kind::kNumber &&
               v->number >= 0.0 && v->number == std::floor(v->number),
           "merge: " + label + ": partial envelope needs a non-negative "
           "integer \"" + std::string(key) + "\"");
  return static_cast<std::size_t>(v->number);
}

/// One covered point of one shard, reconstructed as the raw per-point
/// ScenarioResult surface merge_sweep_point consumes.
ScenarioResult point_from_json(const JsonValue& point,
                               const std::string& where) {
  ScenarioResult out;
  const JsonValue* metrics = point.find("metrics");
  PG_CHECK(metrics != nullptr && metrics->kind == JsonValue::Kind::kObject,
           "merge: " + where + ": point has no metrics object");
  for (const auto& [name, value] : metrics->members) {
    out.metrics.emplace_back(name,
                             value_from_json(value, where + "/" + name));
  }
  const JsonValue* tables = point.find("tables");
  PG_CHECK(tables != nullptr && tables->kind == JsonValue::Kind::kArray,
           "merge: " + where + ": point has no tables array");
  for (const JsonValue& tj : tables->items) {
    PG_CHECK(tj.kind == JsonValue::Kind::kObject,
             "merge: " + where + ": malformed table");
    const JsonValue* name = tj.find("name");
    const JsonValue* columns = tj.find("columns");
    const JsonValue* rows = tj.find("rows");
    PG_CHECK(name != nullptr && name->kind == JsonValue::Kind::kString &&
                 columns != nullptr &&
                 columns->kind == JsonValue::Kind::kArray &&
                 rows != nullptr && rows->kind == JsonValue::Kind::kArray,
             "merge: " + where + ": malformed table");
    ResultTable table;
    table.name = name->text;
    for (const JsonValue& c : columns->items) {
      PG_CHECK(c.kind == JsonValue::Kind::kString,
               "merge: " + where + ": non-string column name");
      table.columns.push_back(c.text);
    }
    for (const JsonValue& row : rows->items) {
      PG_CHECK(row.kind == JsonValue::Kind::kArray &&
                   row.items.size() == table.columns.size(),
               "merge: " + where + "/" + table.name + ": row width mismatch");
      std::vector<Value> cells;
      cells.reserve(row.items.size());
      for (const JsonValue& cell : row.items) {
        cells.push_back(value_from_json(cell, where + "/" + table.name));
      }
      table.rows.push_back(std::move(cells));
    }
    out.tables.push_back(std::move(table));
  }
  return out;
}

}  // namespace

ScenarioResult merge_partials(
    const std::vector<std::pair<std::string, JsonValue>>& partials) {
  PG_CHECK(!partials.empty(), "merge: no partial artifacts given");

  // Pass 1 -- validate every envelope and index shards. Everything is
  // checked BEFORE any stitching, so a bad input is a clean one-line
  // error naming the offending artifact, never a half-merged result.
  std::size_t total = 0;
  std::size_t grid = 0;
  std::string spec_text;
  std::map<std::size_t, const JsonValue*> shard_points;  // shard -> points[]
  std::map<std::size_t, std::string> shard_labels;
  for (const auto& [label, artifact] : partials) {
    PG_CHECK(artifact.kind == JsonValue::Kind::kObject,
             "merge: " + label + ": not a JSON object");
    const JsonValue* schema = artifact.find("schema_version");
    PG_CHECK(schema != nullptr &&
                 schema->kind == JsonValue::Kind::kNumber &&
                 schema->number == serve::kSchemaVersion,
             "merge: " + label + ": missing or unsupported schema_version "
             "(expected " + std::to_string(serve::kSchemaVersion) + ")");
    const JsonValue* partial = artifact.find("partial");
    PG_CHECK(partial != nullptr &&
                 partial->kind == JsonValue::Kind::kObject,
             "merge: " + label + " is not a shard partial (produce inputs "
             "with pg_run --shard i/N --out json)");
    const std::size_t shard = size_member(*partial, "shard", label);
    const std::size_t this_total = size_member(*partial, "total_shards",
                                               label);
    const std::size_t this_grid = size_member(*partial, "grid_size", label);
    PG_CHECK(this_total >= 1 && shard < this_total,
             "merge: " + label + ": shard " + std::to_string(shard) +
                 "/" + std::to_string(this_total) + " is out of range");
    const JsonValue* st = partial->find("spec_text");
    PG_CHECK(st != nullptr && st->kind == JsonValue::Kind::kString,
             "merge: " + label + ": partial envelope has no spec_text");
    if (shard_points.empty()) {
      total = this_total;
      grid = this_grid;
      spec_text = st->text;
    } else {
      PG_CHECK(this_total == total,
               "merge: " + label + " declares " +
                   std::to_string(this_total) + " total shard(s), other "
                   "partials declare " + std::to_string(total));
      PG_CHECK(this_grid == grid,
               "merge: " + label + " declares a grid of " +
                   std::to_string(this_grid) + " point(s), other partials "
                   "declare " + std::to_string(grid));
      PG_CHECK(st->text == spec_text,
               "merge: " + label + ": spec text differs from the other "
               "partials (these are not shards of one sweep)");
    }
    const auto [it, inserted] = shard_points.emplace(
        shard, partial->find("points"));
    PG_CHECK(inserted, "merge: shard " + std::to_string(shard) +
                           " appears twice (" + shard_labels[shard] +
                           " and " + label + ")");
    shard_labels[shard] = label;

    const JsonValue* points = it->second;
    const JsonValue* covered = partial->find("covered");
    PG_CHECK(points != nullptr && points->kind == JsonValue::Kind::kArray &&
                 covered != nullptr &&
                 covered->kind == JsonValue::Kind::kArray &&
                 covered->items.size() == points->items.size(),
             "merge: " + label + ": malformed covered/points arrays");
    // Each shard must cover EXACTLY its stride {shard, shard+total, ...}:
    // a worker launched with different flags (or a truncated artifact)
    // fails here, not as silent grid holes.
    std::size_t expect = shard;
    for (std::size_t p = 0; p < points->items.size(); ++p) {
      const double c = covered->items[p].kind == JsonValue::Kind::kNumber
                           ? covered->items[p].number
                           : -1.0;
      const std::size_t index = size_member(points->items[p], "index",
                                            label);
      PG_CHECK(c == static_cast<double>(expect) && index == expect &&
                   expect < grid,
               "merge: " + label + ": covered indices do not match the "
               "shard " + std::to_string(shard) + "/" +
                   std::to_string(total) + " stride at position " +
                   std::to_string(p));
      expect += total;
    }
    PG_CHECK(expect >= grid,
             "merge: " + label + ": covers " +
                 std::to_string(points->items.size()) + " point(s) but its "
                 "stride has more; the partial is truncated");
  }
  if (shard_points.size() != total) {
    std::string missing;
    std::vector<std::size_t> missing_indices;
    for (std::size_t s = 0; s < total; ++s) {
      if (shard_points.count(s) == 0) {
        if (!missing.empty()) missing += ", ";
        missing += std::to_string(s);
        missing_indices.push_back(s);
      }
    }
    // Typed, not PG_CHECK: the CLI turns this into the machine-readable
    // missing_shards= line + exit 4 a retry wrapper keys off.
    throw MissingShardsError(
        "merge: " + std::to_string(shard_points.size()) + " of " +
            std::to_string(total) + " shard(s) present; missing shard(s): " +
            missing,
        std::move(missing_indices));
  }

  // Pass 2 -- rebuild the plan from the shared spec text and replay every
  // point through the SAME merge fold a single-process run uses, in plan
  // order, then recompute aggregates over the full grid.
  const ScenarioSpec spec = ScenarioSpec::parse(spec_text);
  const SweepPlan plan(spec);
  PG_CHECK(plan.size() == grid,
           "merge: spec text expands to " + std::to_string(plan.size()) +
               " grid point(s) but the partials declare " +
               std::to_string(grid));

  ScenarioResult merged;
  merged.spec = spec;
  merged.sweep_axes = plan.axis_keys();
  merged.add_metric("sweep_points", plan.size());
  std::vector<std::size_t> cursor(total, 0);
  for (std::size_t i = 0; i < grid; ++i) {
    const std::size_t shard = i % total;
    const std::string where =
        shard_labels[shard] + "[" + std::to_string(i) + "]";
    const ScenarioResult point =
        point_from_json(shard_points[shard]->items[cursor[shard]++], where);
    merge_sweep_point(plan.coordinates(i), point, merged);
  }
  add_sweep_aggregates(spec, merged);

  // Cache traffic is additive across workers (each ran its own window
  // over the shared directory); the differ excludes it, but the summed
  // report keeps `--merge` output honest for human readers.
  for (const auto& [label, artifact] : partials) {
    (void)label;
    const JsonValue* run = artifact.find("result");
    if (run == nullptr) continue;
    const JsonValue* cache = run->find("cache");
    if (cache == nullptr || cache->kind != JsonValue::Kind::kObject) continue;
    const auto num = [&](const char* key) -> std::size_t {
      const JsonValue* v = cache->find(key);
      return v != nullptr && v->kind == JsonValue::Kind::kNumber
                 ? static_cast<std::size_t>(v->number)
                 : 0;
    };
    const auto flag = [&](const char* key) {
      const JsonValue* v = cache->find(key);
      return v != nullptr && v->kind == JsonValue::Kind::kBool && v->boolean;
    };
    merged.cache.enabled = merged.cache.enabled || flag("enabled");
    merged.cache.disk_enabled = merged.cache.disk_enabled ||
                                flag("disk_enabled");
    if (merged.cache.disk_dir.empty()) {
      if (const JsonValue* dir = cache->find("disk_dir");
          dir != nullptr && dir->kind == JsonValue::Kind::kString) {
        merged.cache.disk_dir = dir->text;
      }
    }
    merged.cache.shards += num("shards");
    merged.cache.cells_total += num("cells_total");
    merged.cache.cells_retrained += num("cells_retrained");
    merged.cache.cache_hits += num("cache_hits");
    merged.cache.disk_entries_loaded += num("disk_entries_loaded");
    merged.cache.disk_entries_saved += num("disk_entries_saved");
    merged.cache.disk_shards_evicted += num("disk_shards_evicted");
    merged.cache.disk_max_bytes = std::max<std::uint64_t>(
        merged.cache.disk_max_bytes, num("disk_max_bytes"));
  }
  return merged;
}

int run_legacy_bench(const std::string& name, const std::string& json_out) {
  try {
    const ScenarioSpec spec = ScenarioRegistry::instance().make(name);
    const ScenarioResult result = run_scenario(spec);
    write_text(result, std::cout);
    if (!json_out.empty()) {
      std::ofstream out(json_out);
      PG_CHECK(static_cast<bool>(out), "cannot write " + json_out);
      write_json(result, out);
      std::cout << "wrote " << json_out << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace pg::scenario
