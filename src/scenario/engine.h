// The scenario engine: one loop that executes any ScenarioSpec.
//
// run_scenario resolves the spec's execution envelope (executor width,
// cache layers), dispatches on `spec.kind` to the matching runner, and
// returns a structured ScenarioResult. When the spec carries `sweep`
// axes (scenario/sweep.h) the engine instead expands the cross-product
// grid and runs every point through the same dispatch -- one executor,
// one shared cache bundle -- then merges the per-point results into a
// single ScenarioResult whose tables lead with the axis coordinates. Each runner drives the same sim/
// and core/ entry points the legacy bench binaries called with the same
// parameters and seeds, so at a fixed seed the numbers are bit-identical
// to the pre-refactor benches -- and bit-identical at 1 vs N threads,
// inherited from the runtime's determinism contract.
//
// Caching: when `spec.use_cache` is on, every experiment context gets a
// PayoffCache shard keyed by its context fingerprint; retrain-priced
// cells (sweep cells, mixed-eval cells, ablation pipeline runs) memoize
// into the shard, and when a cache directory is configured (spec field or
// $PG_CACHE_DIR) each shard is preloaded from and spilled back to disk,
// so a re-run -- or a tweaked sweep overlapping the old grid -- reuses
// prior retrains across processes. The resulting traffic is reported in
// ScenarioResult::cache; a warm re-run shows cells_retrained == 0.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "scenario/diff.h"
#include "scenario/result.h"
#include "scenario/spec.h"

namespace pg::runtime {
class Executor;
}  // namespace pg::runtime

namespace pg::scenario {

class ShardStore;

/// Execute the spec. Throws std::invalid_argument on an unknown kind or
/// out-of-range knobs (the validation the per-bench mains used to spread
/// across eight copies of main()).
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

/// One worker's slice of a distributed sweep: run plan indices
/// {index, index + total, ...} of the spec's sweep grid.
struct ShardRequest {
  std::size_t index = 0;
  std::size_t total = 0;  // must be >= 1; index < total
};

/// Execute one deterministic shard of a sweep grid (standalone
/// lifecycle, like run_scenario). The result carries an active
/// ShardEnvelope (`result.partial`) with the covered plan indices and
/// every covered point's raw output; its JSON sink form is the partial
/// artifact `merge_partials` stitches. Requires the spec to have sweep
/// axes; throws on index >= total or total == 0. Workers sharing a
/// `cache_dir` coordinate through DiskPayoffCache (content-addressed
/// shards + single-flight claim/publish), nothing else.
[[nodiscard]] ScenarioResult run_scenario_shard(const ScenarioSpec& spec,
                                                const ShardRequest& shard);

/// Stitch shard partials (parsed JSON artifacts, labelled for error
/// messages) back into the canonical merged ScenarioResult -- value-
/// identical to a single-process run of the same spec: points replay
/// through the same plan-order merge fold, then aggregates recompute
/// over the full grid. Validates before touching anything: every input
/// is a partial under the current schema_version, all agree on
/// total_shards/grid_size/spec text, shard indices are distinct, each
/// covers exactly its stride, and the union covers the whole grid
/// (missing or overlapping shards are a hard error naming the label).
[[nodiscard]] ScenarioResult merge_partials(
    const std::vector<std::pair<std::string, JsonValue>>& partials);

/// Thrown by merge_partials when the inputs are valid, mutually
/// consistent partials of one sweep but some shards are absent. Carries
/// the missing indices so a retry wrapper can relaunch exactly those
/// shards; `pg_run --merge` turns it into the machine-readable
/// `missing_shards=i,j,...` stdout line and exit code 4 (other merge
/// failures stay generic exit 1).
struct MissingShardsError : std::runtime_error {
  MissingShardsError(const std::string& message,
                     std::vector<std::size_t> missing_shards)
      : std::runtime_error(message), missing(std::move(missing_shards)) {}
  std::vector<std::size_t> missing;
};

/// Coordinate cells in merged sweep tables: numeric ONLY for finite
/// values whose text is a canonical grid rendering (shortest-roundtrip
/// double or plain integer form) -- so `10` and `0.05` become numbers
/// while `inf`, `nan`, `0x10`, `007`, or `1e3` stay the strings the spec
/// text spelled. Exposed for tests; the merge fold and --merge both use
/// it, so shard and single-process artifacts agree cell-for-cell.
[[nodiscard]] Value coordinate_value(const std::string& text);

/// Shared execution substrate for RE-ENTRANT runs: a resident owner (the
/// pg_serve daemon) builds the executor and shard store once and runs
/// many specs against them. In this mode the engine does NOT manage the
/// process-level observability lifecycle (no metrics reset, no tracer
/// start, no trace-file write -- those belong to the owner, which also
/// spills the shard store at drain), so concurrent run_scenario calls on
/// one context are safe. `spec.trace` must be empty (PG_CHECKed);
/// `spec.threads`/cache keys describe the run but the context's executor
/// and store are what actually execute it -- the owner is expected to
/// force-override those keys (scenario::RequestOptions documents the
/// precedence).
struct EngineContext {
  runtime::Executor* executor = nullptr;
  ShardStore* shards = nullptr;
};

/// Execute the spec on a shared context. Same validation and results as
/// the standalone overload; bit-identical output for the same resolved
/// spec (the cache/timing blocks are the usual non-deterministic
/// exclusions).
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec,
                                          EngineContext& context);

/// The thin-wrapper entry point the legacy bench_* binaries delegate to:
/// build the registered spec (env-aware), run it, print the text sink to
/// stdout, optionally also write the JSON sink to `json_out`. Returns a
/// process exit code (errors print to stderr).
int run_legacy_bench(const std::string& name, const std::string& json_out = "");

}  // namespace pg::scenario
