// The scenario engine: one loop that executes any ScenarioSpec.
//
// run_scenario resolves the spec's execution envelope (executor width,
// cache layers), dispatches on `spec.kind` to the matching runner, and
// returns a structured ScenarioResult. When the spec carries `sweep`
// axes (scenario/sweep.h) the engine instead expands the cross-product
// grid and runs every point through the same dispatch -- one executor,
// one shared cache bundle -- then merges the per-point results into a
// single ScenarioResult whose tables lead with the axis coordinates. Each runner drives the same sim/
// and core/ entry points the legacy bench binaries called with the same
// parameters and seeds, so at a fixed seed the numbers are bit-identical
// to the pre-refactor benches -- and bit-identical at 1 vs N threads,
// inherited from the runtime's determinism contract.
//
// Caching: when `spec.use_cache` is on, every experiment context gets a
// PayoffCache shard keyed by its context fingerprint; retrain-priced
// cells (sweep cells, mixed-eval cells, ablation pipeline runs) memoize
// into the shard, and when a cache directory is configured (spec field or
// $PG_CACHE_DIR) each shard is preloaded from and spilled back to disk,
// so a re-run -- or a tweaked sweep overlapping the old grid -- reuses
// prior retrains across processes. The resulting traffic is reported in
// ScenarioResult::cache; a warm re-run shows cells_retrained == 0.
#pragma once

#include <string>

#include "scenario/result.h"
#include "scenario/spec.h"

namespace pg::scenario {

/// Execute the spec. Throws std::invalid_argument on an unknown kind or
/// out-of-range knobs (the validation the per-bench mains used to spread
/// across eight copies of main()).
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

/// The thin-wrapper entry point the legacy bench_* binaries delegate to:
/// build the registered spec (env-aware), run it, print the text sink to
/// stdout, optionally also write the JSON sink to `json_out`. Returns a
/// process exit code (errors print to stderr).
int run_legacy_bench(const std::string& name, const std::string& json_out = "");

}  // namespace pg::scenario
