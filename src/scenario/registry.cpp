#include "scenario/registry.h"

#include <algorithm>

#include "util/env.h"
#include "util/error.h"

namespace pg::scenario {

namespace {

/// The shared PG_BENCH_* envelope every legacy bench started from
/// (bench_common.h's paper_config + sweep_reps + bench_executor).
ScenarioSpec paper_base() {
  ScenarioSpec spec;
  spec.seed = util::env_size("PG_BENCH_SEED", 42);
  spec.instances = util::env_size("PG_BENCH_INSTANCES", 4601);
  spec.epochs = util::env_size("PG_BENCH_EPOCHS", 300);
  spec.replications = util::env_size("PG_BENCH_REPS", 2);
  spec.threads = util::env_size("PG_BENCH_THREADS", 0);
  return spec;
}

/// The reduced envelope several benches used for structure-not-scale
/// experiments: min(paper size, cap), preserving env override semantics.
ScenarioSpec reduced_base(std::size_t max_instances, std::size_t max_epochs) {
  ScenarioSpec spec = paper_base();
  spec.instances = std::min(spec.instances, max_instances);
  spec.epochs = std::min(spec.epochs, max_epochs);
  return spec;
}

ScenarioSpec make_fig1() {
  ScenarioSpec spec = paper_base();
  spec.name = "fig1";
  spec.kind = "pure_sweep";
  spec.description = "Figure 1: pure strategy defense under optimal attack";
  return spec;
}

ScenarioSpec make_table1() {
  ScenarioSpec spec = paper_base();
  spec.name = "table1";
  spec.kind = "mixed_table";
  spec.description = "Table 1: mixed strategy defense under optimal attack";
  spec.draws = 3;
  spec.support_min = 2;
  spec.support_max = 3;
  return spec;
}

ScenarioSpec make_prop1() {
  ScenarioSpec spec = reduced_base(1500, 120);
  spec.name = "prop1";
  spec.kind = "pure_ne";
  spec.description = "Proposition 1: non-existence of pure strategy NE";
  return spec;
}

ScenarioSpec make_nsweep() {
  ScenarioSpec spec = paper_base();
  spec.name = "nsweep";
  spec.kind = "support_sweep";
  spec.description = "Support-size sweep: accuracy plateau after n = 3";
  spec.draws = 2;
  spec.support_min = 1;
  spec.support_max = 5;
  return spec;
}

ScenarioSpec make_transfer() {
  ScenarioSpec spec = reduced_base(2000, 150);
  spec.name = "transfer";
  spec.kind = "transfer";
  spec.description = "Curve-transfer extension: does E/Gamma generalize?";
  spec.draws = 2;
  spec.support_max = 3;
  return spec;
}

ScenarioSpec make_solver_ablation() {
  ScenarioSpec spec = reduced_base(1500, 120);
  spec.name = "solver_ablation";
  spec.kind = "solver_ablation";
  spec.description = "Solver ablation: four routes to the mixed NE";
  return spec;
}

ScenarioSpec make_defense_ablation() {
  ScenarioSpec spec = reduced_base(2000, 150);
  spec.name = "defense_ablation";
  spec.kind = "defense_ablation";
  spec.description = "Defense ablations: centroid drift + sanitizer families";
  return spec;
}

ScenarioSpec make_solver_parallel() {
  ScenarioSpec spec = paper_base();
  spec.name = "solver_parallel";
  spec.kind = "solver_parallel";
  spec.description = "Parallel solver engine: speedup_vs_serial";
  spec.timing_reps = util::env_size("PG_BENCH_SOLVER_REPS", 3);
  // Narrow games where fork-join dispatch used to lose: the fp_narrow
  // table tracks the PersistentTeam speedup on them. (The committed
  // golden .spec predates the key, so baselines stay byte-stable.)
  spec.fp_narrow_sizes = "24,48,96";
  return spec;
}

ScenarioSpec make_micro() {
  ScenarioSpec spec = paper_base();
  spec.name = "micro";
  spec.kind = "micro";
  spec.description = "Micro kernels: payoff grid + solver speedup_vs_serial";
  spec.timing_reps = util::env_size("PG_BENCH_SOLVER_REPS", 1);
  return spec;
}

ScenarioSpec make_serve_metrics() {
  // Service health, not simulation: sized by nothing, so the paper
  // envelope's knobs are irrelevant -- a bare spec keeps the golden
  // baseline independent of PG_BENCH_* overrides.
  ScenarioSpec spec;
  spec.name = "serve_metrics";
  spec.kind = "serve_metrics";
  spec.description =
      "Service health: serve/fault/retry counters + protocol versions";
  return spec;
}

}  // namespace

ScenarioRegistry::ScenarioRegistry() {
  const auto add = [this](ScenarioSpec (*make)()) {
    const ScenarioSpec spec = make();
    entries_.push_back({spec.name, spec.kind, spec.description, make});
  };
  add(&make_fig1);
  add(&make_table1);
  add(&make_prop1);
  add(&make_nsweep);
  add(&make_transfer);
  add(&make_solver_ablation);
  add(&make_defense_ablation);
  add(&make_solver_parallel);
  add(&make_micro);
  add(&make_serve_metrics);
}

const ScenarioRegistry& ScenarioRegistry::instance() {
  static const ScenarioRegistry registry;
  return registry;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const ScenarioEntry& e : entries_) out.push_back(e.name);
  return out;
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const ScenarioEntry& e) { return e.name == name; });
}

ScenarioSpec ScenarioRegistry::make(const std::string& name) const {
  for (const ScenarioEntry& e : entries_) {
    if (e.name == name) return e.make();
  }
  PG_CHECK(false, "unknown scenario: " + name +
                      " (pg_run --list shows the catalog)");
  return ScenarioSpec{};  // unreachable
}

}  // namespace pg::scenario
