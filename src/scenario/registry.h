// Named scenario catalog: every paper reproduction the bench binaries
// used to hard-code, expressed as a ScenarioSpec factory.
//
// The factories read the historical PG_BENCH_* environment knobs
// (seed/instances/epochs/replications/threads, see bench/bench_common.h)
// exactly the way the legacy benches did -- including the per-scenario
// size caps (prop1 ran at min(instances, 1500), etc.) -- so a spec built
// here reproduces the pre-refactor bench configuration bit for bit at any
// env setting. CLI overrides (`--set`) then apply on top of the built
// spec.
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.h"

namespace pg::scenario {

struct ScenarioEntry {
  std::string name;
  std::string kind;
  std::string description;
  /// Build the (env-aware) spec for this scenario.
  ScenarioSpec (*make)();
};

class ScenarioRegistry {
 public:
  /// The process-wide catalog (immutable after construction).
  [[nodiscard]] static const ScenarioRegistry& instance();

  [[nodiscard]] const std::vector<ScenarioEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] bool contains(const std::string& name) const;
  /// Build the named spec. Throws std::invalid_argument on unknown names.
  [[nodiscard]] ScenarioSpec make(const std::string& name) const;

 private:
  ScenarioRegistry();
  std::vector<ScenarioEntry> entries_;
};

}  // namespace pg::scenario
