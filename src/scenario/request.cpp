#include "scenario/request.h"

#include "scenario/registry.h"
#include "util/error.h"

namespace pg::scenario {

ScenarioSpec RequestOptions::resolve() const {
  PG_CHECK(scenario.empty() || spec_text.empty(),
           "request: scenario name and spec text are mutually exclusive");
  PG_CHECK(!scenario.empty() || !spec_text.empty(),
           "request: needs a scenario name or spec text");
  ScenarioSpec spec = !scenario.empty()
                          ? ScenarioRegistry::instance().make(scenario)
                          : ScenarioSpec::parse(spec_text);
  for (const auto& [key, value] : overrides) {
    if (key == "sweep+") {
      spec.add_sweep(value);  // appends an axis; plain "sweep" replaces
    } else {
      spec.set(key, value);
    }
  }
  return spec;
}

}  // namespace pg::scenario
