// One source of truth for resolving "what should actually run" from the
// three places a scenario can be described: a registry name, raw spec
// text, and a list of key=value overrides. Both front ends -- the pg_run
// CLI and the pg_serve daemon -- build a RequestOptions and call
// resolve(), so option precedence is defined exactly once:
//
//     overrides (CLI --set/--sweep, or server-enforced config)
//   > spec text / registry defaults (incl. their PG_BENCH_* env reads)
//
// Overrides apply in list order (last wins), matching repeated --set
// flags; the special key "sweep+" APPENDS a grid axis instead of
// replacing the sweep list, which is how --sweep composes with a spec
// that already declares axes. The server pushes its execution-envelope
// keys (threads, cache_*, trace) as trailing overrides -- "server config
// wins" is a precedence rule, not a special case.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "scenario/spec.h"

namespace pg::scenario {

struct RequestOptions {
  /// Registry scenario name. Mutually exclusive with `spec_text`.
  std::string scenario;
  /// Raw key=value spec text (a --spec file's contents, or a pg_serve
  /// request body). Mutually exclusive with `scenario`.
  std::string spec_text;
  /// Applied in order, last wins; key "sweep+" appends a sweep axis.
  std::vector<std::pair<std::string, std::string>> overrides;

  /// Resolve to a runnable spec. Throws std::invalid_argument when
  /// neither or both of scenario/spec_text are set, on an unknown
  /// scenario name, and on any parse/validation error in the spec text
  /// or overrides.
  [[nodiscard]] ScenarioSpec resolve() const;
};

}  // namespace pg::scenario
