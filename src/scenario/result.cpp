#include "scenario/result.h"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/metrics.h"
#include "serve/protocol.h"
#include "util/error.h"
#include "util/table.h"

namespace pg::scenario {

namespace {

/// util::format_double_roundtrip (shortest lossless decimal) extended
/// with the non-finite spellings the sinks need.
std::string format_number(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  return util::format_double_roundtrip(v);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c));
          out += os.str();
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void write_json_value(const Value& v, std::ostream& out) {
  if (v.is_number()) {
    // JSON has no nan/inf literal; null is the conventional stand-in.
    if (std::isnan(v.number()) || std::isinf(v.number())) {
      out << "null";
    } else {
      out << format_number(v.number());
    }
  } else {
    out << '"' << json_escape(v.text()) << '"';
  }
}

/// Bit-exact cell encoding for partial (shard) envelopes. The plain
/// sink maps non-finite numbers to JSON null -- fine for display, fatal
/// for a merge that must reconstruct the exact Value a runner produced.
/// Partials therefore tag non-finite cells as {"nf": "inf"|"-inf"|"nan"};
/// finite numbers and strings round-trip through the normal forms
/// (shortest-exact decimal / escaped string) already.
void write_exact_value(const Value& v, std::ostream& out) {
  if (v.is_number() && (std::isnan(v.number()) || std::isinf(v.number()))) {
    out << "{\"nf\": \"" << format_number(v.number()) << "\"}";
    return;
  }
  write_json_value(v, out);
}

/// The partial block of a shard artifact: identity (shard/total/grid),
/// covered plan indices, the resolved base spec text (the merge's
/// cross-shard consistency key), and every covered point's raw output.
void write_partial_block(const ShardEnvelope& partial, std::ostream& out) {
  out << "  \"partial\": {\n";
  out << "    \"shard\": " << partial.shard << ",\n";
  out << "    \"total_shards\": " << partial.total_shards << ",\n";
  out << "    \"grid_size\": " << partial.grid_size << ",\n";
  out << "    \"covered\": [";
  for (std::size_t i = 0; i < partial.points.size(); ++i) {
    if (i > 0) out << ", ";
    out << partial.points[i].index;
  }
  out << "],\n";
  out << "    \"spec_text\": \"" << json_escape(partial.spec_text) << "\",\n";
  out << "    \"points\": [";
  for (std::size_t p = 0; p < partial.points.size(); ++p) {
    const PartialPoint& point = partial.points[p];
    if (p > 0) out << ",";
    out << "\n      {\"index\": " << point.index << ", \"metrics\": {";
    for (std::size_t i = 0; i < point.metrics.size(); ++i) {
      if (i > 0) out << ", ";
      out << '"' << json_escape(point.metrics[i].first) << "\": ";
      write_exact_value(point.metrics[i].second, out);
    }
    out << "}, \"tables\": [";
    for (std::size_t t = 0; t < point.tables.size(); ++t) {
      const ResultTable& table = point.tables[t];
      if (t > 0) out << ", ";
      out << "{\"name\": \"" << json_escape(table.name)
          << "\", \"columns\": [";
      for (std::size_t c = 0; c < table.columns.size(); ++c) {
        if (c > 0) out << ", ";
        out << '"' << json_escape(table.columns[c]) << '"';
      }
      out << "], \"rows\": [";
      for (std::size_t r = 0; r < table.rows.size(); ++r) {
        if (r > 0) out << ", ";
        out << "[";
        for (std::size_t c = 0; c < table.rows[r].size(); ++c) {
          if (c > 0) out << ", ";
          write_exact_value(table.rows[r][c], out);
        }
        out << "]";
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "\n    ]\n  },\n";
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

std::string Value::render() const {
  return is_number_ ? format_number(number_) : text_;
}

void ResultTable::add_row(std::vector<Value> row) {
  PG_CHECK(row.size() == columns.size(),
           "ResultTable " + name + ": row width mismatch");
  rows.push_back(std::move(row));
}

namespace {

/// The ordinary (non-partial) JSON document; write_json embeds it as the
/// "result" member when the run is a shard partial.
void write_json_run(const ScenarioResult& result, std::ostream& out) {
  out << "{\n";
  // Contract for downstream tooling (CI artifacts, cross-PR perf
  // trajectories): the member set at each version only GROWS -- a bump
  // means a member was renamed, retyped, or removed, so stored artifacts
  // from different versions must not be compared blindly. pg_run
  // --compare ignores members it does not align, so adding fields never
  // breaks old baselines. serve::kSchemaVersion is the ONE number shared
  // by every JSON artifact the project emits (results, metrics
  // snapshots, response envelopes).
  out << "  \"schema_version\": " << serve::kSchemaVersion << ",\n";
  out << "  \"scenario\": \"" << json_escape(result.spec.name) << "\",\n";
  out << "  \"kind\": \"" << json_escape(result.spec.kind) << "\",\n";
  out << "  \"description\": \"" << json_escape(result.spec.description)
      << "\",\n";
  out << "  \"threads\": " << result.executor_threads << ",\n";
  out << "  \"elapsed_seconds\": " << format_number(result.elapsed_seconds)
      << ",\n";
  out << "  \"sweep_axes\": [";
  for (std::size_t i = 0; i < result.sweep_axes.size(); ++i) {
    if (i > 0) out << ", ";
    out << '"' << json_escape(result.sweep_axes[i]) << '"';
  }
  out << "],\n";
  out << "  \"cache\": {\"enabled\": "
      << (result.cache.enabled ? "true" : "false")
      << ", \"disk_enabled\": " << (result.cache.disk_enabled ? "true" : "false")
      << ", \"disk_dir\": \"" << json_escape(result.cache.disk_dir) << "\""
      << ", \"shards\": " << result.cache.shards
      << ", \"cells_total\": " << result.cache.cells_total
      << ", \"cells_retrained\": " << result.cache.cells_retrained
      << ", \"cache_hits\": " << result.cache.cache_hits
      << ", \"disk_entries_loaded\": " << result.cache.disk_entries_loaded
      << ", \"disk_entries_saved\": " << result.cache.disk_entries_saved
      << ", \"disk_max_bytes\": " << result.cache.disk_max_bytes
      << ", \"disk_shards_evicted\": " << result.cache.disk_shards_evicted
      << "},\n";
  out << "  \"metrics\": {";
  for (std::size_t i = 0; i < result.metrics.size(); ++i) {
    if (i > 0) out << ", ";
    out << '"' << json_escape(result.metrics[i].first) << "\": ";
    write_json_value(result.metrics[i].second, out);
  }
  out << "},\n";
  out << "  \"tables\": [";
  for (std::size_t t = 0; t < result.tables.size(); ++t) {
    const ResultTable& table = result.tables[t];
    if (t > 0) out << ",";
    out << "\n    {\"name\": \"" << json_escape(table.name)
        << "\", \"columns\": [";
    for (std::size_t c = 0; c < table.columns.size(); ++c) {
      if (c > 0) out << ", ";
      out << '"' << json_escape(table.columns[c]) << '"';
    }
    out << "], \"rows\": [";
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      if (r > 0) out << ", ";
      out << "[";
      for (std::size_t c = 0; c < table.rows[r].size(); ++c) {
        if (c > 0) out << ", ";
        write_json_value(table.rows[r][c], out);
      }
      out << "]";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace

void write_json(const ScenarioResult& result, std::ostream& out) {
  if (!result.partial.active()) {
    write_json_run(result, out);
    return;
  }
  // Shard partial: wrap the normal document in an envelope carrying the
  // shard identity + raw per-point data, under the SAME schema_version
  // (grow-only contract; `pg_run --compare` unwraps this the way it
  // unwraps serve response envelopes, and `pg_run --merge` consumes it).
  out << "{\n";
  out << "  \"schema_version\": " << serve::kSchemaVersion << ",\n";
  write_partial_block(result.partial, out);
  out << "  \"result\": ";
  std::ostringstream body;
  write_json_run(result, body);
  std::string text = body.str();
  while (!text.empty() && text.back() == '\n') text.pop_back();
  out << text << "\n}\n";
}

void write_csv(const ScenarioResult& result, std::ostream& out) {
  out << "# scenario," << csv_escape(result.spec.name) << "\n";
  if (result.partial.active()) {
    out << "# shard," << result.partial.shard << "/"
        << result.partial.total_shards << ",points,"
        << result.partial.points.size() << ",grid_size,"
        << result.partial.grid_size << "\n";
  }
  if (!result.sweep_axes.empty()) {
    out << "# sweep_axes";
    for (const std::string& axis : result.sweep_axes) {
      out << "," << csv_escape(axis);
    }
    out << "\n";
  }
  out << "metric,value\n";
  out << "threads," << result.executor_threads << "\n";
  out << "elapsed_seconds," << format_number(result.elapsed_seconds) << "\n";
  out << "cells_total," << result.cache.cells_total << "\n";
  out << "cells_retrained," << result.cache.cells_retrained << "\n";
  out << "cache_hits," << result.cache.cache_hits << "\n";
  out << "disk_entries_loaded," << result.cache.disk_entries_loaded << "\n";
  out << "disk_entries_saved," << result.cache.disk_entries_saved << "\n";
  out << "disk_shards_evicted," << result.cache.disk_shards_evicted << "\n";
  for (const auto& [key, value] : result.metrics) {
    out << csv_escape(key) << "," << csv_escape(value.render()) << "\n";
  }
  for (const ResultTable& table : result.tables) {
    out << "\n# table," << csv_escape(table.name) << "\n";
    for (std::size_t c = 0; c < table.columns.size(); ++c) {
      if (c > 0) out << ",";
      out << csv_escape(table.columns[c]);
    }
    out << "\n";
    for (const auto& row : table.rows) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out << ",";
        out << csv_escape(row[c].render());
      }
      out << "\n";
    }
  }
}

void write_text(const ScenarioResult& result, std::ostream& out) {
  out << "=== "
      << (result.spec.description.empty() ? result.spec.name
                                          : result.spec.description)
      << " ===\n";
  out << "scenario: " << result.spec.name << " (kind " << result.spec.kind
      << ")\n";
  if (result.partial.active()) {
    out << "shard: " << result.partial.shard << "/"
        << result.partial.total_shards << " (" << result.partial.points.size()
        << " of " << result.partial.grid_size
        << " grid points; merge partials with pg_run --merge)\n";
  }
  out << "executor threads: " << result.executor_threads << "\n";
  if (!result.sweep_axes.empty()) {
    out << "sweep axes:";
    for (const std::string& axis : result.sweep_axes) out << " " << axis;
    out << "\n";
  }
  for (const auto& [key, value] : result.metrics) {
    out << key << ": " << value.render() << "\n";
  }
  for (const ResultTable& table : result.tables) {
    out << "\n--- " << table.name << " ---\n";
    util::TextTable text_table(table.columns);
    for (const auto& row : table.rows) {
      std::vector<std::string> cells;
      cells.reserve(row.size());
      for (const Value& v : row) cells.push_back(v.render());
      text_table.add_row(std::move(cells));
    }
    out << text_table.str();
  }
  if (result.cache.enabled) {
    out << "\npayoff cache: " << result.cache.cells_retrained
        << " cells retrained, " << result.cache.cache_hits
        << " served from cache";
    if (result.cache.disk_enabled) {
      out << ", " << result.cache.disk_entries_loaded
          << " entries loaded from disk (" << result.cache.disk_dir << ")";
      if (result.cache.disk_shards_evicted > 0) {
        out << ", " << result.cache.disk_shards_evicted
            << " shard(s) evicted to fit " << result.cache.disk_max_bytes
            << " bytes";
      }
    }
    out << "\n";
  }
  out << "\nelapsed: " << util::format_double(result.elapsed_seconds, 1)
      << "s\n";
}

void append_metrics_tables(ScenarioResult& result) {
  const auto snapshot = obs::snapshot_metrics();
  ResultTable counters{"telemetry_counters", {"metric", "value"}, {}};
  ResultTable timers{
      "telemetry_timers",
      {"metric", "count", "total_ms", "mean_ms", "min_ms", "max_ms"},
      {}};
  for (const auto& m : snapshot) {
    if (m.kind == obs::MetricSnapshot::Kind::kTimer) {
      const double mean =
          m.count > 0 ? m.total_ms / static_cast<double>(m.count) : 0.0;
      timers.add_row(
          {m.name, m.count, m.total_ms, mean, m.min_ms, m.max_ms});
    } else {
      counters.add_row({m.name, m.count});
    }
  }
  result.tables.push_back(std::move(counters));
  result.tables.push_back(std::move(timers));
}

void write_metrics_json(const std::string& scenario, std::ostream& out) {
  const auto snapshot = obs::snapshot_metrics();
  out << "{\n  \"schema_version\": " << serve::kSchemaVersion << ",\n";
  out << "  \"scenario\": \"" << json_escape(scenario) << "\",\n";
  out << "  \"metrics\": [";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto& m = snapshot[i];
    const char* kind =
        m.kind == obs::MetricSnapshot::Kind::kTimer
            ? "timer"
            : (m.kind == obs::MetricSnapshot::Kind::kGauge ? "gauge"
                                                           : "counter");
    if (i > 0) out << ",";
    out << "\n    {\"name\": \"" << json_escape(m.name) << "\", \"kind\": \""
        << kind << "\", \"count\": " << m.count;
    if (m.kind == obs::MetricSnapshot::Kind::kTimer) {
      const double mean =
          m.count > 0 ? m.total_ms / static_cast<double>(m.count) : 0.0;
      out << ", \"total_ms\": " << format_number(m.total_ms)
          << ", \"mean_ms\": " << format_number(mean)
          << ", \"min_ms\": " << format_number(m.min_ms)
          << ", \"max_ms\": " << format_number(m.max_ms);
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
}

void write_result(const ScenarioResult& result, const std::string& format,
                  std::ostream& out) {
  if (format == "json") {
    write_json(result, out);
  } else if (format == "csv") {
    write_csv(result, out);
  } else if (format == "text") {
    write_text(result, out);
  } else {
    PG_CHECK(false, "unknown output format: " + format +
                        " (expected json, csv, or text)");
  }
}

}  // namespace pg::scenario
