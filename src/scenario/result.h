// Structured scenario output: named tables + scalar metrics + cache
// stats, emitted through pluggable sinks.
//
// Every scenario runner fills one ScenarioResult instead of printf-ing;
// the sinks render it as JSON (machine consumption, the CI artifact
// trail), CSV (external plotting), or aligned text (the human-facing
// format the legacy bench wrappers print). Values are stored raw -- a
// number stays a double all the way to the sink -- so the JSON/CSV
// output is exactly what the engine computed, with no formatting loss.
//
// Determinism note: everything in a result is bit-identical across runs
// and thread counts EXCEPT the fields that measure wall-clock time. By
// convention those live in columns/metrics whose name ends in "_ms" or
// "_seconds", or contains "speedup" (a ratio of wall-clock times), plus
// the top-level elapsed_seconds -- so a comparison tool can strip timing
// by name; tests/scenario_test.cpp and scenario/diff.cpp both do.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "scenario/spec.h"

namespace pg::scenario {

/// A table/metric cell: either a double or a string.
class Value {
 public:
  Value() : number_(0.0), is_number_(true) {}
  Value(double v) : number_(v), is_number_(true) {}
  Value(std::size_t v) : number_(static_cast<double>(v)), is_number_(true) {}
  Value(int v) : number_(v), is_number_(true) {}
  Value(std::string s) : text_(std::move(s)), is_number_(false) {}
  Value(const char* s) : text_(s), is_number_(false) {}

  [[nodiscard]] bool is_number() const noexcept { return is_number_; }
  [[nodiscard]] double number() const noexcept { return number_; }
  [[nodiscard]] const std::string& text() const noexcept { return text_; }

  /// Uniform display form: numbers render shortest-exact, strings as-is.
  [[nodiscard]] std::string render() const;

 private:
  double number_ = 0.0;
  std::string text_;
  bool is_number_ = false;
};

struct ResultTable {
  std::string name;
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  /// Append a row; must match the column count (checked).
  void add_row(std::vector<Value> row);
};

/// Aggregated caching behavior of one engine run (summed over every
/// context shard the scenario touched). `cells_retrained == 0` on a warm
/// disk-cached re-run is the cross-process resume guarantee the CI
/// asserts.
struct CacheReport {
  bool enabled = false;       // in-memory memoization on?
  bool disk_enabled = false;  // disk spill configured?
  std::string disk_dir;
  std::size_t shards = 0;
  std::size_t cells_total = 0;
  std::size_t cells_retrained = 0;
  std::size_t cache_hits = 0;
  std::size_t disk_entries_loaded = 0;
  std::size_t disk_entries_saved = 0;
  std::uint64_t disk_max_bytes = 0;  // 0 = unbounded
  std::size_t disk_shards_evicted = 0;
};

/// One grid point's raw output inside a shard's partial envelope: the
/// point's PLAN index plus its un-merged metrics and tables, exactly as
/// the runner produced them. The merge entry point replays these through
/// the same merge_sweep_point fold a single-process run uses, so the
/// stitched artifact is value-identical to never having sharded at all.
struct PartialPoint {
  std::size_t index = 0;
  std::vector<std::pair<std::string, Value>> metrics;
  std::vector<ResultTable> tables;
};

/// The shard identity a `pg_run --shard i/N` partial carries: which
/// stride of which grid this artifact covers, plus the per-point raw
/// data the merge reconstructs from. `spec_text` is the resolved base
/// spec's canonical text -- identical across every shard of one sweep,
/// and the merge's cross-shard consistency check. Inactive
/// (total_shards == 0) on ordinary runs.
struct ShardEnvelope {
  std::size_t shard = 0;
  std::size_t total_shards = 0;  // 0 = not a partial
  std::size_t grid_size = 0;     // full plan size, not this shard's share
  std::string spec_text;
  std::vector<PartialPoint> points;  // ascending plan index

  [[nodiscard]] bool active() const noexcept { return total_shards > 0; }
};

struct ScenarioResult {
  ScenarioSpec spec;
  std::size_t executor_threads = 0;
  double elapsed_seconds = 0.0;
  /// Sweep-grid runs only: the axis keys, in declaration order. Each
  /// table then leads with one coordinate column per axis, so a sink
  /// consumer (or the --compare differ) can align rows across runs by
  /// their grid coordinates. Empty for single-point runs.
  std::vector<std::string> sweep_axes;
  /// Ordered scalar facts (corpus sizes, derived claims, ...).
  std::vector<std::pair<std::string, Value>> metrics;
  std::vector<ResultTable> tables;
  CacheReport cache;
  /// `--shard i/N` runs only: shard identity + per-point raw data. When
  /// active, the JSON sink wraps the normal body in a partial envelope
  /// (under the same schema_version) that `pg_run --merge` consumes.
  ShardEnvelope partial;

  void add_metric(std::string key, Value value) {
    metrics.emplace_back(std::move(key), std::move(value));
  }
};

/// The three sink backends.
void write_json(const ScenarioResult& result, std::ostream& out);
void write_csv(const ScenarioResult& result, std::ostream& out);
void write_text(const ScenarioResult& result, std::ostream& out);

/// Dispatch on "json" | "csv" | "text"; throws std::invalid_argument on
/// anything else.
void write_result(const ScenarioResult& result, const std::string& format,
                  std::ostream& out);

/// Append the current metrics-registry snapshot (src/obs/metrics.h) as
/// two tables: `telemetry_counters` (metric, value -- counters and
/// gauges) and `telemetry_timers` (metric, count, total_ms, mean_ms,
/// min_ms, max_ms). The engine calls this when the spec sets
/// `metrics=true`. The `telemetry` name prefix keeps both tables out of
/// golden comparison by default (scenario/diff.h) -- their values are
/// scheduling-dependent by nature. No-op when PG_OBS is compiled out
/// (empty snapshot adds empty tables so the section is still visible).
void append_metrics_tables(ScenarioResult& result);

/// Write the metrics snapshot as a small standalone JSON document:
/// {"schema_version": 1, "scenario": ..., "metrics": [{name, kind,
/// count, total_ms, mean_ms, min_ms, max_ms}, ...]}. This is the
/// `pg_run --metrics-out FILE` payload and the format committed under
/// bench/snapshots/.
void write_metrics_json(const std::string& scenario, std::ostream& out);

}  // namespace pg::scenario
