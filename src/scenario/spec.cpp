#include "scenario/spec.h"

#include <cstdlib>
#include <sstream>
#include <type_traits>

#include "scenario/sweep.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"

namespace pg::scenario {

namespace {

std::uint64_t parse_u64(const std::string& key, const std::string& value);
double parse_double(const std::string& key, const std::string& value);
bool parse_bool(const std::string& key, const std::string& value);

/// One settable field: a key plus typed set/get thunks over a member
/// pointer. Every access route (parse, print, --set) goes through this
/// table, so the three cannot drift apart.
struct Field {
  const char* key;
  void (*set)(ScenarioSpec&, const std::string& key, const std::string& value);
  std::string (*get)(const ScenarioSpec&);
};

template <auto Member>
void set_field(ScenarioSpec& spec, const std::string& key,
               const std::string& value) {
  auto& slot = spec.*Member;
  using T = std::decay_t<decltype(slot)>;
  if constexpr (std::is_same_v<T, std::string>) {
    slot = value;
  } else if constexpr (std::is_same_v<T, bool>) {
    slot = parse_bool(key, value);
  } else if constexpr (std::is_same_v<T, double>) {
    slot = parse_double(key, value);
  } else {
    slot = static_cast<T>(parse_u64(key, value));
  }
}

// The `sweep` key is list-valued: set() replaces the whole axis list
// with the `;`-separated clauses it is given (so --set stays last-wins),
// get() joins the normalized clauses back with "; ". Appending happens
// in parse() (repeated `sweep` lines) and through add_sweep().
void set_sweep_field(ScenarioSpec& spec, const std::string& key,
                     const std::string& value) {
  (void)key;
  // Parse into a scratch spec first: a malformed clause must leave the
  // target's axis list untouched, not half-replaced.
  ScenarioSpec scratch;
  scratch.add_sweep(value);
  spec.sweeps = std::move(scratch.sweeps);
}

std::string get_sweep_field(const ScenarioSpec& spec) {
  std::string out;
  for (std::size_t i = 0; i < spec.sweeps.size(); ++i) {
    if (i > 0) out += "; ";
    out += spec.sweeps[i];
  }
  return out;
}

template <auto Member>
std::string get_field(const ScenarioSpec& spec) {
  const auto& slot = spec.*Member;
  using T = std::decay_t<decltype(slot)>;
  if constexpr (std::is_same_v<T, std::string>) {
    return slot;
  } else if constexpr (std::is_same_v<T, bool>) {
    return slot ? "true" : "false";
  } else if constexpr (std::is_same_v<T, double>) {
    // util::format_double_roundtrip keeps parse(to_text()) bit-exact.
    return util::format_double_roundtrip(slot);
  } else {
    return std::to_string(slot);
  }
}

#define PG_SPEC_FIELD(member) \
  Field { #member, &set_field<&ScenarioSpec::member>, \
          &get_field<&ScenarioSpec::member> }

const std::vector<Field>& field_table() {
  static const std::vector<Field> table = {
      PG_SPEC_FIELD(name),
      PG_SPEC_FIELD(kind),
      PG_SPEC_FIELD(description),
      PG_SPEC_FIELD(seed),
      PG_SPEC_FIELD(instances),
      PG_SPEC_FIELD(epochs),
      PG_SPEC_FIELD(train_fraction),
      PG_SPEC_FIELD(poison_fraction),
      PG_SPEC_FIELD(class_separation),
      PG_SPEC_FIELD(real_corpus),
      PG_SPEC_FIELD(sweep_max),
      PG_SPEC_FIELD(sweep_steps),
      PG_SPEC_FIELD(replications),
      Field{"sweep", &set_sweep_field, &get_sweep_field},
      PG_SPEC_FIELD(aggregate),
      PG_SPEC_FIELD(draws),
      PG_SPEC_FIELD(support_min),
      PG_SPEC_FIELD(support_max),
      PG_SPEC_FIELD(attacks),
      PG_SPEC_FIELD(defenses),
      PG_SPEC_FIELD(solver_grid),
      PG_SPEC_FIELD(solver_iterations),
      PG_SPEC_FIELD(lp_pricing),
      PG_SPEC_FIELD(lp_sizes),
      PG_SPEC_FIELD(fp_sizes),
      PG_SPEC_FIELD(fp_narrow_sizes),
      PG_SPEC_FIELD(timing_reps),
      PG_SPEC_FIELD(threads),
      PG_SPEC_FIELD(kernel),
      PG_SPEC_FIELD(simd),
      PG_SPEC_FIELD(use_cache),
      PG_SPEC_FIELD(cache_dir),
      PG_SPEC_FIELD(cache_max_bytes),
      PG_SPEC_FIELD(trace),
      PG_SPEC_FIELD(metrics),
      PG_SPEC_FIELD(telemetry),
  };
  return table;
}

#undef PG_SPEC_FIELD

const Field& find_field(const std::string& key) {
  for (const Field& f : field_table()) {
    if (key == f.key) return f;
  }
  PG_CHECK(false, "unknown ScenarioSpec key: " + key);
  return field_table().front();  // unreachable
}

std::string trim(const std::string& s) { return util::trim_whitespace(s); }

/// Strip the JSON-ish decorations a line may carry: a trailing comma and
/// one layer of double quotes around the token.
std::string strip_jsonish(std::string s) {
  s = trim(s);
  if (!s.empty() && s.back() == ',') s = trim(s.substr(0, s.size() - 1));
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    s = s.substr(1, s.size() - 2);
  }
  return s;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  const std::string v = trim(value);
  PG_CHECK(!v.empty() && v.find('-') == std::string::npos,
           "ScenarioSpec " + key + ": expected a non-negative integer, got '" +
               value + "'");
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  PG_CHECK(end != nullptr && *end == '\0',
           "ScenarioSpec " + key + ": malformed integer '" + value + "'");
  return parsed;
}

double parse_double(const std::string& key, const std::string& value) {
  const std::string v = trim(value);
  PG_CHECK(!v.empty(), "ScenarioSpec " + key + ": empty number");
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  PG_CHECK(end != nullptr && *end == '\0',
           "ScenarioSpec " + key + ": malformed number '" + value + "'");
  return parsed;
}

bool parse_bool(const std::string& key, const std::string& value) {
  const std::string v = trim(value);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  PG_CHECK(false, "ScenarioSpec " + key + ": expected a boolean, got '" +
                      value + "'");
  return false;  // unreachable
}

}  // namespace

void ScenarioSpec::set(const std::string& key, const std::string& value) {
  const Field& field = find_field(key);
  field.set(*this, key, value);
}

std::string ScenarioSpec::get(const std::string& key) const {
  return find_field(key).get(*this);
}

void ScenarioSpec::add_sweep(const std::string& clauses) {
  // Validate every clause before appending any (strong guarantee: a
  // throw leaves `sweeps` unchanged). parse_sweep_clause checks the key
  // and grammar and returns the normalized clause text, so to_text()
  // prints a canonical form.
  std::vector<std::string> parsed;
  std::string item;
  std::istringstream in(clauses);
  while (std::getline(in, item, ';')) {
    item = trim(item);
    if (item.empty()) continue;
    parsed.push_back(parse_sweep_clause(item).clause);
  }
  sweeps.insert(sweeps.end(), parsed.begin(), parsed.end());
}

std::vector<std::string> ScenarioSpec::keys() {
  std::vector<std::string> out;
  out.reserve(field_table().size());
  for (const Field& f : field_table()) out.emplace_back(f.key);
  return out;
}

std::string ScenarioSpec::to_text() const {
  std::ostringstream os;
  for (const Field& f : field_table()) {
    os << f.key << " = " << get(f.key) << "\n";
  }
  return os.str();
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  ScenarioSpec spec;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = trim(raw);
    if (line.empty() || line[0] == '#' || line == "{" || line == "}") continue;
    // Accept both "key = value" and JSON-ish '"key": value,' spellings:
    // the separator is the first '=' or ':' after the (possibly quoted)
    // key, so a quoted value may itself contain either character.
    std::size_t sep = std::string::npos;
    if (line.front() == '"') {
      const std::size_t close = line.find('"', 1);
      PG_CHECK(close != std::string::npos,
               "ScenarioSpec parse: unterminated quoted key on line " +
                   std::to_string(line_no));
      sep = line.find_first_of("=:", close + 1);
    } else {
      sep = line.find_first_of("=:");
    }
    PG_CHECK(sep != std::string::npos,
             "ScenarioSpec parse: line " + std::to_string(line_no) +
                 " has no key/value separator: '" + raw + "'");
    const std::string key = strip_jsonish(line.substr(0, sep));
    const std::string value = strip_jsonish(line.substr(sep + 1));
    PG_CHECK(!key.empty(), "ScenarioSpec parse: empty key on line " +
                               std::to_string(line_no));
    if (key == "sweep") {
      spec.add_sweep(value);  // repeatable: each line appends axes
    } else {
      spec.set(key, value);
    }
  }
  return spec;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(csv);
  while (std::getline(in, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<std::size_t> parse_size_list(const std::string& csv) {
  std::vector<std::size_t> out;
  for (const std::string& item : split_list(csv)) {
    out.push_back(static_cast<std::size_t>(parse_u64("size list", item)));
  }
  return out;
}

}  // namespace pg::scenario
