// Declarative scenario description: what to run, at what size, with which
// knobs -- the data the scenario engine executes.
//
// A ScenarioSpec is a flat bag of typed fields with a uniform string
// field table, so the same struct is (a) buildable in code (the registry
// does), (b) parseable from a simple key=value text file, and
// (c) overridable one key at a time (`pg_run --set key=value`). The text
// format is line-oriented:
//
//     # comment
//     kind = pure_sweep
//     instances = 700
//     "epochs": 40,          <- JSON-ish spellings tolerated
//     sweep = seed=1,2,3     <- repeatable: each line adds one grid axis
//
// Unknown keys and malformed values throw std::invalid_argument, so a
// typo'd spec file fails loudly instead of silently running the default.
// parse(to_text()) round-trips exactly (doubles print with max precision).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pg::scenario {

struct ScenarioSpec {
  // ---- identity ------------------------------------------------------
  std::string name = "custom";
  /// Engine dispatch key: pure_sweep | mixed_table | pure_ne |
  /// support_sweep | transfer | solver_ablation | defense_ablation |
  /// solver_parallel | micro | serve_metrics.
  std::string kind;
  std::string description;

  // ---- experiment context (corpus + protocol) ------------------------
  std::uint64_t seed = 42;
  std::size_t instances = 4601;  // paper's Spambase size
  std::size_t epochs = 300;
  double train_fraction = 0.7;
  double poison_fraction = 0.2;
  double class_separation = 1.0;
  bool real_corpus = true;  // use a real spambase.data when present

  // ---- sweep axes ----------------------------------------------------
  double sweep_max = 0.40;
  std::size_t sweep_steps = 9;
  std::size_t replications = 2;
  /// Generic grid axes (normalized `key=range-or-list` clauses, see
  /// scenario/sweep.h). Non-empty turns the run into a cross-product grid
  /// executed as one engine loop. In spec text the key is `sweep` and the
  /// line is repeatable (each line appends one axis); `set("sweep", ...)`
  /// replaces the whole list with the `;`-separated clauses it is given
  /// (empty clears), so `--set sweep=...` stays last-wins like every
  /// other override.
  std::vector<std::string> sweeps;
  /// Comma-separated sweep-axis keys to aggregate over (typically
  /// replication-style axes like `seed`): the merged grid result gains a
  /// `sweep_aggregates` table with mean/min/max/count of every numeric
  /// per-point metric across the named axes, keyed by the remaining
  /// axes' coordinates -- plots need no post-processing. Empty (the
  /// default) adds nothing. Every named key must be a declared sweep
  /// axis; the engine rejects the spec otherwise.
  std::string aggregate;

  // ---- mixed-strategy evaluation ------------------------------------
  std::size_t draws = 3;
  std::size_t support_min = 2;
  std::size_t support_max = 3;

  // ---- attack / defense families (comma-separated names) -------------
  std::string attacks = "boundary,label_flip,noise";
  std::string defenses = "distance,knn,pca,roni";

  // ---- solver choices ------------------------------------------------
  std::size_t solver_grid = 128;
  std::size_t solver_iterations = 20000;
  std::string lp_pricing = "bland";  // or "dantzig" (see game/lp.h)
  std::string lp_sizes = "96,192,256,384";    // solver_parallel matrices
  std::string fp_sizes = "256,512,1024,2048";
  /// Narrow (small m + n) square sizes for solver_parallel's
  /// persistent-team table (`fp_narrow`): games where per-iteration
  /// fork-join dispatch used to lose to its own overhead and the
  /// resident-team path is the win being measured. Empty disables the
  /// table (the committed golden baselines predate it).
  std::string fp_narrow_sizes;
  std::size_t timing_reps = 3;  // best-of repetitions for timed kernels

  // ---- execution -----------------------------------------------------
  std::size_t threads = 0;  // 0 = all cores, 1 = serial
  /// Retrain kernel: "reference" (default) keeps the bit-identical
  /// sequential SGD path; "simd" batches cold payoff cells' SGD solves
  /// into SoA lockstep groups on runtime-dispatched intrinsic kernels
  /// (validated against every golden at the documented 1e-9 tolerance --
  /// see README "Kernel tiers"). Anything else is rejected up front.
  std::string kernel = "reference";
  /// SIMD tier override for kernel=simd: "" / "auto" (cpuid, after the
  /// PG_SIMD env var), or an explicit "scalar" / "sse2" / "avx2".
  /// Requesting a tier the host cannot execute is a hard error, not a
  /// silent fallback. Only meaningful with kernel=simd.
  std::string simd;
  /// Memoize payoff cells (in-memory always; spilled to/from disk when a
  /// cache dir is configured). Off = the historical uncached behavior.
  bool use_cache = true;
  /// Disk spill directory; empty defers to $PG_CACHE_DIR (and disables
  /// the disk layer when that is unset too).
  std::string cache_dir;
  /// Cap on the disk cache directory's total shard bytes; 0 = unbounded.
  /// When a run's spills push the directory past the cap, the oldest
  /// shards (by modification time) are evicted until it fits.
  std::size_t cache_max_bytes = 0;

  // ---- observability --------------------------------------------------
  // All three default off, so every committed spec and golden baseline is
  // untouched; and because tracing/metrics only OBSERVE, turning them on
  // cannot change a single result value (the golden CI job runs the full
  // suite both ways to hold that line). See src/obs/.
  /// Chrome Trace Event JSON output path (empty = tracing off). The
  /// engine records spans for the whole run and writes the file at the
  /// end; load it in chrome://tracing or Perfetto.
  std::string trace;
  /// Fold a metrics-registry snapshot into the result as
  /// `telemetry_counters` / `telemetry_timers` tables (diff-excluded by
  /// default; see scenario/diff.h).
  bool metrics = false;
  /// Attach solver convergence recorders where the scenario solves games
  /// (solver_ablation) and emit a `telemetry` table of decimated
  /// per-iteration gap samples.
  bool telemetry = false;

  // ---- uniform field access -----------------------------------------
  /// Assign one field from its string form. Throws std::invalid_argument
  /// on an unknown key or a value that does not fully parse.
  void set(const std::string& key, const std::string& value);
  /// Read one field in its string form. Throws on unknown keys.
  [[nodiscard]] std::string get(const std::string& key) const;
  /// Every settable key, in declaration order.
  [[nodiscard]] static std::vector<std::string> keys();

  /// Append sweep axes: `clauses` is one clause or a `;`-separated list.
  /// Each clause is validated and normalized through
  /// scenario/sweep.h's parse_sweep_clause, so malformed ranges and
  /// unknown axis keys throw here, at spec-build time.
  void add_sweep(const std::string& clauses);

  /// Serialize as key=value lines (all fields, declaration order).
  [[nodiscard]] std::string to_text() const;
  /// Parse key=value text over the defaults. Throws on malformed lines.
  [[nodiscard]] static ScenarioSpec parse(const std::string& text);
};

/// Split "a,b,c" into trimmed non-empty items.
[[nodiscard]] std::vector<std::string> split_list(const std::string& csv);

/// Parse a comma list of sizes, e.g. "96,192". Throws on non-numeric
/// items; empty input yields an empty list.
[[nodiscard]] std::vector<std::size_t> parse_size_list(const std::string& csv);

}  // namespace pg::scenario
