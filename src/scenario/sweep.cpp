#include "scenario/sweep.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"

namespace pg::scenario {

namespace {

std::string trim(const std::string& s) { return util::trim_whitespace(s); }

double parse_range_number(const std::string& clause, const std::string& token) {
  const std::string t = trim(token);
  PG_CHECK(!t.empty(), "sweep clause '" + clause + "': empty range endpoint");
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  PG_CHECK(end != nullptr && *end == '\0',
           "sweep clause '" + clause + "': malformed range number '" + t + "'");
  PG_CHECK(std::isfinite(v),
           "sweep clause '" + clause + "': non-finite range endpoint");
  return v;
}

/// Grid values print as integers when exactly integral so integer-typed
/// spec fields (epochs, seed, ...) accept them; everything else uses the
/// shortest-roundtrip double form.
std::string format_grid_value(double v) {
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    const long long as_int = static_cast<long long>(v);
    return std::to_string(as_int);
  }
  return util::format_double_roundtrip(v);
}

std::string join(const std::vector<std::string>& items, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace

SweepAxis parse_sweep_clause(const std::string& clause) {
  const std::string text = trim(clause);
  const std::size_t eq = text.find('=');
  PG_CHECK(eq != std::string::npos && eq > 0,
           "sweep clause '" + clause + "': expected <key>=<values>");
  SweepAxis axis;
  axis.key = trim(text.substr(0, eq));
  const std::string spec_part = trim(text.substr(eq + 1));
  PG_CHECK(!axis.key.empty(), "sweep clause '" + clause + "': empty key");
  PG_CHECK(axis.key != "sweep",
           "sweep clause '" + clause + "': sweep axes cannot be nested");
  // The cache envelope (one shared CacheBundle serves the whole grid)
  // and the display-only identity fields are resolved ONCE per run, so
  // an axis over them could never take effect -- reject it instead of
  // emitting a mislabeled grid. (`threads` and `kind` DO vary per
  // point; the engine handles both.)
  for (const char* fixed : {"use_cache", "cache_dir", "cache_max_bytes",
                            "name", "description"}) {
    PG_CHECK(axis.key != fixed,
             "sweep clause '" + clause + "': '" + fixed +
                 "' is fixed for the whole run and cannot be swept");
  }
  {
    // Unknown keys fail here, with the spec table's own error message.
    ScenarioSpec probe;
    (void)probe.get(axis.key);
  }
  PG_CHECK(!spec_part.empty(), "sweep clause '" + clause + "': no values");

  const std::size_t dots = spec_part.find("..");
  if (dots != std::string::npos) {
    // Range form: start..stop[:steps].
    const std::string start_tok = spec_part.substr(0, dots);
    std::string stop_tok = spec_part.substr(dots + 2);
    std::size_t steps = 5;  // documented default (see cli_usage / README)
    const std::size_t colon = stop_tok.find(':');
    if (colon != std::string::npos) {
      const std::string steps_tok = trim(stop_tok.substr(colon + 1));
      stop_tok = stop_tok.substr(0, colon);
      char* end = nullptr;
      const unsigned long long parsed =
          std::strtoull(steps_tok.c_str(), &end, 10);
      PG_CHECK(!steps_tok.empty() && end != nullptr && *end == '\0' &&
                   steps_tok.find('-') == std::string::npos,
               "sweep clause '" + clause + "': malformed step count '" +
                   steps_tok + "'");
      steps = static_cast<std::size_t>(parsed);
    }
    PG_CHECK(steps >= 2, "sweep clause '" + clause +
                             "': a range needs >= 2 steps (use a value list "
                             "for a single point)");
    PG_CHECK(steps <= 1000000,
             "sweep clause '" + clause + "': step count too large");
    const double start = parse_range_number(clause, start_tok);
    const double stop = parse_range_number(clause, stop_tok);
    axis.values.reserve(steps);
    for (std::size_t i = 0; i < steps; ++i) {
      const double t =
          static_cast<double>(i) / static_cast<double>(steps - 1);
      axis.values.push_back(format_grid_value(start + t * (stop - start)));
    }
    axis.clause = axis.key + "=" + format_grid_value(start) + ".." +
                  format_grid_value(stop) + ":" + std::to_string(steps);
  } else {
    // List form: v1[,v2,...]. Values keep their exact spelling.
    std::string item;
    std::size_t pos = 0;
    while (pos <= spec_part.size()) {
      const std::size_t comma = spec_part.find(',', pos);
      item = trim(spec_part.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos));
      PG_CHECK(!item.empty(),
               "sweep clause '" + clause + "': empty value in list");
      axis.values.push_back(item);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    axis.clause = axis.key + "=" + join(axis.values, ",");
  }
  return axis;
}

SweepPlan::SweepPlan(const ScenarioSpec& base) : base_(base) {
  base_.sweeps.clear();
  for (const std::string& clause : base.sweeps) {
    SweepAxis axis = parse_sweep_clause(clause);
    for (const SweepAxis& prior : axes_) {
      PG_CHECK(prior.key != axis.key,
               "duplicate sweep axis '" + axis.key + "'");
    }
    // Type-check every value now: a bad value must fail at plan time,
    // not at grid point 17 of a long run.
    ScenarioSpec scratch = base_;
    for (const std::string& value : axis.values) {
      scratch.set(axis.key, value);
    }
    PG_CHECK(size_ <= 1000000 / axis.values.size(),
             "sweep grid too large (over 1e6 points)");
    size_ *= axis.values.size();
    axes_.push_back(std::move(axis));
  }
}

std::vector<std::string> SweepPlan::axis_keys() const {
  std::vector<std::string> keys;
  keys.reserve(axes_.size());
  for (const SweepAxis& axis : axes_) keys.push_back(axis.key);
  return keys;
}

std::vector<std::pair<std::string, std::string>> SweepPlan::coordinates(
    std::size_t index) const {
  PG_CHECK(index < size_, "sweep grid index out of range");
  std::vector<std::pair<std::string, std::string>> coords(axes_.size());
  // Row-major: the last declared axis varies fastest.
  std::size_t rest = index;
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const SweepAxis& axis = axes_[a];
    coords[a] = {axis.key, axis.values[rest % axis.values.size()]};
    rest /= axis.values.size();
  }
  return coords;
}

std::vector<std::size_t> SweepPlan::shard_indices(std::size_t shard,
                                                  std::size_t total) const {
  PG_CHECK(total > 0, "shard: total shard count must be >= 1");
  PG_CHECK(shard < total, "shard: index " + std::to_string(shard) +
                              " out of range for " + std::to_string(total) +
                              " shard(s)");
  std::vector<std::size_t> covered;
  if (total > 0) covered.reserve(size_ / total + 1);
  for (std::size_t i = shard; i < size_; i += total) covered.push_back(i);
  return covered;
}

ScenarioSpec SweepPlan::child(std::size_t index) const {
  ScenarioSpec spec = base_;
  for (const auto& [key, value] : coordinates(index)) {
    spec.set(key, value);
  }
  return spec;
}

}  // namespace pg::scenario
