// First-class sweep axes: grid expansion of a ScenarioSpec.
//
// A spec may carry any number of `sweep` clauses, each naming one spec
// key and the values it takes:
//
//     sweep = epochs=100..500:5      # inclusive range, 5 grid points
//     sweep = seed=1,2,3             # explicit value list
//
// SweepPlan parses the clauses into SweepAxis objects and expands their
// cross product into child specs: child(i) is the base spec with the
// i-th coordinate tuple applied through ScenarioSpec::set (so every
// value is type-checked by the same code path `--set` uses) and its own
// sweep clauses cleared (children are leaves). The engine runs all
// children through one loop on one Executor with one shared cache
// bundle, then merges the per-point results into a single ScenarioResult
// whose table rows carry the axis coordinates.
//
// Clause grammar (parse_sweep_clause):
//
//     <key>=<start>..<stop>[:steps]     numeric range, endpoints included
//     <key>=v1[,v2,...]                 explicit values (any field type)
//
// `steps` defaults to 5 and must be >= 2; integral range values print
// without a decimal point so integer-typed fields accept them. Malformed
// clauses, unknown keys, zero-value lists, and values the named field
// rejects all throw std::invalid_argument at parse/plan time -- never a
// silent default at run time. Keys that are resolved once for the whole
// run (the cache envelope, name/description) are rejected as axes too:
// an axis that cannot take effect would only mislabel the grid.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "scenario/spec.h"

namespace pg::scenario {

/// One sweep axis: a spec key plus the ordered value list it takes.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;  // string forms, applied via spec.set
  /// Canonical clause text (ranges keep range form with explicit steps,
  /// lists re-join their values), so to_text round-trips stably.
  std::string clause;
};

/// Parse one clause. Throws std::invalid_argument on malformed syntax,
/// an unknown spec key, steps < 2, or an empty value list.
[[nodiscard]] SweepAxis parse_sweep_clause(const std::string& clause);

class SweepPlan {
 public:
  /// Parse and validate the base spec's sweep clauses. Every axis value
  /// is applied to a scratch spec here, so a value the target field
  /// cannot parse fails at plan time, before any point runs.
  explicit SweepPlan(const ScenarioSpec& base);

  [[nodiscard]] bool empty() const noexcept { return axes_.empty(); }
  [[nodiscard]] const std::vector<SweepAxis>& axes() const noexcept {
    return axes_;
  }
  /// Grid size: the product of the axis lengths (1 when empty).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Axis keys in declaration order (the coordinate column names).
  [[nodiscard]] std::vector<std::string> axis_keys() const;

  /// The (key, value) coordinate tuple of grid point `index`. Points are
  /// ordered row-major: the last declared axis varies fastest.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> coordinates(
      std::size_t index) const;

  /// Deterministic shard stride for distributed execution: the PLAN
  /// indices {shard, shard + total, shard + 2*total, ...} below size(),
  /// ascending. Shards are a partition of the grid by construction --
  /// every index belongs to exactly one shard (index % total) -- and the
  /// assignment depends only on the plan, never on completion order, so
  /// any worker can recompute any shard's coverage. A shard past the
  /// grid (shard >= size()) is legitimately empty. Throws on total == 0
  /// or shard >= total.
  [[nodiscard]] std::vector<std::size_t> shard_indices(
      std::size_t shard, std::size_t total) const;

  /// The base spec with coordinates(index) applied and sweeps cleared.
  [[nodiscard]] ScenarioSpec child(std::size_t index) const;

 private:
  ScenarioSpec base_;
  std::vector<SweepAxis> axes_;
  std::size_t size_ = 1;
};

}  // namespace pg::scenario
