#include "serve/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/error.h"

namespace pg::serve {

namespace {

std::string next_request_id() {
  static std::atomic<std::uint64_t> next{0};
  return "req-" + std::to_string(next.fetch_add(1, std::memory_order_relaxed));
}

/// Read one response frame (header line + envelope body) off `fd`.
Client::Response read_response(int fd) {
  Client::Response response;
  std::string header_line;
  if (!read_line(fd, header_line, kMaxHeaderBytes)) {
    throw std::runtime_error(
        "serve client: server closed the connection before responding");
  }
  response.header = parse_response_header(header_line);
  response.body.resize(response.header.body_bytes);
  if (response.header.body_bytes > 0 &&
      !read_exact(fd, response.body.data(), response.body.size())) {
    throw std::runtime_error("serve client: truncated response body");
  }
  return response;
}

int connect_once(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PG_CHECK(!path.empty() && path.size() < sizeof(addr.sun_path),
           "serve client: bad socket path '" + path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PG_CHECK(fd >= 0, "serve client: cannot create socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

Client Client::connect(const std::string& socket_path) {
  std::string error;
  const int fd = connect_once(socket_path, &error);
  if (fd < 0) {
    throw std::runtime_error("serve client: cannot connect to " + socket_path +
                             ": " + error);
  }
  return Client(fd);
}

Client Client::connect_retry(const std::string& socket_path,
                             std::size_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::string error;
  for (;;) {
    const int fd = connect_once(socket_path, &error);
    if (fd >= 0) return Client(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("serve client: no server on " + socket_path +
                               " after " + std::to_string(timeout_ms) +
                               " ms: " + error);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Client::~Client() {
  if (fd_ != -1) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ != -1) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::Response Client::request(const std::string& spec_text,
                                 RequestHeader meta) {
  PG_CHECK(fd_ != -1, "serve client: moved-from client");
  if (meta.request_id.empty()) meta.request_id = next_request_id();
  meta.body_bytes = spec_text.size();
  const std::string line = format_request_header(meta);
  write_all(fd_, line.data(), line.size());
  write_all(fd_, spec_text.data(), spec_text.size());
  return read_response(fd_);
}

Client::Response Client::ping(RequestHeader meta) {
  PG_CHECK(fd_ != -1, "serve client: moved-from client");
  if (meta.request_id.empty()) meta.request_id = next_request_id();
  const std::string line = format_ping_header(meta.request_id);
  write_all(fd_, line.data(), line.size());
  return read_response(fd_);
}

void Client::set_read_timeout(std::size_t timeout_ms) {
  PG_CHECK(fd_ != -1, "serve client: moved-from client");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  PG_CHECK(::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0,
           "serve client: cannot set read timeout");
}

Client::Response Client::request_retry(const std::string& socket_path,
                                       const std::string& spec_text,
                                       const RetryPolicy& policy,
                                       RequestHeader meta) {
  PG_CHECK(policy.attempts >= 1,
           "serve client: retry policy needs at least one attempt");
  std::size_t backoff = policy.backoff_ms;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      Client client = connect_retry(socket_path, policy.connect_timeout_ms);
      if (policy.read_timeout_ms != 0) {
        client.set_read_timeout(policy.read_timeout_ms);
      }
      return client.request(spec_text, meta);
    } catch (const std::exception&) {
      if (attempt + 1 >= policy.attempts) throw;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    backoff = std::min<std::size_t>(backoff * 2, 2000);
  }
}

Client::Response Client::ping_retry(const std::string& socket_path,
                                    const RetryPolicy& policy) {
  PG_CHECK(policy.attempts >= 1,
           "serve client: retry policy needs at least one attempt");
  std::size_t backoff = policy.backoff_ms;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      Client client = connect_retry(socket_path, policy.connect_timeout_ms);
      if (policy.read_timeout_ms != 0) {
        client.set_read_timeout(policy.read_timeout_ms);
      }
      return client.ping();
    } catch (const std::exception&) {
      if (attempt + 1 >= policy.attempts) throw;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    backoff = std::min<std::size_t>(backoff * 2, 2000);
  }
}

}  // namespace pg::serve
