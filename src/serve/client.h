// Minimal blocking client for the pg_serve protocol, shared by the
// pg_serve tool's client mode, the pg_bench_serve load generator, and
// serve_test. One Client is one AF_UNIX connection; request() frames a
// spec, blocks for the response, and hands back the parsed header plus
// the envelope body. NOT thread-safe -- concurrent load uses one Client
// per thread (connections are cheap; the server multiplexes them onto
// its shared executor anyway).
#pragma once

#include <string>

#include "serve/protocol.h"

namespace pg::serve {

class Client {
 public:
  struct Response {
    ResponseHeader header;
    std::string body;  // response envelope JSON
    [[nodiscard]] bool ok() const { return header.status == "ok"; }
  };

  /// One connect attempt; throws std::runtime_error on failure.
  [[nodiscard]] static Client connect(const std::string& socket_path);
  /// Retry connecting until success or `timeout_ms` elapses (covers the
  /// daemon's startup window in tests and CI).
  [[nodiscard]] static Client connect_retry(const std::string& socket_path,
                                            std::size_t timeout_ms);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one spec-text request and block for its response. `meta`
  /// carries id/priority/deadline; an empty id gets "req-<n>" from a
  /// process-wide counter; body_bytes is always overwritten.
  Response request(const std::string& spec_text, RequestHeader meta = {});

  /// Raw fd, for tests that speak the wire format directly.
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace pg::serve
