// Minimal blocking client for the pg_serve protocol, shared by the
// pg_serve tool's client mode, the pg_bench_serve load generator, and
// serve_test. One Client is one AF_UNIX connection; request() frames a
// spec, blocks for the response, and hands back the parsed header plus
// the envelope body. NOT thread-safe -- concurrent load uses one Client
// per thread (connections are cheap; the server multiplexes them onto
// its shared executor anyway).
#pragma once

#include <string>

#include "serve/protocol.h"

namespace pg::serve {

class Client {
 public:
  struct Response {
    ResponseHeader header;
    std::string body;  // response envelope JSON
    [[nodiscard]] bool ok() const { return header.status == "ok"; }
  };

  /// Transport-level retry knobs for the one-shot helpers below.
  struct RetryPolicy {
    std::size_t attempts = 3;          // total tries; 1 = no retry
    std::size_t backoff_ms = 50;       // doubles per retry, capped at 2 s
    std::size_t connect_timeout_ms = 1000;  // per-attempt connect window
    std::size_t read_timeout_ms = 0;   // 0 = block forever
  };

  /// One connect attempt; throws std::runtime_error on failure.
  [[nodiscard]] static Client connect(const std::string& socket_path);
  /// Retry connecting until success or `timeout_ms` elapses (covers the
  /// daemon's startup window in tests and CI).
  [[nodiscard]] static Client connect_retry(const std::string& socket_path,
                                            std::size_t timeout_ms);

  /// One-shot request with transport-level retry: each attempt opens a
  /// FRESH connection (a failed request leaves its old stream
  /// unframed), sends the spec, and blocks for the response. Only
  /// transport failures retry -- connect errors, torn frames, read
  /// timeouts; a structured error response IS a valid answer and
  /// returns immediately. Safe because scenario runs are deterministic
  /// and idempotent. Rethrows the last transport error once
  /// `policy.attempts` is spent.
  [[nodiscard]] static Response request_retry(const std::string& socket_path,
                                              const std::string& spec_text,
                                              const RetryPolicy& policy,
                                              RequestHeader meta = {});
  /// request_retry's twin for the ping health check.
  [[nodiscard]] static Response ping_retry(const std::string& socket_path,
                                           const RetryPolicy& policy);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one spec-text request and block for its response. `meta`
  /// carries id/priority/deadline; an empty id gets "req-<n>" from a
  /// process-wide counter; body_bytes is always overwritten.
  Response request(const std::string& spec_text, RequestHeader meta = {});

  /// Send one body-less ping frame and block for the response (an ok
  /// envelope with a {"pong": true} result on a minor>=1 server, a
  /// bad_request error on an older one).
  Response ping(RequestHeader meta = {});

  /// Bound every subsequent read on this connection: past `timeout_ms`
  /// the pending request() / ping() throws a transport error instead of
  /// blocking forever on a wedged server. 0 restores blocking reads.
  void set_read_timeout(std::size_t timeout_ms);

  /// Raw fd, for tests that speak the wire format directly.
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace pg::serve
