#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/error.h"

namespace pg::serve {

namespace {

bool valid_request_id(const std::string& id) {
  if (id.empty() || id.size() > kMaxRequestIdBytes) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  PG_CHECK(!text.empty(), "serve header: empty " + what);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  PG_CHECK(errno == 0 && end != nullptr && *end == '\0',
           "serve header: bad " + what + " '" + text + "'");
  return static_cast<std::uint64_t>(v);
}

/// Parses "PGSERVE/<major>.<minor>" and the frame-kind token; returns the
/// remaining k=v tokens.
struct FramePrefix {
  int major = 0;
  int minor = 0;
  std::vector<std::string> pairs;
};

FramePrefix parse_prefix(const std::string& line, const char* kind) {
  auto tokens = split_tokens(line);
  PG_CHECK(tokens.size() >= 2, "serve header: truncated line");
  const std::string& magic = tokens[0];
  PG_CHECK(magic.rfind("PGSERVE/", 0) == 0,
           "serve header: expected PGSERVE/<major>.<minor>, got '" + magic +
               "'");
  const std::string version = magic.substr(8);
  const std::size_t dot = version.find('.');
  PG_CHECK(dot != std::string::npos && dot > 0 && dot + 1 < version.size(),
           "serve header: bad version '" + version + "'");
  FramePrefix out;
  out.major = static_cast<int>(
      parse_u64(version.substr(0, dot), "major version"));
  out.minor = static_cast<int>(
      parse_u64(version.substr(dot + 1), "minor version"));
  PG_CHECK(tokens[1] == kind, "serve header: expected a '" +
                                  std::string(kind) + "' frame, got '" +
                                  tokens[1] + "'");
  out.pairs.assign(tokens.begin() + 2, tokens.end());
  return out;
}

/// Splits one "key=value" token; returns false (skipping it) only for
/// well-formed tokens with unknown keys -- handled by the callers.
std::pair<std::string, std::string> split_pair(const std::string& token) {
  const std::size_t eq = token.find('=');
  PG_CHECK(eq != std::string::npos && eq > 0,
           "serve header: expected key=value, got '" + token + "'");
  return {token.substr(0, eq), token.substr(eq + 1)};
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string envelope_prefix(const std::string& request_id,
                            const char* status) {
  std::ostringstream out;
  out << "{\n  \"schema_version\": " << kSchemaVersion << ",\n"
      << "  \"protocol\": {\"major\": " << kProtocolMajor
      << ", \"minor\": " << kProtocolMinor << "},\n"
      << "  \"request_id\": \"" << json_escape(request_id) << "\",\n"
      << "  \"status\": \"" << status << "\",\n";
  return out.str();
}

}  // namespace

std::string format_request_header(const RequestHeader& header) {
  PG_CHECK(valid_request_id(header.request_id),
           "serve: request id must be 1-" +
               std::to_string(kMaxRequestIdBytes) +
               " chars of [A-Za-z0-9._-], got '" + header.request_id + "'");
  std::ostringstream out;
  out << "PGSERVE/" << header.major << "." << header.minor << " req id="
      << header.request_id << " len=" << header.body_bytes;
  if (header.priority != 0) out << " priority=" << header.priority;
  if (header.deadline_ms != 0) out << " deadline_ms=" << header.deadline_ms;
  out << "\n";
  return out.str();
}

std::string format_response_header(const ResponseHeader& header) {
  std::ostringstream out;
  out << "PGSERVE/" << header.major << "." << header.minor << " rsp id="
      << (header.request_id.empty() ? std::string("-") : header.request_id)
      << " status=" << header.status << " len=" << header.body_bytes << "\n";
  return out.str();
}

RequestHeader parse_request_header(const std::string& line) {
  const FramePrefix prefix = parse_prefix(line, "req");
  RequestHeader header;
  header.major = prefix.major;
  header.minor = prefix.minor;
  bool have_id = false;
  bool have_len = false;
  for (const std::string& token : prefix.pairs) {
    const auto [key, value] = split_pair(token);
    if (key == "id") {
      PG_CHECK(valid_request_id(value),
               "serve header: bad request id '" + value + "'");
      header.request_id = value;
      have_id = true;
    } else if (key == "len") {
      header.body_bytes = static_cast<std::size_t>(parse_u64(value, "len"));
      have_len = true;
    } else if (key == "priority") {
      header.priority = static_cast<std::size_t>(parse_u64(value, "priority"));
    } else if (key == "deadline_ms") {
      header.deadline_ms = parse_u64(value, "deadline_ms");
    }
    // Unknown keys: ignored (a newer minor version added them).
  }
  PG_CHECK(have_id && have_len, "serve header: id= and len= are required");
  return header;
}

ResponseHeader parse_response_header(const std::string& line) {
  const FramePrefix prefix = parse_prefix(line, "rsp");
  ResponseHeader header;
  header.major = prefix.major;
  header.minor = prefix.minor;
  bool have_len = false;
  for (const std::string& token : prefix.pairs) {
    const auto [key, value] = split_pair(token);
    if (key == "id") {
      header.request_id = value == "-" ? std::string() : value;
    } else if (key == "status") {
      header.status = value;
    } else if (key == "len") {
      header.body_bytes = static_cast<std::size_t>(parse_u64(value, "len"));
      have_len = true;
    }
  }
  PG_CHECK(have_len && !header.status.empty(),
           "serve header: status= and len= are required");
  return header;
}

std::string frame_kind(const std::string& line) {
  const auto tokens = split_tokens(line);
  return tokens.size() >= 2 ? tokens[1] : std::string();
}

std::string format_ping_header(const std::string& request_id) {
  PG_CHECK(valid_request_id(request_id),
           "serve: request id must be 1-" +
               std::to_string(kMaxRequestIdBytes) +
               " chars of [A-Za-z0-9._-], got '" + request_id + "'");
  std::ostringstream out;
  out << "PGSERVE/" << kProtocolMajor << "." << kProtocolMinor
      << " ping id=" << request_id << "\n";
  return out.str();
}

RequestHeader parse_ping_header(const std::string& line) {
  const FramePrefix prefix = parse_prefix(line, "ping");
  RequestHeader header;
  header.major = prefix.major;
  header.minor = prefix.minor;
  header.body_bytes = 0;
  bool have_id = false;
  for (const std::string& token : prefix.pairs) {
    const auto [key, value] = split_pair(token);
    if (key == "id") {
      PG_CHECK(valid_request_id(value),
               "serve header: bad request id '" + value + "'");
      header.request_id = value;
      have_id = true;
    }
    // Unknown keys: ignored (a newer minor version added them).
  }
  PG_CHECK(have_id, "serve header: id= is required");
  return header;
}

std::string make_ok_envelope(const std::string& request_id,
                             const std::string& result_json) {
  std::string result = result_json;
  while (!result.empty() && (result.back() == '\n' || result.back() == ' ')) {
    result.pop_back();
  }
  std::string out = envelope_prefix(request_id, "ok");
  out += "  \"result\": ";
  out += result;
  out += "\n}\n";
  return out;
}

std::string make_error_envelope(const std::string& request_id,
                                const std::string& code,
                                const std::string& message) {
  std::string out = envelope_prefix(request_id, "error");
  out += "  \"error\": {\"code\": \"" + json_escape(code) +
         "\", \"message\": \"" + json_escape(message) + "\"}\n}\n";
  return out;
}

void write_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: write failed: ") +
                               std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool read_exact(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error("serve: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_line(int fd, std::string& line, std::size_t max) {
  line.clear();
  char c = 0;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve: read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      if (line.empty()) return false;
      throw std::runtime_error("serve: connection closed mid-header");
    }
    if (c == '\n') return true;
    line.push_back(c);
    if (line.size() > max) {
      throw std::runtime_error("serve: header line exceeds " +
                               std::to_string(max) + " bytes");
    }
  }
}

}  // namespace pg::serve
