// Wire protocol for the resident scenario service (pg_serve).
//
// A request is one text header line followed by a raw ScenarioSpec body:
//
//     PGSERVE/<major>.<minor> req id=<id> len=<n> [priority=<p>] [deadline_ms=<d>]\n
//     <n bytes of key=value spec text>
//
// and a response is one header line followed by a JSON envelope body:
//
//     PGSERVE/<major>.<minor> rsp id=<id> status=<ok|error> len=<n>\n
//     {"schema_version": ..., "request_id": ..., "status": "ok", "result": {...}}
//
// Versioning contract: `major` names the framing itself -- a server
// rejects a mismatched major with a structured `unsupported_protocol`
// error (it can still frame the reply, because the header grammar is
// version-prefixed). `minor` only ever ADDS header keys; parsers ignore
// keys they do not know, so old servers interoperate with newer-minor
// clients. kSchemaVersion is the one number covering every JSON artifact
// the project emits -- the result sink, the metrics snapshot, the bench
// snapshots, and the response envelope all quote it -- and follows the
// result sink's grow-only rule: members are only added at a fixed
// version; a bump means something was renamed, retyped, or removed.
//
// Scheduling: `priority` is the request's nesting depth in the server's
// admission queue -- the same convention as the runtime's depth-tagged
// task scheduling, where depth 0 is the outermost work and LOWER values
// are served first (FIFO among equals). `deadline_ms` bounds queue wait:
// a request still queued past its deadline completes with a
// `deadline_exceeded` error instead of running.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace pg::serve {

/// Framing major version: reject on mismatch.
inline constexpr int kProtocolMajor = 1;
/// Framing minor version: additive header keys/frame kinds only.
/// History: 1 added the body-less `ping` health-check frame.
inline constexpr int kProtocolMinor = 1;
/// Schema number shared by every JSON artifact (result sink, metrics
/// snapshot, bench snapshots, response envelope). Grow-only.
inline constexpr int kSchemaVersion = 1;

/// Longest accepted header line (either direction), newline included.
inline constexpr std::size_t kMaxHeaderBytes = 4096;
/// Longest accepted request id ([A-Za-z0-9._-]).
inline constexpr std::size_t kMaxRequestIdBytes = 64;

struct RequestHeader {
  int major = kProtocolMajor;
  int minor = kProtocolMinor;
  std::string request_id;
  std::size_t priority = 0;      // lower = served earlier
  std::uint64_t deadline_ms = 0; // 0 = no deadline
  std::size_t body_bytes = 0;
};

struct ResponseHeader {
  int major = kProtocolMajor;
  int minor = kProtocolMinor;
  std::string request_id;
  std::string status;  // "ok" | "error"
  std::size_t body_bytes = 0;
};

/// Render one request/response header line (trailing '\n' included).
[[nodiscard]] std::string format_request_header(const RequestHeader& header);
[[nodiscard]] std::string format_response_header(const ResponseHeader& header);

/// Parse a header line (with or without the trailing '\n'). Unknown
/// key=value tokens are ignored (minor-version growth); a malformed
/// line, bad id charset, or wrong frame kind throws
/// std::invalid_argument. An UNSUPPORTED major still parses -- the
/// caller decides how to reject it, and needs `len` to resync.
[[nodiscard]] RequestHeader parse_request_header(const std::string& line);
[[nodiscard]] ResponseHeader parse_response_header(const std::string& line);

/// The frame-kind token ("req", "rsp", "ping", ...) of a header line, or
/// "" when the line has no second token -- lets the server dispatch on
/// the kind before committing to a full parse.
[[nodiscard]] std::string frame_kind(const std::string& line);

/// Ping frames (minor 1, additive): the body-less health-check line
///
///     PGSERVE/<major>.<minor> ping id=<id>\n
///
/// answered with a normal rsp frame whose ok envelope body is a small
/// `{"pong": true}` result (the envelope itself quotes the server's
/// protocol and schema versions). A minor-0 server answers a ping with
/// its usual `bad_request` error -- still a well-formed response frame,
/// so probes against old servers degrade to "reachable but no ping
/// support" instead of hanging. parse_ping_header returns a
/// RequestHeader with body_bytes == 0; only id= is required.
[[nodiscard]] std::string format_ping_header(const std::string& request_id);
[[nodiscard]] RequestHeader parse_ping_header(const std::string& line);

/// Response envelope bodies. `result_json` must be a complete JSON
/// document (the JSON result sink's output); it is embedded verbatim.
[[nodiscard]] std::string make_ok_envelope(const std::string& request_id,
                                           const std::string& result_json);
[[nodiscard]] std::string make_error_envelope(const std::string& request_id,
                                              const std::string& code,
                                              const std::string& message);

// ---- fd-level framing helpers (shared by server, client, tools) ------

/// Write all of `data`; throws std::runtime_error on error (writes use
/// MSG_NOSIGNAL on sockets, so a dead peer is an exception, not SIGPIPE).
void write_all(int fd, const char* data, std::size_t size);

/// Read exactly `size` bytes. Returns false on clean EOF at byte 0;
/// throws on a mid-buffer EOF or error.
[[nodiscard]] bool read_exact(int fd, char* data, std::size_t size);

/// Read up to '\n' (consumed, not returned). Returns false on clean EOF
/// at byte 0; throws on mid-line EOF, error, or a line past `max` bytes.
[[nodiscard]] bool read_line(int fd, std::string& line, std::size_t max);

}  // namespace pg::serve
