#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/atomic_file.h"
#include "robust/faultpoint.h"
#include "runtime/payoff_disk_cache.h"
#include "scenario/engine.h"
#include "scenario/request.h"
#include "scenario/result.h"
#include "scenario/spec.h"
#include "serve/protocol.h"
#include "sim/experiment.h"
#include "util/error.h"
#include "util/logging.h"

namespace pg::serve {

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PG_CHECK(!path.empty() && path.size() < sizeof(addr.sun_path),
           "serve: socket path must be 1-" +
               std::to_string(sizeof(addr.sun_path) - 1) + " bytes: '" +
               path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Swallow-and-continue the body of a request we are rejecting, so the
/// stream stays framed for the next request on this connection.
void discard_body(int fd, std::size_t bytes) {
  char buf[4096];
  while (bytes > 0) {
    const std::size_t chunk = bytes < sizeof(buf) ? bytes : sizeof(buf);
    PG_CHECK(read_exact(fd, buf, chunk),
             "serve: connection closed mid-body");
    bytes -= chunk;
  }
}

/// True when the client side of `fd` is gone: peer fully closed (POLLHUP
/// on AF_UNIX), the descriptor errored, or it is no longer a socket. A
/// zero-timeout poll never blocks, and a drain's local shutdown(SHUT_RD)
/// on the reader side sets only RCV_SHUTDOWN -- no POLLHUP -- so queued
/// requests from still-connected clients keep their "admitted work
/// finishes" guarantee through a graceful stop.
bool peer_gone(int fd) {
  if (fd < 0) return false;
  pollfd probe{};
  probe.fd = fd;
  probe.events = 0;
  const int rc = ::poll(&probe, 1, 0);
  return rc > 0 && (probe.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
}

void send_response(int fd, const std::string& request_id, bool ok,
                   const std::string& body) {
  // An injected serve.write throw unwinds to the connection loop's
  // catch, dropping THIS connection only -- the resilience the client's
  // request_retry is tested against.
  robust::faultpoint("serve.write");
  ResponseHeader header;
  header.request_id = request_id;
  header.status = ok ? "ok" : "error";
  header.body_bytes = body.size();
  const std::string line = format_response_header(header);
  write_all(fd, line.data(), line.size());
  write_all(fd, body.data(), body.size());
}

}  // namespace

struct ScenarioServer::Pending {
  std::string request_id;
  scenario::ScenarioSpec spec;
  /// The connection's descriptor, for the dequeue-time liveness probe.
  /// Safe to poll from a worker: the connection thread blocks in
  /// future.get() until this request resolves, so the fd stays open (and
  /// unrecycled) for the Pending's whole queue lifetime.
  int client_fd = -1;
  std::uint64_t deadline_ms = 0;
  std::chrono::steady_clock::time_point enqueued;
  std::promise<Outcome> outcome;
};

ScenarioServer::ScenarioServer(ServeOptions options)
    : options_(std::move(options)) {
  PG_CHECK(options_.request_workers >= 1,
           "serve: needs at least one request worker");
  PG_CHECK(options_.queue_limit >= 1, "serve: queue limit must be >= 1");
}

ScenarioServer::~ScenarioServer() {
  if (started_ && !drained_) stop();
  if (wake_pipe_[0] != -1) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] != -1) ::close(wake_pipe_[1]);
}

void ScenarioServer::start() {
  PG_CHECK(!started_, "serve: start() called twice");

  // The server owns the process observability lifecycle: counters
  // describe this serving session, and the (optional) tracer runs for
  // the whole process -- which is why per-request trace files are
  // refused at the spec level.
  obs::reset_metrics();
  if (!options_.trace.empty()) obs::Tracer::instance().start();

  executor_ = sim::make_executor(options_.threads);
  const std::string cache_dir = !options_.cache_dir.empty()
                                    ? options_.cache_dir
                                    : runtime::DiskPayoffCache::env_dir();
  store_ = std::make_unique<scenario::ShardStore>(
      options_.use_cache, cache_dir, options_.cache_max_bytes);

  // The server's execution envelope BEATS whatever the request body
  // says, expressed as trailing RequestOptions overrides (the documented
  // precedence, not a special case): every request runs on this
  // executor and store, never traces to its own file, and never folds
  // the process-cumulative metrics registry into its result.
  server_overrides_ = {
      {"threads", std::to_string(options_.threads)},
      {"use_cache", options_.use_cache ? "true" : "false"},
      {"cache_dir", cache_dir},
      {"cache_max_bytes", std::to_string(options_.cache_max_bytes)},
      {"trace", ""},
      {"metrics", "false"},
  };

  const sockaddr_un addr = make_addr(options_.socket_path);

  // Stale-socket handling: a path left by a dead server is replaced; a
  // path a LIVE server answers on is an error; a non-socket is never
  // touched.
  struct stat st{};
  if (::lstat(options_.socket_path.c_str(), &st) == 0) {
    PG_CHECK(S_ISSOCK(st.st_mode),
             "serve: " + options_.socket_path +
                 " exists and is not a socket; refusing to replace it");
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PG_CHECK(probe >= 0, "serve: cannot create probe socket");
    const int rc = ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr));
    ::close(probe);
    PG_CHECK(rc != 0, "serve: another server is already listening on " +
                          options_.socket_path);
    PG_CHECK(::unlink(options_.socket_path.c_str()) == 0,
             "serve: cannot remove stale socket " + options_.socket_path);
    util::log_info() << "serve: replaced stale socket "
                     << options_.socket_path;
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PG_CHECK(listen_fd_ >= 0, "serve: cannot create listen socket");
  PG_CHECK(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0,
           "serve: cannot bind " + options_.socket_path + ": " +
               std::strerror(errno));
  PG_CHECK(::listen(listen_fd_, 64) == 0,
           "serve: cannot listen on " + options_.socket_path);
  PG_CHECK(::pipe(wake_pipe_) == 0, "serve: cannot create wake pipe");

  workers_.reserve(options_.request_workers);
  for (std::size_t i = 0; i < options_.request_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
  util::log_info() << "serve: listening on " << options_.socket_path
                   << " (threads=" << executor_->concurrency()
                   << " workers=" << options_.request_workers << ")";
}

void ScenarioServer::request_stop() noexcept {
  stopping_.store(true, std::memory_order_release);
  if (wake_pipe_[1] != -1) {
    const char byte = 1;
    // Signal-safe wake-up; the self-pipe never fills (one byte per stop).
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void ScenarioServer::wait() {
  PG_CHECK(started_, "serve: wait() before start()");
  if (accept_thread_.joinable()) accept_thread_.join();
  drain();
}

void ScenarioServer::stop() {
  request_stop();
  wait();
}

void ScenarioServer::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      util::log_error() << "serve: poll failed: " << std::strerror(errno);
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        util::log_error() << "serve: accept failed: " << std::strerror(errno);
        continue;
      }
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.emplace_back();
      Connection* conn = &conns_.back();
      conn->fd = fd;
      conn->thread = std::thread([this, conn] { connection_loop(conn); });
    }
    reap_connections(/*all=*/false);
  }
}

void ScenarioServer::reap_connections(bool all) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (all || it->done.load(std::memory_order_acquire)) {
      if (all && it->fd != -1) ::shutdown(it->fd, SHUT_RD);
      if (it->thread.joinable()) it->thread.join();
      if (it->fd != -1) ::close(it->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void ScenarioServer::connection_loop(Connection* conn) {
  static obs::Counter& obs_requests = obs::counter("obs.serve.requests");
  static obs::Counter& obs_errors = obs::counter("obs.serve.errors");
  static obs::Counter& obs_rejected = obs::counter("obs.serve.rejected");
  static obs::Gauge& obs_depth = obs::gauge("obs.serve.queue_depth");
  const int fd = conn->fd;
  try {
    std::string line;
    while (!stopping_.load(std::memory_order_acquire) &&
           read_line(fd, line, kMaxHeaderBytes)) {
      robust::faultpoint("serve.read");
      if (frame_kind(line) == "ping") {
        // Health checks bypass the admission queue on purpose: a probe
        // must answer even while the queue is full of long sweeps.
        static obs::Counter& obs_pings = obs::counter("obs.serve.pings");
        RequestHeader ping;
        try {
          ping = parse_ping_header(line);
        } catch (const std::exception& e) {
          obs_errors.add(1);
          send_response(fd, "", false,
                        make_error_envelope("", "bad_request", e.what()));
          break;
        }
        obs_pings.add(1);
        if (ping.major != kProtocolMajor) {
          obs_errors.add(1);
          send_response(
              fd, ping.request_id, false,
              make_error_envelope(
                  ping.request_id, "unsupported_protocol",
                  "server speaks PGSERVE/" + std::to_string(kProtocolMajor) +
                      "." + std::to_string(kProtocolMinor) +
                      ", ping is " + std::to_string(ping.major) + "." +
                      std::to_string(ping.minor)));
        } else {
          send_response(fd, ping.request_id, true,
                        make_ok_envelope(ping.request_id, "{\"pong\": true}"));
        }
        continue;
      }
      RequestHeader header;
      try {
        header = parse_request_header(line);
      } catch (const std::exception& e) {
        // Unparseable header: the body length is unknown, so the stream
        // cannot be resynced -- answer once and drop the connection.
        obs_errors.add(1);
        send_response(fd, "", false,
                      make_error_envelope("", "bad_request", e.what()));
        break;
      }
      obs_requests.add(1);

      const auto reject = [&](const std::string& code,
                              const std::string& message) {
        obs_errors.add(1);
        send_response(fd, header.request_id, false,
                      make_error_envelope(header.request_id, code, message));
        served_.fetch_add(1, std::memory_order_relaxed);
      };

      if (header.body_bytes > options_.max_request_bytes) {
        discard_body(fd, header.body_bytes);
        reject("oversized", "request body of " +
                                std::to_string(header.body_bytes) +
                                " bytes exceeds the server limit of " +
                                std::to_string(options_.max_request_bytes));
        continue;
      }
      std::string body(header.body_bytes, '\0');
      if (header.body_bytes > 0 &&
          !read_exact(fd, body.data(), body.size())) {
        break;  // closed between header and body
      }
      if (header.major != kProtocolMajor) {
        reject("unsupported_protocol",
               "server speaks PGSERVE/" + std::to_string(kProtocolMajor) +
                   "." + std::to_string(kProtocolMinor) + ", request is " +
                   std::to_string(header.major) + "." +
                   std::to_string(header.minor));
        continue;
      }

      auto pending = std::make_unique<Pending>();
      pending->request_id = header.request_id;
      pending->client_fd = fd;
      pending->deadline_ms = header.deadline_ms;
      try {
        scenario::RequestOptions request;
        request.spec_text = body;
        request.overrides = server_overrides_;
        pending->spec = request.resolve();
      } catch (const std::exception& e) {
        reject("invalid_spec", e.what());
        continue;
      }

      std::future<Outcome> future = pending->outcome.get_future();
      bool admitted = false;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (queue_.size() < options_.queue_limit) {
          pending->enqueued = std::chrono::steady_clock::now();
          queue_.emplace(std::make_pair(header.priority, next_seq_++),
                         std::move(pending));
          obs_depth.record(queue_.size());
          admitted = true;
        }
      }
      if (!admitted) {
        obs_rejected.add(1);
        reject("queue_full", "admission queue is at its limit of " +
                                 std::to_string(options_.queue_limit) +
                                 " requests");
        continue;
      }
      queue_cv_.notify_one();

      const Outcome outcome = future.get();
      if (!outcome.ok) obs_errors.add(1);
      send_response(fd, header.request_id, outcome.ok, outcome.body);
      served_.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const std::exception& e) {
    // Dead peer or torn frame: this connection is done, the server is
    // not.
    util::log_info() << "serve: connection dropped: " << e.what();
  }
  // Signal EOF to the peer NOW: the descriptor itself is closed by
  // reap_connections(), which may not run until the accept loop's next
  // wake-up -- a client blocked on read_line() must not wait for that.
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

ScenarioServer::Outcome ScenarioServer::execute(Pending& pending) {
  static obs::Timer& obs_wall = obs::timer("obs.serve.request_wall");
  Outcome outcome;
  try {
    obs::Span span("request:" + pending.request_id, "serve");
    const obs::ScopedTimer timer(obs_wall);
    scenario::EngineContext context{executor_.get(), store_.get()};
    const scenario::ScenarioResult result =
        scenario::run_scenario(pending.spec, context);
    std::ostringstream json;
    write_json(result, json);
    outcome.ok = true;
    outcome.body = make_ok_envelope(pending.request_id, json.str());
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.body =
        make_error_envelope(pending.request_id, "execution_failed", e.what());
  }
  return outcome;
}

void ScenarioServer::worker_loop() {
  static obs::Timer& obs_wait = obs::timer("obs.serve.queue_wait");
  for (;;) {
    std::unique_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining_ and nothing left
      auto it = queue_.begin();    // lowest (priority, arrival)
      pending = std::move(it->second);
      queue_.erase(it);
    }
    const auto waited = std::chrono::steady_clock::now() - pending->enqueued;
    obs_wait.record_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
            .count()));
    if (pending->deadline_ms != 0 &&
        std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count() >= static_cast<long long>(pending->deadline_ms)) {
      Outcome outcome;
      outcome.body = make_error_envelope(
          pending->request_id, "deadline_exceeded",
          "request waited past its deadline of " +
              std::to_string(pending->deadline_ms) + " ms; not run");
      pending->outcome.set_value(std::move(outcome));
      continue;
    }
    if (peer_gone(pending->client_fd)) {
      // The client hung up while its request was queued: computing the
      // result would only feed a dead socket. Resolve with a structured
      // error (the connection thread is still parked in future.get() and
      // discovers the hangup when its reply write fails).
      static obs::Counter& obs_cancelled = obs::counter("obs.serve.cancelled");
      obs_cancelled.add(1);
      Outcome outcome;
      outcome.body = make_error_envelope(
          pending->request_id, "client_gone",
          "client connection closed while the request was queued; not run");
      pending->outcome.set_value(std::move(outcome));
      continue;
    }
    pending->outcome.set_value(execute(*pending));
  }
}

void ScenarioServer::drain() {
  if (drained_) return;
  drained_ = true;

  // Order matters: EOF the readers first (they stop admitting), join
  // them (each is at most waiting on a future a live worker will
  // fulfill), THEN let the workers run the queue dry and exit.
  reap_connections(/*all=*/true);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  if (listen_fd_ != -1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());

  const scenario::ShardStore::SpillStats spilled = store_->spill();
  util::log_info() << "serve: drained after " << requests_served()
                   << " requests; spilled " << spilled.entries_saved
                   << " cache entries";

  if (!options_.metrics_out.empty()) {
    std::ostringstream out;
    scenario::write_metrics_json("pg_serve", out);
    robust::atomic_write_file(options_.metrics_out, out.str(),
                              "artifact.metrics");
  }
  if (!options_.trace.empty()) {
    std::ostringstream out;
    obs::Tracer::instance().write_chrome_trace(out);
    robust::atomic_write_file(options_.trace, out.str(), "artifact.trace");
  }
}

}  // namespace pg::serve
