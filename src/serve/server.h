// The resident scenario service behind pg_serve.
//
// One ScenarioServer owns the process-wide execution substrate -- a
// single Executor, a shared scenario::ShardStore (warm payoff shards +
// disk cache), and the observability lifecycle -- and serves ScenarioSpec
// requests over a local (AF_UNIX) stream socket using the framing in
// serve/protocol.h. Request flow:
//
//   accept thread --> one reader thread per connection
//     parse frame -> resolve spec (RequestOptions; server execution-
//     envelope overrides win) -> admit into the bounded priority queue
//     (or reject: queue_full) -> wait for the outcome -> write response
//   worker threads (request_workers of them)
//     pop lowest (priority, arrival) -> drop if past deadline_ms ->
//     run_scenario(spec, EngineContext) -> ok envelope
//
// Because every request runs on the ONE executor and ONE shard store,
// a warm repeat request retrains zero cells, and concurrent requests
// hitting the same cold cell coalesce through the caches' single-flight
// claims instead of computing it twice.
//
// Protocol errors degrade per the versioning contract: an unparseable
// header cannot be resynced (its length is unknown), so the connection
// gets one best-effort `bad_request` error frame and is closed; a known-
// length problem (unsupported major version, oversized body, spec that
// fails to resolve, execution failure) consumes the body, answers a
// structured error envelope, and KEEPS the connection -- one bad request
// never takes the server down.
//
// Shutdown: request_stop() is async-signal-safe (atomic store + one
// self-pipe write, for SIGTERM/SIGINT handlers); wait() then drains --
// stop accepting, EOF the open connections, finish every admitted
// request, spill the shard store to disk, and write the metrics/trace
// artifacts. Per-request observability: obs.serve.requests/errors/
// rejected counters, obs.serve.queue_depth gauge, obs.serve.queue_wait
// and obs.serve.request_wall timers, and a "request:<id>" span per
// executed request.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/executor.h"
#include "scenario/cache_bundle.h"

namespace pg::serve {

struct ServeOptions {
  std::string socket_path;
  /// Executor width shared by every request (0 = all cores).
  std::size_t threads = 0;
  /// Concurrent scenario executions (each fans out on the executor).
  std::size_t request_workers = 2;
  /// Admission bound: requests past this many queued are rejected with a
  /// `queue_full` error instead of waiting.
  std::size_t queue_limit = 64;
  /// Longest accepted request body (spec text).
  std::size_t max_request_bytes = 1 << 20;
  bool use_cache = true;
  /// Empty = $PG_CACHE_DIR (same fallback as the standalone engine).
  std::string cache_dir;
  std::uint64_t cache_max_bytes = 0;
  /// Chrome-trace path written at drain ("" = tracing off).
  std::string trace;
  /// Metrics snapshot path written at drain ("" = off).
  std::string metrics_out;
};

class ScenarioServer {
 public:
  explicit ScenarioServer(ServeOptions options);
  /// Joins everything (drains if start() succeeded and stop() was never
  /// called).
  ~ScenarioServer();

  ScenarioServer(const ScenarioServer&) = delete;
  ScenarioServer& operator=(const ScenarioServer&) = delete;

  /// Bind + listen + spawn the accept and worker threads. Throws on a
  /// bad socket path or when another live server already listens there
  /// (a STALE socket file from a dead server is silently replaced).
  void start();

  /// Signal-safe stop trigger: atomic store + self-pipe write. Safe to
  /// call from any thread or signal handler, any number of times.
  void request_stop() noexcept;

  /// Block until request_stop(), then drain: finish admitted requests,
  /// spill the shard store, write metrics/trace artifacts, remove the
  /// socket file.
  void wait();

  /// request_stop() + wait().
  void stop();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  /// Completed responses (ok or error) since start().
  [[nodiscard]] std::size_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  struct Outcome {
    bool ok = false;
    std::string body;  // response envelope JSON
  };

  /// One admitted request, keyed (priority, arrival seq) in the queue.
  struct Pending;

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void connection_loop(Connection* conn);
  void worker_loop();
  [[nodiscard]] Outcome execute(Pending& pending);
  void reap_connections(bool all);
  void drain();

  ServeOptions options_;
  std::vector<std::pair<std::string, std::string>> server_overrides_;

  std::unique_ptr<runtime::Executor> executor_;
  std::unique_ptr<scenario::ShardStore> store_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool drained_ = false;

  std::thread accept_thread_;
  std::mutex conns_mutex_;
  std::list<Connection> conns_;  // list: nodes never move

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::map<std::pair<std::size_t, std::uint64_t>, std::unique_ptr<Pending>>
      queue_;
  std::uint64_t next_seq_ = 0;
  bool draining_ = false;
  std::vector<std::thread> workers_;

  std::atomic<std::size_t> served_{0};
};

}  // namespace pg::serve
