#include "sim/curve_fit.h"

#include <algorithm>

#include "util/error.h"

namespace pg::sim {

std::vector<double> isotonic_non_decreasing(std::vector<double> ys) {
  // Pool Adjacent Violators with uniform weights.
  const std::size_t n = ys.size();
  if (n <= 1) return ys;
  std::vector<double> level;   // block means
  std::vector<std::size_t> count;  // block sizes
  level.reserve(n);
  count.reserve(n);
  for (double y : ys) {
    level.push_back(y);
    count.push_back(1);
    while (level.size() >= 2 &&
           level[level.size() - 2] > level[level.size() - 1]) {
      const double merged =
          (level[level.size() - 2] * static_cast<double>(count[count.size() - 2]) +
           level[level.size() - 1] * static_cast<double>(count[count.size() - 1])) /
          static_cast<double>(count[count.size() - 2] + count[count.size() - 1]);
      count[count.size() - 2] += count[count.size() - 1];
      level[level.size() - 2] = merged;
      level.pop_back();
      count.pop_back();
    }
  }
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t b = 0; b < level.size(); ++b) {
    out.insert(out.end(), count[b], level[b]);
  }
  return out;
}

std::vector<double> isotonic_non_increasing(std::vector<double> ys) {
  for (double& y : ys) y = -y;
  ys = isotonic_non_decreasing(std::move(ys));
  for (double& y : ys) y = -y;
  return ys;
}

core::PayoffCurves fit_payoff_curves(const PureSweepResult& sweep) {
  PG_CHECK(sweep.points.size() >= 2, "fit_payoff_curves: need >= 2 points");
  PG_CHECK(sweep.poison_budget > 0, "fit_payoff_curves: zero poison budget");

  const double n = static_cast<double>(sweep.poison_budget);
  std::vector<double> xs;
  std::vector<double> gamma_raw;
  std::vector<double> e_raw;
  for (const auto& pt : sweep.points) {
    xs.push_back(pt.removal_fraction);
    gamma_raw.push_back(
        std::max(0.0, sweep.clean_accuracy - pt.accuracy_no_attack));
    e_raw.push_back(std::max(
        0.0, (pt.accuracy_no_attack - pt.accuracy_attacked) / n));
  }

  std::vector<double> gamma = isotonic_non_decreasing(std::move(gamma_raw));
  std::vector<double> damage = isotonic_non_increasing(std::move(e_raw));
  // Gamma(0) = 0 by definition (no filter, no genuine points removed).
  if (!gamma.empty() && xs.front() == 0.0) gamma.front() = 0.0;

  return core::PayoffCurves(util::PiecewiseLinear(xs, damage),
                            util::PiecewiseLinear(xs, gamma));
}

}  // namespace pg::sim
