// Fitting E(p) and Gamma(p) from a pure-strategy sweep.
//
// The paper: "The input of the algorithm, E(p) and Gamma(p), are
// approximated using the results in Fig. 1." Concretely:
//   Gamma(p) = max(0, acc_clean(0) - acc_clean(p))
//   E(p)     = max(0, (acc_clean(p) - acc_attacked(p)) / N)
// Both are then made monotone by isotonic regression (pool-adjacent-
// violators) -- Gamma non-decreasing, E non-increasing -- which removes
// SGD measurement noise that would otherwise corrupt Algorithm 1's
// indifference ratios.
#pragma once

#include <vector>

#include "core/payoff.h"
#include "sim/pure_sweep.h"

namespace pg::sim {

/// Isotonic regression: least-squares best non-decreasing fit (PAV).
[[nodiscard]] std::vector<double> isotonic_non_decreasing(
    std::vector<double> ys);

/// Least-squares best non-increasing fit.
[[nodiscard]] std::vector<double> isotonic_non_increasing(
    std::vector<double> ys);

/// Build the payoff curves from a sweep (see file comment). Requires a
/// sweep with >= 2 points and a positive poison budget.
[[nodiscard]] core::PayoffCurves fit_payoff_curves(
    const PureSweepResult& sweep);

}  // namespace pg::sim
