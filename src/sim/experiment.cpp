#include "sim/experiment.h"

#include "attack/attack.h"
#include "defense/pipeline.h"
#include "ml/metrics.h"
#include "util/error.h"

namespace pg::sim {

ExperimentContext prepare_experiment(const ExperimentConfig& config) {
  util::Rng rng(config.seed);

  data::CorpusInfo corpus =
      config.try_real_corpus
          ? data::load_or_generate_spambase(data::default_spambase_paths(),
                                            config.corpus, rng)
          : data::CorpusInfo{data::make_spambase_like(config.corpus, rng),
                             true, "synthetic"};

  util::Rng split_rng = rng.fork(1);
  auto split =
      data::split_train_test(corpus.data, config.train_fraction, split_rng);

  ExperimentContext ctx;
  ctx.config = config;
  ctx.corpus_source = corpus.source;
  ctx.train = std::move(split.train);
  ctx.test = std::move(split.test);
  ctx.poison_budget =
      attack::poison_budget(ctx.train.size(), config.poison_fraction);

  util::Rng train_rng = rng.fork(2);
  const defense::Pipeline pipeline({config.svm});
  ctx.clean_accuracy =
      pipeline.run(ctx.train, ctx.test, nullptr, 0, nullptr, train_rng)
          .test_accuracy;
  return ctx;
}

ExperimentConfig fast_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.corpus.n_instances = 800;
  cfg.svm.epochs = 60;
  cfg.try_real_corpus = false;
  return cfg;
}

}  // namespace pg::sim
