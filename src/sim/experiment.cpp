#include "sim/experiment.h"

#include "attack/attack.h"
#include "defense/pipeline.h"
#include "ml/metrics.h"
#include "runtime/payoff_evaluator.h"
#include "util/error.h"

namespace pg::sim {

ExperimentContext prepare_experiment(const ExperimentConfig& config) {
  util::Rng rng(config.seed);

  data::CorpusInfo corpus =
      config.try_real_corpus
          ? data::load_or_generate_spambase(data::default_spambase_paths(),
                                            config.corpus, rng)
          : data::CorpusInfo{data::make_spambase_like(config.corpus, rng),
                             true, "synthetic"};

  util::Rng split_rng = rng.fork(1);
  auto split =
      data::split_train_test(corpus.data, config.train_fraction, split_rng);

  ExperimentContext ctx;
  ctx.config = config;
  ctx.corpus_source = corpus.source;
  ctx.train = std::move(split.train);
  ctx.test = std::move(split.test);
  ctx.poison_budget =
      attack::poison_budget(ctx.train.size(), config.poison_fraction);

  util::Rng train_rng = rng.fork(2);
  const defense::Pipeline pipeline({config.svm});
  ctx.clean_accuracy =
      pipeline.run(ctx.train, ctx.test, nullptr, 0, nullptr, train_rng)
          .test_accuracy;
  return ctx;
}

ExperimentConfig fast_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.corpus.n_instances = 800;
  cfg.svm.epochs = 60;
  cfg.try_real_corpus = false;
  return cfg;
}

std::uint64_t context_fingerprint(const ExperimentContext& ctx) {
  const ExperimentConfig& cfg = ctx.config;
  runtime::ContentKey key;
  key.mix(cfg.seed)
      .mix(static_cast<std::uint64_t>(cfg.corpus.n_instances))
      .mix(static_cast<std::uint64_t>(cfg.corpus.n_features))
      .mix(cfg.corpus.positive_fraction)
      .mix(static_cast<std::uint64_t>(cfg.corpus.n_spam_words))
      .mix(static_cast<std::uint64_t>(cfg.corpus.n_ham_words))
      .mix(cfg.corpus.active_in_class)
      .mix(cfg.corpus.active_out_class)
      .mix(cfg.corpus.word_log_mu)
      .mix(cfg.corpus.word_log_sigma)
      .mix(cfg.corpus.generic_active)
      .mix(cfg.corpus.class_separation)
      .mix(cfg.corpus.intensity_sigma)
      .mix(cfg.corpus.express_scale)
      .mix(cfg.train_fraction)
      .mix(cfg.poison_fraction)
      .mix(static_cast<std::uint64_t>(cfg.svm.epochs))
      .mix(cfg.svm.lambda)
      .mix(static_cast<std::uint64_t>(cfg.svm.average))
      .mix(static_cast<std::uint64_t>(cfg.centroid.method))
      .mix(cfg.centroid.trim_fraction)
      .mix(static_cast<std::uint64_t>(ctx.train.size()))
      .mix(static_cast<std::uint64_t>(ctx.test.size()))
      .mix(static_cast<std::uint64_t>(ctx.poison_budget))
      // Distinguish real-corpus contexts from synthetic ones with the
      // same config: the source path, plus the measured clean accuracy
      // as a cheap proxy for the corpus CONTENT (two different files at
      // the same path/shape virtually never train to the same double).
      .mix(ctx.clean_accuracy);
  for (const char c : ctx.corpus_source) {
    key.mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return key.digest();
}

std::unique_ptr<runtime::Executor> make_executor(std::size_t threads) {
  if (threads == 1) return std::make_unique<runtime::SerialExecutor>();
  return std::make_unique<runtime::ThreadPoolExecutor>(threads);
}

}  // namespace pg::sim
