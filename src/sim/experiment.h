// Experiment setup shared by every reproduction harness.
//
// Mirrors the paper's protocol: load Spambase (or the synthetic
// substitute), split 70/30, standardize on the clean training split, fix a
// 20% poison budget, and train a hinge-loss SVM. All knobs live in
// ExperimentConfig so benches and tests can trade fidelity for speed
// explicitly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "data/loader.h"
#include "defense/centroid.h"
#include "ml/svm.h"
#include "runtime/executor.h"
#include "util/rng.h"

namespace pg::sim {

struct ExperimentConfig {
  std::uint64_t seed = 42;
  data::SpambaseLikeConfig corpus{};
  double train_fraction = 0.7;   // paper: 70% train / 30% test
  double poison_fraction = 0.2;  // paper: attacker controls 20%
  ml::SvmConfig svm{};
  defense::CentroidConfig centroid{};
  /// Use real spambase.data when present in the default locations.
  bool try_real_corpus = true;
};

struct ExperimentContext {
  ExperimentConfig config;
  /// RAW (unstandardized) splits: the attack and the filter operate in raw
  /// feature space, exactly like the paper; the Pipeline standardizes
  /// after filtering, fitted on whatever survived.
  data::Dataset train;
  data::Dataset test;
  std::size_t poison_budget = 0;  // paper's N
  std::string corpus_source;      // "synthetic" or a file path
  double clean_accuracy = 0.0;    // no attack, no filter baseline
};

/// Load/synthesize the corpus, split, standardize, fix the poison budget,
/// and measure the clean baseline accuracy.
[[nodiscard]] ExperimentContext prepare_experiment(const ExperimentConfig& config);

/// A small/fast configuration used by integration tests: a reduced corpus
/// and a cheap SVM, preserving all structural properties of the full run.
[[nodiscard]] ExperimentConfig fast_config(std::uint64_t seed = 42);

/// Content hash of everything a pipeline cell's payoff depends on through
/// the context: seed, corpus generator knobs, split sizes, poison budget,
/// and the SVM/centroid configuration. Combined with the per-cell knobs
/// (filter strength, attack placement, replication) it forms the
/// runtime::PayoffCache key, so a cache entry can never be reused across
/// contexts that could produce different payoffs.
[[nodiscard]] std::uint64_t context_fingerprint(const ExperimentContext& ctx);

/// Executor factory for harnesses (benches, examples) driven by a thread
/// count: 1 -> nullptr semantics are inconvenient, so this returns a real
/// SerialExecutor for 1, a hardware-sized pool for 0, and an n-thread pool
/// otherwise. Sweep entry points accept the raw pointer via .get().
[[nodiscard]] std::unique_ptr<runtime::Executor> make_executor(
    std::size_t threads);

}  // namespace pg::sim
