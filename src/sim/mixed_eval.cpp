#include "sim/mixed_eval.h"

#include <algorithm>
#include <string>
#include <utility>

#include "attack/boundary_attack.h"
#include "defense/distance_filter.h"
#include "defense/pipeline.h"
#include "ml/batch_trainer.h"
#include "obs/metrics.h"
#include "runtime/rng_stream.h"
#include "util/error.h"
#include "util/logging.h"

namespace pg::sim {

namespace {

/// One sanitize-and-retrain pipeline run; the unit of parallel work and
/// of memoization. `placement < 0` encodes the no-attack arm (no
/// placement knob exists there, and a negative value cannot collide with
/// a real placement in [0, 1]).
struct EvalCell {
  double placement = -1.0;
  double fraction = 0.0;
  std::size_t rep = 0;
};

std::uint64_t cell_key(std::uint64_t fingerprint, const EvalCell& cell) {
  return runtime::ContentKey()
      .mix(fingerprint)
      .mix(cell.placement)
      .mix(cell.fraction)
      .mix(static_cast<std::uint64_t>(cell.rep))
      .digest();
}

double run_cell(const ExperimentContext& ctx, const defense::Pipeline& pipeline,
                const runtime::RngStreamFactory& streams,
                std::uint64_t key, const EvalCell& cell) {
  defense::DistanceFilterConfig fcfg;
  fcfg.removal_fraction = cell.fraction;
  fcfg.centroid = ctx.config.centroid;
  const defense::DistanceFilter filter(fcfg);
  const defense::Filter* filter_ptr = (cell.fraction > 0.0) ? &filter : nullptr;

  // The cell's randomness is a pure function of its content key: same
  // cell -> same stream, whether it runs first, last, or from the cache.
  util::Rng rng = streams.stream(key);

  if (cell.placement < 0.0) {
    return pipeline.run(ctx.train, ctx.test, nullptr, 0, filter_ptr, rng)
        .test_accuracy;
  }

  attack::BoundaryAttackConfig acfg;
  acfg.placement_fraction = cell.placement;
  // Against a MIXED defense the optimal attack places exactly at a
  // support boundary (section 4.2): a deeper slide changes the set of
  // draws survived, which is precisely what the indifference condition
  // already prices. Depth search is the best response to a KNOWN pure
  // filter and belongs to the Fig.-1 sweep only.
  acfg.depth_offsets.clear();
  const attack::BoundaryAttack attack(acfg);
  return pipeline
      .run(ctx.train, ctx.test, &attack, ctx.poison_budget, filter_ptr, rng)
      .test_accuracy;
}

/// run_cell up to (but not including) the SGD solve -- same configs, same
/// stream, so finish(prepare_cell(...), trainer.train(...)) reproduces
/// run_cell bit-for-bit lane by lane.
defense::Pipeline::Prepared prepare_cell(const ExperimentContext& ctx,
                                         const defense::Pipeline& pipeline,
                                         const runtime::RngStreamFactory& streams,
                                         std::uint64_t key,
                                         const EvalCell& cell) {
  defense::DistanceFilterConfig fcfg;
  fcfg.removal_fraction = cell.fraction;
  fcfg.centroid = ctx.config.centroid;
  const defense::DistanceFilter filter(fcfg);
  const defense::Filter* filter_ptr = (cell.fraction > 0.0) ? &filter : nullptr;

  util::Rng rng = streams.stream(key);

  if (cell.placement < 0.0) {
    return pipeline.prepare(ctx.train, ctx.test, nullptr, 0, filter_ptr, rng);
  }

  attack::BoundaryAttackConfig acfg;
  acfg.placement_fraction = cell.placement;
  acfg.depth_offsets.clear();
  const attack::BoundaryAttack attack(acfg);
  return pipeline.prepare(ctx.train, ctx.test, &attack, ctx.poison_budget,
                          filter_ptr, rng);
}

}  // namespace

MixedEvalResult evaluate_mixed_defense(
    const ExperimentContext& ctx,
    const defense::MixedDefenseStrategy& strategy,
    const MixedEvalConfig& config,
    const runtime::PayoffEvaluator& evaluator) {
  PG_CHECK(config.draws >= 1, "draws must be >= 1");

  std::vector<double> placements = config.extra_placements;
  if (config.include_support_placements) {
    for (double p : strategy.removal_fractions()) placements.push_back(p);
  }
  PG_CHECK(!placements.empty(), "no attacker placements to evaluate");
  std::sort(placements.begin(), placements.end());
  placements.erase(std::unique(placements.begin(), placements.end()),
                   placements.end());

  const defense::Pipeline pipeline({ctx.config.svm});
  MixedEvalResult result;
  result.attacker_placements = placements;

  // Expected accuracy = average over the defender's mixture. Rather than
  // Monte-Carlo over the mixture we enumerate the support (it is small and
  // the probabilities are exact); `draws` controls replication per cell
  // to average out SGD noise.
  const auto& fractions = strategy.removal_fractions();
  const auto& probs = strategy.probabilities();

  // Flatten every pipeline run -- attacked arm cells ordered by
  // (placement, support point, replication), then the no-attack arm by
  // (support point, replication) -- and hand the whole batch to the
  // evaluator at once, so even a single placement saturates the pool.
  std::vector<EvalCell> cells;
  for (double placement : placements) {
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      if (probs[i] <= 0.0) continue;
      for (std::size_t rep = 0; rep < config.draws; ++rep) {
        cells.push_back({placement, fractions[i], rep});
      }
    }
  }
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    if (probs[i] <= 0.0) continue;
    for (std::size_t rep = 0; rep < config.draws; ++rep) {
      cells.push_back({-1.0, fractions[i], rep});
    }
  }

  const std::uint64_t fingerprint = context_fingerprint(ctx);
  const runtime::RngStreamFactory streams(ctx.config.seed);
  const auto key_fn = [&](std::size_t c) {
    return cell_key(fingerprint, cells[c]);
  };
  std::vector<double> accuracies;
  if (config.kernel != nullptr) {
    PG_CHECK(config.kernel->batch_width >= 1 &&
                 config.kernel->batch_width <= la::simd::kMaxSoaLanes,
             "RetrainKernel: batch_width out of range");
    const ml::BatchedLinearTrainer trainer(config.kernel->tier);
    const std::size_t width = config.kernel->batch_width;
    // Batch scheduler for the cold cells the evaluator hands us: prepare
    // each listed cell (attack + filter + standardize) in parallel, then
    // group the SGD solves by training-set size into SoA lockstep
    // batches. Values are bit-identical per cell to run_cell's.
    const auto batch_fn = [&](const std::vector<std::size_t>& idx,
                              std::vector<double>& values) {
      static obs::Counter& obs_lanes = obs::counter("obs.simd.cells_batched");
      static obs::Counter& obs_batches = obs::counter("obs.simd.batches");
      runtime::Executor& ex = evaluator.executor();
      std::vector<defense::Pipeline::Prepared> prepped(idx.size());
      runtime::parallel_for_nested(&ex, 0, idx.size(), 1, [&](std::size_t j) {
        prepped[j] = prepare_cell(ctx, pipeline, streams,
                                  cell_key(fingerprint, cells[idx[j]]),
                                  cells[idx[j]]);
      });
      std::vector<std::size_t> sizes(idx.size());
      for (std::size_t j = 0; j < idx.size(); ++j) {
        sizes[j] = prepped[j].train.size();
      }
      const auto batches = ml::plan_batches(sizes, width);
      runtime::parallel_for_nested(
          &ex, 0, batches.size(), 1, [&](std::size_t bi) {
            const std::vector<std::size_t>& batch = batches[bi];
            std::vector<ml::BatchCell> bcells(batch.size());
            for (std::size_t j = 0; j < batch.size(); ++j) {
              bcells[j].train = &prepped[batch[j]].train;
              bcells[j].rng = prepped[batch[j]].train_rng;
            }
            std::vector<ml::LinearModel> models =
                trainer.train_svm(ctx.config.svm, bcells);
            for (std::size_t j = 0; j < batch.size(); ++j) {
              values[idx[batch[j]]] =
                  defense::Pipeline::finish(std::move(prepped[batch[j]]),
                                            std::move(models[j]))
                      .test_accuracy;
            }
            obs_lanes.add(batch.size());
            obs_batches.add(1);
            obs::counter("obs.simd.batch_width_" +
                         std::to_string(batch.size()))
                .add(1);
          });
    };
    accuracies =
        evaluator.evaluate_cells_batched(cells.size(), batch_fn, key_fn);
  } else {
    accuracies = evaluator.evaluate_cells(
        cells.size(),
        [&](std::size_t c) {
          return run_cell(ctx, pipeline, streams,
                          cell_key(fingerprint, cells[c]), cells[c]);
        },
        key_fn);
  }

  // Deterministic reduction: walk the cells in the order they were laid
  // out, independent of how (or whether) they were computed.
  const auto draws = static_cast<double>(config.draws);
  std::size_t cursor = 0;
  for (double placement : placements) {
    double expected = 0.0;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      if (probs[i] <= 0.0) continue;
      double acc = 0.0;
      for (std::size_t rep = 0; rep < config.draws; ++rep) {
        acc += accuracies[cursor++];
      }
      expected += probs[i] * acc / draws;
    }
    result.accuracy_by_placement.push_back(expected);
    util::log_info() << "mixed eval placement=" << placement
                     << " expected acc=" << expected;
  }

  result.adversarial_accuracy =
      *std::min_element(result.accuracy_by_placement.begin(),
                        result.accuracy_by_placement.end());

  // No-attack arm: expected Gamma cost of the mixture.
  double no_attack = 0.0;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    if (probs[i] <= 0.0) continue;
    double acc = 0.0;
    for (std::size_t rep = 0; rep < config.draws; ++rep) {
      acc += accuracies[cursor++];
    }
    no_attack += probs[i] * acc / draws;
  }
  result.no_attack_accuracy = no_attack;
  PG_ASSERT(cursor == accuracies.size(), "mixed eval cell walk out of sync");
  return result;
}

MixedEvalResult evaluate_mixed_defense(
    const ExperimentContext& ctx,
    const defense::MixedDefenseStrategy& strategy,
    const MixedEvalConfig& config, runtime::Executor* executor) {
  const runtime::PayoffEvaluator evaluator(
      runtime::executor_or_serial(executor));
  return evaluate_mixed_defense(ctx, strategy, config, evaluator);
}

PureBenchmark best_pure_defense(const PureSweepResult& sweep) {
  PG_CHECK(!sweep.points.empty(), "best_pure_defense: empty sweep");
  PureBenchmark best{0.0, -1.0};
  for (const auto& pt : sweep.points) {
    if (pt.accuracy_attacked > best.best_accuracy) {
      best = {pt.removal_fraction, pt.accuracy_attacked};
    }
  }
  return best;
}

}  // namespace pg::sim
