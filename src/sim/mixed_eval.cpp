#include "sim/mixed_eval.h"

#include <algorithm>

#include "attack/boundary_attack.h"
#include "defense/distance_filter.h"
#include "defense/pipeline.h"
#include "util/error.h"
#include "util/logging.h"

namespace pg::sim {

MixedEvalResult evaluate_mixed_defense(
    const ExperimentContext& ctx,
    const defense::MixedDefenseStrategy& strategy,
    const MixedEvalConfig& config) {
  PG_CHECK(config.draws >= 1, "draws must be >= 1");

  std::vector<double> placements = config.extra_placements;
  if (config.include_support_placements) {
    for (double p : strategy.removal_fractions()) placements.push_back(p);
  }
  PG_CHECK(!placements.empty(), "no attacker placements to evaluate");
  std::sort(placements.begin(), placements.end());
  placements.erase(std::unique(placements.begin(), placements.end()),
                   placements.end());

  const defense::Pipeline pipeline({ctx.config.svm});
  MixedEvalResult result;
  result.attacker_placements = placements;

  // Expected accuracy = average over the defender's mixture. Rather than
  // Monte-Carlo over the mixture we enumerate the support (it is small and
  // the probabilities are exact); `draws` controls replication per cell
  // to average out SGD noise.
  const auto& fractions = strategy.removal_fractions();
  const auto& probs = strategy.probabilities();

  for (double placement : placements) {
    attack::BoundaryAttackConfig acfg;
    acfg.placement_fraction = placement;
    // Against a MIXED defense the optimal attack places exactly at a
    // support boundary (section 4.2): a deeper slide changes the set of
    // draws survived, which is precisely what the indifference condition
    // already prices. Depth search is the best response to a KNOWN pure
    // filter and belongs to the Fig.-1 sweep only.
    acfg.depth_offsets.clear();
    const attack::BoundaryAttack attack(acfg);

    double expected = 0.0;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      if (probs[i] <= 0.0) continue;
      defense::DistanceFilterConfig fcfg;
      fcfg.removal_fraction = fractions[i];
      fcfg.centroid = ctx.config.centroid;
      const defense::DistanceFilter filter(fcfg);
      const defense::Filter* filter_ptr =
          (fractions[i] > 0.0) ? &filter : nullptr;

      double acc = 0.0;
      for (std::size_t rep = 0; rep < config.draws; ++rep) {
        util::Rng rng(ctx.config.seed + 15485863 * (rep + 1) +
                      32452843 * i + 49979687 *
                      static_cast<std::uint64_t>(placement * 1e6));
        const auto res = pipeline.run(ctx.train, ctx.test, &attack,
                                      ctx.poison_budget, filter_ptr, rng);
        acc += res.test_accuracy;
      }
      expected += probs[i] * acc / static_cast<double>(config.draws);
    }
    result.accuracy_by_placement.push_back(expected);
    util::log_info() << "mixed eval placement=" << placement
                     << " expected acc=" << expected;
  }

  result.adversarial_accuracy =
      *std::min_element(result.accuracy_by_placement.begin(),
                        result.accuracy_by_placement.end());

  // No-attack arm: expected Gamma cost of the mixture.
  double no_attack = 0.0;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    if (probs[i] <= 0.0) continue;
    defense::DistanceFilterConfig fcfg;
    fcfg.removal_fraction = fractions[i];
    fcfg.centroid = ctx.config.centroid;
    const defense::DistanceFilter filter(fcfg);
    const defense::Filter* filter_ptr =
        (fractions[i] > 0.0) ? &filter : nullptr;
    double acc = 0.0;
    for (std::size_t rep = 0; rep < config.draws; ++rep) {
      util::Rng rng(ctx.config.seed + 86028121 * (rep + 1) + 512927357 * i);
      acc += pipeline.run(ctx.train, ctx.test, nullptr, 0, filter_ptr, rng)
                 .test_accuracy;
    }
    no_attack += probs[i] * acc / static_cast<double>(config.draws);
  }
  result.no_attack_accuracy = no_attack;
  return result;
}

PureBenchmark best_pure_defense(const PureSweepResult& sweep) {
  PG_CHECK(!sweep.points.empty(), "best_pure_defense: empty sweep");
  PureBenchmark best{0.0, -1.0};
  for (const auto& pt : sweep.points) {
    if (pt.accuracy_attacked > best.best_accuracy) {
      best = {pt.removal_fraction, pt.accuracy_attacked};
    }
  }
  return best;
}

}  // namespace pg::sim
