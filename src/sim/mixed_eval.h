// The Table-1 experiment: mixed strategy defense under optimal attack.
//
// Given a defender mixed strategy (typically Algorithm 1's output), the
// optimal attacker places poison at the boundaries of the mixture's
// support (section 4.2 shows he is indifferent among them). This harness
// evaluates the defended model's expected accuracy over filter draws and
// reports the *adversarial* (minimum over attacker support placements)
// value, plus the best pure-strategy accuracy for the paper's comparison
// claim "mixed accuracy strictly exceeds every pure defense".
#pragma once

#include <cstddef>
#include <vector>

#include "defense/mixed_defense.h"
#include "runtime/payoff_evaluator.h"
#include "sim/experiment.h"
#include "sim/pure_sweep.h"

namespace pg::sim {

struct MixedEvalResult {
  /// Expected accuracy when the attacker plays each candidate placement
  /// (aligned with `attacker_placements`).
  std::vector<double> accuracy_by_placement;
  std::vector<double> attacker_placements;
  /// min over placements -- what a rational attacker forces.
  double adversarial_accuracy = 0.0;
  /// Expected accuracy with no attack (pays only the Gamma of the mix).
  double no_attack_accuracy = 0.0;
};

struct MixedEvalConfig {
  /// Monte-Carlo draws of the defender's filter strength per placement.
  std::size_t draws = 9;
  /// Also evaluate placements just inside each support point (the
  /// paper's "near any boundary of the mixed defense strategy").
  bool include_support_placements = true;
  /// Extra attacker placements to probe (e.g. off-support deviations).
  std::vector<double> extra_placements;
  /// Opt-in SoA batched retraining for cold cells (the `kernel=simd`
  /// spec key); null = reference path. Borrowed, must outlive the call.
  const RetrainKernel* kernel = nullptr;
};

/// Evaluate through an explicit PayoffEvaluator: cells run in parallel on
/// the evaluator's executor and, when the evaluator carries a PayoffCache,
/// identical (context, placement, filter, replication) cells are served
/// from the cache instead of retraining -- the support sweep and the
/// transfer experiment share one cache across many strategies this way.
/// Each cell derives its Rng from its own content key, so results are
/// bit-identical at any thread count and unaffected by cache hits.
[[nodiscard]] MixedEvalResult evaluate_mixed_defense(
    const ExperimentContext& ctx,
    const defense::MixedDefenseStrategy& strategy,
    const MixedEvalConfig& config,
    const runtime::PayoffEvaluator& evaluator);

/// Convenience form: a throwaway uncached evaluator on `executor` (null ->
/// serial).
[[nodiscard]] MixedEvalResult evaluate_mixed_defense(
    const ExperimentContext& ctx,
    const defense::MixedDefenseStrategy& strategy,
    const MixedEvalConfig& config = {}, runtime::Executor* executor = nullptr);

/// Accuracy of the best PURE defense under the pure-optimal attack, i.e.
/// max over grid of the attacked curve -- the paper's benchmark that the
/// mixed strategy must beat.
struct PureBenchmark {
  double best_fraction = 0.0;
  double best_accuracy = 0.0;
};

[[nodiscard]] PureBenchmark best_pure_defense(const PureSweepResult& sweep);

}  // namespace pg::sim
