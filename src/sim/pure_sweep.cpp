#include "sim/pure_sweep.h"

#include <atomic>
#include <cstdint>

#include "attack/boundary_attack.h"
#include "defense/distance_filter.h"
#include "defense/pipeline.h"
#include "obs/trace.h"
#include "runtime/rng_stream.h"
#include "util/error.h"
#include "util/logging.h"

namespace pg::sim {

std::vector<double> sweep_grid(double max_fraction, std::size_t steps) {
  PG_CHECK(max_fraction > 0.0 && max_fraction < 1.0,
           "max_fraction must be in (0, 1)");
  PG_CHECK(steps >= 2, "steps must be >= 2");
  std::vector<double> grid(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    grid[i] =
        max_fraction * static_cast<double>(i) / static_cast<double>(steps - 1);
  }
  return grid;
}

namespace {

/// Per-(grid point, replication) measurements, filled cell-parallel.
struct SweepCell {
  double accuracy_no_attack = 0.0;
  double accuracy_attacked = 0.0;
  double poison_survived = 0.0;
};

/// Distinguishes pure-sweep cache keys from every other key family that
/// shares a PayoffCache (mixed-eval cells mix a different word sequence).
constexpr std::uint64_t kSweepKeyTag = 0x50555245'53575045ULL;  // "PURESWPE"

/// Key base covering everything a cell's three measurements depend on:
/// the context, the filter strength, the grid index (the RNG stream is
/// keyed by index, so the same fraction at a different grid position is a
/// different cell), and the replication. The three measurements get
/// sub-keys 0/1/2 off this base.
runtime::ContentKey sweep_cell_key(std::uint64_t fingerprint, double fraction,
                                   std::size_t gi, std::size_t rep) {
  runtime::ContentKey key;
  key.mix(kSweepKeyTag)
      .mix(fingerprint)
      .mix(fraction)
      .mix(static_cast<std::uint64_t>(gi))
      .mix(static_cast<std::uint64_t>(rep));
  return key;
}

std::uint64_t subkey(runtime::ContentKey base, std::uint64_t arm) {
  return base.mix(arm).digest();
}

/// Releases a single-flight claim if the owning cell throws before it can
/// publish, so waiters are promoted instead of sleeping forever.
struct AbandonGuard {
  runtime::PayoffCache* cache = nullptr;
  std::uint64_t key = 0;
  bool active = false;
  ~AbandonGuard() {
    if (active && cache != nullptr) cache->abandon(key);
  }
};

}  // namespace

PureSweepResult run_pure_sweep(const ExperimentContext& ctx,
                               const std::vector<double>& grid,
                               std::size_t replications,
                               runtime::Executor* executor,
                               runtime::PayoffCache* cache,
                               PureSweepStats* stats) {
  PG_CHECK(!grid.empty(), "run_pure_sweep: empty grid");
  PG_CHECK(replications >= 1, "replications must be >= 1");

  const defense::Pipeline pipeline({ctx.config.svm});
  PureSweepResult result;
  result.clean_accuracy = ctx.clean_accuracy;
  result.poison_budget = ctx.poison_budget;

  const std::uint64_t fingerprint =
      cache != nullptr ? context_fingerprint(ctx) : 0;
  std::atomic<std::size_t> retrained{0};
  std::atomic<std::size_t> hits{0};

  // One retrain task per (grid point, replication) cell. Every cell draws
  // its randomness from a stream keyed by its own id, so results do not
  // depend on which thread runs which cell, or in what order -- and a
  // cached cell is by definition the value the cell would recompute.
  // Nested dispatch: cells are retrain-priced, so they fan out to the
  // shared pool even when this sweep is itself one point of a
  // point-parallel grid.
  const runtime::RngStreamFactory streams(ctx.config.seed);
  const std::size_t cells = grid.size() * replications;
  std::vector<SweepCell> out(cells);
  runtime::parallel_for_nested(executor, 0, cells, 1, [&](std::size_t c) {
    obs::Span span("sweep_cell", "payoff");
    const std::size_t gi = c / replications;
    const std::size_t rep = c % replications;
    const double p = grid[gi];

    const runtime::ContentKey base =
        cache != nullptr ? sweep_cell_key(fingerprint, p, gi, rep)
                         : runtime::ContentKey();
    // Single-flight on sub-key 0: the owner publishes it LAST (after
    // storing 1 and 2), so a hit on 0 implies the siblings are present --
    // concurrent cells coalesce onto one retrain instead of racing.
    bool owner = false;
    if (cache != nullptr) {
      const runtime::PayoffCache::Claim claim =
          cache->claim(subkey(base, 0), out[c].accuracy_no_attack);
      if (claim != runtime::PayoffCache::Claim::kOwner) {
        if (cache->lookup(subkey(base, 1), out[c].accuracy_attacked) &&
            cache->lookup(subkey(base, 2), out[c].poison_survived)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        // Sibling sub-keys missing (a pre-single-flight disk snapshot
        // stored 0 first and died mid-cell): recompute below and store
        // the missing arms; 0 is already published, so no flight state.
      } else {
        owner = true;
      }
    }
    AbandonGuard guard{cache, owner ? subkey(base, 0) : 0, owner};

    util::Rng rng = streams.stream(gi, rep);

    defense::DistanceFilterConfig fcfg;
    fcfg.removal_fraction = p;
    fcfg.centroid = ctx.config.centroid;
    const defense::DistanceFilter filter(fcfg);
    const defense::Filter* filter_ptr = (p > 0.0) ? &filter : nullptr;

    // No-attack arm: Gamma measurement.
    util::Rng rng_clean = rng.fork(1);
    out[c].accuracy_no_attack =
        pipeline.run(ctx.train, ctx.test, nullptr, 0, filter_ptr, rng_clean)
            .test_accuracy;

    // Attacked arm: the optimal pure attack against a known filter p.
    attack::BoundaryAttackConfig acfg;
    acfg.placement_fraction = p;
    const attack::BoundaryAttack attack(acfg);
    util::Rng rng_attack = rng.fork(2);
    const auto res = pipeline.run(ctx.train, ctx.test, &attack,
                                  ctx.poison_budget, filter_ptr, rng_attack);
    out[c].accuracy_attacked = res.test_accuracy;
    out[c].poison_survived = 1.0 - res.detection.recall;

    retrained.fetch_add(1, std::memory_order_relaxed);
    if (cache != nullptr) {
      cache->store(subkey(base, 1), out[c].accuracy_attacked);
      cache->store(subkey(base, 2), out[c].poison_survived);
      if (owner) {
        guard.active = false;
        cache->publish(subkey(base, 0), out[c].accuracy_no_attack);
      }
    }
  });

  if (stats != nullptr) {
    stats->cells_total += cells;
    stats->cells_retrained += retrained.load();
    stats->cache_hits += hits.load();
  }

  // Serial reduction in a fixed order, so the floating-point sums are
  // identical no matter how the cells were scheduled.
  const auto reps = static_cast<double>(replications);
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    PureSweepPoint point;
    point.removal_fraction = grid[gi];
    for (std::size_t rep = 0; rep < replications; ++rep) {
      const SweepCell& cell = out[gi * replications + rep];
      point.accuracy_no_attack += cell.accuracy_no_attack;
      point.accuracy_attacked += cell.accuracy_attacked;
      point.poison_survived_fraction += cell.poison_survived;
    }
    point.accuracy_no_attack /= reps;
    point.accuracy_attacked /= reps;
    point.poison_survived_fraction /= reps;
    result.points.push_back(point);
    util::log_info() << "sweep p=" << point.removal_fraction
                     << " clean=" << point.accuracy_no_attack
                     << " attacked=" << point.accuracy_attacked;
  }
  return result;
}

}  // namespace pg::sim
