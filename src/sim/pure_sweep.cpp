#include "sim/pure_sweep.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "attack/boundary_attack.h"
#include "defense/distance_filter.h"
#include "defense/pipeline.h"
#include "ml/batch_trainer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/rng_stream.h"
#include "util/error.h"
#include "util/logging.h"

namespace pg::sim {

std::vector<double> sweep_grid(double max_fraction, std::size_t steps) {
  PG_CHECK(max_fraction > 0.0 && max_fraction < 1.0,
           "max_fraction must be in (0, 1)");
  PG_CHECK(steps >= 2, "steps must be >= 2");
  std::vector<double> grid(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    grid[i] =
        max_fraction * static_cast<double>(i) / static_cast<double>(steps - 1);
  }
  return grid;
}

namespace {

/// Per-(grid point, replication) measurements, filled cell-parallel.
struct SweepCell {
  double accuracy_no_attack = 0.0;
  double accuracy_attacked = 0.0;
  double poison_survived = 0.0;
};

/// Distinguishes pure-sweep cache keys from every other key family that
/// shares a PayoffCache (mixed-eval cells mix a different word sequence).
constexpr std::uint64_t kSweepKeyTag = 0x50555245'53575045ULL;  // "PURESWPE"

/// Key base covering everything a cell's three measurements depend on:
/// the context, the filter strength, the grid index (the RNG stream is
/// keyed by index, so the same fraction at a different grid position is a
/// different cell), and the replication. The three measurements get
/// sub-keys 0/1/2 off this base.
runtime::ContentKey sweep_cell_key(std::uint64_t fingerprint, double fraction,
                                   std::size_t gi, std::size_t rep) {
  runtime::ContentKey key;
  key.mix(kSweepKeyTag)
      .mix(fingerprint)
      .mix(fraction)
      .mix(static_cast<std::uint64_t>(gi))
      .mix(static_cast<std::uint64_t>(rep));
  return key;
}

std::uint64_t subkey(runtime::ContentKey base, std::uint64_t arm) {
  return base.mix(arm).digest();
}

/// Releases a single-flight claim if the owning cell throws before it can
/// publish, so waiters are promoted instead of sleeping forever.
struct AbandonGuard {
  runtime::PayoffCache* cache = nullptr;
  std::uint64_t key = 0;
  bool active = false;
  ~AbandonGuard() {
    if (active && cache != nullptr) cache->abandon(key);
  }
};

/// Serial reduction in a fixed order, so the floating-point sums are
/// identical no matter how the cells were scheduled (or batched).
void reduce_points(const std::vector<double>& grid, std::size_t replications,
                   const std::vector<SweepCell>& out,
                   PureSweepResult& result) {
  const auto reps = static_cast<double>(replications);
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    PureSweepPoint point;
    point.removal_fraction = grid[gi];
    for (std::size_t rep = 0; rep < replications; ++rep) {
      const SweepCell& cell = out[gi * replications + rep];
      point.accuracy_no_attack += cell.accuracy_no_attack;
      point.accuracy_attacked += cell.accuracy_attacked;
      point.poison_survived_fraction += cell.poison_survived;
    }
    point.accuracy_no_attack /= reps;
    point.accuracy_attacked /= reps;
    point.poison_survived_fraction /= reps;
    result.points.push_back(point);
    util::log_info() << "sweep p=" << point.removal_fraction
                     << " clean=" << point.accuracy_no_attack
                     << " attacked=" << point.accuracy_attacked;
  }
}

// --------------------------------------------------------------------
// SoA batched path (kernel=simd): identical cell values and cache
// traffic, but cold cells' SGD solves run `batch_width` models per
// instruction stream through ml::BatchedLinearTrainer.

/// One SGD solve awaiting batching: a prepared pipeline context going in,
/// a finished result coming out.
struct BatchLane {
  defense::Pipeline::Prepared prep;
  defense::PipelineResult result;
};

/// Both arms of one sweep cell, prepared exactly as the reference cell
/// body would have (same filter/attack configs, same fork order -- fork()
/// is const, so preparing both arms up front consumes nothing).
struct CellArms {
  BatchLane clean;
  BatchLane attacked;
};

void prepare_cell(const ExperimentContext& ctx,
                  const defense::Pipeline& pipeline,
                  const runtime::RngStreamFactory& streams, double p,
                  std::size_t gi, std::size_t rep, CellArms& arms) {
  util::Rng rng = streams.stream(gi, rep);

  defense::DistanceFilterConfig fcfg;
  fcfg.removal_fraction = p;
  fcfg.centroid = ctx.config.centroid;
  const defense::DistanceFilter filter(fcfg);
  const defense::Filter* filter_ptr = (p > 0.0) ? &filter : nullptr;

  util::Rng rng_clean = rng.fork(1);
  arms.clean.prep =
      pipeline.prepare(ctx.train, ctx.test, nullptr, 0, filter_ptr, rng_clean);

  attack::BoundaryAttackConfig acfg;
  acfg.placement_fraction = p;
  const attack::BoundaryAttack attack(acfg);
  util::Rng rng_attack = rng.fork(2);
  arms.attacked.prep = pipeline.prepare(ctx.train, ctx.test, &attack,
                                        ctx.poison_budget, filter_ptr,
                                        rng_attack);
}

/// Train every lane's SVM through the SoA batched trainer: lanes are
/// grouped by descending training-set size into batches of at most
/// `batch_width` models, and the batches fan out over the executor.
void train_lanes(const ml::SvmConfig& svm,
                 const ml::BatchedLinearTrainer& trainer,
                 std::size_t batch_width, runtime::Executor* executor,
                 std::vector<BatchLane*>& lanes) {
  static obs::Counter& obs_lanes = obs::counter("obs.simd.cells_batched");
  static obs::Counter& obs_batches = obs::counter("obs.simd.batches");
  std::vector<std::size_t> sizes(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    sizes[i] = lanes[i]->prep.train.size();
  }
  const auto batches = ml::plan_batches(sizes, batch_width);
  runtime::parallel_for_nested(
      executor, 0, batches.size(), 1, [&](std::size_t bi) {
        const std::vector<std::size_t>& batch = batches[bi];
        std::vector<ml::BatchCell> cells(batch.size());
        for (std::size_t j = 0; j < batch.size(); ++j) {
          cells[j].train = &lanes[batch[j]]->prep.train;
          cells[j].rng = lanes[batch[j]]->prep.train_rng;
        }
        std::vector<ml::LinearModel> models = trainer.train_svm(svm, cells);
        for (std::size_t j = 0; j < batch.size(); ++j) {
          BatchLane& lane = *lanes[batch[j]];
          lane.result = defense::Pipeline::finish(std::move(lane.prep),
                                                  std::move(models[j]));
        }
        obs_lanes.add(batch.size());
        obs_batches.add(1);
        obs::counter("obs.simd.batch_width_" + std::to_string(batch.size()))
            .add(1);
      });
}

PureSweepResult run_pure_sweep_batched(
    const ExperimentContext& ctx, const std::vector<double>& grid,
    std::size_t replications, runtime::Executor* executor,
    runtime::PayoffCache* cache, PureSweepStats* stats,
    const RetrainKernel& kernel) {
  obs::Span span("pure_sweep_batched", "payoff");
  const defense::Pipeline pipeline({ctx.config.svm});
  const ml::BatchedLinearTrainer trainer(kernel.tier);
  PureSweepResult result;
  result.clean_accuracy = ctx.clean_accuracy;
  result.poison_budget = ctx.poison_budget;

  const std::uint64_t fingerprint =
      cache != nullptr ? context_fingerprint(ctx) : 0;
  const runtime::RngStreamFactory streams(ctx.config.seed);
  const std::size_t cells = grid.size() * replications;
  std::vector<SweepCell> out(cells);

  const auto cell_base = [&](std::size_t c) {
    return sweep_cell_key(fingerprint, grid[c / replications],
                          c / replications, c % replications);
  };

  // Phase A: non-blocking triage. try_claim never sleeps, so amassing
  // owner claims over the whole grid cannot deadlock against another
  // batched run claiming the same keys in a different order; cells owned
  // elsewhere RIGHT NOW are deferred to phase D.
  enum class State : unsigned char { kHit, kOwner, kNoFlight, kPending };
  std::vector<State> state(cells, State::kOwner);
  std::vector<char> published(cells, 0);
  std::vector<std::size_t> compute;
  std::vector<std::size_t> pending;
  std::size_t n_hits = 0;
  for (std::size_t c = 0; c < cells; ++c) {
    if (cache == nullptr) {
      compute.push_back(c);
      continue;
    }
    const runtime::ContentKey base = cell_base(c);
    switch (cache->try_claim(subkey(base, 0), out[c].accuracy_no_attack)) {
      case runtime::PayoffCache::TryClaim::kHit:
        if (cache->lookup(subkey(base, 1), out[c].accuracy_attacked) &&
            cache->lookup(subkey(base, 2), out[c].poison_survived)) {
          state[c] = State::kHit;
          ++n_hits;
        } else {
          // Sibling sub-keys missing (pre-single-flight disk snapshot):
          // recompute without flight state, as on the reference path.
          state[c] = State::kNoFlight;
          compute.push_back(c);
        }
        break;
      case runtime::PayoffCache::TryClaim::kOwner:
        state[c] = State::kOwner;
        compute.push_back(c);
        break;
      case runtime::PayoffCache::TryClaim::kBusy:
        state[c] = State::kPending;
        pending.push_back(c);
        break;
    }
  }

  std::size_t n_retrained = 0;
  std::vector<std::unique_ptr<CellArms>> arms(cells);
  try {
    // Prepare (attack + filter + standardize) all compute cells in
    // parallel; the SGD solves are deliberately NOT run here.
    runtime::parallel_for_nested(
        executor, 0, compute.size(), 1, [&](std::size_t j) {
          const std::size_t c = compute[j];
          arms[c] = std::make_unique<CellArms>();
          prepare_cell(ctx, pipeline, streams, grid[c / replications],
                       c / replications, c % replications, *arms[c]);
        });

    // Phase B: the tentpole -- every cold SGD solve in the sweep, both
    // arms of every cell, batched into lockstep SoA groups.
    std::vector<BatchLane*> lanes;
    lanes.reserve(compute.size() * 2);
    for (const std::size_t c : compute) {
      lanes.push_back(&arms[c]->clean);
      lanes.push_back(&arms[c]->attacked);
    }
    train_lanes(ctx.config.svm, trainer, kernel.batch_width, executor, lanes);

    // Phase C: assemble cell values, store sibling arms, publish the
    // single-flight key LAST (the reference path's ordering contract).
    for (const std::size_t c : compute) {
      out[c].accuracy_no_attack = arms[c]->clean.result.test_accuracy;
      out[c].accuracy_attacked = arms[c]->attacked.result.test_accuracy;
      out[c].poison_survived =
          1.0 - arms[c]->attacked.result.detection.recall;
      ++n_retrained;
      if (cache != nullptr) {
        const runtime::ContentKey base = cell_base(c);
        cache->store(subkey(base, 1), out[c].accuracy_attacked);
        cache->store(subkey(base, 2), out[c].poison_survived);
        if (state[c] == State::kOwner) {
          cache->publish(subkey(base, 0), out[c].accuracy_no_attack);
          published[c] = 1;
        }
      }
      arms[c].reset();
    }
  } catch (...) {
    if (cache != nullptr) {
      for (const std::size_t c : compute) {
        if (state[c] == State::kOwner && published[c] == 0) {
          cache->abandon(subkey(cell_base(c), 0));
        }
      }
    }
    throw;
  }

  // Phase D: cells that were in flight elsewhere during triage. All our
  // claims are published, so blocking is safe -- one cell at a time,
  // fully resolved (published) before the next claim. A promoted owner
  // retrains through the SAME batched path (a 2-lane batch), so the
  // published value never depends on which contender won.
  for (const std::size_t c : pending) {
    const runtime::ContentKey base = cell_base(c);
    const runtime::PayoffCache::Claim claim =
        cache->claim(subkey(base, 0), out[c].accuracy_no_attack);
    const bool owner = claim == runtime::PayoffCache::Claim::kOwner;
    if (!owner && cache->lookup(subkey(base, 1), out[c].accuracy_attacked) &&
        cache->lookup(subkey(base, 2), out[c].poison_survived)) {
      ++n_hits;
      continue;
    }
    AbandonGuard guard{cache, owner ? subkey(base, 0) : 0, owner};
    CellArms cell_arms;
    prepare_cell(ctx, pipeline, streams, grid[c / replications],
                 c / replications, c % replications, cell_arms);
    std::vector<BatchLane*> lanes{&cell_arms.clean, &cell_arms.attacked};
    train_lanes(ctx.config.svm, trainer, kernel.batch_width, executor, lanes);
    out[c].accuracy_no_attack = cell_arms.clean.result.test_accuracy;
    out[c].accuracy_attacked = cell_arms.attacked.result.test_accuracy;
    out[c].poison_survived = 1.0 - cell_arms.attacked.result.detection.recall;
    ++n_retrained;
    cache->store(subkey(base, 1), out[c].accuracy_attacked);
    cache->store(subkey(base, 2), out[c].poison_survived);
    if (owner) {
      guard.active = false;
      cache->publish(subkey(base, 0), out[c].accuracy_no_attack);
    }
  }

  if (stats != nullptr) {
    stats->cells_total += cells;
    stats->cells_retrained += n_retrained;
    stats->cache_hits += n_hits;
  }
  reduce_points(grid, replications, out, result);
  return result;
}

}  // namespace

PureSweepResult run_pure_sweep(const ExperimentContext& ctx,
                               const std::vector<double>& grid,
                               std::size_t replications,
                               runtime::Executor* executor,
                               runtime::PayoffCache* cache,
                               PureSweepStats* stats,
                               const RetrainKernel* kernel) {
  PG_CHECK(!grid.empty(), "run_pure_sweep: empty grid");
  PG_CHECK(replications >= 1, "replications must be >= 1");
  if (kernel != nullptr) {
    PG_CHECK(kernel->batch_width >= 1 &&
                 kernel->batch_width <= la::simd::kMaxSoaLanes,
             "RetrainKernel: batch_width out of range");
    return run_pure_sweep_batched(ctx, grid, replications, executor, cache,
                                  stats, *kernel);
  }

  const defense::Pipeline pipeline({ctx.config.svm});
  PureSweepResult result;
  result.clean_accuracy = ctx.clean_accuracy;
  result.poison_budget = ctx.poison_budget;

  const std::uint64_t fingerprint =
      cache != nullptr ? context_fingerprint(ctx) : 0;
  std::atomic<std::size_t> retrained{0};
  std::atomic<std::size_t> hits{0};

  // One retrain task per (grid point, replication) cell. Every cell draws
  // its randomness from a stream keyed by its own id, so results do not
  // depend on which thread runs which cell, or in what order -- and a
  // cached cell is by definition the value the cell would recompute.
  // Nested dispatch: cells are retrain-priced, so they fan out to the
  // shared pool even when this sweep is itself one point of a
  // point-parallel grid.
  const runtime::RngStreamFactory streams(ctx.config.seed);
  const std::size_t cells = grid.size() * replications;
  std::vector<SweepCell> out(cells);
  runtime::parallel_for_nested(executor, 0, cells, 1, [&](std::size_t c) {
    obs::Span span("sweep_cell", "payoff");
    const std::size_t gi = c / replications;
    const std::size_t rep = c % replications;
    const double p = grid[gi];

    const runtime::ContentKey base =
        cache != nullptr ? sweep_cell_key(fingerprint, p, gi, rep)
                         : runtime::ContentKey();
    // Single-flight on sub-key 0: the owner publishes it LAST (after
    // storing 1 and 2), so a hit on 0 implies the siblings are present --
    // concurrent cells coalesce onto one retrain instead of racing.
    bool owner = false;
    if (cache != nullptr) {
      const runtime::PayoffCache::Claim claim =
          cache->claim(subkey(base, 0), out[c].accuracy_no_attack);
      if (claim != runtime::PayoffCache::Claim::kOwner) {
        if (cache->lookup(subkey(base, 1), out[c].accuracy_attacked) &&
            cache->lookup(subkey(base, 2), out[c].poison_survived)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        // Sibling sub-keys missing (a pre-single-flight disk snapshot
        // stored 0 first and died mid-cell): recompute below and store
        // the missing arms; 0 is already published, so no flight state.
      } else {
        owner = true;
      }
    }
    AbandonGuard guard{cache, owner ? subkey(base, 0) : 0, owner};

    util::Rng rng = streams.stream(gi, rep);

    defense::DistanceFilterConfig fcfg;
    fcfg.removal_fraction = p;
    fcfg.centroid = ctx.config.centroid;
    const defense::DistanceFilter filter(fcfg);
    const defense::Filter* filter_ptr = (p > 0.0) ? &filter : nullptr;

    // No-attack arm: Gamma measurement.
    util::Rng rng_clean = rng.fork(1);
    out[c].accuracy_no_attack =
        pipeline.run(ctx.train, ctx.test, nullptr, 0, filter_ptr, rng_clean)
            .test_accuracy;

    // Attacked arm: the optimal pure attack against a known filter p.
    attack::BoundaryAttackConfig acfg;
    acfg.placement_fraction = p;
    const attack::BoundaryAttack attack(acfg);
    util::Rng rng_attack = rng.fork(2);
    const auto res = pipeline.run(ctx.train, ctx.test, &attack,
                                  ctx.poison_budget, filter_ptr, rng_attack);
    out[c].accuracy_attacked = res.test_accuracy;
    out[c].poison_survived = 1.0 - res.detection.recall;

    retrained.fetch_add(1, std::memory_order_relaxed);
    if (cache != nullptr) {
      cache->store(subkey(base, 1), out[c].accuracy_attacked);
      cache->store(subkey(base, 2), out[c].poison_survived);
      if (owner) {
        guard.active = false;
        cache->publish(subkey(base, 0), out[c].accuracy_no_attack);
      }
    }
  });

  if (stats != nullptr) {
    stats->cells_total += cells;
    stats->cells_retrained += retrained.load();
    stats->cache_hits += hits.load();
  }

  reduce_points(grid, replications, out, result);
  return result;
}

}  // namespace pg::sim
