#include "sim/pure_sweep.h"

#include "attack/boundary_attack.h"
#include "defense/distance_filter.h"
#include "defense/pipeline.h"
#include "util/error.h"
#include "util/logging.h"

namespace pg::sim {

std::vector<double> sweep_grid(double max_fraction, std::size_t steps) {
  PG_CHECK(max_fraction > 0.0 && max_fraction < 1.0,
           "max_fraction must be in (0, 1)");
  PG_CHECK(steps >= 2, "steps must be >= 2");
  std::vector<double> grid(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    grid[i] =
        max_fraction * static_cast<double>(i) / static_cast<double>(steps - 1);
  }
  return grid;
}

PureSweepResult run_pure_sweep(const ExperimentContext& ctx,
                               const std::vector<double>& grid,
                               std::size_t replications) {
  PG_CHECK(!grid.empty(), "run_pure_sweep: empty grid");
  PG_CHECK(replications >= 1, "replications must be >= 1");

  const defense::Pipeline pipeline({ctx.config.svm});
  PureSweepResult result;
  result.clean_accuracy = ctx.clean_accuracy;
  result.poison_budget = ctx.poison_budget;

  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    const double p = grid[gi];
    PureSweepPoint point;
    point.removal_fraction = p;

    double acc_clean = 0.0;
    double acc_attack = 0.0;
    double survived = 0.0;
    for (std::size_t rep = 0; rep < replications; ++rep) {
      util::Rng rng(ctx.config.seed + 7919 * (rep + 1) + 104729 * gi);

      defense::DistanceFilterConfig fcfg;
      fcfg.removal_fraction = p;
      fcfg.centroid = ctx.config.centroid;
      const defense::DistanceFilter filter(fcfg);
      const defense::Filter* filter_ptr = (p > 0.0) ? &filter : nullptr;

      // No-attack arm: Gamma measurement.
      util::Rng rng_clean = rng.fork(1);
      acc_clean += pipeline
                       .run(ctx.train, ctx.test, nullptr, 0, filter_ptr,
                            rng_clean)
                       .test_accuracy;

      // Attacked arm: the optimal pure attack against a known filter p.
      attack::BoundaryAttackConfig acfg;
      acfg.placement_fraction = p;
      const attack::BoundaryAttack attack(acfg);
      util::Rng rng_attack = rng.fork(2);
      const auto res = pipeline.run(ctx.train, ctx.test, &attack,
                                    ctx.poison_budget, filter_ptr, rng_attack);
      acc_attack += res.test_accuracy;
      survived += 1.0 - res.detection.recall;
    }
    const auto reps = static_cast<double>(replications);
    point.accuracy_no_attack = acc_clean / reps;
    point.accuracy_attacked = acc_attack / reps;
    point.poison_survived_fraction = survived / reps;
    result.points.push_back(point);
    util::log_info() << "sweep p=" << p
                     << " clean=" << point.accuracy_no_attack
                     << " attacked=" << point.accuracy_attacked;
  }
  return result;
}

}  // namespace pg::sim
