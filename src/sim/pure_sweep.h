// The Fig.-1 experiment: pure strategy defense under optimal attack.
//
// For each filter strength p on a grid, two measurements:
//   * no-attack accuracy  -- filter at p applied to clean data only; the
//     decline from the unfiltered baseline is Gamma(p);
//   * attacked accuracy   -- the attacker knows p (pure-strategy,
//     full-knowledge assumption of section 5) and places the entire budget
//     just inside the filter boundary (BoundaryAttack at placement p).
// The two series are the figure's y-values; their gap divided by the
// budget estimates E(p).
#pragma once

#include <cstddef>
#include <vector>

#include "la/simd.h"
#include "runtime/executor.h"
#include "runtime/payoff_evaluator.h"
#include "sim/experiment.h"

namespace pg::sim {

/// Opt-in SoA batched retraining (the `kernel=simd` spec key). When a
/// sweep/eval entry point receives one of these, cold cells' SGD solves
/// are grouped into lockstep batches trained `batch_width` models at a
/// time through the la::simd kernels of `tier` (resolve_tier() upstream
/// guarantees the host can execute it). Cell keys, cache semantics, and
/// per-cell values are unchanged -- the batched trainer is bit-identical
/// per lane -- but horizontal kernels used on the side (e.g. weight
/// averaging) keep results within the documented 1e-9 of the reference
/// path rather than bit-equal. Null pointer = reference path.
struct RetrainKernel {
  la::simd::Tier tier = la::simd::Tier::kScalar;
  /// Max models per lockstep batch (1 .. la::simd::kMaxSoaLanes).
  std::size_t batch_width = 8;
};

struct PureSweepPoint {
  double removal_fraction = 0.0;
  double accuracy_no_attack = 0.0;
  double accuracy_attacked = 0.0;
  double poison_survived_fraction = 0.0;  // share of poison kept by filter
};

struct PureSweepResult {
  std::vector<PureSweepPoint> points;
  double clean_accuracy = 0.0;  // p = 0, no attack
  std::size_t poison_budget = 0;
};

/// Uniform grid of filter strengths in [0, max_fraction].
[[nodiscard]] std::vector<double> sweep_grid(double max_fraction,
                                             std::size_t steps);

/// Retrain traffic of one or more cached sweeps (the scenario engine sums
/// these into its cache-stats output; a warm disk-cached re-run must
/// report cells_retrained == 0).
struct PureSweepStats {
  std::size_t cells_total = 0;
  std::size_t cells_retrained = 0;
  std::size_t cache_hits = 0;
};

/// Run the sweep. `replications` > 1 averages accuracies over independent
/// seeds (reduces SGD noise in the fitted curves).
///
/// Each (grid point, replication) cell retrains the SVM independently on
/// an RngStreamFactory stream keyed by the cell id, so passing an executor
/// parallelizes the sweep with BIT-IDENTICAL results to the serial run
/// (null executor) at any thread count.
///
/// `cache` (optional) memoizes each cell's three measurements under keys
/// covering the context fingerprint plus every per-cell knob -- a hit can
/// only ever return what the cell would recompute, so caching (including a
/// disk-preloaded cache from an earlier process) cannot change results,
/// only skip retrains. `stats` (optional) accumulates the cell/hit counts.
///
/// `kernel` (optional) switches the cold cells' SGD solves to the SoA
/// batched path; see RetrainKernel above.
[[nodiscard]] PureSweepResult run_pure_sweep(
    const ExperimentContext& ctx, const std::vector<double>& grid,
    std::size_t replications = 1, runtime::Executor* executor = nullptr,
    runtime::PayoffCache* cache = nullptr, PureSweepStats* stats = nullptr,
    const RetrainKernel* kernel = nullptr);

}  // namespace pg::sim
