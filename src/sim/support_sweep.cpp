#include "sim/support_sweep.h"

#include "runtime/payoff_evaluator.h"
#include "util/error.h"
#include "util/stopwatch.h"

namespace pg::sim {

std::vector<SupportSweepRow> run_support_sweep(
    const ExperimentContext& ctx, const core::PoisoningGame& game,
    std::size_t max_n, const core::Algorithm1Config& base_config,
    const MixedEvalConfig& eval, runtime::Executor* executor,
    const runtime::PayoffEvaluator* evaluator) {
  PG_CHECK(max_n >= 1, "max_n must be >= 1");

  runtime::PayoffCache local_cache;
  const runtime::PayoffEvaluator local_evaluator(
      runtime::executor_or_serial(executor), &local_cache);
  const runtime::PayoffEvaluator& eval_through =
      evaluator != nullptr ? *evaluator : local_evaluator;

  std::vector<SupportSweepRow> rows;
  for (std::size_t n = 1; n <= max_n; ++n) {
    core::Algorithm1Config cfg = base_config;
    cfg.support_size = n;

    util::Stopwatch watch;
    const core::DefenseSolution sol =
        core::compute_optimal_defense(game, cfg, executor);
    const double seconds = watch.elapsed_seconds();

    const MixedEvalResult ev =
        evaluate_mixed_defense(ctx, sol.strategy, eval, eval_through);
    rows.push_back({n, sol.strategy, sol.defender_loss,
                    ev.adversarial_accuracy, seconds, sol.iterations});
  }
  return rows;
}

}  // namespace pg::sim
