// The section-5 text claim: accuracy plateaus for support sizes n >= 3
// while computation time keeps growing ("We experimented filters with
// n <= 5 ... stays roughly the same after n = 3 ... computation time
// increases significantly").
#pragma once

#include <cstddef>
#include <vector>

#include "core/equilibrium.h"
#include "sim/experiment.h"
#include "sim/mixed_eval.h"

namespace pg::sim {

struct SupportSweepRow {
  std::size_t support_size = 0;
  defense::MixedDefenseStrategy strategy;
  double predicted_loss = 0.0;      // Algorithm 1's f(S)
  double adversarial_accuracy = 0.0;  // measured on the testbed
  double solve_seconds = 0.0;
  std::size_t solve_iterations = 0;
};

/// Run Algorithm 1 for each n in [1, max_n] and evaluate empirically.
/// The n evaluations share one PayoffEvaluator on `executor` (null ->
/// serial) with a common memo cache: strategies for different n often
/// overlap in (placement, filter) cells, and overlapping cells retrain
/// once instead of once per n. Passing `evaluator` (the scenario engine
/// does, to share a disk-backed cache and read the retrain counters)
/// replaces the internally-built one; `executor` then only drives the
/// Algorithm-1 solves.
[[nodiscard]] std::vector<SupportSweepRow> run_support_sweep(
    const ExperimentContext& ctx, const core::PoisoningGame& game,
    std::size_t max_n, const core::Algorithm1Config& base_config = {},
    const MixedEvalConfig& eval = {}, runtime::Executor* executor = nullptr,
    const runtime::PayoffEvaluator* evaluator = nullptr);

}  // namespace pg::sim
