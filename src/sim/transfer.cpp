#include "sim/transfer.h"

#include "runtime/payoff_evaluator.h"
#include "util/error.h"
#include "util/logging.h"

namespace pg::sim {

namespace {

defense::MixedDefenseStrategy solve_on(const ExperimentContext& ctx,
                                       const TransferConfig& config,
                                       runtime::Executor* executor,
                                       runtime::PayoffCache* sweep_cache,
                                       PureSweepStats* sweep_stats) {
  const auto sweep =
      run_pure_sweep(ctx, config.sweep_fractions, config.sweep_replications,
                     executor, sweep_cache, sweep_stats, config.kernel);
  const auto curves = fit_payoff_curves(sweep);
  const core::PoisoningGame game(curves, ctx.poison_budget);
  core::Algorithm1Config acfg;
  acfg.support_size = config.support_size;
  return core::compute_optimal_defense(game, acfg, executor).strategy;
}

}  // namespace

TransferResult run_transfer_experiment(const ExperimentContext& source,
                                       const ExperimentContext& target,
                                       const TransferConfig& config,
                                       runtime::Executor* executor,
                                       const runtime::PayoffEvaluator* target_evaluator,
                                       runtime::PayoffCache* source_sweep_cache,
                                       runtime::PayoffCache* target_sweep_cache,
                                       PureSweepStats* sweep_stats) {
  PG_CHECK(!source.train.empty() && !target.train.empty(),
           "transfer requires prepared contexts");

  TransferResult result{
      solve_on(source, config, executor, source_sweep_cache, sweep_stats),
      solve_on(target, config, executor, target_sweep_cache, sweep_stats),
      0.0, 0.0, 0.0};
  util::log_info() << "source strategy " << result.source_strategy.describe()
                   << " | native strategy "
                   << result.native_strategy.describe();

  runtime::PayoffCache local_cache;
  const runtime::PayoffEvaluator local_evaluator(
      runtime::executor_or_serial(executor), &local_cache);
  const runtime::PayoffEvaluator& evaluator =
      target_evaluator != nullptr ? *target_evaluator : local_evaluator;
  result.transferred_accuracy =
      evaluate_mixed_defense(target, result.source_strategy, config.eval,
                             evaluator)
          .adversarial_accuracy;
  result.native_accuracy =
      evaluate_mixed_defense(target, result.native_strategy, config.eval,
                             evaluator)
          .adversarial_accuracy;
  result.transfer_gap =
      result.transferred_accuracy - result.native_accuracy;
  return result;
}

}  // namespace pg::sim
