// Cross-dataset generalization of the payoff curves (the paper's stated
// future work: "It is possible that a generalized E(p) and Gamma(p) exists
// across all datasets").
//
// Protocol: fit E/Gamma and solve Algorithm 1 on a SOURCE corpus, then
// evaluate the resulting mixed strategy on a TARGET corpus (different
// seed and optionally different separability), comparing against the
// strategy solved natively on the target. Because both strategies are
// distributions over *removal fractions* -- a scale-free parametrization
// -- transfer is well-defined even when the raw feature scales differ.
#pragma once

#include "core/equilibrium.h"
#include "sim/curve_fit.h"
#include "sim/experiment.h"
#include "sim/mixed_eval.h"
#include "sim/pure_sweep.h"

namespace pg::sim {

struct TransferResult {
  defense::MixedDefenseStrategy source_strategy;  // solved on source
  defense::MixedDefenseStrategy native_strategy;  // solved on target
  double transferred_accuracy = 0.0;  // source strategy on target testbed
  double native_accuracy = 0.0;       // native strategy on target testbed
  /// transferred - native: ~0 means the curves generalize (the paper's
  /// conjecture); strongly negative means they are dataset-specific.
  double transfer_gap = 0.0;
};

struct TransferConfig {
  std::vector<double> sweep_fractions = {0.0,  0.05, 0.10, 0.15, 0.20,
                                         0.25, 0.30, 0.35, 0.40};
  std::size_t sweep_replications = 1;
  std::size_t support_size = 3;
  MixedEvalConfig eval{};
  /// Opt-in SoA batched retraining for the two solve sweeps (the target
  /// evaluations take theirs through eval.kernel). Borrowed; null =
  /// reference path.
  const RetrainKernel* kernel = nullptr;
};

/// Run the full transfer protocol. Both contexts must be prepared.
/// `executor` (null -> serial) parallelizes the two solve sweeps and both
/// target evaluations; the evaluations share one payoff cache, so support
/// points common to the transferred and native strategies retrain once.
///
/// The trailing parameters exist for the scenario engine's disk-backed
/// caching: `target_evaluator` replaces the internally-built evaluator for
/// the two target evaluations (bring your own cache and counters), the two
/// sweep caches memoize the source/native solve sweeps (each keyed by its
/// own context fingerprint), and `sweep_stats` accumulates their retrain
/// traffic. All default to the uncached legacy behavior, with values
/// bit-identical either way.
[[nodiscard]] TransferResult run_transfer_experiment(
    const ExperimentContext& source, const ExperimentContext& target,
    const TransferConfig& config = {}, runtime::Executor* executor = nullptr,
    const runtime::PayoffEvaluator* target_evaluator = nullptr,
    runtime::PayoffCache* source_sweep_cache = nullptr,
    runtime::PayoffCache* target_sweep_cache = nullptr,
    PureSweepStats* sweep_stats = nullptr);

}  // namespace pg::sim
