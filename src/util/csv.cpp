#include "util/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace pg::util {

std::vector<std::vector<double>> parse_numeric_csv(const std::string& text,
                                                   char delim) {
  std::vector<std::vector<double>> rows;
  std::istringstream in(text);
  std::string line;
  std::size_t expected_fields = 0;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<double> row;
    std::istringstream ls(line);
    std::string field;
    while (std::getline(ls, field, delim)) {
      const char* begin = field.c_str();
      char* end = nullptr;
      const double v = std::strtod(begin, &end);
      PG_CHECK(end != begin && end == begin + field.size(),
               "non-numeric CSV field '" + field + "' at line " +
                   std::to_string(line_no));
      row.push_back(v);
    }
    if (expected_fields == 0) {
      expected_fields = row.size();
    }
    PG_CHECK(row.size() == expected_fields,
             "ragged CSV row at line " + std::to_string(line_no));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::vector<double>> load_numeric_csv(const std::string& path,
                                                  char delim) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open CSV file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_numeric_csv(buf.str(), delim);
}

std::string format_csv(const std::vector<std::string>& header,
                       const std::vector<std::vector<double>>& rows,
                       char delim) {
  std::ostringstream os;
  os.precision(10);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) os << delim;
    os << header[i];
  }
  if (!header.empty()) os << '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << delim;
      os << row[i];
    }
    os << '\n';
  }
  return os.str();
}

void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows, char delim) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot create CSV file: " + path);
  f << format_csv(header, rows, delim);
}

bool file_exists(const std::string& path) {
  std::ifstream f(path);
  return static_cast<bool>(f);
}

}  // namespace pg::util
