// Minimal CSV reader/writer.
//
// Used to (a) load a real UCI spambase.data file when present, and (b) dump
// experiment results in a form that external plotting tools can consume.
// Only the unquoted numeric subset of CSV is supported -- that is all the
// Spambase format and our result tables need.
#pragma once

#include <string>
#include <vector>

namespace pg::util {

/// Parse a CSV text blob of doubles. Every row must have the same number of
/// fields; blank lines are skipped; fields are separated by `delim`.
/// Throws std::invalid_argument on ragged rows or non-numeric fields.
[[nodiscard]] std::vector<std::vector<double>> parse_numeric_csv(
    const std::string& text, char delim = ',');

/// Load and parse a CSV file of doubles. Throws std::runtime_error if the
/// file cannot be opened.
[[nodiscard]] std::vector<std::vector<double>> load_numeric_csv(
    const std::string& path, char delim = ',');

/// Serialize rows of doubles as CSV with an optional header line.
[[nodiscard]] std::string format_csv(
    const std::vector<std::string>& header,
    const std::vector<std::vector<double>>& rows, char delim = ',');

/// Write CSV to a file. Throws std::runtime_error if the file cannot be
/// created.
void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows, char delim = ',');

/// True if the file exists and is readable.
[[nodiscard]] bool file_exists(const std::string& path);

}  // namespace pg::util
