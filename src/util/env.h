// Environment-variable overrides shared by every CLI surface.
//
// The bench wrappers, the scenario engine, and the disk cache all read the
// same PG_* knobs; these helpers are the single parsing point so a knob
// behaves identically everywhere. Unset (or empty) variables yield the
// fallback; malformed numerics parse their longest valid prefix, matching
// strtoull/strtod semantics the benches have always had.
#pragma once

#include <cstdlib>
#include <string>

namespace pg::util {

/// Unsigned integer knob, e.g. PG_BENCH_INSTANCES.
[[nodiscard]] inline std::size_t env_size(const char* name,
                                          std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

/// Floating-point knob.
[[nodiscard]] inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

/// String knob, e.g. PG_CACHE_DIR. Empty and unset both yield the fallback.
[[nodiscard]] inline std::string env_string(const char* name,
                                            const std::string& fallback = "") {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::string(v);
}

}  // namespace pg::util
