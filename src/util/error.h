// Precondition checking helpers shared by all poisongame libraries.
//
// Public API functions validate their arguments with PG_CHECK (throws
// std::invalid_argument) so misuse is reported eagerly; internal invariants
// use PG_ASSERT (throws std::logic_error) so broken library state is never
// silently ignored, even in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pg::util {

[[noreturn]] inline void throw_invalid_argument(const std::string& expr,
                                                const std::string& file,
                                                int line,
                                                const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_logic_error(const std::string& expr,
                                           const std::string& file,
                                           int line,
                                           const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw std::logic_error(os.str());
}

}  // namespace pg::util

#define PG_CHECK(cond, msg)                                               \
  do {                                                                    \
    if (!(cond))                                                          \
      ::pg::util::throw_invalid_argument(#cond, __FILE__, __LINE__, msg); \
  } while (false)

#define PG_ASSERT(cond, msg)                                          \
  do {                                                                \
    if (!(cond))                                                      \
      ::pg::util::throw_logic_error(#cond, __FILE__, __LINE__, msg);  \
  } while (false)
