#include "util/interp.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pg::util {

namespace {
void check_knots(const std::vector<double>& xs, const std::vector<double>& ys) {
  PG_CHECK(xs.size() == ys.size(), "xs and ys must have equal size");
  PG_CHECK(xs.size() >= 2, "need at least two knots");
  for (std::size_t i = 1; i < xs.size(); ++i) {
    PG_CHECK(xs[i] > xs[i - 1], "xs must be strictly increasing");
  }
}
}  // namespace

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  check_knots(xs_, ys_);
}

std::size_t PiecewiseLinear::segment_of(double x) const {
  // Index i such that xs_[i] <= x < xs_[i+1]; clamped to valid segments.
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  if (it == xs_.begin()) return 0;
  const auto i = static_cast<std::size_t>(it - xs_.begin()) - 1;
  return std::min(i, xs_.size() - 2);
}

double PiecewiseLinear::operator()(double x) const {
  PG_CHECK(!xs_.empty(), "interpolant is empty");
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const std::size_t i = segment_of(x);
  const double t = (x - xs_[i]) / (xs_[i + 1] - xs_[i]);
  return ys_[i] + t * (ys_[i + 1] - ys_[i]);
}

double PiecewiseLinear::derivative(double x) const {
  PG_CHECK(!xs_.empty(), "interpolant is empty");
  if (x < xs_.front() || x > xs_.back()) return 0.0;
  const std::size_t i = segment_of(x);
  return (ys_[i + 1] - ys_[i]) / (xs_[i + 1] - xs_[i]);
}

double PiecewiseLinear::integral(double a, double b) const {
  PG_CHECK(!xs_.empty(), "interpolant is empty");
  PG_CHECK(a <= b, "integral requires a <= b");
  // Integrate the clamped extension segment by segment.
  auto value = [this](double x) { return (*this)(x); };
  double total = 0.0;
  // Left clamped region.
  if (a < xs_.front()) {
    const double hi = std::min(b, xs_.front());
    total += (hi - a) * ys_.front();
    a = hi;
  }
  // Interior segments.
  while (a < std::min(b, xs_.back())) {
    const std::size_t i = segment_of(a);
    const double seg_end = std::min({b, xs_.back(), xs_[i + 1]});
    total += 0.5 * (value(a) + value(seg_end)) * (seg_end - a);
    a = seg_end;
  }
  // Right clamped region.
  if (b > xs_.back()) {
    total += (b - std::max(a, xs_.back())) * ys_.back();
  }
  return total;
}

double PiecewiseLinear::x_min() const {
  PG_CHECK(!xs_.empty(), "interpolant is empty");
  return xs_.front();
}

double PiecewiseLinear::x_max() const {
  PG_CHECK(!xs_.empty(), "interpolant is empty");
  return xs_.back();
}

MonotoneCubicSpline::MonotoneCubicSpline(std::vector<double> xs,
                                         std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  check_knots(xs_, ys_);
  const std::size_t n = xs_.size();
  std::vector<double> d(n - 1);  // secant slopes
  for (std::size_t i = 0; i + 1 < n; ++i) {
    d[i] = (ys_[i + 1] - ys_[i]) / (xs_[i + 1] - xs_[i]);
  }
  slopes_.assign(n, 0.0);
  slopes_[0] = d[0];
  slopes_[n - 1] = d[n - 2];
  for (std::size_t i = 1; i + 1 < n; ++i) {
    slopes_[i] = (d[i - 1] * d[i] <= 0.0) ? 0.0 : 0.5 * (d[i - 1] + d[i]);
  }
  // Fritsch-Carlson limiter: keep alpha^2 + beta^2 <= 9.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (d[i] == 0.0) {
      slopes_[i] = 0.0;
      slopes_[i + 1] = 0.0;
      continue;
    }
    const double alpha = slopes_[i] / d[i];
    const double beta = slopes_[i + 1] / d[i];
    const double s = alpha * alpha + beta * beta;
    if (s > 9.0) {
      const double tau = 3.0 / std::sqrt(s);
      slopes_[i] = tau * alpha * d[i];
      slopes_[i + 1] = tau * beta * d[i];
    }
  }
}

std::size_t MonotoneCubicSpline::segment_of(double x) const {
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  if (it == xs_.begin()) return 0;
  const auto i = static_cast<std::size_t>(it - xs_.begin()) - 1;
  return std::min(i, xs_.size() - 2);
}

double MonotoneCubicSpline::operator()(double x) const {
  PG_CHECK(!xs_.empty(), "interpolant is empty");
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const std::size_t i = segment_of(x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = (x - xs_[i]) / h;
  const double t2 = t * t;
  const double t3 = t2 * t;
  const double h00 = 2 * t3 - 3 * t2 + 1;
  const double h10 = t3 - 2 * t2 + t;
  const double h01 = -2 * t3 + 3 * t2;
  const double h11 = t3 - t2;
  return h00 * ys_[i] + h10 * h * slopes_[i] + h01 * ys_[i + 1] +
         h11 * h * slopes_[i + 1];
}

double MonotoneCubicSpline::derivative(double x) const {
  PG_CHECK(!xs_.empty(), "interpolant is empty");
  if (x < xs_.front() || x > xs_.back()) return 0.0;
  const std::size_t i = segment_of(x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = (x - xs_[i]) / h;
  const double t2 = t * t;
  const double dh00 = (6 * t2 - 6 * t) / h;
  const double dh10 = (3 * t2 - 4 * t + 1);
  const double dh01 = (-6 * t2 + 6 * t) / h;
  const double dh11 = (3 * t2 - 2 * t);
  return dh00 * ys_[i] + dh10 * slopes_[i] + dh01 * ys_[i + 1] +
         dh11 * slopes_[i + 1];
}

double MonotoneCubicSpline::x_min() const {
  PG_CHECK(!xs_.empty(), "interpolant is empty");
  return xs_.front();
}

double MonotoneCubicSpline::x_max() const {
  PG_CHECK(!xs_.empty(), "interpolant is empty");
  return xs_.back();
}

}  // namespace pg::util
