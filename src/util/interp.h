// 1-D interpolation used to turn measured accuracy sweeps into the
// continuous payoff curves E(p) and Gamma(p) consumed by Algorithm 1.
//
// Two interpolants are provided:
//  * PiecewiseLinear   -- exact at knots, C0, cheap; the default for payoff
//                         curves because it never overshoots measured data.
//  * MonotoneCubicSpline -- Fritsch-Carlson C1 interpolant that preserves
//                         monotonicity of the data; used when Algorithm 1's
//                         finite-difference gradients benefit from smoothness.
#pragma once

#include <cstddef>
#include <vector>

namespace pg::util {

/// Piecewise-linear interpolant through (x_i, y_i) with strictly
/// increasing x. Evaluation outside [x_front, x_back] clamps to the end
/// values (payoff curves are defined on a closed interval).
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// Requires xs.size() == ys.size() >= 2 and xs strictly increasing.
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  [[nodiscard]] double operator()(double x) const;

  /// Derivative (slope of the containing segment; one-sided at knots,
  /// zero outside the domain).
  [[nodiscard]] double derivative(double x) const;

  /// Exact integral of the interpolant over [a, b] (a <= b), with the
  /// clamped extension outside the knot range.
  [[nodiscard]] double integral(double a, double b) const;

  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return xs_.empty(); }
  [[nodiscard]] double x_min() const;
  [[nodiscard]] double x_max() const;
  [[nodiscard]] const std::vector<double>& xs() const noexcept { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const noexcept { return ys_; }

 private:
  [[nodiscard]] std::size_t segment_of(double x) const;

  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Fritsch-Carlson monotone cubic Hermite spline.
///
/// If the input ys are monotone, the interpolant is monotone (no
/// overshoot), which keeps derived probabilities in Algorithm 1
/// non-negative. Clamped (end-value) extrapolation like PiecewiseLinear.
class MonotoneCubicSpline {
 public:
  MonotoneCubicSpline() = default;

  /// Requires xs.size() == ys.size() >= 2 and xs strictly increasing.
  MonotoneCubicSpline(std::vector<double> xs, std::vector<double> ys);

  [[nodiscard]] double operator()(double x) const;
  [[nodiscard]] double derivative(double x) const;

  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return xs_.empty(); }
  [[nodiscard]] double x_min() const;
  [[nodiscard]] double x_max() const;

 private:
  [[nodiscard]] std::size_t segment_of(double x) const;

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> slopes_;  // Hermite tangent at each knot
};

}  // namespace pg::util
