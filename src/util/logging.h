// Tiny leveled logger for experiment progress reporting.
//
// Benchmarks and long-running sweeps use this to report progress on stderr
// without polluting the stdout tables that reproduce the paper's figures.
#pragma once

#include <sstream>
#include <string>

namespace pg::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped. Thread-unsafe by
/// design (set once at startup).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line to stderr as "[LEVEL] message" if level passes the filter.
void log(LogLevel level, const std::string& message);

namespace detail {
class LineLogger {
 public:
  explicit LineLogger(LogLevel level) : level_(level) {}
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;
  ~LineLogger() { log(level_, os_.str()); }

  template <typename T>
  LineLogger& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

[[nodiscard]] inline detail::LineLogger log_debug() {
  return detail::LineLogger(LogLevel::kDebug);
}
[[nodiscard]] inline detail::LineLogger log_info() {
  return detail::LineLogger(LogLevel::kInfo);
}
[[nodiscard]] inline detail::LineLogger log_warn() {
  return detail::LineLogger(LogLevel::kWarn);
}
[[nodiscard]] inline detail::LineLogger log_error() {
  return detail::LineLogger(LogLevel::kError);
}

}  // namespace pg::util
