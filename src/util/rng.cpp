#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace pg::util {

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
}

std::uint64_t Xoshiro256pp::next() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256pp::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL, 0x77710069854EE241ULL,
      0x39109BB02ACBE635ULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (void)next();
    }
  }
  state_ = acc;
}

Rng Rng::fork(std::uint64_t salt) const noexcept {
  // Mix seed and salt through SplitMix64 so sibling forks are decorrelated.
  SplitMix64 sm(seed_ ^ (salt * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL));
  return Rng(sm.next());
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PG_CHECK(lo < hi, "uniform(lo, hi) requires lo < hi");
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  PG_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling for exact uniformity.
  const std::uint64_t bound = n;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t x;
  do {
    x = gen_.next();
  } while (x >= limit);
  return static_cast<std::size_t>(x % bound);
}

long long Rng::uniform_int(long long lo, long long hi) {
  PG_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63, safe
  return lo + static_cast<long long>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sd) {
  PG_CHECK(sd >= 0.0, "normal requires sd >= 0");
  return mean + sd * normal();
}

double Rng::exponential(double rate) {
  PG_CHECK(rate > 0.0, "exponential requires rate > 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  PG_CHECK(sigma >= 0.0, "lognormal requires sigma >= 0");
  return std::exp(mu + sigma * normal());
}

bool Rng::bernoulli(double p) {
  PG_CHECK(p >= 0.0 && p <= 1.0, "bernoulli requires p in [0, 1]");
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  PG_CHECK(!weights.empty(), "categorical requires non-empty weights");
  double total = 0.0;
  for (double w : weights) {
    PG_CHECK(w >= 0.0, "categorical requires non-negative weights");
    total += w;
  }
  PG_CHECK(total > 0.0, "categorical requires a positive total weight");
  const double u = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // guard against fp rounding at the top end
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  PG_CHECK(k <= n, "sample_without_replacement requires k <= n");
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace pg::util
