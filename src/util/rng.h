// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in poisongame takes an explicit Rng& so that a
// whole experiment (data synthesis, attack placement, filter sampling, SGD
// shuffling) is reproducible from one 64-bit seed. The generator is
// xoshiro256++ seeded through SplitMix64, both implemented here so the
// library has no dependence on the (implementation-defined) distributions of
// <random>.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace pg::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Also a fine standalone generator for cheap decorrelated streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  [[nodiscard]] std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Xoshiro256pp {
 public:
  explicit Xoshiro256pp(std::uint64_t seed) noexcept;

  [[nodiscard]] std::uint64_t next() noexcept;

  /// Advance 2^128 steps; used to derive independent parallel streams.
  void long_jump() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// High-level random source with the distributions the library needs.
///
/// All methods are deterministic functions of the seed and the call
/// sequence. Copying an Rng forks the stream (both copies then produce the
/// same sequence) -- pass by reference to share a stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept
      : gen_(seed), seed_(seed) {}

  /// The seed this stream was created from (for experiment records).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Derive an independent child stream; deterministic in (seed, salt).
  [[nodiscard]] Rng fork(std::uint64_t salt) const noexcept;

  /// Uniform on [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform on [lo, hi). Requires lo < hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer on [0, n). Requires n > 0. Unbiased (rejection).
  [[nodiscard]] std::size_t uniform_index(std::size_t n);

  /// Uniform integer on [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] long long uniform_int(long long lo, long long hi);

  /// Standard normal via Box-Muller (cached second variate).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation (sd >= 0).
  [[nodiscard]] double normal(double mean, double sd);

  /// Exponential with the given rate (rate > 0).
  [[nodiscard]] double exponential(double rate);

  /// Log-normal: exp(Normal(mu, sigma)). Requires sigma >= 0.
  [[nodiscard]] double lognormal(double mu, double sigma);

  /// Bernoulli with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Sample an index from an (unnormalized) non-negative weight vector.
  /// Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (order random).
  /// Requires k <= n.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

 private:
  Xoshiro256pp gen_;
  std::uint64_t seed_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace pg::util
