#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pg::util {

double mean(const std::vector<double>& v) {
  PG_CHECK(!v.empty(), "mean of empty vector");
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  PG_CHECK(v.size() >= 2, "variance needs at least two samples");
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) {
  PG_CHECK(!v.empty(), "median of empty vector");
  const std::size_t n = v.size();
  const std::size_t mid = n / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (n % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double quantile(std::vector<double> v, double q) {
  PG_CHECK(!v.empty(), "quantile of empty vector");
  PG_CHECK(q >= 0.0 && q <= 1.0, "quantile requires q in [0, 1]");
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double min_value(const std::vector<double>& v) {
  PG_CHECK(!v.empty(), "min of empty vector");
  return *std::min_element(v.begin(), v.end());
}

double max_value(const std::vector<double>& v) {
  PG_CHECK(!v.empty(), "max of empty vector");
  return *std::max_element(v.begin(), v.end());
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> sample)
    : sorted_(std::move(sample)) {
  PG_CHECK(!sorted_.empty(), "EmpiricalCdf requires a non-empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
  PG_CHECK(!sorted_.empty(), "EmpiricalCdf is empty");
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::inverse(double q) const {
  PG_CHECK(!sorted_.empty(), "EmpiricalCdf is empty");
  PG_CHECK(q >= 0.0 && q <= 1.0, "inverse requires q in [0, 1]");
  if (q <= 0.0) return sorted_.front();
  const auto n = static_cast<double>(sorted_.size());
  const auto k = static_cast<std::size_t>(std::ceil(q * n));
  return sorted_[std::min(k == 0 ? 0 : k - 1, sorted_.size() - 1)];
}

double EmpiricalCdf::survival(double x) const { return 1.0 - (*this)(x); }

double EmpiricalCdf::min() const {
  PG_CHECK(!sorted_.empty(), "EmpiricalCdf is empty");
  return sorted_.front();
}

double EmpiricalCdf::max() const {
  PG_CHECK(!sorted_.empty(), "EmpiricalCdf is empty");
  return sorted_.back();
}

Summary summarize(const std::vector<double>& v) {
  PG_CHECK(!v.empty(), "summarize of empty vector");
  Summary s;
  s.count = v.size();
  s.mean = mean(v);
  s.stddev = v.size() >= 2 ? stddev(v) : 0.0;
  s.min = min_value(v);
  s.median = median(v);
  s.max = max_value(v);
  return s;
}

}  // namespace pg::util
