// Descriptive statistics, quantiles and empirical CDFs.
//
// The defender's filter strength is defined as a quantile of the clean
// distance-to-centroid distribution, and the attacker's "radius percentile"
// is the inverse transform, so quantile/ECDF code is on the critical path of
// the game model and must be exact and well-tested.
#pragma once

#include <cstddef>
#include <vector>

namespace pg::util {

/// Arithmetic mean. Requires non-empty input.
[[nodiscard]] double mean(const std::vector<double>& v);

/// Unbiased sample variance (n-1 denominator). Requires size >= 2.
[[nodiscard]] double variance(const std::vector<double>& v);

/// sqrt(variance).
[[nodiscard]] double stddev(const std::vector<double>& v);

/// Median (average of central pair for even sizes). Requires non-empty.
[[nodiscard]] double median(std::vector<double> v);

/// Linear-interpolated quantile (type 7, the numpy/R default).
/// q in [0, 1]; requires non-empty input.
[[nodiscard]] double quantile(std::vector<double> v, double q);

/// Minimum / maximum. Require non-empty input.
[[nodiscard]] double min_value(const std::vector<double>& v);
[[nodiscard]] double max_value(const std::vector<double>& v);

/// Empirical cumulative distribution function of a sample.
///
/// F(x) = (number of sample points <= x) / n, plus the inverse transform
/// (quantile). Used to convert between filter radius and removal fraction.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  /// Requires a non-empty sample.
  explicit EmpiricalCdf(std::vector<double> sample);

  /// F(x) in [0, 1].
  [[nodiscard]] double operator()(double x) const;

  /// Smallest sample value v with F(v) >= q, q in [0, 1].
  [[nodiscard]] double inverse(double q) const;

  /// Fraction of the sample strictly greater than x.
  [[nodiscard]] double survival(double x) const;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::vector<double> sorted_;
};

/// Summary statistics bundle used by experiment reports.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

/// Compute a Summary. Requires non-empty input.
[[nodiscard]] Summary summarize(const std::vector<double>& v);

}  // namespace pg::util
