// Wall-clock stopwatch for the n-sweep experiment (the paper reports that
// "the computation time increases significantly when computing high value
// of n") and for coarse progress reporting.
#pragma once

#include <chrono>

namespace pg::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pg::util
