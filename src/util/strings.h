// Small string helpers shared across the library's parsers.
#pragma once

#include <cctype>
#include <string>

namespace pg::util {

/// Copy of `s` with leading/trailing ASCII whitespace removed.
[[nodiscard]] inline std::string trim_whitespace(const std::string& s) {
  std::size_t lo = 0;
  std::size_t hi = s.size();
  while (lo < hi && std::isspace(static_cast<unsigned char>(s[lo]))) ++lo;
  while (hi > lo && std::isspace(static_cast<unsigned char>(s[hi - 1]))) --hi;
  return s.substr(lo, hi - lo);
}

}  // namespace pg::util
