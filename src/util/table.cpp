#include "util/table.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace pg::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PG_CHECK(!header_.empty(), "TextTable requires a non-empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  PG_CHECK(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

void TextTable::add_numeric_row(const std::vector<double>& row,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::left << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

std::string format_double_roundtrip(double v) {
  for (int precision = 6; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    if (std::strtod(os.str().c_str(), nullptr) == v) return os.str();
  }
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

}  // namespace pg::util
