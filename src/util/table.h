// ASCII table rendering for the benchmark harness.
//
// Each bench binary prints the rows/series of one paper figure or table;
// TextTable keeps that output aligned and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace pg::util {

/// Simple column-aligned ASCII table with an optional title.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row. Must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision. (A distinct name,
  /// not an overload: string literals convert to bool and then double, so
  /// an overload would make add_row({"a", "b"}) ambiguous.)
  void add_numeric_row(const std::vector<double>& row, int precision = 4);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with column padding and a separator under the header.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double as a fixed-precision string (helper for table cells).
[[nodiscard]] std::string format_double(double v, int precision = 4);

/// Shortest decimal form that parses back to exactly the same double
/// (0.25 -> "0.25", not 17 digits) -- the lossless serialization used by
/// both the scenario spec and the result sinks. Finite inputs only.
[[nodiscard]] std::string format_double_roundtrip(double v);

/// Format a fraction as a percentage string, e.g. 0.058 -> "5.8%".
[[nodiscard]] std::string format_percent(double fraction, int precision = 1);

}  // namespace pg::util
