// Unit and property tests for pg::attack -- radius maps, the boundary
// attack, baselines, the gradient-refined attack and mixed strategies.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/boundary_attack.h"
#include "attack/gradient_attack.h"
#include "attack/label_flip.h"
#include "attack/mixed_attack.h"
#include "attack/noise_attack.h"
#include "attack/radius_map.h"
#include "data/synthetic.h"
#include "defense/distance_filter.h"
#include "defense/pipeline.h"
#include "la/vector_ops.h"

namespace pg::attack {
namespace {

data::Dataset blobs(std::size_t n = 400, std::uint64_t seed = 1,
                    double sep = 6.0) {
  util::Rng rng(seed);
  return data::make_gaussian_blobs(n, 5, sep, rng);
}

// ------------------------------------------------------------ radius_map

TEST(RadiusMapTest, CentroidsMatchDefenderGeometry) {
  const auto d = blobs();
  const ClassRadiusMap median_map(d);
  EXPECT_EQ(median_map.geometry(1).centroid, d.class_coordinate_median(1));
  const ClassRadiusMap mean_map(d, /*use_median=*/false);
  EXPECT_EQ(mean_map.geometry(1).centroid, d.class_mean(1));
  EXPECT_EQ(mean_map.geometry(-1).centroid, d.class_mean(-1));
}

TEST(RadiusMapTest, RadiusDecreasesWithRemovalFraction) {
  const ClassRadiusMap map(blobs());
  double prev = map.radius_for_removal(1, 0.0);
  for (double p : {0.1, 0.2, 0.4, 0.8}) {
    const double r = map.radius_for_removal(1, p);
    EXPECT_LE(r, prev + 1e-12);
    prev = r;
  }
}

TEST(RadiusMapTest, RoundTripRemovalFraction) {
  const ClassRadiusMap map(blobs(2000));
  for (double p : {0.05, 0.1, 0.2, 0.3}) {
    const double r = map.radius_for_removal(1, p);
    // The fraction strictly beyond the radius is <= p (ties inside).
    EXPECT_LE(map.removal_for_radius(1, r), p + 1e-9);
    EXPECT_NEAR(map.removal_for_radius(1, r), p, 0.01);
  }
}

TEST(RadiusMapTest, BoundaryIsMaxDistance) {
  const auto d = blobs();
  const ClassRadiusMap map(d);
  const auto dist = d.distances_to(d.class_coordinate_median(1), 1);
  EXPECT_DOUBLE_EQ(map.boundary_radius(1),
                   *std::max_element(dist.begin(), dist.end()));
}

TEST(RadiusMapTest, RequiresBothClasses) {
  data::Dataset one_class;
  one_class.append({1.0}, 1);
  one_class.append({2.0}, 1);
  EXPECT_THROW(ClassRadiusMap{one_class}, std::invalid_argument);
}

TEST(RadiusMapTest, UnknownLabelThrows) {
  const ClassRadiusMap map(blobs());
  EXPECT_THROW((void)map.geometry(3), std::invalid_argument);
}

TEST(PoisonBudgetTest, FloorsFraction) {
  EXPECT_EQ(poison_budget(100, 0.2), 20u);
  EXPECT_EQ(poison_budget(7, 0.5), 3u);
  EXPECT_EQ(poison_budget(10, 0.0), 0u);
  EXPECT_THROW((void)poison_budget(10, 1.5), std::invalid_argument);
}

// ------------------------------------------------------- boundary_attack

TEST(BoundaryAttackTest, ProducesRequestedCount) {
  const auto d = blobs();
  util::Rng rng(2);
  const auto poison = BoundaryAttack(BoundaryAttackConfig{}).generate(d, 21, rng);
  EXPECT_EQ(poison.size(), 21u);
  EXPECT_EQ(poison.dim(), d.dim());
}

TEST(BoundaryAttackTest, AlternatesLabels) {
  const auto d = blobs();
  util::Rng rng(3);
  const auto poison =
      BoundaryAttack(BoundaryAttackConfig{}).generate(d, 10, rng);
  EXPECT_EQ(poison.count_label(1), 5u);
  EXPECT_EQ(poison.count_label(-1), 5u);
}

TEST(BoundaryAttackTest, PointsLieOnRequestedRadius) {
  const auto d = blobs(2000);
  const ClassRadiusMap map(d);
  BoundaryAttackConfig cfg;
  cfg.placement_fraction = 0.2;
  cfg.direction_noise = 0.0;
  cfg.safety_margin = 0.0;
  cfg.account_for_displacement = false;  // check the raw clean quantile
  cfg.depth_offsets.clear();
  util::Rng rng(4);
  const auto poison = BoundaryAttack(cfg).generate(d, 8, rng);
  for (std::size_t i = 0; i < poison.size(); ++i) {
    const int label = poison.label(i);
    const double r =
        la::distance(poison.instance(i), map.geometry(label).centroid);
    EXPECT_NEAR(r, map.radius_for_removal(label, 0.2), 1e-9);
  }
}

TEST(BoundaryAttackTest, SafetyMarginShrinksRadius) {
  const auto d = blobs();
  const ClassRadiusMap map(d);
  BoundaryAttackConfig cfg;
  cfg.placement_fraction = 0.1;
  cfg.direction_noise = 0.0;
  cfg.safety_margin = 0.05;
  cfg.account_for_displacement = false;
  cfg.depth_offsets.clear();
  util::Rng rng(5);
  const auto poison = BoundaryAttack(cfg).generate(d, 4, rng);
  const double target = map.radius_for_removal(1, 0.1) * 0.95;
  EXPECT_NEAR(la::distance(poison.instance(0), map.geometry(1).centroid),
              target, 1e-9);
}

TEST(BoundaryAttackTest, DirectedTowardOppositeClass) {
  const auto d = blobs();
  const ClassRadiusMap map(d);
  BoundaryAttackConfig cfg;
  cfg.placement_fraction = 0.3;
  cfg.direction_noise = 0.0;
  cfg.depth_offsets.clear();
  util::Rng rng(6);
  const auto poison = BoundaryAttack(cfg).generate(d, 2, rng);
  // A +1-labeled poison point must be closer to the -1 centroid than its
  // own centroid's antipode: dot of (x - c_own) with (c_other - c_own) > 0.
  for (std::size_t i = 0; i < poison.size(); ++i) {
    const int label = poison.label(i);
    const auto& own = map.geometry(label).centroid;
    const auto& other = map.geometry(-label).centroid;
    const double align = la::dot(la::subtract(poison.instance(i), own),
                                 la::subtract(other, own));
    EXPECT_GT(align, 0.0);
  }
}

TEST(BoundaryAttackTest, SurvivesWeakerFilterDiesToStronger) {
  // The defining property of the placement parametrization: a point at
  // placement psi is kept by a filter weaker than psi and removed by a
  // clearly stronger one. (Filter quantiles are computed on the poisoned
  // set, so exact threshold equality is blurred; we test with margin.)
  const auto d = blobs(1000);
  BoundaryAttackConfig cfg;
  cfg.placement_fraction = 0.25;
  cfg.depth_offsets.clear();
  util::Rng rng(7);
  const auto poison = BoundaryAttack(cfg).generate(d, 100, rng);
  const auto all = data::concatenate(d, poison);

  defense::DistanceFilterConfig weak;
  weak.removal_fraction = 0.05;
  weak.centroid.method = defense::CentroidMethod::kCoordinateMedian;
  util::Rng frng(8);
  const auto weak_res = defense::DistanceFilter(weak).apply(all, frng);
  const auto weak_score =
      defense::score_detection(weak_res, all.size(), d.size());
  EXPECT_LT(weak_score.recall, 0.2);

  defense::DistanceFilterConfig strong;
  strong.removal_fraction = 0.45;
  strong.centroid.method = defense::CentroidMethod::kCoordinateMedian;
  const auto strong_res = defense::DistanceFilter(strong).apply(all, frng);
  const auto strong_score =
      defense::score_detection(strong_res, all.size(), d.size());
  EXPECT_GT(strong_score.recall, 0.9);
}

TEST(BoundaryAttackTest, ConfigValidation) {
  EXPECT_THROW(BoundaryAttack({.placement_fraction = -0.1}),
               std::invalid_argument);
  EXPECT_THROW(BoundaryAttack({.placement_fraction = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(BoundaryAttack({.placement_fraction = 0.1,
                               .safety_margin = 1.0}),
               std::invalid_argument);
}

TEST(BoundaryAttackTest, DeterministicGivenRng) {
  const auto d = blobs();
  util::Rng r1(9);
  util::Rng r2(9);
  const BoundaryAttack atk{BoundaryAttackConfig{}};
  const auto p1 = atk.generate(d, 6, r1);
  const auto p2 = atk.generate(d, 6, r2);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1.instance(i), p2.instance(i));
  }
}

// ------------------------------------------------------------ label_flip

TEST(LabelFlipTest, FlipsLabelsOfExistingPoints) {
  const auto d = blobs(100);
  util::Rng rng(10);
  const auto poison =
      LabelFlipAttack({FlipSelection::kRandom}).generate(d, 30, rng);
  EXPECT_EQ(poison.size(), 30u);
  // Every poison point must be a clean point with inverted label.
  for (std::size_t i = 0; i < 5; ++i) {
    bool found = false;
    for (std::size_t j = 0; j < d.size(); ++j) {
      if (poison.instance(i) == d.instance(j)) {
        EXPECT_EQ(poison.label(i), -d.label(j));
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "poison point " << i << " not from clean set";
  }
}

TEST(LabelFlipTest, NearCentroidSelectionPrefersBoundaryPoints) {
  const auto d = blobs(500);
  util::Rng rng(11);
  const auto near = LabelFlipAttack({FlipSelection::kNearCentroid})
                        .generate(d, 10, rng);
  util::Rng rng2(11);
  const auto far =
      LabelFlipAttack({FlipSelection::kFarthest}).generate(d, 10, rng2);
  // kNearCentroid picks points close to the opposite class; their distance
  // to the opposite centroid must be smaller on average than kFarthest's.
  const ClassRadiusMap map(d);
  auto mean_dist_to_opposite = [&](const data::Dataset& p) {
    double s = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      // Poison label is flipped, so "opposite of original" == poison label.
      s += la::distance(p.instance(i), map.geometry(p.label(i)).centroid);
    }
    return s / static_cast<double>(p.size());
  };
  EXPECT_LT(mean_dist_to_opposite(near), mean_dist_to_opposite(far));
}

TEST(LabelFlipTest, NameIdentifiesSelection) {
  EXPECT_NE(LabelFlipAttack({FlipSelection::kRandom}).name().find("random"),
            std::string::npos);
  EXPECT_NE(LabelFlipAttack({FlipSelection::kFarthest}).name().find("far"),
            std::string::npos);
}

// ---------------------------------------------------------- noise_attack

TEST(NoiseAttackTest, GeneratesBalancedNoise) {
  const auto d = blobs();
  util::Rng rng(12);
  const auto poison = NoiseAttack().generate(d, 20, rng);
  EXPECT_EQ(poison.size(), 20u);
  EXPECT_EQ(poison.count_label(1), 10u);
}

TEST(NoiseAttackTest, RejectsNonPositiveScale) {
  EXPECT_THROW(NoiseAttack({.scale = 0.0}), std::invalid_argument);
}

// ------------------------------------------------------- gradient_attack

TEST(GradientAttackTest, RespectsRadiusConstraint) {
  const auto d = blobs(300);
  GradientAttackConfig cfg;
  cfg.placement_fraction = 0.2;
  cfg.outer_iters = 3;
  util::Rng rng(13);
  const auto poison = GradientAttack(cfg).generate(d, 20, rng);
  const ClassRadiusMap map(d);
  for (std::size_t i = 0; i < poison.size(); ++i) {
    const int label = poison.label(i);
    const double r =
        la::distance(poison.instance(i), map.geometry(label).centroid);
    EXPECT_LE(r, map.radius_for_removal(label, 0.2) + 1e-6);
  }
}

TEST(GradientAttackTest, AtLeastRoughlyAsDamagingAsBoundary) {
  // The refinement must not be dramatically weaker than its analytic seed
  // (it verifies the paper's "optimal points sit at the boundary" claim).
  const auto d = blobs(400, 14, 3.0);
  util::Rng data_rng(15);
  const auto test = data::make_gaussian_blobs(400, 5, 3.0, data_rng);

  defense::PipelineConfig pcfg;
  pcfg.svm.epochs = 40;
  pcfg.standardize = false;
  const defense::Pipeline pipeline(pcfg);

  BoundaryAttackConfig bcfg;
  bcfg.placement_fraction = 0.1;
  const BoundaryAttack boundary(bcfg);
  GradientAttackConfig gcfg;
  gcfg.placement_fraction = 0.1;
  gcfg.outer_iters = 3;
  const GradientAttack gradient(gcfg);

  util::Rng r1(16);
  util::Rng r2(16);
  const double acc_boundary =
      pipeline.run(d, test, &boundary, 80, nullptr, r1).test_accuracy;
  const double acc_gradient =
      pipeline.run(d, test, &gradient, 80, nullptr, r2).test_accuracy;
  EXPECT_LE(acc_gradient, acc_boundary + 0.10);
}

// ---------------------------------------------------------- mixed_attack

TEST(MixedAttackTest, StrategyValidation) {
  EXPECT_THROW(MixedAttackStrategy({0.1}, {0.9}), std::invalid_argument);
  EXPECT_THROW(MixedAttackStrategy({0.1, 1.2}, {0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(MixedAttackStrategy({}, {}), std::invalid_argument);
  EXPECT_NO_THROW(MixedAttackStrategy({0.1, 0.2}, {0.5, 0.5}));
}

TEST(MixedAttackTest, ExpectedAllocationSumsToBudget) {
  const MixedAttackStrategy s({0.05, 0.15, 0.25}, {0.2, 0.3, 0.5});
  const auto alloc = s.expected_allocation(100);
  std::size_t total = 0;
  for (const auto& a : alloc) total += a.count;
  EXPECT_EQ(total, 100u);
}

TEST(MixedAttackTest, SampledAllocationSumsToBudget) {
  const MixedAttackStrategy s({0.05, 0.25}, {0.5, 0.5});
  util::Rng rng(17);
  const auto alloc = s.sample_allocation(57, rng);
  std::size_t total = 0;
  for (const auto& a : alloc) total += a.count;
  EXPECT_EQ(total, 57u);
}

TEST(MixedAttackTest, SampledAllocationFollowsProbabilities) {
  const MixedAttackStrategy s({0.1, 0.2}, {0.8, 0.2});
  util::Rng rng(18);
  double at_first = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    for (const auto& a : s.sample_allocation(50, rng)) {
      if (a.placement_fraction == 0.1) at_first += a.count;
    }
  }
  EXPECT_NEAR(at_first / (trials * 50.0), 0.8, 0.03);
}

TEST(MixedAttackTest, GenerateAllocationPlacesCorrectCounts) {
  const auto d = blobs();
  util::Rng rng(19);
  const auto poison = generate_allocation(
      d, {{0.1, 7}, {0.3, 5}}, rng, 0.0, 0.0);
  EXPECT_EQ(poison.size(), 12u);
}

TEST(MixedAttackTest, AdapterProducesBudget) {
  const auto d = blobs();
  const MixedAttack atk(MixedAttackStrategy({0.1, 0.2}, {0.5, 0.5}));
  util::Rng rng(20);
  EXPECT_EQ(atk.generate(d, 33, rng).size(), 33u);
  EXPECT_NE(atk.name().find("mixed"), std::string::npos);
}

// Property sweep over placements: deeper placements are detected by
// correspondingly stronger filters.
class PlacementProperty : public ::testing::TestWithParam<double> {};

TEST_P(PlacementProperty, FilterAtPlacementBoundaryIsDecisive) {
  const double psi = GetParam();
  const auto d = blobs(800);
  BoundaryAttackConfig cfg;
  cfg.placement_fraction = psi;
  cfg.depth_offsets.clear();
  util::Rng rng(21);
  const auto poison = BoundaryAttack(cfg).generate(d, 80, rng);
  const auto all = data::concatenate(d, poison);

  // A filter twice as strong as the placement must catch most poison.
  defense::DistanceFilterConfig strong;
  strong.removal_fraction = std::min(0.9, 2.0 * psi + 0.15);
  strong.centroid.method = defense::CentroidMethod::kCoordinateMedian;
  util::Rng frng(22);
  const auto res = defense::DistanceFilter(strong).apply(all, frng);
  const auto score = defense::score_detection(res, all.size(), d.size());
  EXPECT_GT(score.recall, 0.8) << "placement " << psi;
}

INSTANTIATE_TEST_SUITE_P(Placements, PlacementProperty,
                         ::testing::Values(0.05, 0.1, 0.15, 0.2, 0.3));

}  // namespace
}  // namespace pg::attack
