// Unit and property tests for pg::core -- payoff curves, the poisoning
// game, Algorithm 1 and the NE property verifiers. These tests encode the
// paper's theoretical claims on analytic curves where exact answers exist.
#include <gtest/gtest.h>

#include <cmath>

#include "core/equilibrium.h"
#include "core/game_model.h"
#include "core/ne_properties.h"
#include "core/payoff.h"
#include "game/pure_ne.h"
#include "game/solvers.h"

namespace pg::core {
namespace {

PayoffCurves standard_curves() {
  // E(p) = 0.002 (1-p)^5 per point, Gamma(p) = 0.06 p^1.4.
  return PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4);
}

PoisoningGame standard_game() { return PoisoningGame(standard_curves(), 100); }

// ----------------------------------------------------------------- payoff

TEST(PayoffTest, AnalyticEndpoints) {
  const auto c = PayoffCurves::analytic(0.01, 2.0, 0.05, 1.0);
  EXPECT_NEAR(c.damage(0.0), 0.01, 1e-12);
  EXPECT_NEAR(c.damage(1.0), 0.0, 1e-12);
  EXPECT_NEAR(c.cost(0.0), 0.0, 1e-12);
  EXPECT_NEAR(c.cost(1.0), 0.05, 1e-12);
}

TEST(PayoffTest, DamageDecreasingCostIncreasing) {
  const auto c = standard_curves();
  double prev_e = c.damage(0.0);
  double prev_g = c.cost(0.0);
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    EXPECT_LE(c.damage(p), prev_e + 1e-12);
    EXPECT_GE(c.cost(p), prev_g - 1e-12);
    prev_e = c.damage(p);
    prev_g = c.cost(p);
  }
}

TEST(PayoffTest, SupportLimitFindsPositiveRegion) {
  const auto c = standard_curves();
  const double limit = c.damage_support_limit(1e-6);
  // 0.002 (1-p)^5 > 1e-6  <=>  p < 1 - (5e-4)^(1/5) ~ 0.781.
  EXPECT_NEAR(limit, 0.781, 0.01);
  EXPECT_GT(c.damage(limit), 1e-6);
}

TEST(PayoffTest, MeasuredCurvesFromKnots) {
  const PayoffCurves c(
      util::PiecewiseLinear({0.0, 0.5, 1.0}, {0.1, 0.05, 0.0}),
      util::PiecewiseLinear({0.0, 0.5, 1.0}, {0.0, 0.01, 0.05}));
  EXPECT_NEAR(c.damage(0.25), 0.075, 1e-12);
  EXPECT_NEAR(c.cost(0.75), 0.03, 1e-12);
  EXPECT_DOUBLE_EQ(c.max_fraction(), 1.0);
}

TEST(PayoffTest, AnalyticValidation) {
  EXPECT_THROW((void)PayoffCurves::analytic(0.0, 1.0, 0.1, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)PayoffCurves::analytic(0.1, 1.0, 0.1, 1.0, 1),
               std::invalid_argument);
}

// ------------------------------------------------------------- game_model

TEST(GameModelTest, PayoffAddsSurvivingDamageAndCost) {
  const auto game = standard_game();
  const Allocation sa{{0.3, 100}};
  // theta = 0.2 <= 0.3: all points survive.
  const double expected_surviving =
      100 * game.curves().damage(0.3) + game.curves().cost(0.2);
  EXPECT_NEAR(game.attacker_payoff(sa, 0.2), expected_surviving, 1e-12);
  // theta = 0.4 > 0.3: filtered out; only Gamma remains.
  EXPECT_NEAR(game.attacker_payoff(sa, 0.4), game.curves().cost(0.4), 1e-12);
}

TEST(GameModelTest, SplitAllocationPartialSurvival) {
  const auto game = standard_game();
  const Allocation sa{{0.1, 40}, {0.5, 60}};
  const double theta = 0.3;  // kills the 0.1 placement, spares the 0.5
  EXPECT_NEAR(game.attacker_payoff(sa, theta),
              60 * game.curves().damage(0.5) + game.curves().cost(theta),
              1e-12);
}

TEST(GameModelTest, BestAttackSitsJustAtTheFilter) {
  const auto game = standard_game();
  const auto br = game.best_attack_against(0.25, 2048);
  // E decreasing: the best surviving placement is the filter boundary.
  EXPECT_NEAR(br.placement, 0.25, 2e-3);
}

TEST(GameModelTest, BestDefenseTradesGammaAgainstDamage) {
  const auto game = standard_game();
  // Attacker all-in at 0.3: the defender either pays Gamma(>0.3) to kill
  // it or tolerates the damage; for these curves killing is cheaper.
  const Allocation sa{{0.3, 100}};
  const auto br = game.best_defense_against(sa, 2048);
  EXPECT_GT(br.theta, 0.3);
  EXPECT_LT(br.attacker_payoff,
            game.attacker_payoff(sa, 0.0) - 1e-6);
}

TEST(GameModelTest, ThresholdMatchesSupportLimit) {
  const auto game = standard_game();
  EXPECT_DOUBLE_EQ(game.attacker_threshold(),
                   game.curves().damage_support_limit());
}

TEST(GameModelTest, DiscretizedGameHasNoPureNe) {
  // Proposition 1 on analytic curves.
  const auto game = standard_game();
  const auto mg = game.discretize(64, 64);
  EXPECT_TRUE(game::find_pure_equilibria(mg).empty());
  EXPECT_GT(game::pure_strategy_gap(mg), 1e-4);
}

TEST(GameModelTest, AnalyzePureEquilibriaReport) {
  const auto report = analyze_pure_equilibria(standard_game(), 48);
  EXPECT_EQ(report.saddle_points, 0u);
  EXPECT_GT(report.gap, 0.0);
  EXPECT_NEAR(report.gap, report.minimax - report.maximin, 1e-12);
}

TEST(GameModelTest, BestResponseDynamicsNeverSettles) {
  // Pure best responses must keep moving (no fixed point): consecutive
  // states never repeat (theta_t+1 != theta_t) for a meaningful horizon.
  const auto game = standard_game();
  const auto trace = best_response_dynamics(game, 0.05, 10, 512);
  ASSERT_EQ(trace.size(), 10u);
  bool any_movement = false;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (std::abs(trace[i].defender_theta - trace[i - 1].defender_theta) >
        1e-6) {
      any_movement = true;
    }
  }
  EXPECT_TRUE(any_movement);
}

TEST(GameModelTest, ZeroBudgetRejected) {
  EXPECT_THROW(PoisoningGame(standard_curves(), 0), std::invalid_argument);
}

// ------------------------------------------------------------ equilibrium

TEST(Algorithm1Test, FindPercentagesClosedForm) {
  const auto curves = standard_curves();
  const std::vector<double> support{0.1, 0.3, 0.5};
  const auto prob = find_percentages(curves, support);
  ASSERT_EQ(prob.size(), 3u);
  // Probabilities form a distribution.
  double total = 0.0;
  for (double q : prob) {
    EXPECT_GE(q, -1e-12);
    total += q;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Closed form: Q_i = E(p_n)/E(p_i).
  const double e_last = curves.damage(0.5);
  EXPECT_NEAR(prob[0], e_last / curves.damage(0.1), 1e-9);
  EXPECT_NEAR(prob[0] + prob[1], e_last / curves.damage(0.3), 1e-9);
}

TEST(Algorithm1Test, FindPercentagesYieldsIndifference) {
  const auto curves = standard_curves();
  const std::vector<double> support{0.05, 0.2, 0.35, 0.5};
  const auto prob = find_percentages(curves, support);
  const defense::MixedDefenseStrategy strategy(support, prob);
  const PoisoningGame game(curves, 100);
  const auto report = check_indifference(game, strategy, 1e-6);
  EXPECT_TRUE(report.properly_mixed);
  EXPECT_TRUE(report.indifferent)
      << "spread " << report.relative_spread;
}

TEST(Algorithm1Test, FindPercentagesValidation) {
  const auto curves = standard_curves();
  EXPECT_THROW((void)find_percentages(curves, {}), std::invalid_argument);
  EXPECT_THROW((void)find_percentages(curves, {0.3, 0.1}),
               std::invalid_argument);
}

TEST(Algorithm1Test, ObjectiveMatchesManualComputation) {
  const auto curves = standard_curves();
  const PoisoningGame game(curves, 100);
  const std::vector<double> support{0.2, 0.4};
  const auto prob = find_percentages(curves, support);
  const double expected = 100 * curves.damage(0.4) +
                          prob[0] * curves.cost(0.2) +
                          prob[1] * curves.cost(0.4);
  EXPECT_NEAR(defender_objective(game, support), expected, 1e-12);
}

TEST(Algorithm1Test, InitialSupportSpansProfitableRegion) {
  const auto game = standard_game();
  const auto s = choose_initial_support(game, 4);
  ASSERT_EQ(s.size(), 4u);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_GT(s[i], s[i - 1]);
  EXPECT_LE(s.back(), game.curves().damage_support_limit() + 1e-12);
  EXPECT_GT(game.curves().damage(s.back()), 0.0);
}

TEST(Algorithm1Test, ConvergesAndImprovesOverInitialSupport) {
  const auto game = standard_game();
  Algorithm1Config cfg;
  cfg.support_size = 3;
  const auto sol = compute_optimal_defense(game, cfg);
  EXPECT_TRUE(sol.converged);
  ASSERT_GE(sol.trace.size(), 2u);
  EXPECT_LE(sol.defender_loss, sol.trace.front() + 1e-9);
  EXPECT_EQ(sol.strategy.support_size(), 3u);
}

TEST(Algorithm1Test, SolutionSatisfiesNeConditions) {
  const auto game = standard_game();
  Algorithm1Config cfg;
  cfg.support_size = 3;
  const auto sol = compute_optimal_defense(game, cfg);
  const auto report = check_indifference(game, sol.strategy, 1e-5);
  EXPECT_TRUE(report.properly_mixed);   // condition 1
  EXPECT_TRUE(report.indifferent);      // condition 2
}

TEST(Algorithm1Test, LossDecreasesWithSupportSize) {
  const auto game = standard_game();
  double prev = 1e300;
  for (std::size_t n : {1, 2, 3, 4}) {
    Algorithm1Config cfg;
    cfg.support_size = n;
    const auto sol = compute_optimal_defense(game, cfg);
    EXPECT_LE(sol.defender_loss, prev + 1e-6) << "n=" << n;
    prev = sol.defender_loss;
  }
}

TEST(Algorithm1Test, MixedBeatsBestPureStrategy) {
  // The paper's headline: the mixed equilibrium loss is lower than any
  // pure filter's worst-case loss. Pure theta loses
  // max(N*E(theta) [attack just inside], ...) + Gamma(theta); the optimal
  // attack against pure theta places just inside, so loss =
  // N*E(theta) + Gamma(theta).
  const auto game = standard_game();
  Algorithm1Config cfg;
  cfg.support_size = 3;
  const auto sol = compute_optimal_defense(game, cfg);

  double best_pure = 1e300;
  for (double theta = 0.0; theta <= 0.99; theta += 0.01) {
    const double loss = 100 * game.curves().damage(theta) +
                        game.curves().cost(theta);
    best_pure = std::min(best_pure, loss);
  }
  EXPECT_LT(sol.defender_loss, best_pure);
}

TEST(Algorithm1Test, AgreesWithLpOnDiscretizedGame) {
  // Cross-check the paper's algorithm against the exact LP equilibrium of
  // the discretized game: defender losses must match within discretization
  // error.
  const auto game = standard_game();
  Algorithm1Config cfg;
  cfg.support_size = 5;
  const auto sol = compute_optimal_defense(game, cfg);

  const auto mg = game.discretize(160, 160);
  const auto eq = game::solve_lp_equilibrium(mg);
  EXPECT_NEAR(sol.defender_loss, eq.value, 0.15 * std::abs(eq.value) + 5e-3);
}

TEST(Algorithm1Test, ExploitabilityNearZero) {
  const auto game = standard_game();
  Algorithm1Config cfg;
  cfg.support_size = 4;
  const auto sol = compute_optimal_defense(game, cfg);
  const auto exploit = attacker_exploitability(game, sol.strategy, 4096);
  // Deviation gain bounded by grid resolution on E * N.
  EXPECT_LT(exploit.gain, 0.02 * exploit.equilibrium_damage + 1e-4);
}

TEST(Algorithm1Test, ConfigValidation) {
  const auto game = standard_game();
  Algorithm1Config cfg;
  cfg.support_size = 0;
  EXPECT_THROW((void)compute_optimal_defense(game, cfg),
               std::invalid_argument);
  cfg.support_size = 1;
  cfg.epsilon = 0.0;
  EXPECT_THROW((void)compute_optimal_defense(game, cfg),
               std::invalid_argument);
}

// ---------------------------------------------------------- ne_properties

TEST(NePropertiesTest, IndifferenceDetectsViolation) {
  const auto game = standard_game();
  // Uniform probabilities over a wide support violate indifference.
  const defense::MixedDefenseStrategy bad({0.05, 0.5}, {0.5, 0.5});
  const auto report = check_indifference(game, bad, 1e-6);
  EXPECT_TRUE(report.properly_mixed);
  EXPECT_FALSE(report.indifferent);
  EXPECT_GT(report.relative_spread, 0.1);
}

TEST(NePropertiesTest, PureStrategyFailsCondition1) {
  const auto game = standard_game();
  const auto report =
      check_indifference(game, defense::MixedDefenseStrategy::pure(0.2));
  EXPECT_FALSE(report.properly_mixed);
}

TEST(NePropertiesTest, ExploitabilityOfPureDefenseIsLarge) {
  const auto game = standard_game();
  // Pure strategy at 0.4: attacker deviates to just inside 0.4 and takes
  // E(0.4) with certainty; against placements > 0.4 nothing changes. The
  // deviation target is placing at 0.4 exactly (survives, max E).
  const auto exploit = attacker_exploitability(
      game, defense::MixedDefenseStrategy::pure(0.4));
  // equilibrium_damage for the degenerate "mixture" equals the deviation
  // optimum here, so instead check a genuinely bad mixture:
  const defense::MixedDefenseStrategy lopsided({0.05, 0.5}, {0.5, 0.5});
  const auto exploit2 = attacker_exploitability(game, lopsided);
  EXPECT_GT(exploit2.gain, 0.0);
  (void)exploit;
}

// Property sweep: for many analytic curve families, Algorithm 1 must
// satisfy both NE conditions and beat the best pure strategy.
struct CurveFamily {
  double e0;
  double epow;
  double g0;
  double gpow;
};

class Algorithm1Property : public ::testing::TestWithParam<CurveFamily> {};

TEST_P(Algorithm1Property, SolutionIsEquilibriumLike) {
  const auto& f = GetParam();
  const auto curves = PayoffCurves::analytic(f.e0, f.epow, f.g0, f.gpow);
  const PoisoningGame game(curves, 100);
  Algorithm1Config cfg;
  cfg.support_size = 3;
  const auto sol = compute_optimal_defense(game, cfg);

  const auto indiff = check_indifference(game, sol.strategy, 1e-4);
  EXPECT_TRUE(indiff.properly_mixed);
  EXPECT_TRUE(indiff.indifferent) << "spread " << indiff.relative_spread;

  double best_pure = 1e300;
  for (double theta = 0.0; theta <= 0.99; theta += 0.005) {
    best_pure = std::min(best_pure, 100 * curves.damage(theta) +
                                        curves.cost(theta));
  }
  EXPECT_LE(sol.defender_loss, best_pure + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    CurveFamilies, Algorithm1Property,
    ::testing::Values(CurveFamily{0.002, 5.0, 0.06, 1.4},
                      CurveFamily{0.001, 3.0, 0.02, 1.0},
                      CurveFamily{0.005, 8.0, 0.10, 2.0},
                      CurveFamily{0.0005, 2.0, 0.01, 1.2},
                      CurveFamily{0.003, 6.0, 0.20, 3.0}));

}  // namespace
}  // namespace pg::core
