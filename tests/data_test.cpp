// Unit and property tests for pg::data -- dataset container, scaler,
// synthetic generators, and the Spambase loader.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/dataset.h"
#include "data/loader.h"
#include "data/scaler.h"
#include "data/synthetic.h"
#include "util/stats.h"

namespace pg::data {
namespace {

Dataset tiny() {
  Dataset d;
  d.append({0.0, 0.0}, 1);
  d.append({1.0, 0.0}, 1);
  d.append({10.0, 10.0}, -1);
  d.append({11.0, 10.0}, -1);
  return d;
}

// -------------------------------------------------------------- dataset.h

TEST(DatasetTest, AppendAndAccess) {
  const Dataset d = tiny();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_EQ(d.label(0), 1);
  EXPECT_EQ(d.label(2), -1);
  EXPECT_EQ(d.instance(1), (la::Vector{1.0, 0.0}));
}

TEST(DatasetTest, RejectsBadLabels) {
  Dataset d;
  EXPECT_THROW(d.append({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(d.append({1.0}, 2), std::invalid_argument);
}

TEST(DatasetTest, RejectsDimensionMismatch) {
  Dataset d = tiny();
  EXPECT_THROW(d.append({1.0, 2.0, 3.0}, 1), std::invalid_argument);
}

TEST(DatasetTest, ConstructorValidatesLabelCount) {
  la::Matrix x(2, 1);
  EXPECT_THROW(Dataset(x, {1}), std::invalid_argument);
  EXPECT_THROW(Dataset(x, {1, 3}), std::invalid_argument);
}

TEST(DatasetTest, LabelCountsAndFractions) {
  const Dataset d = tiny();
  EXPECT_EQ(d.count_label(1), 2u);
  EXPECT_EQ(d.count_label(-1), 2u);
  EXPECT_DOUBLE_EQ(d.positive_fraction(), 0.5);
  EXPECT_EQ(d.indices_of_label(-1), (std::vector<std::size_t>{2, 3}));
}

TEST(DatasetTest, SelectSubset) {
  const Dataset d = tiny();
  const Dataset s = d.select({3, 0});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.label(0), -1);
  EXPECT_EQ(s.instance(1), (la::Vector{0.0, 0.0}));
}

TEST(DatasetTest, ClassMean) {
  const Dataset d = tiny();
  EXPECT_EQ(d.class_mean(1), (la::Vector{0.5, 0.0}));
  EXPECT_EQ(d.class_mean(-1), (la::Vector{10.5, 10.0}));
}

TEST(DatasetTest, DistancesToCenter) {
  const Dataset d = tiny();
  const auto dist = d.distances_to({0.0, 0.0}, 1);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_EQ(d.distances_to({0.0, 0.0}).size(), 4u);
}

TEST(DatasetTest, AppendAllConcatenates) {
  Dataset a = tiny();
  const Dataset b = tiny();
  a.append_all(b);
  EXPECT_EQ(a.size(), 8u);
}

TEST(SplitTest, PartitionsWithoutOverlap) {
  util::Rng rng(1);
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    d.append({static_cast<double>(i)}, i % 2 == 0 ? 1 : -1);
  }
  const auto split = split_train_test(d, 0.7, rng);
  EXPECT_EQ(split.train.size(), 70u);
  EXPECT_EQ(split.test.size(), 30u);
  // Every original value appears exactly once across the two parts.
  std::vector<double> seen;
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    seen.push_back(split.train.instance(i)[0]);
  }
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    seen.push_back(split.test.instance(i)[0]);
  }
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(seen[i], i);
}

TEST(SplitTest, RejectsDegenerateFraction) {
  util::Rng rng(1);
  const Dataset d = tiny();
  EXPECT_THROW((void)split_train_test(d, 0.0, rng), std::invalid_argument);
  EXPECT_THROW((void)split_train_test(d, 1.0, rng), std::invalid_argument);
}

TEST(SplitTest, DeterministicGivenSeed) {
  Dataset d;
  for (int i = 0; i < 50; ++i) d.append({static_cast<double>(i)}, 1);
  util::Rng r1(9);
  util::Rng r2(9);
  const auto s1 = split_train_test(d, 0.5, r1);
  const auto s2 = split_train_test(d, 0.5, r2);
  for (std::size_t i = 0; i < s1.train.size(); ++i) {
    EXPECT_EQ(s1.train.instance(i), s2.train.instance(i));
  }
}

TEST(ConcatenateTest, HandlesEmptySides) {
  const Dataset d = tiny();
  EXPECT_EQ(concatenate(d, Dataset{}).size(), d.size());
  EXPECT_EQ(concatenate(Dataset{}, d).size(), d.size());
  EXPECT_EQ(concatenate(d, d).size(), 2 * d.size());
}

// --------------------------------------------------------------- scaler.h

TEST(ScalerTest, StandardizesToZeroMeanUnitVar) {
  Dataset d;
  d.append({0.0, 100.0}, 1);
  d.append({2.0, 300.0}, 1);
  d.append({4.0, 500.0}, -1);
  StandardScaler s;
  s.fit(d);
  const Dataset z = s.transform(d);
  // Column means ~ 0.
  EXPECT_NEAR(z.features().column_means()[0], 0.0, 1e-12);
  EXPECT_NEAR(z.features().column_means()[1], 0.0, 1e-12);
  // Unit sample variance.
  const auto col0 = z.features().col_copy(0);
  EXPECT_NEAR(util::variance({col0.begin(), col0.end()}), 1.0, 1e-12);
}

TEST(ScalerTest, InverseTransformRoundTrips) {
  Dataset d;
  d.append({1.0, -5.0}, 1);
  d.append({3.0, 7.0}, -1);
  StandardScaler s;
  s.fit(d);
  const la::Vector x{2.0, 1.0};
  const la::Vector back = s.inverse_transform(s.transform(x));
  EXPECT_NEAR(back[0], 2.0, 1e-12);
  EXPECT_NEAR(back[1], 1.0, 1e-12);
}

TEST(ScalerTest, ConstantFeatureMapsToZero) {
  Dataset d;
  d.append({5.0, 1.0}, 1);
  d.append({5.0, 2.0}, -1);
  StandardScaler s;
  s.fit(d);
  EXPECT_DOUBLE_EQ(s.transform(la::Vector{5.0, 1.5})[0], 0.0);
}

TEST(ScalerTest, UnfittedThrows) {
  StandardScaler s;
  EXPECT_THROW((void)s.transform(la::Vector{1.0}), std::invalid_argument);
}

TEST(ScalerTest, LabelsPreserved) {
  const Dataset d = tiny();
  StandardScaler s;
  s.fit(d);
  const Dataset z = s.transform(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(z.label(i), d.label(i));
  }
}

// ------------------------------------------------------------ synthetic.h

TEST(SpambaseLikeTest, ShapeMatchesConfig) {
  SpambaseLikeConfig cfg;
  cfg.n_instances = 500;
  util::Rng rng(42);
  const Dataset d = make_spambase_like(cfg, rng);
  EXPECT_EQ(d.size(), 500u);
  EXPECT_EQ(d.dim(), 57u);
}

TEST(SpambaseLikeTest, ClassBalanceNearConfigured) {
  SpambaseLikeConfig cfg;
  cfg.n_instances = 2000;
  util::Rng rng(42);
  const Dataset d = make_spambase_like(cfg, rng);
  EXPECT_NEAR(d.positive_fraction(), cfg.positive_fraction, 0.02);
}

TEST(SpambaseLikeTest, FeaturesNonNegative) {
  SpambaseLikeConfig cfg;
  cfg.n_instances = 200;
  util::Rng rng(7);
  const Dataset d = make_spambase_like(cfg, rng);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (double v : d.instance(i)) EXPECT_GE(v, 0.0);
  }
}

TEST(SpambaseLikeTest, DeterministicInSeed) {
  SpambaseLikeConfig cfg;
  cfg.n_instances = 100;
  util::Rng r1(5);
  util::Rng r2(5);
  const Dataset a = make_spambase_like(cfg, r1);
  const Dataset b = make_spambase_like(cfg, r2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.instance(i), b.instance(i));
    EXPECT_EQ(a.label(i), b.label(i));
  }
}

TEST(SpambaseLikeTest, HeavyTailedDistances) {
  // The capital-run columns must dominate the distance geometry: the max
  // distance-to-centroid should dwarf the median (this is the property the
  // whole game relies on; see DESIGN.md section 4).
  SpambaseLikeConfig cfg;
  cfg.n_instances = 1000;
  util::Rng rng(11);
  const Dataset d = make_spambase_like(cfg, rng);
  const auto dist = d.distances_to(d.class_mean(1), 1);
  EXPECT_GT(util::max_value(dist), 5.0 * util::median(dist));
}

TEST(SpambaseLikeTest, ZeroSeparationRemovesSignal) {
  SpambaseLikeConfig cfg;
  cfg.n_instances = 400;
  cfg.class_separation = 0.0;
  util::Rng rng(13);
  const Dataset d = make_spambase_like(cfg, rng);
  // With no separation the class means should nearly coincide relative to
  // the data spread (weak test: distance between means < median distance).
  const double icd = la::distance(d.class_mean(1), d.class_mean(-1));
  const auto dist = d.distances_to(d.class_mean(1), 1);
  EXPECT_LT(icd, util::median(dist));
}

TEST(SpambaseLikeTest, RejectsBadConfig) {
  util::Rng rng(1);
  SpambaseLikeConfig too_small;
  too_small.n_instances = 5;
  EXPECT_THROW((void)make_spambase_like(too_small, rng),
               std::invalid_argument);
  SpambaseLikeConfig bad_words;
  bad_words.n_features = 10;  // < 12 + 12 + 3
  EXPECT_THROW((void)make_spambase_like(bad_words, rng),
               std::invalid_argument);
  SpambaseLikeConfig bad_frac;
  bad_frac.positive_fraction = 1.5;
  EXPECT_THROW((void)make_spambase_like(bad_frac, rng),
               std::invalid_argument);
}

TEST(GaussianBlobsTest, SeparationControlsOverlap) {
  util::Rng rng(3);
  const Dataset d = make_gaussian_blobs(400, 3, 8.0, rng);
  EXPECT_EQ(d.size(), 400u);
  // With separation 8 the class means straddle the origin on axis 0.
  EXPECT_GT(d.class_mean(1)[0], 2.0);
  EXPECT_LT(d.class_mean(-1)[0], -2.0);
}

TEST(GaussianBlobsTest, BalancedLabels) {
  util::Rng rng(3);
  const Dataset d = make_gaussian_blobs(100, 2, 1.0, rng);
  EXPECT_EQ(d.count_label(1), 50u);
  EXPECT_EQ(d.count_label(-1), 50u);
}

// --------------------------------------------------------------- loader.h

TEST(LoaderTest, ParsesSpambaseFormat) {
  const std::string path = ::testing::TempDir() + "/spambase_ok.data";
  {
    std::ofstream f(path);
    for (int i = 0; i < 3; ++i) {
      for (int c = 0; c < 57; ++c) f << (c * 0.1) << ",";
      f << (i % 2) << "\n";
    }
  }
  const Dataset d = load_spambase(path);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.dim(), 57u);
  EXPECT_EQ(d.label(0), -1);
  EXPECT_EQ(d.label(1), 1);
  std::remove(path.c_str());
}

TEST(LoaderTest, RejectsWrongColumnCount) {
  const std::string path = ::testing::TempDir() + "/spambase_bad.data";
  {
    std::ofstream f(path);
    f << "1,2,3\n";
  }
  EXPECT_THROW((void)load_spambase(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(LoaderTest, RejectsBadLabel) {
  const std::string path = ::testing::TempDir() + "/spambase_lbl.data";
  {
    std::ofstream f(path);
    for (int c = 0; c < 57; ++c) f << "0,";
    f << "7\n";
  }
  EXPECT_THROW((void)load_spambase(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(LoaderTest, FallsBackToSynthetic) {
  SpambaseLikeConfig cfg;
  cfg.n_instances = 50;
  util::Rng rng(1);
  const CorpusInfo info =
      load_or_generate_spambase({"/nonexistent/a", "/nonexistent/b"}, cfg,
                                rng);
  EXPECT_TRUE(info.synthetic);
  EXPECT_EQ(info.source, "synthetic");
  EXPECT_EQ(info.data.size(), 50u);
}

TEST(LoaderTest, PrefersRealFileWhenPresent) {
  const std::string path = ::testing::TempDir() + "/spambase_real.data";
  {
    std::ofstream f(path);
    for (int i = 0; i < 12; ++i) {
      for (int c = 0; c < 57; ++c) f << "0.5,";
      f << (i % 2) << "\n";
    }
  }
  SpambaseLikeConfig cfg;
  cfg.n_instances = 50;
  util::Rng rng(1);
  const CorpusInfo info = load_or_generate_spambase({path}, cfg, rng);
  EXPECT_FALSE(info.synthetic);
  EXPECT_EQ(info.source, path);
  EXPECT_EQ(info.data.size(), 12u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pg::data
