// Unit and property tests for pg::defense -- centroids, the distance
// filter, baseline sanitizers, mixed strategies, and the pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/boundary_attack.h"
#include "data/synthetic.h"
#include "defense/centroid.h"
#include "defense/distance_filter.h"
#include "defense/knn_filter.h"
#include "defense/mixed_defense.h"
#include "defense/pca_filter.h"
#include "defense/pipeline.h"
#include "defense/roni.h"
#include "la/vector_ops.h"

namespace pg::defense {
namespace {

data::Dataset blobs(std::size_t n = 400, std::uint64_t seed = 1,
                    double sep = 6.0) {
  util::Rng rng(seed);
  return data::make_gaussian_blobs(n, 5, sep, rng);
}

// --------------------------------------------------------------- centroid

TEST(CentroidTest, MeanMatchesClassMean) {
  const auto d = blobs();
  CentroidConfig cfg;
  cfg.method = CentroidMethod::kMean;
  EXPECT_EQ(compute_centroid(d, 1, cfg), d.class_mean(1));
}

TEST(CentroidTest, MedianOfSymmetricDataNearMean) {
  const auto d = blobs(2000);
  CentroidConfig cfg;
  cfg.method = CentroidMethod::kCoordinateMedian;
  const auto med = compute_centroid(d, 1, cfg);
  const auto mean = d.class_mean(1);
  EXPECT_LT(la::distance(med, mean), 0.2);
}

TEST(CentroidTest, MedianRobustToOutliers) {
  // Inject extreme outliers into class +1; the median must barely move
  // while the mean is dragged far away (the paper's "good method to find
  // the centroid" requirement).
  data::Dataset d = blobs(500, 2);
  const auto clean_mean = d.class_mean(1);
  for (int i = 0; i < 60; ++i) {
    d.append({1000.0, 1000.0, 1000.0, 1000.0, 1000.0}, 1);
  }
  CentroidConfig median_cfg;
  median_cfg.method = CentroidMethod::kCoordinateMedian;
  const auto med = compute_centroid(d, 1, median_cfg);
  CentroidConfig mean_cfg;
  mean_cfg.method = CentroidMethod::kMean;
  const auto mean = compute_centroid(d, 1, mean_cfg);
  EXPECT_LT(la::distance(med, clean_mean), 1.5);
  EXPECT_GT(la::distance(mean, clean_mean), 100.0);
}

TEST(CentroidTest, TrimmedMeanBetweenMeanAndMedian) {
  data::Dataset d = blobs(500, 3);
  const auto clean_mean = d.class_mean(1);
  for (int i = 0; i < 50; ++i) {
    d.append({500.0, 0.0, 0.0, 0.0, 0.0}, 1);
  }
  CentroidConfig cfg;
  cfg.method = CentroidMethod::kTrimmedMean;
  cfg.trim_fraction = 0.2;
  const auto trimmed = compute_centroid(d, 1, cfg);
  EXPECT_LT(la::distance(trimmed, clean_mean), 1.0);
}

TEST(CentroidTest, TrimValidation) {
  const auto d = blobs(50);
  CentroidConfig cfg;
  cfg.method = CentroidMethod::kTrimmedMean;
  cfg.trim_fraction = 0.5;
  EXPECT_THROW((void)compute_centroid(d, 1, cfg), std::invalid_argument);
}

TEST(CentroidTest, MissingLabelThrows) {
  data::Dataset d;
  d.append({1.0}, 1);
  EXPECT_THROW((void)compute_centroid(d, -1, CentroidConfig{}),
               std::invalid_argument);
}

TEST(CentroidTest, MethodNames) {
  EXPECT_STREQ(centroid_method_name(CentroidMethod::kMean), "mean");
  EXPECT_STREQ(centroid_method_name(CentroidMethod::kCoordinateMedian),
               "median");
  EXPECT_STREQ(centroid_method_name(CentroidMethod::kTrimmedMean),
               "trimmed-mean");
}

// --------------------------------------------------------- distance_filter

TEST(DistanceFilterTest, RemovesConfiguredFraction) {
  const auto d = blobs(1000);
  DistanceFilterConfig cfg;
  cfg.removal_fraction = 0.2;
  util::Rng rng(4);
  const auto res = DistanceFilter(cfg).apply(d, rng);
  EXPECT_NEAR(res.removed_fraction(d.size()), 0.2, 0.03);
  EXPECT_EQ(res.kept.size() + res.removed_indices.size(), d.size());
}

TEST(DistanceFilterTest, ZeroStrengthKeepsEverything) {
  const auto d = blobs(100);
  DistanceFilterConfig cfg;
  cfg.removal_fraction = 0.0;
  util::Rng rng(5);
  const auto res = DistanceFilter(cfg).apply(d, rng);
  EXPECT_EQ(res.kept.size(), d.size());
  EXPECT_TRUE(res.removed_indices.empty());
}

TEST(DistanceFilterTest, RemovesFarthestPoints) {
  const auto d = blobs(500, 6);
  DistanceFilterConfig cfg;
  cfg.removal_fraction = 0.1;
  cfg.centroid.method = CentroidMethod::kMean;
  util::Rng rng(7);
  const auto res = DistanceFilter(cfg).apply(d, rng);
  // Every removed point must be farther from its class centroid than the
  // farthest kept point of the same class... modulo quantile ties; test
  // the weaker, exact property: removed distance > kept median distance.
  for (int label : {1, -1}) {
    const auto centroid = d.class_mean(label);
    std::vector<double> kept_d = res.kept.distances_to(centroid, label);
    const double kept_median = util::median(kept_d);
    for (std::size_t i : res.removed_indices) {
      if (d.label(i) != label) continue;
      EXPECT_GT(la::distance(d.instance(i), centroid), kept_median);
    }
  }
}

TEST(DistanceFilterTest, FiltersPerClass) {
  // Class -1 is tight, class +1 is spread: per-class filtering must remove
  // roughly the same fraction from each.
  data::Dataset d;
  util::Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    d.append({rng.normal(0.0, 5.0), rng.normal(0.0, 5.0)}, 1);
    d.append({10.0 + rng.normal(0.0, 0.5), rng.normal(0.0, 0.5)}, -1);
  }
  DistanceFilterConfig cfg;
  cfg.removal_fraction = 0.2;
  util::Rng frng(9);
  const auto res = DistanceFilter(cfg).apply(d, frng);
  std::size_t removed_pos = 0;
  std::size_t removed_neg = 0;
  for (std::size_t i : res.removed_indices) {
    (d.label(i) == 1 ? removed_pos : removed_neg)++;
  }
  EXPECT_NEAR(static_cast<double>(removed_pos), static_cast<double>(removed_neg),
              20.0);
}

TEST(DistanceFilterTest, RadiusForMatchesQuantile) {
  const auto d = blobs(1000, 10);
  DistanceFilterConfig cfg;
  cfg.removal_fraction = 0.25;
  cfg.centroid.method = CentroidMethod::kMean;
  const DistanceFilter f(cfg);
  const double r = f.radius_for(d, 1);
  const auto dist = d.distances_to(d.class_mean(1), 1);
  EXPECT_NEAR(r, util::quantile(dist, 0.75), 1e-9);
}

TEST(DistanceFilterTest, ConfigValidation) {
  EXPECT_THROW(DistanceFilter({.removal_fraction = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(DistanceFilter({.removal_fraction = -0.1}),
               std::invalid_argument);
}

TEST(DetectionScoreTest, PrecisionRecallArithmetic) {
  FilterResult res;
  res.removed_indices = {8, 9, 3};  // two poison (>= 8), one genuine
  const auto s = score_detection(res, 12, 8);
  EXPECT_EQ(s.poison_total, 4u);
  EXPECT_NEAR(s.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.recall, 0.5, 1e-12);
}

// ------------------------------------------------------------- knn_filter

TEST(KnnFilterTest, RemovesFlippedLabels) {
  // Plant label noise deep inside the opposite cluster. Fewer planted
  // points than k, so their neighbourhoods are dominated by genuine
  // opposite-label points (a poison CLUSTER larger than k defeats kNN
  // sanitization -- that known blindness is tested below).
  data::Dataset d = blobs(400, 11, 8.0);
  const auto c_neg = d.class_mean(-1);
  util::Rng jitter(99);
  for (int i = 0; i < 4; ++i) {
    la::Vector x = c_neg;
    for (double& v : x) v += jitter.normal(0.0, 0.05);
    d.append(x, 1);  // +1-labeled points at the -1 centroid
  }
  KnnFilterConfig cfg;
  cfg.k = 10;
  cfg.agreement_threshold = 0.5;
  util::Rng rng(12);
  const auto res = KnnFilter(cfg).apply(d, rng);
  const auto score = score_detection(res, d.size(), 400);
  EXPECT_GT(score.recall, 0.9);
}

TEST(KnnFilterTest, BlindToPoisonClustersLargerThanK) {
  // The documented weakness: a tight poison cluster of size > k validates
  // itself and survives.
  data::Dataset d = blobs(400, 11, 8.0);
  const auto c_neg = d.class_mean(-1);
  util::Rng jitter(98);
  for (int i = 0; i < 30; ++i) {
    la::Vector x = c_neg;
    for (double& v : x) v += jitter.normal(0.0, 0.01);
    d.append(x, 1);
  }
  KnnFilterConfig cfg;
  cfg.k = 10;
  cfg.agreement_threshold = 0.5;
  util::Rng rng(12);
  const auto res = KnnFilter(cfg).apply(d, rng);
  const auto score = score_detection(res, d.size(), 400);
  EXPECT_LT(score.recall, 0.2);
}

TEST(KnnFilterTest, KeepsCleanSeparatedData) {
  const auto d = blobs(300, 13, 10.0);
  KnnFilterConfig cfg;
  cfg.k = 5;
  util::Rng rng(14);
  const auto res = KnnFilter(cfg).apply(d, rng);
  EXPECT_GT(static_cast<double>(res.kept.size()) / d.size(), 0.97);
}

TEST(KnnFilterTest, ConfigValidation) {
  EXPECT_THROW(KnnFilter({.k = 0}), std::invalid_argument);
  EXPECT_THROW(KnnFilter({.k = 1, .agreement_threshold = 1.5}),
               std::invalid_argument);
}

// ------------------------------------------------------------- pca_filter

TEST(PcaFilterTest, RemovesOffSubspacePoints) {
  // Data lives on axis 0-1 plane; poison sticks out along axis 4.
  data::Dataset d;
  util::Rng rng(15);
  for (int i = 0; i < 300; ++i) {
    d.append({rng.normal(0, 3), rng.normal(0, 3), rng.normal(0, 0.01),
              rng.normal(0, 0.01), rng.normal(0, 0.01)},
             i % 2 ? 1 : -1);
  }
  const std::size_t clean_size = d.size();
  for (int i = 0; i < 30; ++i) {
    d.append({0.0, 0.0, 0.0, 0.0, 8.0}, 1);
  }
  PcaFilterConfig cfg;
  cfg.components = 2;
  cfg.removal_fraction = 0.12;
  util::Rng frng(16);
  const auto res = PcaFilter(cfg).apply(d, frng);
  const auto score = score_detection(res, d.size(), clean_size);
  EXPECT_GT(score.recall, 0.9);
}

TEST(PcaFilterTest, ZeroRemovalKeepsAll) {
  const auto d = blobs(100);
  PcaFilterConfig cfg;
  cfg.removal_fraction = 0.0;
  util::Rng rng(17);
  EXPECT_EQ(PcaFilter(cfg).apply(d, rng).kept.size(), d.size());
}

TEST(PcaFilterTest, ConfigValidation) {
  EXPECT_THROW(PcaFilter({.components = 0}), std::invalid_argument);
  EXPECT_THROW(PcaFilter({.components = 1, .removal_fraction = 1.0}),
               std::invalid_argument);
}

// ------------------------------------------------------------------- roni

TEST(RoniFilterTest, RejectsDamagingBatchesKeepsClean) {
  data::Dataset d = blobs(600, 18, 8.0);
  const std::size_t clean_size = d.size();
  // Poison: 120 label-flipped points at the opposite centroid.
  const auto c_pos = d.class_mean(1);
  for (int i = 0; i < 120; ++i) {
    la::Vector x = c_pos;
    x[0] += 0.1 * i / 120.0;
    d.append(x, -1);
  }
  RoniConfig cfg;
  cfg.batch_size = 4;
  cfg.tolerance = 0.005;
  util::Rng rng(19);
  const auto res = RoniFilter(cfg).apply(d, rng);
  const auto score = score_detection(res, d.size(), clean_size);
  // RONI's trusted pool is sampled from the (contaminated) input, so both
  // directions are noisy: expect meaningful but imperfect detection.
  EXPECT_GT(score.recall, 0.25);
  // Most genuine data survives.
  EXPECT_GT(static_cast<double>(res.kept.size()), 0.55 * clean_size);
}

TEST(RoniFilterTest, TinyInputPassesThrough) {
  const auto d = blobs(10);
  RoniConfig cfg;
  util::Rng rng(20);
  EXPECT_EQ(RoniFilter(cfg).apply(d, rng).kept.size(), d.size());
}

TEST(RoniFilterTest, ConfigValidation) {
  EXPECT_THROW(RoniFilter({.trusted_fraction = 0.0}), std::invalid_argument);
  EXPECT_THROW(RoniFilter({.trusted_fraction = 0.5, .batch_size = 0}),
               std::invalid_argument);
}

// ---------------------------------------------------------- mixed_defense

TEST(MixedDefenseTest, StrategyValidation) {
  EXPECT_NO_THROW(MixedDefenseStrategy({0.1, 0.2}, {0.5, 0.5}));
  EXPECT_THROW(MixedDefenseStrategy({0.2, 0.1}, {0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(MixedDefenseStrategy({0.1, 0.2}, {0.6, 0.6}),
               std::invalid_argument);
  EXPECT_THROW(MixedDefenseStrategy({0.1}, {0.5}), std::invalid_argument);
  EXPECT_THROW(MixedDefenseStrategy({}, {}), std::invalid_argument);
}

TEST(MixedDefenseTest, PureFactoryAndMixedPredicate) {
  const auto pure = MixedDefenseStrategy::pure(0.15);
  EXPECT_EQ(pure.support_size(), 1u);
  EXPECT_FALSE(pure.is_properly_mixed());
  const MixedDefenseStrategy mixed({0.1, 0.2}, {0.5, 0.5});
  EXPECT_TRUE(mixed.is_properly_mixed());
  const MixedDefenseStrategy degenerate({0.1, 0.2}, {1.0, 0.0});
  EXPECT_FALSE(degenerate.is_properly_mixed());
}

TEST(MixedDefenseTest, SurvivalProbabilityIsCdfFromBoundary) {
  const MixedDefenseStrategy s({0.05, 0.15, 0.30}, {0.2, 0.3, 0.5});
  EXPECT_NEAR(s.survival_probability(0.01), 0.0, 1e-12);
  EXPECT_NEAR(s.survival_probability(0.05), 0.2, 1e-12);
  EXPECT_NEAR(s.survival_probability(0.10), 0.2, 1e-12);
  EXPECT_NEAR(s.survival_probability(0.15), 0.5, 1e-12);
  EXPECT_NEAR(s.survival_probability(0.30), 1.0, 1e-12);
  EXPECT_NEAR(s.survival_probability(0.99), 1.0, 1e-12);
}

TEST(MixedDefenseTest, ExpectedRemovalIsWeightedMean) {
  const MixedDefenseStrategy s({0.1, 0.3}, {0.25, 0.75});
  EXPECT_NEAR(s.expected_removal(), 0.25, 1e-12);
}

TEST(MixedDefenseTest, SampleFollowsDistribution) {
  const MixedDefenseStrategy s({0.1, 0.2}, {0.7, 0.3});
  util::Rng rng(21);
  int at_first = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (s.sample(rng) == 0.1) ++at_first;
  }
  EXPECT_NEAR(static_cast<double>(at_first) / n, 0.7, 0.02);
}

TEST(MixedDefenseTest, DescribeContainsSupport) {
  const MixedDefenseStrategy s({0.058, 0.157}, {0.512, 0.488});
  const std::string text = s.describe();
  EXPECT_NE(text.find("5.8%"), std::string::npos);
  EXPECT_NE(text.find("51.2%"), std::string::npos);
}

TEST(MixedDefenseFilterTest, AppliesSampledStrength) {
  const auto d = blobs(500, 22);
  const MixedDefenseFilter f(MixedDefenseStrategy({0.1, 0.4}, {0.5, 0.5}),
                             CentroidConfig{});
  // Over many draws the removed fraction must average ~0.25.
  double removed = 0.0;
  const int reps = 40;
  for (int i = 0; i < reps; ++i) {
    util::Rng rng(100 + i);
    removed += f.apply(d, rng).removed_fraction(d.size());
  }
  EXPECT_NEAR(removed / reps, 0.25, 0.05);
}

// ---------------------------------------------------------------- pipeline

TEST(PipelineTest, CleanRunMatchesDirectTraining) {
  const auto train = blobs(300, 23);
  const auto test = blobs(200, 24);
  PipelineConfig cfg;
  cfg.svm.epochs = 30;
  const Pipeline p(cfg);
  util::Rng rng(25);
  const auto res = p.run(train, test, nullptr, 0, nullptr, rng);
  EXPECT_GT(res.test_accuracy, 0.95);
  EXPECT_EQ(res.train_size, train.size());
}

TEST(PipelineTest, AttackReducesAccuracy) {
  const auto train = blobs(300, 26, 4.0);
  const auto test = blobs(200, 27, 4.0);
  PipelineConfig cfg;
  cfg.svm.epochs = 30;
  const Pipeline p(cfg);
  attack::BoundaryAttackConfig acfg;
  acfg.placement_fraction = 0.0;
  const attack::BoundaryAttack atk(acfg);
  util::Rng r1(28);
  util::Rng r2(28);
  const double clean = p.run(train, test, nullptr, 0, nullptr, r1).test_accuracy;
  const double attacked =
      p.run(train, test, &atk, 60, nullptr, r2).test_accuracy;
  EXPECT_LT(attacked, clean - 0.03);
}

TEST(PipelineTest, FilterMitigatesDeepAttack) {
  const auto train = blobs(400, 29, 5.0);
  const auto test = blobs(300, 30, 5.0);
  PipelineConfig cfg;
  cfg.svm.epochs = 30;
  const Pipeline p(cfg);
  // Attack far outside (placement 0, no adaptive depth search -- this
  // test checks the filter's mechanics, not the arms race); a strong
  // filter catches it.
  attack::BoundaryAttackConfig acfg;
  acfg.placement_fraction = 0.0;
  acfg.depth_offsets.clear();
  const attack::BoundaryAttack atk(acfg);
  DistanceFilterConfig fcfg;
  fcfg.removal_fraction = 0.25;
  const DistanceFilter filter(fcfg);
  util::Rng r1(31);
  util::Rng r2(31);
  const double undefended =
      p.run(train, test, &atk, 80, nullptr, r1).test_accuracy;
  const auto defended = p.run(train, test, &atk, 80, &filter, r2);
  EXPECT_GT(defended.test_accuracy, undefended);
  EXPECT_GT(defended.detection.recall, 0.8);
}

TEST(PipelineTest, DetectionScoredOnlyWithFilter) {
  const auto train = blobs(100, 32);
  const auto test = blobs(100, 33);
  PipelineConfig cfg;
  cfg.svm.epochs = 10;
  const Pipeline p(cfg);
  util::Rng rng(34);
  const auto res = p.run(train, test, nullptr, 0, nullptr, rng);
  EXPECT_EQ(res.detection.removed, 0u);
}

TEST(PipelineTest, EmptyInputsRejected) {
  const auto d = blobs(50, 35);
  const Pipeline p;
  util::Rng rng(36);
  EXPECT_THROW((void)p.run(data::Dataset{}, d, nullptr, 0, nullptr, rng),
               std::invalid_argument);
  EXPECT_THROW((void)p.run(d, data::Dataset{}, nullptr, 0, nullptr, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace pg::defense
