// Tests for the extension modules beyond the paper's core results:
// attacker-side equilibrium extraction and the cross-dataset payoff-curve
// transfer experiment (the paper's stated future work).
#include <gtest/gtest.h>

#include <cmath>

#include "core/attacker_equilibrium.h"
#include "core/equilibrium.h"
#include "core/game_model.h"
#include "sim/transfer.h"

namespace pg {
namespace {

core::PoisoningGame analytic_game() {
  return core::PoisoningGame(
      core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4), 100);
}

// ----------------------------------------------------- attacker equilibria

TEST(AttackerEquilibriumTest, LpRouteProducesDistribution) {
  const auto game = analytic_game();
  const auto eq = core::attacker_equilibrium_lp(game, 96);
  const auto& probs = eq.strategy.probabilities();
  double total = 0.0;
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GE(eq.strategy.placements().size(), 2u)
      << "no pure NE => attacker must mix";
}

TEST(AttackerEquilibriumTest, LpValueMatchesDefenderLoss) {
  const auto game = analytic_game();
  const auto atk = core::attacker_equilibrium_lp(game, 128);
  core::Algorithm1Config cfg;
  cfg.support_size = 5;
  const auto def = core::compute_optimal_defense(game, cfg);
  // Zero-sum: the attacker's equilibrium payoff equals the defender's
  // equilibrium loss (within discretization error of both routes).
  EXPECT_NEAR(atk.game_value, def.defender_loss,
              0.15 * std::abs(def.defender_loss) + 5e-3);
}

TEST(AttackerEquilibriumTest, StructuralRouteProducesDistribution) {
  const auto game = analytic_game();
  core::Algorithm1Config cfg;
  cfg.support_size = 3;
  const auto def = core::compute_optimal_defense(game, cfg);
  const auto eq = core::attacker_equilibrium_structural(game, def.strategy);
  const auto& probs = eq.strategy.probabilities();
  ASSERT_EQ(probs.size(), 3u);
  double total = 0.0;
  for (double p : probs) {
    EXPECT_GE(p, -1e-12);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Support placements coincide with the defender's support.
  EXPECT_EQ(eq.strategy.placements(), def.strategy.removal_fractions());
}

TEST(AttackerEquilibriumTest, StructuralValueMatchesAlgorithm1) {
  const auto game = analytic_game();
  core::Algorithm1Config cfg;
  cfg.support_size = 3;
  const auto def = core::compute_optimal_defense(game, cfg);
  const auto eq = core::attacker_equilibrium_structural(game, def.strategy);
  EXPECT_NEAR(eq.game_value, def.defender_loss, 1e-9);
}

TEST(AttackerEquilibriumTest, StructuralRequiresMixedDefender) {
  const auto game = analytic_game();
  EXPECT_THROW((void)core::attacker_equilibrium_structural(
                   game, defense::MixedDefenseStrategy::pure(0.2)),
               std::invalid_argument);
}

TEST(AttackerEquilibriumTest, RoutesAgreeOnSupportRegion) {
  // Both routes concentrate the attacker's mass on the same region of the
  // placement axis: compare their mean placements.
  const auto game = analytic_game();
  core::Algorithm1Config cfg;
  cfg.support_size = 5;
  const auto def = core::compute_optimal_defense(game, cfg);
  const auto lp = core::attacker_equilibrium_lp(game, 128);
  const auto st = core::attacker_equilibrium_structural(game, def.strategy);
  auto mean_placement = [](const attack::MixedAttackStrategy& s) {
    double m = 0.0;
    for (std::size_t i = 0; i < s.placements().size(); ++i) {
      m += s.placements()[i] * s.probabilities()[i];
    }
    return m;
  };
  EXPECT_NEAR(mean_placement(lp.strategy), mean_placement(st.strategy), 0.12);
}

// ----------------------------------------------------------- curve transfer

TEST(TransferTest, CurvesGeneralizeAcrossSeeds) {
  // Same generator, different seed: the conjectured generalized E/Gamma
  // should transfer with a near-zero gap.
  sim::ExperimentConfig a = sim::fast_config(42);
  a.corpus.n_instances = 700;
  a.svm.epochs = 50;
  sim::ExperimentConfig b = a;
  b.seed = 1042;

  const auto source = sim::prepare_experiment(a);
  const auto target = sim::prepare_experiment(b);
  sim::TransferConfig cfg;
  cfg.eval.draws = 1;
  const auto result = sim::run_transfer_experiment(source, target, cfg);

  EXPECT_GT(result.transferred_accuracy, 0.45);
  EXPECT_GT(result.native_accuracy, 0.45);
  // Transfer should cost little relative to solving natively.
  EXPECT_GT(result.transfer_gap, -0.12);
}

TEST(TransferTest, StrategiesAreValidMixtures) {
  sim::ExperimentConfig a = sim::fast_config(7);
  a.corpus.n_instances = 600;
  a.svm.epochs = 40;
  sim::ExperimentConfig b = a;
  b.seed = 99;
  const auto source = sim::prepare_experiment(a);
  const auto target = sim::prepare_experiment(b);
  sim::TransferConfig cfg;
  cfg.eval.draws = 1;
  cfg.support_size = 2;
  const auto result = sim::run_transfer_experiment(source, target, cfg);
  EXPECT_EQ(result.source_strategy.support_size(), 2u);
  EXPECT_EQ(result.native_strategy.support_size(), 2u);
  EXPECT_TRUE(result.source_strategy.is_properly_mixed());
}

}  // namespace
}  // namespace pg
